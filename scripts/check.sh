#!/usr/bin/env bash
# Tier-1 gate: everything must build, every test must pass, clippy must be
# silent. `cargo test -q` at the root only covers the facade package (the
# root Cargo.toml is itself a package), so the test step is --workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test --workspace -q

# Static-analysis gate, run before the expensive stress/bench gates so a
# lint violation fails fast: determinism hygiene, panic-freedom, cast
# audit, unsafe-code forbid, protocol/metric cross-checks, and the
# concurrency passes (L1 lock order, H1 lock-held I/O, G1 guard balance
# from lint-pairs.txt). Pragma use is bounded by the committed ratchet in
# lint-budget.txt (decrease-only).
if ! cargo run --release --quiet -p mmlib-lint -- --workspace; then
    echo "check.sh: mmlib-lint FAILED (see violations above)" >&2
    echo "reproduce one rule: cargo run --release -q -p mmlib-lint -- --workspace --rule <ID>" >&2
    echo "rules and pragma syntax: DESIGN.md 'Static analysis'" >&2
    exit 1
fi

# Fault matrix: BA/PUA/MPA x 32 seeded fault plans, pinned to a fixed seed
# base so every run exercises the identical fault schedule. Failures print
# the offending plan; reproduce any cell with the same seed base.
FAULT_SEED_BASE=1024151
if ! MMLIB_FAULT_SEED_BASE="$FAULT_SEED_BASE" cargo test --test fault_matrix -q; then
    echo "check.sh: fault matrix FAILED at seed base $FAULT_SEED_BASE" >&2
    echo "reproduce: MMLIB_FAULT_SEED_BASE=$FAULT_SEED_BASE cargo test --test fault_matrix" >&2
    exit 1
fi

# Wire-protocol stress gate: 512 concurrent clients multiplexed over one
# pipelined RemoteStore pool against the sharded v2 server, asserting zero
# lost/misrouted responses and exact byte-ledger equality between client
# and server counters. Release mode keeps the bounded fast run under a few
# seconds; plain `cargo test` runs the same test at a modest default scale.
if ! MMLIB_STRESS_CLIENTS=512 cargo test -p mmlib-net --release --test stress -q; then
    echo "check.sh: wire-protocol stress FAILED at 512 clients" >&2
    echo "reproduce: MMLIB_STRESS_CLIENTS=512 cargo test -p mmlib-net --release --test stress" >&2
    exit 1
fi

# Phase-regression gate: the repro harness in fast mode writes per-approach
# TTS/TTR/storage phase breakdowns (plus per-save durability sync counts) to
# BENCH_PR7.json (pinned scale + seed) and gates them against the frozen
# pre-optimization baseline BENCH_PR4.json (which is committed history —
# never regenerated here). Fails if any instrumented phase reports zero
# samples, if the PUA `hash` phase is not >= 2x faster than the baseline
# (CPU-bound, so wall clock is stable), or if a BA save issues more than
# 12/1.5 = 8 sync ops — the write win is held as a sync *count* because
# shared-storage throughput varies severalfold run to run, while the number
# of fdatasync/fsync calls the batch commit coalesces is machine-invariant.
if ! ./target/release/repro --fast --scale 0.001 --json BENCH_PR7.json --baseline BENCH_PR4.json; then
    echo "check.sh: phase benchmark FAILED (zero-sample phase or hot-path speedup regression)" >&2
    exit 1
fi

# Lineage gate: a depth-64 delta chain is compacted to a depth bound of 8;
# the benchmark writes before/after/control TTR breakdowns to BENCH_PR6.json
# and exits nonzero if recovery is no longer byte-identical or the compacted
# chain's TTR exceeds 1.5x a fresh depth-8 chain.
if ! ./target/release/repro --fast --lineage-json BENCH_PR6.json; then
    echo "check.sh: lineage depth benchmark FAILED (identity or TTR regression)" >&2
    exit 1
fi

cargo clippy --workspace --all-targets -- -D warnings
echo "check.sh: all gates passed"
