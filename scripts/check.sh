#!/usr/bin/env bash
# Tier-1 gate: everything must build, every test must pass, clippy must be
# silent. `cargo test -q` at the root only covers the facade package (the
# root Cargo.toml is itself a package), so the test step is --workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
echo "check.sh: all gates passed"
