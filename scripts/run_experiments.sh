#!/usr/bin/env bash
# Regenerates every paper table/figure sequentially, one output file per
# experiment (results/<exp>.txt). Timing experiments should run on an
# otherwise idle machine.
set -u
export MALLOC_MMAP_THRESHOLD_=1073741824 MALLOC_TRIM_THRESHOLD_=1073741824
cd "$(dirname "$0")/.."
mkdir -p results
BIN=target/release/repro
[ -x "$BIN" ] || cargo build --release -p mmlib-bench

for exp in "$@"; do
    echo "=== running $exp ==="
    "$BIN" "$exp" ${REPRO_FLAGS:-} > "results/$exp.txt" 2>&1
    echo "=== $exp exit=$? ==="
done
