//! Deterministic network-fault tests: injected truncations, drops, and
//! connection resets must all be survived by `RemoteStore`'s retry loop,
//! with server byte counters staying consistent with what actually reached
//! the wire and the store.
//!
//! Fault schedules index *outgoing response frames* in order. Handshake
//! (`Hello`) replies are exempt — they are the v1-framed connection
//! prelude, not a response to a request — so ordinals are stable across
//! protocol versions: 0 = the first request's reply, then one per
//! reply/chunk. Clients are pinned to `pool_size(1)` so the frame order —
//! and therefore the schedule — is deterministic.

use std::sync::Arc;

use bytes::Bytes;
use mmlib_net::protocol::{encode_frame_v, WireVersion};
use mmlib_net::{Frame, NetFaults, Opcode, RegistryServer, RemoteStore, ServerConfig};
use mmlib_store::fault::{Fault, FaultPlan};
use mmlib_store::{ModelStorage, StorageBackend};
use serde_json::json;

fn faulty_server(dir: &std::path::Path, faults: NetFaults) -> RegistryServer {
    let storage = ModelStorage::open(dir).unwrap();
    let config = ServerConfig { faults: Some(Arc::new(faults)), ..ServerConfig::default() };
    RegistryServer::bind_with_config(storage, "127.0.0.1:0", config).unwrap()
}

fn client(server: &RegistryServer) -> RemoteStore {
    RemoteStore::builder(server.addr()).pool_size(1).build().unwrap()
}

/// Exact wire size of a frame the server would send, in either framing.
fn wire_len(v: WireVersion, op: Opcode, header: serde_json::Value, payload: &[u8]) -> u64 {
    encode_frame_v(&Frame::with_payload(op, header, Bytes::copy_from_slice(payload)), v)
        .unwrap()
        .len() as u64
}

/// The v1-framed `Hello` reply that opens every v2 connection.
fn hello_reply_len() -> u64 {
    let header = json!({
        "version": mmlib_net::PROTOCOL_V2,
        "max_inflight": mmlib_net::AdmissionConfig::default().per_conn_inflight as u64,
    });
    wire_len(WireVersion::V1, Opcode::Ok, header, &[])
}

#[test]
fn truncated_chunk_mid_blob_stream_is_survived_by_retry() {
    let dir = tempfile::tempdir().unwrap();
    // Response frames: op 0 = ping reply, op 1 = put reply, op 2 = get
    // announcement, op 3 = first chunk; op 4 (the second chunk) is cut
    // after 100 bytes mid-stream.
    let plan = FaultPlan::new(11).with(4, Fault::TruncateFrame { after_bytes: 100 });
    let server = faulty_server(dir.path(), NetFaults::response_only(plan));
    let client = client(&server);

    let blob: Vec<u8> = (0..300_000u32).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
    let id = client.put_file(&blob).unwrap();
    let fetched = client.get_file(&id).unwrap();
    assert_eq!(fetched, blob, "retry must deliver byte-exact data");

    // The failed attempt plus the clean retry, nothing more.
    let metrics = server.metrics();
    assert_eq!(metrics.requests(Opcode::FileGet), 2);
    assert_eq!(metrics.requests(Opcode::FilePut), 1);
    assert_eq!(metrics.connections(), 2, "one reconnect after the cut stream");

    // bytes_out must count exactly what reached the socket: every full
    // frame of both attempts plus the 100-byte truncated prefix. The
    // truncation closes the connection, so the retry re-handshakes.
    let v2 = WireVersion::V2;
    let announce = wire_len(v2, Opcode::Ok, json!({"len": blob.len() as u64}), &[]);
    let chunk_full = wire_len(v2, Opcode::Chunk, json!({}), &blob[..65536]);
    let chunk_last = wire_len(v2, Opcode::Chunk, json!({}), &blob[4 * 65536..]);
    let expected_out = hello_reply_len()
        + wire_len(v2, Opcode::Ok, json!({"version": mmlib_net::PROTOCOL_V2}), &[])
        + wire_len(v2, Opcode::Ok, json!({"id": id.as_str()}), &[])
        // Failed attempt: announcement + one full chunk + the prefix.
        + announce + chunk_full + 100
        // Clean retry on a fresh connection: handshake, announcement,
        // 4 full chunks, the tail chunk.
        + hello_reply_len()
        + announce + 4 * chunk_full + chunk_last;
    assert_eq!(metrics.bytes_out(), expected_out);

    // The client's own wire counter agrees with the server's, minus the
    // 100-byte prefix its decoder threw away with the dead connection.
    assert!(client.wire_bytes_in() >= expected_out - 100 - chunk_full);

    // The store committed the blob exactly once, byte-identical.
    let direct = ModelStorage::open(dir.path()).unwrap();
    assert_eq!(direct.files().ids().unwrap(), vec![id.clone()]);
    assert_eq!(direct.get_file(&id).unwrap(), blob);
    assert!(metrics.bytes_in() >= blob.len() as u64);
}

#[test]
fn transient_connect_reset_is_survived_by_retry() {
    let dir = tempfile::tempdir().unwrap();
    // The first accepted connection is reset before it is served.
    let plan = FaultPlan::new(7).with(0, Fault::ConnReset);
    let server = faulty_server(dir.path(), NetFaults::accept_only(plan));

    // Building the store performs the Hello + Ping handshake, so surviving
    // the reset proves the retry loop covers transient connect failures
    // end to end.
    let client = client(&server);
    let id = client.insert_doc("k", json!({"v": 1})).unwrap();
    assert_eq!(client.get_doc(&id).unwrap().body["v"], 1u64);

    let metrics = server.metrics();
    assert_eq!(metrics.connections(), 1, "only the served connection is counted");
    assert_eq!(metrics.requests(Opcode::Ping), 1, "the reset connection served nothing");
}

#[test]
fn dropped_reply_retries_with_at_least_once_semantics() {
    let dir = tempfile::tempdir().unwrap();
    // Op 0 = ping reply; op 1 (the insert reply) drops the whole
    // connection before any byte, so the server commits the document but
    // the client never hears.
    let plan = FaultPlan::new(3).with(1, Fault::DropConnection);
    let server = faulty_server(dir.path(), NetFaults::response_only(plan));
    let client = client(&server);

    let id = client.insert_doc("k", json!({"v": 42})).unwrap();
    assert_eq!(client.get_doc(&id).unwrap().body["v"], 42u64);
    assert_eq!(server.metrics().requests(Opcode::DocInsert), 2, "one retry");
    assert_eq!(server.metrics().connections(), 2, "the drop killed the first connection");

    // At-least-once: the first attempt's commit survives as a duplicate —
    // the orphan `mmlib fsck` exists to find.
    let direct = ModelStorage::open(dir.path()).unwrap();
    assert_eq!(direct.docs().ids().unwrap().len(), 2);
}

#[test]
fn lost_single_response_poisons_only_its_request_id() {
    let dir = tempfile::tempdir().unwrap();
    // Op 1 (the insert reply) is swallowed as if a single multiplexed
    // response frame were lost; unlike DropConnection, the connection —
    // and every other request on it — stays healthy.
    let plan = FaultPlan::new(9).with(1, Fault::IoError);
    let server = faulty_server(dir.path(), NetFaults::response_only(plan));
    let client = RemoteStore::builder(server.addr())
        .pool_size(1)
        .read_timeout(Some(std::time::Duration::from_millis(100)))
        .build()
        .unwrap();

    let id = client.insert_doc("k", json!({"v": 7})).unwrap();
    assert_eq!(client.get_doc(&id).unwrap().body["v"], 7u64);

    let metrics = server.metrics();
    assert_eq!(metrics.requests(Opcode::DocInsert), 2, "the lost reply forced one retry");
    assert_eq!(
        metrics.connections(),
        1,
        "a lost response must not tear the multiplexed connection down"
    );
    // At-least-once again: both insert attempts committed.
    let direct = ModelStorage::open(dir.path()).unwrap();
    assert_eq!(direct.docs().ids().unwrap().len(), 2);
}

#[test]
fn injected_latency_only_delays() {
    let dir = tempfile::tempdir().unwrap();
    let plan = FaultPlan::new(5)
        .with(0, Fault::Latency { micros: 2_000 })
        .with(1, Fault::Latency { micros: 2_000 });
    let server = faulty_server(dir.path(), NetFaults::response_only(plan));
    let client = client(&server);
    let id = client.put_file(b"slow but sure").unwrap();
    assert_eq!(client.get_file(&id).unwrap(), b"slow but sure");
    assert_eq!(server.metrics().requests(Opcode::FileGet), 1, "no retry needed");
}

#[test]
fn remote_file_ids_lists_stored_blobs() {
    let dir = tempfile::tempdir().unwrap();
    let storage = ModelStorage::open(dir.path()).unwrap();
    let server = RegistryServer::bind(storage, "127.0.0.1:0").unwrap();
    let client = RemoteStore::connect(server.addr()).unwrap();

    assert!(client.file_ids().unwrap().is_empty());
    let a = client.put_file(b"a").unwrap();
    let b = client.put_file(b"bb").unwrap();
    let mut expect = vec![a, b];
    expect.sort();
    assert_eq!(client.file_ids().unwrap(), expect);
}
