//! High-client-count stress: many threads share one pipelined
//! `RemoteStore` pool against a sharded server, and at quiescence the
//! books must balance exactly — zero lost or misrouted responses, and the
//! client's raw wire counters equal to the byte to the server's.
//!
//! `MMLIB_STRESS_CLIENTS` scales the thread count; `scripts/check.sh` runs
//! this at 512 in release mode, the default stays modest so plain
//! `cargo test` is fast.

use std::sync::Arc;
use std::time::Duration;

use mmlib_net::{
    AdmissionConfig, NetFaults, Opcode, RegistryServer, RemoteStore, ServerConfig, ShardConfig,
};
use mmlib_store::fault::{Fault, FaultPlan};
use mmlib_store::{ModelStorage, StorageBackend};
use serde_json::json;

fn thread_count() -> usize {
    std::env::var("MMLIB_STRESS_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(64)
}

/// Deterministic per-thread content; lengths straddle the 64 KiB chunk
/// boundary so both single-chunk and multi-chunk transfers are in play.
fn blob_for(thread: usize) -> Vec<u8> {
    let len = 63_000 + (thread % 8) * 1_000;
    (0..len).map(|i| ((i * 31 + thread * 257 + 11) % 256) as u8).collect()
}

#[test]
fn hundreds_of_concurrent_clients_lose_and_misroute_nothing() {
    let clients = thread_count();
    let dir = tempfile::tempdir().unwrap();
    let storage = ModelStorage::open(dir.path()).unwrap();
    let server = RegistryServer::bind_with_config(
        storage,
        "127.0.0.1:0",
        ServerConfig { shards: ShardConfig { workers: 8 }, ..ServerConfig::default() },
    )
    .unwrap();

    // One shared store: every thread multiplexes over the same small
    // connection pool, so responses are only correct if frame-id routing is.
    let store = Arc::new(
        RemoteStore::builder(server.addr())
            .pool_size(8)
            .max_retries(8)
            .read_timeout(Some(Duration::from_secs(30)))
            .build()
            .unwrap(),
    );

    crossbeam::scope(|s| {
        for t in 0..clients {
            let store = Arc::clone(&store);
            s.spawn(move |_| {
                let blob = blob_for(t);
                let fid = store.put_file(&blob).unwrap();
                let did = store
                    .insert_doc("stress", json!({"thread": t as u64, "file": fid.as_str()}))
                    .unwrap();
                // Read back through the same shared pool: any misrouted
                // reply surfaces as another thread's bytes or document.
                let fetched = store.get_file(&fid).unwrap();
                assert_eq!(fetched, blob, "thread {t} got someone else's blob");
                let doc = store.get_doc(&did).unwrap();
                assert_eq!(doc.body["thread"], t as u64, "thread {t} got someone else's doc");
                assert_eq!(doc.body["file"], fid.as_str());
            });
        }
    })
    .unwrap();

    let metrics = server.metrics();
    let n = clients as u64;
    assert_eq!(metrics.requests(Opcode::FilePut), n);
    assert_eq!(metrics.requests(Opcode::FileGet), n);
    assert_eq!(metrics.requests(Opcode::DocInsert), n);
    assert_eq!(metrics.requests(Opcode::DocGet), n);

    // The request-latency histogram observed every dispatched request.
    let text = store.server_stats_text().unwrap();
    assert!(text.contains(&format!("mmlib_net_request_seconds_count{{opcode=\"file_put\"}} {n}")));
    assert!(text.contains(&format!("mmlib_net_request_seconds_count{{opcode=\"file_get\"}} {n}")));

    // Quiescence: nothing admitted is still in flight.
    assert_eq!(metrics.inflight(), 0.0);

    // Exact byte accounting. Both sides count raw socket traffic, so with
    // every response delivered the ledgers must agree to the byte — any
    // drift means a frame was dropped, duplicated, or half-written.
    assert_eq!(metrics.bytes_in(), store.wire_bytes_out(), "client→server bytes disagree");
    assert_eq!(metrics.bytes_out(), store.wire_bytes_in(), "server→client bytes disagree");
}

#[test]
fn load_shed_surfaces_as_a_clean_retryable_busy() {
    let dir = tempfile::tempdir().unwrap();
    let storage = ModelStorage::open(dir.path()).unwrap();
    // Admission budget of exactly one in-flight request. A latency fault
    // holds the first request's reply back (response ordinal 1; the ping
    // reply is 0), so a concurrent second request must be shed.
    let plan = FaultPlan::new(13).with(1, Fault::Latency { micros: 300_000 });
    let server = RegistryServer::bind_with_config(
        storage,
        "127.0.0.1:0",
        ServerConfig {
            admission: AdmissionConfig::new(1, 1).unwrap(),
            faults: Some(Arc::new(NetFaults::response_only(plan))),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let store = Arc::new(
        RemoteStore::builder(server.addr()).pool_size(1).max_retries(10).build().unwrap(),
    );

    crossbeam::scope(|s| {
        let slow = Arc::clone(&store);
        let held = s.spawn(move |_| slow.insert_doc("held", json!({"k": 1})).unwrap());
        // Let the held request reach its worker before competing with it.
        std::thread::sleep(Duration::from_millis(60));
        let shed = Arc::clone(&store);
        let retried = s.spawn(move |_| shed.insert_doc("shed", json!({"k": 2})).unwrap());
        held.join().unwrap();
        retried.join().unwrap();
    })
    .unwrap();

    let metrics = server.metrics();
    assert!(metrics.load_shed() >= 1, "the admission budget never shed");
    // Busy is transport flow control, not an application request: the shed
    // request retried on the same healthy connection and both committed.
    assert_eq!(metrics.requests(Opcode::Busy), 0, "Busy must never be counted as a request");
    assert_eq!(metrics.connections(), 1, "load shedding must not tear the connection down");
    assert_eq!(metrics.requests(Opcode::DocInsert), 2);
    let direct = ModelStorage::open(dir.path()).unwrap();
    assert_eq!(direct.docs().ids().unwrap().len(), 2);
}
