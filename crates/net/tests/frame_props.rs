//! Property tests of the wire-frame codec: arbitrary headers and payloads
//! round-trip; truncated frames and oversized lengths are always rejected.
//! The v2 properties cover multiplexing: interleaved frames with distinct
//! request ids decode in order with ids intact, and a truncated stream
//! yields exactly the complete frames before the cut — the loss is scoped
//! to the unfinished request id, never to earlier frames.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mmlib_net::protocol::{
    decode_frame, encode_frame, encode_frame_v, try_decode_frame, Frame, Opcode, WireError,
    WireVersion, MAX_FRAME_LEN,
};
use proptest::prelude::*;

/// Builds an arbitrary JSON header from a shape seed (objects of strings,
/// integers, bools, nested arrays — the kinds the protocol sends).
fn header_from_seed(fields: &[(u8, u64)]) -> serde_json::Value {
    let mut obj = serde_json::Map::new();
    for (i, (kind, seed)) in fields.iter().enumerate() {
        let key = format!("k{i}");
        let value = match kind % 5 {
            0 => serde_json::Value::String(format!("s-{seed}")),
            1 => serde_json::json!(*seed),
            2 => serde_json::json!(*seed as i64 as f64 / 8.0),
            3 => serde_json::Value::Bool(seed % 2 == 0),
            _ => serde_json::json!([*seed, format!("e{seed}"), seed % 2 == 1]),
        };
        obj.insert(key, value);
    }
    serde_json::Value::Object(obj)
}

fn opcode_from_seed(seed: u64) -> Opcode {
    Opcode::ALL[(seed as usize) % Opcode::ALL.len()]
}

proptest! {
    #[test]
    fn arbitrary_frames_round_trip(
        op_seed in 0u64..1000,
        fields in prop::collection::vec((0u8..=255, 0u64..1_000_000), 0..8),
        payload in prop::collection::vec(0u8..=255, 0..5000),
    ) {
        let frame = Frame::with_payload(
            opcode_from_seed(op_seed),
            header_from_seed(&fields),
            Bytes::from(payload),
        );
        let mut encoded = encode_frame(&frame).unwrap();
        let decoded = decode_frame(&mut encoded).unwrap();
        prop_assert_eq!(decoded, frame);
        prop_assert!(!encoded.has_remaining());
    }

    #[test]
    fn truncated_frames_never_decode(
        fields in prop::collection::vec((0u8..=255, 0u64..1000), 0..4),
        payload in prop::collection::vec(0u8..=255, 0..600),
        cut_seed in 0u64..1_000_000,
    ) {
        let frame = Frame::with_payload(
            Opcode::FilePut,
            header_from_seed(&fields),
            Bytes::from(payload),
        );
        let encoded = encode_frame(&frame).unwrap();
        let cut = (cut_seed as usize) % encoded.len();
        let mut partial = encoded.slice(0..cut);
        prop_assert!(decode_frame(&mut partial).is_err());
    }

    #[test]
    fn oversized_lengths_are_rejected(excess in 1u64..u32::MAX as u64 - MAX_FRAME_LEN as u64) {
        let declared = MAX_FRAME_LEN as u64 + excess;
        let mut buf = BytesMut::new();
        buf.put_u32_le(declared as u32);
        // A few body bytes; the length check must fire before any read.
        buf.put_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        match decode_frame(&mut buf.freeze()) {
            Err(WireError::Oversized(n)) => prop_assert_eq!(n, declared as usize),
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }

    #[test]
    fn interleaved_v2_frames_round_trip_in_order(
        frames in prop::collection::vec(
            (0u64..1000, 1u64..u64::MAX, prop::collection::vec(0u8..=255, 0..3000)),
            1..12,
        ),
    ) {
        // A multiplexed v2 stream: frames for many request ids interleaved
        // back to back, exactly as the pipelined client and the sharded
        // server emit them.
        let originals: Vec<Frame> = frames
            .iter()
            .enumerate()
            .map(|(i, (op_seed, id, payload))| {
                Frame::with_payload(
                    opcode_from_seed(*op_seed),
                    serde_json::json!({"seq": i as u64}),
                    Bytes::from(payload.clone()),
                )
                .with_request_id(*id)
            })
            .collect();
        let mut stream = Vec::new();
        for frame in &originals {
            stream.extend_from_slice(&encode_frame_v(frame, WireVersion::V2).unwrap());
        }

        // The incremental decoder must return them in order, ids intact.
        let mut offset = 0usize;
        for original in &originals {
            let (decoded, used) =
                try_decode_frame(&stream[offset..], WireVersion::V2).unwrap().unwrap();
            prop_assert_eq!(&decoded, original);
            prop_assert_eq!(decoded.request_id, original.request_id);
            offset += used;
        }
        prop_assert_eq!(offset, stream.len());
        prop_assert!(try_decode_frame(&stream[offset..], WireVersion::V2).unwrap().is_none());
    }

    #[test]
    fn truncated_v2_stream_poisons_only_the_unfinished_frame(
        frames in prop::collection::vec(
            (1u64..u64::MAX, prop::collection::vec(0u8..=255, 0..1500)),
            1..8,
        ),
        cut_seed in 0u64..1_000_000,
    ) {
        let originals: Vec<Frame> = frames
            .iter()
            .map(|(id, payload)| {
                Frame::with_payload(
                    Opcode::Chunk,
                    serde_json::json!({}),
                    Bytes::from(payload.clone()),
                )
                .with_request_id(*id)
            })
            .collect();
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for frame in &originals {
            stream.extend_from_slice(&encode_frame_v(frame, WireVersion::V2).unwrap());
            boundaries.push(stream.len());
        }
        let cut = (cut_seed as usize) % stream.len();
        let partial = &stream[..cut];
        let whole_before_cut = boundaries.iter().filter(|&&b| b <= cut).count();

        // Every frame wholly before the cut decodes intact; the frame the
        // cut landed in is simply "not yet arrived" (Ok(None)), never an
        // error and never a corruption of its predecessors.
        let mut offset = 0usize;
        for original in originals.iter().take(whole_before_cut) {
            let (decoded, used) =
                try_decode_frame(&partial[offset..], WireVersion::V2).unwrap().unwrap();
            prop_assert_eq!(&decoded, original);
            offset += used;
        }
        prop_assert!(try_decode_frame(&partial[offset..], WireVersion::V2).unwrap().is_none());
    }

    #[test]
    fn corrupt_opcode_bytes_never_panic(
        byte in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let frame = Frame::with_payload(
            Opcode::Ping,
            serde_json::json!({"version": 1}),
            Bytes::from(payload),
        );
        let mut bytes = encode_frame(&frame).unwrap().to_vec();
        bytes[4] = byte; // opcode position
        // Must decode to the same kind of frame or fail cleanly — no panic.
        let _ = decode_frame(&mut Bytes::from(bytes));
    }
}
