//! Property tests of the wire-frame codec: arbitrary headers and payloads
//! round-trip; truncated frames and oversized lengths are always rejected.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mmlib_net::protocol::{decode_frame, encode_frame, Frame, Opcode, WireError, MAX_FRAME_LEN};
use proptest::prelude::*;

/// Builds an arbitrary JSON header from a shape seed (objects of strings,
/// integers, bools, nested arrays — the kinds the protocol sends).
fn header_from_seed(fields: &[(u8, u64)]) -> serde_json::Value {
    let mut obj = serde_json::Map::new();
    for (i, (kind, seed)) in fields.iter().enumerate() {
        let key = format!("k{i}");
        let value = match kind % 5 {
            0 => serde_json::Value::String(format!("s-{seed}")),
            1 => serde_json::json!(*seed),
            2 => serde_json::json!(*seed as i64 as f64 / 8.0),
            3 => serde_json::Value::Bool(seed % 2 == 0),
            _ => serde_json::json!([*seed, format!("e{seed}"), seed % 2 == 1]),
        };
        obj.insert(key, value);
    }
    serde_json::Value::Object(obj)
}

fn opcode_from_seed(seed: u64) -> Opcode {
    Opcode::ALL[(seed as usize) % Opcode::ALL.len()]
}

proptest! {
    #[test]
    fn arbitrary_frames_round_trip(
        op_seed in 0u64..1000,
        fields in prop::collection::vec((0u8..=255, 0u64..1_000_000), 0..8),
        payload in prop::collection::vec(0u8..=255, 0..5000),
    ) {
        let frame = Frame::with_payload(
            opcode_from_seed(op_seed),
            header_from_seed(&fields),
            Bytes::from(payload),
        );
        let mut encoded = encode_frame(&frame).unwrap();
        let decoded = decode_frame(&mut encoded).unwrap();
        prop_assert_eq!(decoded, frame);
        prop_assert!(!encoded.has_remaining());
    }

    #[test]
    fn truncated_frames_never_decode(
        fields in prop::collection::vec((0u8..=255, 0u64..1000), 0..4),
        payload in prop::collection::vec(0u8..=255, 0..600),
        cut_seed in 0u64..1_000_000,
    ) {
        let frame = Frame::with_payload(
            Opcode::FilePut,
            header_from_seed(&fields),
            Bytes::from(payload),
        );
        let encoded = encode_frame(&frame).unwrap();
        let cut = (cut_seed as usize) % encoded.len();
        let mut partial = encoded.slice(0..cut);
        prop_assert!(decode_frame(&mut partial).is_err());
    }

    #[test]
    fn oversized_lengths_are_rejected(excess in 1u64..u32::MAX as u64 - MAX_FRAME_LEN as u64) {
        let declared = MAX_FRAME_LEN as u64 + excess;
        let mut buf = BytesMut::new();
        buf.put_u32_le(declared as u32);
        // A few body bytes; the length check must fire before any read.
        buf.put_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        match decode_frame(&mut buf.freeze()) {
            Err(WireError::Oversized(n)) => prop_assert_eq!(n, declared as usize),
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }

    #[test]
    fn corrupt_opcode_bytes_never_panic(
        byte in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let frame = Frame::with_payload(
            Opcode::Ping,
            serde_json::json!({"version": 1}),
            Bytes::from(payload),
        );
        let mut bytes = encode_frame(&frame).unwrap().to_vec();
        bytes[4] = byte; // opcode position
        // Must decode to the same kind of frame or fail cleanly — no panic.
        let _ = decode_frame(&mut Bytes::from(bytes));
    }
}
