//! End-to-end tests of the registry server + remote store over loopback.

use std::sync::Arc;

use mmlib_net::{RegistryServer, RemoteStore, ServerConfig, ShardConfig, WireConfig};
use mmlib_store::{DocId, FileId, ModelStorage, StorageBackend, StoreError};
use serde_json::json;

fn server(dir: &std::path::Path) -> RegistryServer {
    let storage = ModelStorage::open(dir).unwrap();
    RegistryServer::bind(storage, "127.0.0.1:0").unwrap()
}

#[test]
fn documents_round_trip_over_the_socket() {
    let dir = tempfile::tempdir().unwrap();
    let server = server(dir.path());
    let client = RemoteStore::connect(server.addr()).unwrap();

    let id = client.insert_doc("model_info", json!({"arch": "resnet18", "n": 42})).unwrap();
    assert!(client.contains_doc(&id));
    let doc = client.get_doc(&id).unwrap();
    assert_eq!(doc.kind, "model_info");
    assert_eq!(doc.body["arch"], "resnet18");
    assert_eq!(doc.body["n"], 42u64);

    client.update_doc(&id, json!({"arch": "resnet34"})).unwrap();
    assert_eq!(client.get_doc(&id).unwrap().body["arch"], "resnet34");
    assert_eq!(client.doc_ids().unwrap(), vec![id.clone()]);

    client.remove_doc(&id).unwrap();
    assert!(!client.contains_doc(&id));
}

#[test]
fn files_stream_chunked_and_byte_exact() {
    let dir = tempfile::tempdir().unwrap();
    let server = server(dir.path());
    let client = RemoteStore::connect(server.addr()).unwrap();

    // Larger than several chunks, not chunk-aligned.
    let blob: Vec<u8> = (0..300_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
    let id = client.put_file(&blob).unwrap();
    assert!(client.contains_file(&id));
    assert_eq!(client.file_size(&id).unwrap(), blob.len() as u64);
    assert_eq!(client.get_file(&id).unwrap(), blob);

    // Empty blobs are a degenerate-but-legal transfer (zero chunks).
    let empty = client.put_file(&[]).unwrap();
    assert_eq!(client.get_file(&empty).unwrap(), Vec::<u8>::new());

    client.remove_file(&id).unwrap();
    assert!(!client.contains_file(&id));
}

#[test]
fn missing_ids_map_back_to_typed_errors() {
    let dir = tempfile::tempdir().unwrap();
    let server = server(dir.path());
    let client = RemoteStore::connect(server.addr()).unwrap();

    let doc = DocId::from_string("nope-1".into());
    assert!(matches!(client.get_doc(&doc), Err(StoreError::MissingDocument(id)) if id == doc));
    let file = FileId::from_string("nope-2".into());
    assert!(matches!(client.get_file(&file), Err(StoreError::MissingFile(id)) if id == file));
    assert!(matches!(client.file_size(&file), Err(StoreError::MissingFile(_))));
}

#[test]
fn server_metrics_count_requests_and_bytes() {
    let dir = tempfile::tempdir().unwrap();
    let server = server(dir.path());
    let client = RemoteStore::connect(server.addr()).unwrap();

    let blob = vec![7u8; 100_000];
    let id = client.put_file(&blob).unwrap();
    client.get_file(&id).unwrap();

    let metrics = server.metrics();
    assert_eq!(metrics.requests(mmlib_net::Opcode::FilePut), 1);
    assert_eq!(metrics.requests(mmlib_net::Opcode::FileGet), 1);
    assert_eq!(metrics.requests(mmlib_net::Opcode::Ping), 1);
    assert!(metrics.bytes_in() >= blob.len() as u64);
    assert!(metrics.bytes_out() >= blob.len() as u64);
    assert!(metrics.connections() >= 1);

    // The Stats opcode serves the same numbers over the wire.
    let stats = client.server_stats().unwrap();
    assert_eq!(stats["requests"]["file_put"], 1u64);
    assert!(stats["bytes_in"].as_u64().unwrap() >= blob.len() as u64);
}

#[test]
fn stats_text_serves_prometheus_exposition() {
    let dir = tempfile::tempdir().unwrap();
    let server1 = server(dir.path());
    let client = RemoteStore::connect(server1.addr()).unwrap();
    let id = client.put_file(b"observable").unwrap();
    let _ = client.get_file(&id).unwrap();

    let text = client.server_stats_text().unwrap();
    assert!(text.contains("# TYPE mmlib_net_requests_total counter"), "{text}");
    assert!(text.contains("mmlib_net_requests_total{opcode=\"file_put\"} 1"), "{text}");
    assert!(text.contains("mmlib_net_requests_total{opcode=\"file_get\"} 1"), "{text}");
    assert!(text.contains("# TYPE mmlib_net_request_seconds histogram"), "{text}");
    assert!(text.contains("mmlib_net_request_seconds_count{opcode=\"file_put\"} 1"), "{text}");
    assert!(text.contains("mmlib_net_bytes_in_total"), "{text}");
    assert!(text.contains("mmlib_net_connections_total"), "{text}");

    // Each server owns an isolated registry: a second server starts at zero.
    let dir2 = tempfile::tempdir().unwrap();
    let server2 = server(dir2.path());
    let client2 = RemoteStore::connect(server2.addr()).unwrap();
    let text2 = client2.server_stats_text().unwrap();
    assert!(text2.contains("mmlib_net_requests_total{opcode=\"file_put\"} 0"), "{text2}");
}

#[test]
fn client_reconnects_after_connection_loss() {
    let dir = tempfile::tempdir().unwrap();
    let storage = ModelStorage::open(dir.path()).unwrap();
    // An aggressive idle timeout drops quiet connections fast.
    let server = RegistryServer::bind_with_config(
        storage,
        "127.0.0.1:0",
        ServerConfig {
            wire: WireConfig::default()
                .with_idle_timeout(Some(std::time::Duration::from_millis(50))),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = RemoteStore::connect(server.addr()).unwrap();
    let id = client.put_file(b"before").unwrap();

    // Let the server time the connection out, then use the client again:
    // the request must transparently reconnect and succeed.
    std::thread::sleep(std::time::Duration::from_millis(250));
    assert_eq!(client.get_file(&id).unwrap(), b"before");
    assert!(server.metrics().connections() >= 2);
}

/// The tentpole acceptance test: many concurrent clients hammer one server
/// and every byte survives the round trip.
#[test]
fn stress_eight_concurrent_clients_round_trip_byte_exact() {
    let dir = tempfile::tempdir().unwrap();
    let storage = ModelStorage::open(dir.path()).unwrap();
    let server = RegistryServer::bind_with_config(
        storage,
        "127.0.0.1:0",
        ServerConfig { shards: ShardConfig { workers: 8 }, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.addr();

    const CLIENTS: usize = 8;
    const OPS: usize = 12;

    let results = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move |_| {
                    let client = RemoteStore::connect(addr).unwrap();
                    let mut stored = Vec::new();
                    for op in 0..OPS {
                        // Distinct, deterministic per-client/op content with
                        // sizes straddling the chunk boundary.
                        let len = 40_000 + c * 17_000 + op * 3_001;
                        let blob: Vec<u8> =
                            (0..len).map(|i| ((i * (c + 3) + op * 251) % 256) as u8).collect();
                        let fid = client.put_file(&blob).unwrap();
                        let did = client
                            .insert_doc("snapshot", json!({"client": c, "op": op, "file": fid.as_str()}))
                            .unwrap();
                        stored.push((did, fid, blob));
                    }
                    // Read everything back on the same connection.
                    for (did, fid, blob) in &stored {
                        let doc = client.get_doc(did).unwrap();
                        assert_eq!(doc.body["client"], c as u64);
                        assert_eq!(doc.body["file"], fid.as_str());
                        assert_eq!(&client.get_file(fid).unwrap(), blob, "client {c} blob mismatch");
                    }
                    stored.len()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
    })
    .unwrap();

    assert_eq!(results, CLIENTS * OPS);
    let metrics = server.metrics();
    assert_eq!(metrics.requests(mmlib_net::Opcode::FilePut), (CLIENTS * OPS) as u64);
    assert_eq!(metrics.requests(mmlib_net::Opcode::FileGet), (CLIENTS * OPS) as u64);
    assert!(metrics.connections() >= CLIENTS as u64);
}

#[test]
fn remote_backed_model_storage_serves_the_full_surface() {
    let dir = tempfile::tempdir().unwrap();
    let server = server(dir.path());
    let storage: ModelStorage = RemoteStore::connect(server.addr()).unwrap().into_storage();

    assert!(storage.root().to_string_lossy().starts_with("tcp://"));
    let id = storage.insert_doc("k", json!({"v": 1})).unwrap();
    assert!(storage.docs().contains(&id));
    let fid = storage.put_file(b"remote bytes").unwrap();
    assert_eq!(storage.get_file(&fid).unwrap(), b"remote bytes");
    assert_eq!(storage.files().size(&fid).unwrap(), 12);
    assert!(storage.bytes_written() > 0);
    assert!(storage.bytes_read() > 0);

    // Shared through an Arc like the save/recover services hold it.
    let shared = Arc::new(storage);
    let clone = Arc::clone(&shared);
    assert_eq!(clone.get_doc(&id).unwrap().body["v"], 1u64);
}
