//! v1 ↔ v2 interop: a v2 server must serve legacy v1 clients (which never
//! send `Opcode::Hello`) alongside pipelined v2 clients on the same port,
//! and the handshake must reject unknown versions cleanly — a v1-framed
//! `version_mismatch` error, then EOF, never a hang or a garbage frame.

use std::net::TcpStream;

use mmlib_net::protocol::{read_frame, write_frame, WireError};
use mmlib_net::{Frame, Opcode, RegistryServer, RemoteStore, PROTOCOL_V1, PROTOCOL_V2};
use mmlib_store::{ModelStorage, StorageBackend};
use serde_json::json;

fn server(dir: &std::path::Path) -> RegistryServer {
    let storage = ModelStorage::open(dir).unwrap();
    RegistryServer::bind(storage, "127.0.0.1:0").unwrap()
}

#[test]
fn v1_pinned_client_round_trips_against_a_v2_server() {
    let dir = tempfile::tempdir().unwrap();
    let server = server(dir.path());

    // A version-pinned builder speaks the legacy serial protocol: no Hello,
    // no request ids, one exchange at a time.
    let v1 = RemoteStore::builder(server.addr())
        .pool_size(1)
        .protocol_version(PROTOCOL_V1)
        .build()
        .unwrap();
    let doc = v1.insert_doc("interop", json!({"writer": "v1"})).unwrap();
    let blob: Vec<u8> = (0..200_000u32).map(|i| (i.wrapping_mul(97) >> 2) as u8).collect();
    let file = v1.put_file(&blob).unwrap();
    assert_eq!(v1.get_file(&file).unwrap(), blob);

    let metrics = server.metrics();
    assert_eq!(metrics.requests(Opcode::Hello), 0, "v1 clients never handshake");

    // A default (v2) client shares the same server and sees v1's writes.
    let v2 = RemoteStore::builder(server.addr()).pool_size(1).build().unwrap();
    assert_eq!(v2.get_doc(&doc).unwrap().body["writer"], "v1");
    assert_eq!(v2.get_file(&file).unwrap(), blob);
    assert_eq!(metrics.requests(Opcode::Hello), 1, "the v2 pool handshakes once");

    // And the v1 client still works after v2 traffic: versions are
    // per-connection state, not server state.
    assert_eq!(v1.get_doc(&doc).unwrap().body["writer"], "v1");
}

#[test]
fn unknown_version_handshake_is_rejected_cleanly() {
    let dir = tempfile::tempdir().unwrap();
    let server = server(dir.path());

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &Frame::new(Opcode::Hello, json!({"version": 99}))).unwrap();

    // The rejection is v1-framed (the only framing an unknown client is
    // guaranteed to parse) and names the supported range.
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(reply.opcode, Opcode::Err);
    assert_eq!(reply.header["code"], "version_mismatch");
    let detail = reply.header["message"].as_str().unwrap();
    assert!(detail.contains(&PROTOCOL_V1.to_string()), "{detail}");
    assert!(detail.contains(&PROTOCOL_V2.to_string()), "{detail}");

    // Then the server hangs up: a clean EOF, not a stalled socket.
    assert!(matches!(read_frame(&mut stream), Err(WireError::Closed)));
}

#[test]
fn hello_pinning_version_one_keeps_the_connection_on_v1_framing() {
    let dir = tempfile::tempdir().unwrap();
    let server = server(dir.path());

    // A client may handshake and still pin v1 — useful for middleboxes
    // that parse the stream. The agreement must hold: replies after the
    // handshake stay v1-framed (no request-id word).
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &Frame::new(Opcode::Hello, json!({"version": 1}))).unwrap();
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(reply.opcode, Opcode::Ok);
    assert_eq!(reply.header["version"], 1u64);

    write_frame(&mut stream, &Frame::new(Opcode::Ping, json!({"version": 1}))).unwrap();
    let pong = read_frame(&mut stream).unwrap();
    assert_eq!(pong.opcode, Opcode::Ok, "{:?}", pong.header);
}

#[test]
fn hello_after_the_first_frame_is_a_protocol_error() {
    let dir = tempfile::tempdir().unwrap();
    let server = server(dir.path());

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &Frame::new(Opcode::Ping, json!({"version": 1}))).unwrap();
    assert_eq!(read_frame(&mut stream).unwrap().opcode, Opcode::Ok);

    // Renegotiating mid-stream would desynchronise framing; the server
    // refuses and closes.
    write_frame(&mut stream, &Frame::new(Opcode::Hello, json!({"version": 2}))).unwrap();
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(reply.opcode, Opcode::Err);
    assert_eq!(reply.header["code"], "protocol");
    assert!(matches!(read_frame(&mut stream), Err(WireError::Closed)));
}

/// Polls `cond` until it holds or a generous deadline passes.
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !cond() {
        assert!(std::time::Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

#[test]
fn dead_uploads_release_their_admission_budget() {
    use bytes::Bytes;
    use mmlib_net::protocol::{read_frame_v, write_frame_v, WireVersion};
    use mmlib_store::StorageBackend;

    let dir = tempfile::tempdir().unwrap();
    let server = server(dir.path());
    let metrics = server.metrics();

    // Leak path one: a v2 connection announces an upload, streams a
    // partial chunk, and vanishes. The transfer was admitted at announce
    // time but can never dispatch; reaping the socket must hand its unit
    // of the admission budget back.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &Frame::new(Opcode::Hello, json!({"version": PROTOCOL_V2}))).unwrap();
    assert_eq!(read_frame(&mut stream).unwrap().opcode, Opcode::Ok);
    let announce = Frame::new(Opcode::FilePut, json!({"len": 200_000u64})).with_request_id(7);
    write_frame_v(&mut stream, &announce, WireVersion::V2).unwrap();
    let chunk = Frame::with_payload(Opcode::Chunk, json!({}), Bytes::from(vec![0xAB; 1_000]))
        .with_request_id(7);
    write_frame_v(&mut stream, &chunk, WireVersion::V2).unwrap();
    wait_for("the upload to be admitted", || metrics.inflight() >= 1.0);
    drop(stream);
    wait_for("the dropped connection to release its budget", || metrics.inflight() == 0.0);

    // Leak path two: a chunk overrunning its announced length kills the
    // transfer (and the connection) server-side — same obligation.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &Frame::new(Opcode::Hello, json!({"version": PROTOCOL_V2}))).unwrap();
    assert_eq!(read_frame(&mut stream).unwrap().opcode, Opcode::Ok);
    let announce = Frame::new(Opcode::FilePut, json!({"len": 10u64})).with_request_id(1);
    write_frame_v(&mut stream, &announce, WireVersion::V2).unwrap();
    let overrun = Frame::with_payload(Opcode::Chunk, json!({}), Bytes::from(vec![1u8; 64]))
        .with_request_id(1);
    write_frame_v(&mut stream, &overrun, WireVersion::V2).unwrap();
    let reply = read_frame_v(&mut stream, WireVersion::V2).unwrap();
    assert_eq!(reply.opcode, Opcode::Err);
    assert_eq!(reply.header["code"], "protocol");
    wait_for("the overrun transfer to release its budget", || metrics.inflight() == 0.0);

    // The budget is genuinely back: a well-behaved client is admitted and
    // a full upload round-trips.
    let client = RemoteStore::builder(server.addr()).pool_size(1).build().unwrap();
    let blob = vec![9u8; 100_000];
    let id = client.put_file(&blob).unwrap();
    assert_eq!(client.get_file(&id).unwrap(), blob);
    assert_eq!(metrics.load_shed(), 0, "nothing should have been shed");
}
