//! One loopback exchange per request opcode, asserting the server's
//! per-opcode request counters. This is the wire-coverage companion to the
//! X1 lint rule: every `Opcode` variant a client can send is exercised here
//! exactly once, so adding an opcode without coverage fails the lint and
//! breaking an opcode's round trip fails this test.

use mmlib_net::{Opcode, RegistryServer, RemoteStore};
use mmlib_store::{DocId, ModelStorage, StorageBackend, StoreError};
use serde_json::json;

#[test]
fn every_request_opcode_round_trips_and_is_counted_once() {
    let dir = tempfile::tempdir().unwrap();
    let storage = ModelStorage::open(dir.path()).unwrap();
    let server = RegistryServer::bind(storage, "127.0.0.1:0").unwrap();
    let client = RemoteStore::connect(server.addr()).unwrap();

    // Documents: one request per doc opcode.
    let doc = client.insert_doc("coverage", json!({"v": 1})).unwrap();
    assert_eq!(client.get_doc(&doc).unwrap().body["v"], 1u64);
    client.update_doc(&doc, json!({"v": 2})).unwrap();
    assert!(client.contains_doc(&doc));
    assert_eq!(client.doc_ids().unwrap(), vec![doc.clone()]);
    client.remove_doc(&doc).unwrap();

    // Lineage: a two-node chain served straight from lineage documents.
    let child = client
        .insert_doc(
            "lineage",
            json!({
                "model": "m-child",
                "parent": "m-root",
                "approach": "param_update",
                "relation": "partially_updated",
                "root_hash": "beef",
            }),
        )
        .unwrap();
    let root = client
        .insert_doc(
            "lineage",
            json!({
                "model": "m-root",
                "parent": null,
                "approach": "baseline",
                "relation": "initial",
                "root_hash": "f00d",
            }),
        )
        .unwrap();
    let record = client.lineage_get("m-child").unwrap();
    assert_eq!(record["parent"].as_str(), Some("m-root"));
    let ancestry = client.lineage_ancestry("m-child").unwrap();
    assert_eq!(ancestry.len(), 2);
    assert_eq!(ancestry[0]["model"].as_str(), Some("m-child"));
    assert_eq!(ancestry[1]["model"].as_str(), Some("m-root"));
    client.remove_doc(&child).unwrap();
    client.remove_doc(&root).unwrap();

    // Files: one request per file opcode.
    let file = client.put_file(b"opcode coverage payload").unwrap();
    assert_eq!(client.get_file(&file).unwrap(), b"opcode coverage payload");
    assert_eq!(client.file_size(&file).unwrap(), 23);
    assert!(client.contains_file(&file));
    assert_eq!(client.file_ids().unwrap(), vec![file.clone()]);
    client.remove_file(&file).unwrap();

    // Introspection.
    let stats = client.server_stats().unwrap();
    assert!(stats["requests"].as_object().is_some());
    let text = client.server_stats_text().unwrap();
    assert!(text.contains("mmlib_net_requests_total"));

    let m = server.metrics();
    // Connecting performed the version handshake.
    assert_eq!(m.requests(Opcode::Ping), 1);
    // The lineage setup/teardown above adds two extra inserts and removes;
    // every other request opcode is exercised exactly once.
    for (op, expect) in [
        (Opcode::DocInsert, 3),
        (Opcode::DocGet, 1),
        (Opcode::DocUpdate, 1),
        (Opcode::DocContains, 1),
        (Opcode::DocRemove, 3),
        (Opcode::DocIds, 1),
        (Opcode::FilePut, 1),
        (Opcode::FileGet, 1),
        (Opcode::FileSize, 1),
        (Opcode::FileContains, 1),
        (Opcode::FileRemove, 1),
        (Opcode::FileIds, 1),
        (Opcode::Stats, 1),
        (Opcode::StatsText, 1),
        (Opcode::LineageGet, 1),
        (Opcode::LineageAncestry, 1),
    ] {
        assert_eq!(m.requests(op), expect, "opcode {} miscounted", op.name());
    }
    // Responses are never counted as requests: even after an error reply
    // (`Opcode::Err` on the wire), the request table has no entry for it.
    let missing = DocId::from_string("coverage-missing".into());
    assert!(matches!(client.get_doc(&missing), Err(StoreError::MissingDocument(_))));
    assert_eq!(m.requests(Opcode::Err), 0);
    assert_eq!(m.requests(Opcode::Ok), 0);
    assert_eq!(m.requests(Opcode::Chunk), 0);
}
