//! Server-side network fault injection.
//!
//! [`NetFaults`] plugs two deterministic [`FaultInjector`]s into the
//! registry server (via [`ServerConfig::faults`](crate::ServerConfig)):
//!
//! * the **accept** injector is consulted once per accepted connection —
//!   a scheduled fault closes the socket immediately, the transient
//!   `ECONNRESET` a restarting registry produces;
//! * the **response** injector is consulted once per outgoing frame
//!   (replies *and* blob chunks). Under protocol v2 a fault's blast radius
//!   is part of its meaning: `DropConnection`/`ConnReset` kill the whole
//!   multiplexed connection, `TruncateFrame`/`TornWrite` emit a prefix of
//!   one frame and then close (the torn-write failure mode), and `IoError`
//!   silently swallows exactly one response frame while the connection —
//!   and every *other* in-flight request on it — lives on.
//!
//! Both plans come from `mmlib-store`'s [`FaultPlan`], so one seed
//! describes a whole storage + network failure scenario. Clients are
//! expected to survive every injected fault through `RemoteStore`'s
//! retry loop; the fault tests in `crates/net/tests` assert exactly that.

use mmlib_store::fault::{Fault, FaultInjector, FaultPlan};

/// Fault schedules for a [`RegistryServer`](crate::RegistryServer).
#[derive(Debug)]
pub struct NetFaults {
    accept: FaultInjector,
    response: FaultInjector,
}

impl NetFaults {
    /// Separate schedules for accepted connections and response frames.
    pub fn new(accept: FaultPlan, response: FaultPlan) -> NetFaults {
        NetFaults {
            accept: FaultInjector::new(accept),
            response: FaultInjector::new(response),
        }
    }

    /// Faults on accepted connections only.
    pub fn accept_only(plan: FaultPlan) -> NetFaults {
        let seed = plan.seed();
        NetFaults::new(plan, FaultPlan::new(seed))
    }

    /// Faults on response frames only.
    pub fn response_only(plan: FaultPlan) -> NetFaults {
        let seed = plan.seed();
        NetFaults::new(FaultPlan::new(seed), plan)
    }

    /// Consults the accept schedule for the next connection.
    pub(crate) fn on_accept(&self) -> Option<Fault> {
        self.accept.next()
    }

    /// Consults the response schedule for the next outgoing frame.
    pub(crate) fn on_response(&self) -> Option<Fault> {
        self.response.next()
    }

    /// The accept-side injector (inspection in tests).
    pub fn accept_injector(&self) -> &FaultInjector {
        &self.accept
    }

    /// The response-side injector (inspection in tests).
    pub fn response_injector(&self) -> &FaultInjector {
        &self.response
    }
}
