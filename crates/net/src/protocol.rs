//! The mmlib wire protocol: length-prefixed binary frames.
//!
//! One frame on the wire is:
//!
//! ```text
//! ┌─────────────┬─────────┬───────────────┬──────────────┬─────────────┐
//! │ u32 LE len  │ u8 op   │ u32 LE hlen   │ hlen bytes   │ rest        │
//! │ (of body)   │ opcode  │ header length │ JSON header  │ raw payload │
//! └─────────────┴─────────┴───────────────┴──────────────┴─────────────┘
//! ```
//!
//! `len` counts everything after the length field itself. The JSON header
//! carries the structured part of a message (ids, document bodies, sizes);
//! the payload carries raw blob bytes. Large blobs never travel in one
//! frame: a transfer is announced by its request/response frame (header
//! `{"len": n}`) and the bytes follow in [`CHUNK_SIZE`]-bounded
//! [`Opcode::Chunk`] frames, so neither side ever buffers more than one
//! chunk beyond the blob's own allocation.

use std::fmt;
use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde_json::Value;

/// Protocol version, checked during the `Ping` handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard upper bound on one frame's body; oversized length prefixes are
/// rejected before any allocation happens.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Payload bytes per continuation chunk frame.
pub const CHUNK_SIZE: usize = 64 * 1024;

/// Hard upper bound on one streamed blob (sum of its chunks).
pub const MAX_BLOB_LEN: u64 = 8 * 1024 * 1024 * 1024;

/// Message opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness + version handshake. Header: `{"version": n}`.
    Ping = 0x01,
    /// Insert a document. Header: `{"kind": s, "body": v}`.
    DocInsert = 0x10,
    /// Fetch a document. Header: `{"id": s}`.
    DocGet = 0x11,
    /// Replace a document body. Header: `{"id": s, "body": v}`.
    DocUpdate = 0x12,
    /// Existence check. Header: `{"id": s}`.
    DocContains = 0x13,
    /// Delete a document. Header: `{"id": s}`.
    DocRemove = 0x14,
    /// List all document ids. Header: `{}`.
    DocIds = 0x15,
    /// Store a blob. Header: `{"len": n}`; bytes follow as chunks.
    FilePut = 0x20,
    /// Fetch a blob. Header: `{"id": s}`; response streams chunks.
    FileGet = 0x21,
    /// Blob size. Header: `{"id": s}`.
    FileSize = 0x22,
    /// Existence check. Header: `{"id": s}`.
    FileContains = 0x23,
    /// Delete a blob. Header: `{"id": s}`.
    FileRemove = 0x24,
    /// List all blob ids. Header: `{}`.
    FileIds = 0x25,
    /// Server metrics snapshot. Header: `{}`.
    Stats = 0x30,
    /// Server metrics in Prometheus text exposition format. Header: `{}`;
    /// the response carries the rendered text in its header (`{"text": s}`).
    StatsText = 0x31,
    /// Fetch one model's lineage record. Header: `{"id": s}`; the response
    /// header carries `{"id": s, "record": v}` with the stored (or
    /// synthesized) lineage record body.
    LineageGet = 0x32,
    /// Fetch a model's ancestry, tip first. Header: `{"id": s}`; the
    /// response header carries `{"id": s, "ancestry": [v, ...]}`.
    LineageAncestry = 0x33,
    /// Success response. Header: operation-specific result.
    Ok = 0x40,
    /// Failure response. Header: `{"code": s, "message": s}`.
    Err = 0x41,
    /// Blob payload continuation for an announced transfer.
    Chunk = 0x50,
}

impl Opcode {
    /// Every opcode, for metrics tables.
    pub const ALL: [Opcode; 20] = [
        Opcode::Ping,
        Opcode::DocInsert,
        Opcode::DocGet,
        Opcode::DocUpdate,
        Opcode::DocContains,
        Opcode::DocRemove,
        Opcode::DocIds,
        Opcode::FilePut,
        Opcode::FileGet,
        Opcode::FileSize,
        Opcode::FileContains,
        Opcode::FileRemove,
        Opcode::FileIds,
        Opcode::Stats,
        Opcode::StatsText,
        Opcode::LineageGet,
        Opcode::LineageAncestry,
        Opcode::Ok,
        Opcode::Err,
        Opcode::Chunk,
    ];

    /// Wire name, used in metrics snapshots and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Ping => "ping",
            Opcode::DocInsert => "doc_insert",
            Opcode::DocGet => "doc_get",
            Opcode::DocUpdate => "doc_update",
            Opcode::DocContains => "doc_contains",
            Opcode::DocRemove => "doc_remove",
            Opcode::DocIds => "doc_ids",
            Opcode::FilePut => "file_put",
            Opcode::FileGet => "file_get",
            Opcode::FileSize => "file_size",
            Opcode::FileContains => "file_contains",
            Opcode::FileRemove => "file_remove",
            Opcode::FileIds => "file_ids",
            Opcode::Stats => "stats",
            Opcode::StatsText => "stats_text",
            Opcode::LineageGet => "lineage_get",
            Opcode::LineageAncestry => "lineage_ancestry",
            Opcode::Ok => "ok",
            Opcode::Err => "err",
            Opcode::Chunk => "chunk",
        }
    }

    /// Dense index for per-opcode counter arrays, in [`Opcode::ALL`]
    /// order. The exhaustive match is compiler-checked: adding a variant
    /// without extending both this and `ALL` fails to build or fails the
    /// `index_matches_all_order` test.
    pub(crate) fn index(self) -> usize {
        match self {
            Opcode::Ping => 0,
            Opcode::DocInsert => 1,
            Opcode::DocGet => 2,
            Opcode::DocUpdate => 3,
            Opcode::DocContains => 4,
            Opcode::DocRemove => 5,
            Opcode::DocIds => 6,
            Opcode::FilePut => 7,
            Opcode::FileGet => 8,
            Opcode::FileSize => 9,
            Opcode::FileContains => 10,
            Opcode::FileRemove => 11,
            Opcode::FileIds => 12,
            Opcode::Stats => 13,
            Opcode::StatsText => 14,
            Opcode::LineageGet => 15,
            Opcode::LineageAncestry => 16,
            Opcode::Ok => 17,
            Opcode::Err => 18,
            Opcode::Chunk => 19,
        }
    }
}

impl TryFrom<u8> for Opcode {
    type Error = WireError;

    fn try_from(byte: u8) -> Result<Opcode, WireError> {
        Opcode::ALL
            .into_iter()
            .find(|&op| op as u8 == byte)
            .ok_or(WireError::BadOpcode(byte))
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub opcode: Opcode,
    pub header: Value,
    pub payload: Bytes,
}

impl Frame {
    pub fn new(opcode: Opcode, header: Value) -> Frame {
        Frame { opcode, header, payload: Bytes::new() }
    }

    pub fn with_payload(opcode: Opcode, header: Value, payload: Bytes) -> Frame {
        Frame { opcode, header, payload }
    }
}

/// Frame-level protocol errors.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/stream failure.
    Io(std::io::Error),
    /// Peer closed the connection cleanly between frames.
    Closed,
    /// Declared frame length exceeds [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// Frame body shorter than its declared lengths.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Header is not valid JSON or has the wrong shape.
    BadHeader(String),
    /// The peer violated the message exchange (wrong opcode, bad chunk
    /// accounting, version mismatch, ...).
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire io error: {e}"),
            WireError::Closed => f.write_str("connection closed"),
            WireError::Oversized(n) => {
                write!(f, "frame length {n} exceeds maximum {MAX_FRAME_LEN}")
            }
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::BadOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            WireError::BadHeader(m) => write!(f, "bad frame header: {m}"),
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Encodes a frame into a fresh buffer (length prefix included).
///
/// Fails with [`WireError::Oversized`] when the body would exceed
/// [`MAX_FRAME_LEN`] — the decoder rejects such frames, so emitting one
/// would only waste bandwidth before a guaranteed peer error.
pub fn encode_frame(frame: &Frame) -> Result<Bytes, WireError> {
    let header = frame.header.to_json_string();
    let body_len = 1 + 4 + header.len() + frame.payload.len();
    if body_len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(body_len));
    }
    let body_len_u32 = u32::try_from(body_len).map_err(|_| WireError::Oversized(body_len))?;
    let header_len_u32 =
        u32::try_from(header.len()).map_err(|_| WireError::Oversized(header.len()))?;
    let mut out = BytesMut::with_capacity(4 + body_len);
    out.put_u32_le(body_len_u32);
    out.put_u8(frame.opcode as u8);
    out.put_u32_le(header_len_u32);
    out.put_slice(header.as_bytes());
    out.put_slice(&frame.payload);
    Ok(out.freeze())
}

/// Decodes one frame from a buffer, consuming exactly its bytes.
///
/// Fails with [`WireError::Truncated`] when the buffer holds less than the
/// declared length and [`WireError::Oversized`] when the declared length
/// exceeds [`MAX_FRAME_LEN`] (without consuming past the prefix).
pub fn decode_frame(buf: &mut Bytes) -> Result<Frame, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let body_len = buf.get_u32_le() as usize;
    if body_len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(body_len));
    }
    if body_len < 5 || buf.remaining() < body_len {
        return Err(WireError::Truncated);
    }
    let mut body = buf.split_to(body_len);
    let opcode = Opcode::try_from(body.get_u8())?;
    let header_len = body.get_u32_le() as usize;
    if body.remaining() < header_len {
        return Err(WireError::Truncated);
    }
    let header_bytes = body.split_to(header_len);
    let header_text = std::str::from_utf8(&header_bytes)
        .map_err(|e| WireError::BadHeader(format!("header not UTF-8: {e}")))?;
    let header =
        Value::parse(header_text).map_err(|e| WireError::BadHeader(e.to_string()))?;
    Ok(Frame { opcode, header, payload: body })
}

/// Writes one frame to a stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&encode_frame(frame)?)?;
    Ok(())
}

/// Reads one frame from a stream. Returns [`WireError::Closed`] on a clean
/// EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(WireError::Closed)
        }
        Err(e) => return Err(WireError::Io(e)),
    }
    // A u32 that does not fit usize (16-bit targets only) is oversized by
    // definition: saturate so the MAX_FRAME_LEN check below rejects it.
    let body_len = usize::try_from(u32::from_le_bytes(len_buf)).unwrap_or(usize::MAX);
    if body_len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(body_len));
    }
    if body_len < 5 {
        return Err(WireError::Truncated);
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    // Re-assemble a length-prefixed buffer for the shared decoder.
    let mut framed = BytesMut::with_capacity(4 + body_len);
    framed.put_u32_le(u32::try_from(body_len).map_err(|_| WireError::Oversized(body_len))?);
    framed.put_slice(&body);
    decode_frame(&mut framed.freeze())
}

/// Reads the string field `key` from a frame header.
pub fn header_str<'a>(header: &'a Value, key: &str) -> Result<&'a str, WireError> {
    header
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::BadHeader(format!("missing string field `{key}`")))
}

/// Reads the u64 field `key` from a frame header.
pub fn header_u64(header: &Value, key: &str) -> Result<u64, WireError> {
    header
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| WireError::BadHeader(format!("missing integer field `{key}`")))
}

/// Streams `blob` to `w` as `Chunk` frames of at most [`CHUNK_SIZE`] bytes.
/// Empty blobs send no chunks (the announcement frame's `len: 0` says it all).
pub fn write_chunks(w: &mut impl Write, blob: &[u8]) -> Result<(), WireError> {
    for chunk in blob.chunks(CHUNK_SIZE) {
        let frame = Frame::with_payload(
            Opcode::Chunk,
            serde_json::json!({}),
            Bytes::copy_from_slice(chunk),
        );
        write_frame(w, &frame)?;
    }
    Ok(())
}

/// Reads an announced `len`-byte blob as `Chunk` frames into one allocation.
pub fn read_chunks(r: &mut impl Read, len: u64) -> Result<Vec<u8>, WireError> {
    if len > MAX_BLOB_LEN {
        return Err(WireError::Protocol(format!(
            "announced blob of {len} bytes exceeds maximum {MAX_BLOB_LEN}"
        )));
    }
    let cap = usize::try_from(len).map_err(|_| {
        WireError::Protocol(format!("blob of {len} bytes exceeds addressable memory"))
    })?;
    let mut blob = Vec::with_capacity(cap);
    while (blob.len() as u64) < len {
        let frame = read_frame(r)?;
        if frame.opcode != Opcode::Chunk {
            return Err(WireError::Protocol(format!(
                "expected chunk frame, got {}",
                frame.opcode.name()
            )));
        }
        if frame.payload.is_empty() {
            return Err(WireError::Protocol("empty chunk frame".to_string()));
        }
        if blob.len() as u64 + frame.payload.len() as u64 > len {
            return Err(WireError::Protocol("chunk overruns announced length".to_string()));
        }
        blob.extend_from_slice(&frame.payload);
    }
    Ok(blob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn frame_round_trips() {
        let frame = Frame::with_payload(
            Opcode::FilePut,
            json!({"len": 3, "meta": {"k": [1, 2]}}),
            Bytes::copy_from_slice(b"abc"),
        );
        let mut encoded = encode_frame(&frame).unwrap();
        let decoded = decode_frame(&mut encoded).unwrap();
        assert_eq!(decoded, frame);
        assert!(!encoded.has_remaining());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let frame = Frame::new(Opcode::Ping, json!({"version": 1}));
        let encoded = encode_frame(&frame).unwrap();
        for cut in 0..encoded.len() {
            let mut partial = encoded.slice(0..cut);
            assert!(
                decode_frame(&mut partial).is_err(),
                "cut at {cut} of {} decoded anyway",
                encoded.len()
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_slice(&[0u8; 16]);
        match decode_frame(&mut buf.freeze()) {
            Err(WireError::Oversized(n)) => assert_eq!(n, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let frame = Frame::new(Opcode::Ping, json!({}));
        let encoded = encode_frame(&frame).unwrap();
        let mut bytes = encoded.to_vec();
        bytes[4] = 0xEE; // the opcode byte, after the u32 length prefix
        match decode_frame(&mut Bytes::from(bytes)) {
            Err(WireError::BadOpcode(0xEE)) => {}
            other => panic!("expected BadOpcode, got {other:?}"),
        }
    }

    #[test]
    fn index_matches_all_order() {
        for (i, op) in Opcode::ALL.into_iter().enumerate() {
            assert_eq!(op.index(), i, "index() drifted from ALL order for {}", op.name());
        }
    }

    #[test]
    fn oversized_frame_is_rejected_at_encode_time() {
        let frame = Frame::with_payload(
            Opcode::FilePut,
            json!({}),
            Bytes::from(vec![0u8; MAX_FRAME_LEN + 1]),
        );
        match encode_frame(&frame) {
            Err(WireError::Oversized(_)) => {}
            other => panic!("expected Oversized, got {:?}", other.map(|b| b.len())),
        }
    }

    #[test]
    fn chunked_blob_round_trips_over_a_stream() {
        let blob: Vec<u8> = (0..200_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut wire = Vec::new();
        write_chunks(&mut wire, &blob).unwrap();
        // 200_000 bytes = 3 chunks of ≤ 64 KiB.
        let mut reader = wire.as_slice();
        let back = read_chunks(&mut reader, blob.len() as u64).unwrap();
        assert_eq!(back, blob);
        assert!(reader.is_empty());
    }

    #[test]
    fn chunk_overrun_is_rejected() {
        let mut wire = Vec::new();
        write_chunks(&mut wire, &[7u8; 100]).unwrap();
        let mut reader = wire.as_slice();
        assert!(matches!(read_chunks(&mut reader, 50), Err(WireError::Protocol(_))));
    }
}
