//! The mmlib wire protocol: length-prefixed binary frames, in two
//! negotiated framings.
//!
//! **v1** (legacy, still spoken for old clients) is one message per frame:
//!
//! ```text
//! ┌─────────────┬─────────┬───────────────┬──────────────┬─────────────┐
//! │ u32 LE len  │ u8 op   │ u32 LE hlen   │ hlen bytes   │ rest        │
//! │ (of body)   │ opcode  │ header length │ JSON header  │ raw payload │
//! └─────────────┴─────────┴───────────────┴──────────────┴─────────────┘
//! ```
//!
//! **v2** (current) adds a `u64` request id right after the opcode, so one
//! connection can carry many in-flight requests and every response frame
//! names the request it answers:
//!
//! ```text
//! ┌─────────────┬─────────┬────────────────┬───────────────┬────────┬─────────┐
//! │ u32 LE len  │ u8 op   │ u64 LE req id  │ u32 LE hlen   │ header │ payload │
//! └─────────────┴─────────┴────────────────┴───────────────┴────────┴─────────┘
//! ```
//!
//! `len` counts everything after the length field itself. The JSON header
//! carries the structured part of a message (ids, document bodies, sizes);
//! the payload carries raw blob bytes. Large blobs never travel in one
//! frame: a transfer is announced by its request/response frame (header
//! `{"len": n}`) and the bytes follow in [`CHUNK_SIZE`]-bounded
//! [`Opcode::Chunk`] frames. Under v2 each chunk carries the request id of
//! its transfer, so chunks of different transfers may interleave freely on
//! one multiplexed connection.
//!
//! # Version negotiation
//!
//! The first frame on a connection is always **v1-framed**, so both sides
//! can parse it before any version is agreed:
//!
//! * a v1 client opens with [`Opcode::Ping`] `{"version": 1}` and the
//!   whole connection stays v1 — exactly the historical protocol;
//! * a v2 client opens with [`Opcode::Hello`] `{"version": 2}`; the server
//!   answers with a v1-framed `Ok {"version": 2, "max_inflight": n}` and
//!   *every frame after that handshake pair*, in both directions, is
//!   v2-framed;
//! * any other requested version is rejected cleanly with a v1-framed
//!   `Err {"code": "version_mismatch"}` — the unknown-version handshake
//!   never desynchronizes the stream.
//!
//! # Load shedding
//!
//! A v2 server enforcing its admission budget answers an over-budget
//! request with [`Opcode::Busy`] (`{"code": "busy", "retry_after_ms": n}`)
//! instead of queueing it. `Busy` is a per-request response: the
//! connection stays healthy and other in-flight requests are unaffected.

use std::fmt;
use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde_json::Value;

/// The legacy framing version (no request ids, one request in flight).
pub const PROTOCOL_V1: u32 = 1;

/// The multiplexed framing version (request ids, pipelining, `Busy`).
pub const PROTOCOL_V2: u32 = 2;

/// Highest protocol version this build speaks; servers negotiate down to a
/// client's version when they can.
pub const PROTOCOL_VERSION: u32 = PROTOCOL_V2;

/// Hard upper bound on one frame's body; oversized length prefixes are
/// rejected before any allocation happens.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Payload bytes per continuation chunk frame.
pub const CHUNK_SIZE: usize = 64 * 1024;

/// Hard upper bound on one streamed blob (sum of its chunks).
pub const MAX_BLOB_LEN: u64 = 8 * 1024 * 1024 * 1024;

/// Negotiated framing for one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireVersion {
    /// Legacy framing: no request id on the wire (decoded as id 0).
    V1,
    /// Multiplexed framing: a u64 request id after the opcode byte.
    V2,
}

impl WireVersion {
    /// The version number exchanged in handshakes.
    pub fn number(self) -> u32 {
        match self {
            WireVersion::V1 => PROTOCOL_V1,
            WireVersion::V2 => PROTOCOL_V2,
        }
    }

    /// Maps a handshake version number to a framing, if supported.
    pub fn from_number(n: u64) -> Option<WireVersion> {
        match n {
            n if n == u64::from(PROTOCOL_V1) => Some(WireVersion::V1),
            n if n == u64::from(PROTOCOL_V2) => Some(WireVersion::V2),
            _ => None,
        }
    }

    /// Bytes between the opcode byte and the header-length field: the
    /// request id under v2, nothing under v1.
    fn id_bytes(self) -> usize {
        match self {
            WireVersion::V1 => 0,
            WireVersion::V2 => 8,
        }
    }

    /// Minimum legal body length (opcode + id + header length field).
    fn min_body(self) -> usize {
        1 + self.id_bytes() + 4
    }
}

/// Message opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness + legacy (v1) version handshake. Header: `{"version": n}`.
    Ping = 0x01,
    /// v2 version-negotiation handshake, sent v1-framed as a connection's
    /// first frame. Header: `{"version": n}`; the `Ok` reply carries
    /// `{"version": n, "max_inflight": n}` and flips the connection to the
    /// agreed framing.
    Hello = 0x02,
    /// Insert a document. Header: `{"kind": s, "body": v}`.
    DocInsert = 0x10,
    /// Fetch a document. Header: `{"id": s}`.
    DocGet = 0x11,
    /// Replace a document body. Header: `{"id": s, "body": v}`.
    DocUpdate = 0x12,
    /// Existence check. Header: `{"id": s}`.
    DocContains = 0x13,
    /// Delete a document. Header: `{"id": s}`.
    DocRemove = 0x14,
    /// List all document ids. Header: `{}`.
    DocIds = 0x15,
    /// Store a blob. Header: `{"len": n}`; bytes follow as chunks.
    FilePut = 0x20,
    /// Fetch a blob. Header: `{"id": s}`; response streams chunks.
    FileGet = 0x21,
    /// Blob size. Header: `{"id": s}`.
    FileSize = 0x22,
    /// Existence check. Header: `{"id": s}`.
    FileContains = 0x23,
    /// Delete a blob. Header: `{"id": s}`.
    FileRemove = 0x24,
    /// List all blob ids. Header: `{}`.
    FileIds = 0x25,
    /// Server metrics snapshot. Header: `{}`.
    Stats = 0x30,
    /// Server metrics in Prometheus text exposition format. Header: `{}`;
    /// the response carries the rendered text in its header (`{"text": s}`).
    StatsText = 0x31,
    /// Fetch one model's lineage record. Header: `{"id": s}`; the response
    /// header carries `{"id": s, "record": v}` with the stored (or
    /// synthesized) lineage record body.
    LineageGet = 0x32,
    /// Fetch a model's ancestry, tip first. Header: `{"id": s}`; the
    /// response header carries `{"id": s, "ancestry": [v, ...]}`.
    LineageAncestry = 0x33,
    /// Success response. Header: operation-specific result.
    Ok = 0x40,
    /// Failure response. Header: `{"code": s, "message": s}`.
    Err = 0x41,
    /// Load-shed response: the server's admission budget is exhausted.
    /// Header: `{"code": "busy", "retry_after_ms": n}`. Retryable; the
    /// connection stays healthy.
    Busy = 0x42,
    /// Blob payload continuation for an announced transfer. Under v2 the
    /// frame's request id names the transfer it belongs to.
    Chunk = 0x50,
}

impl Opcode {
    /// Every opcode, for metrics tables.
    pub const ALL: [Opcode; 22] = [
        Opcode::Ping,
        Opcode::Hello,
        Opcode::DocInsert,
        Opcode::DocGet,
        Opcode::DocUpdate,
        Opcode::DocContains,
        Opcode::DocRemove,
        Opcode::DocIds,
        Opcode::FilePut,
        Opcode::FileGet,
        Opcode::FileSize,
        Opcode::FileContains,
        Opcode::FileRemove,
        Opcode::FileIds,
        Opcode::Stats,
        Opcode::StatsText,
        Opcode::LineageGet,
        Opcode::LineageAncestry,
        Opcode::Ok,
        Opcode::Err,
        Opcode::Busy,
        Opcode::Chunk,
    ];

    /// Wire name, used in metrics snapshots and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Ping => "ping",
            Opcode::Hello => "hello",
            Opcode::DocInsert => "doc_insert",
            Opcode::DocGet => "doc_get",
            Opcode::DocUpdate => "doc_update",
            Opcode::DocContains => "doc_contains",
            Opcode::DocRemove => "doc_remove",
            Opcode::DocIds => "doc_ids",
            Opcode::FilePut => "file_put",
            Opcode::FileGet => "file_get",
            Opcode::FileSize => "file_size",
            Opcode::FileContains => "file_contains",
            Opcode::FileRemove => "file_remove",
            Opcode::FileIds => "file_ids",
            Opcode::Stats => "stats",
            Opcode::StatsText => "stats_text",
            Opcode::LineageGet => "lineage_get",
            Opcode::LineageAncestry => "lineage_ancestry",
            Opcode::Ok => "ok",
            Opcode::Err => "err",
            Opcode::Busy => "busy",
            Opcode::Chunk => "chunk",
        }
    }

    /// Dense index for per-opcode counter arrays, in [`Opcode::ALL`]
    /// order. The exhaustive match is compiler-checked: adding a variant
    /// without extending both this and `ALL` fails to build or fails the
    /// `index_matches_all_order` test.
    pub(crate) fn index(self) -> usize {
        match self {
            Opcode::Ping => 0,
            Opcode::Hello => 1,
            Opcode::DocInsert => 2,
            Opcode::DocGet => 3,
            Opcode::DocUpdate => 4,
            Opcode::DocContains => 5,
            Opcode::DocRemove => 6,
            Opcode::DocIds => 7,
            Opcode::FilePut => 8,
            Opcode::FileGet => 9,
            Opcode::FileSize => 10,
            Opcode::FileContains => 11,
            Opcode::FileRemove => 12,
            Opcode::FileIds => 13,
            Opcode::Stats => 14,
            Opcode::StatsText => 15,
            Opcode::LineageGet => 16,
            Opcode::LineageAncestry => 17,
            Opcode::Ok => 18,
            Opcode::Err => 19,
            Opcode::Busy => 20,
            Opcode::Chunk => 21,
        }
    }
}

impl TryFrom<u8> for Opcode {
    type Error = WireError;

    fn try_from(byte: u8) -> Result<Opcode, WireError> {
        Opcode::ALL
            .into_iter()
            .find(|&op| op as u8 == byte)
            .ok_or(WireError::BadOpcode(byte))
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub opcode: Opcode,
    /// Correlates a response (or chunk) with its request on a multiplexed
    /// connection. Not on the wire under v1 framing (always decodes as 0).
    pub request_id: u64,
    pub header: Value,
    pub payload: Bytes,
}

impl Frame {
    pub fn new(opcode: Opcode, header: Value) -> Frame {
        Frame { opcode, request_id: 0, header, payload: Bytes::new() }
    }

    pub fn with_payload(opcode: Opcode, header: Value, payload: Bytes) -> Frame {
        Frame { opcode, request_id: 0, header, payload }
    }

    /// Tags the frame with a request id (v2 correlation).
    pub fn with_request_id(mut self, id: u64) -> Frame {
        self.request_id = id;
        self
    }
}

/// Frame-level protocol errors.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/stream failure.
    Io(std::io::Error),
    /// Peer closed the connection cleanly between frames.
    Closed,
    /// Declared frame length exceeds [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// Frame body shorter than its declared lengths.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Header is not valid JSON or has the wrong shape.
    BadHeader(String),
    /// The peer violated the message exchange (wrong opcode, bad chunk
    /// accounting, version mismatch, ...).
    Protocol(String),
    /// The server shed this request under load ([`Opcode::Busy`]); retry
    /// after a backoff. Carries the advised delay in milliseconds.
    Busy(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire io error: {e}"),
            WireError::Closed => f.write_str("connection closed"),
            WireError::Oversized(n) => {
                write!(f, "frame length {n} exceeds maximum {MAX_FRAME_LEN}")
            }
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::BadOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            WireError::BadHeader(m) => write!(f, "bad frame header: {m}"),
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
            WireError::Busy(ms) => write!(f, "server busy (retry after {ms} ms)"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Encodes a frame's length prefix, opcode, request id (v2), and header —
/// everything *except* the payload — so callers can write the payload from
/// its own shared buffer without copying it through the encoder. Returns
/// the prefix; the full frame on the wire is `prefix ++ frame.payload`.
///
/// Fails with [`WireError::Oversized`] when the body would exceed
/// [`MAX_FRAME_LEN`] — the decoder rejects such frames, so emitting one
/// would only waste bandwidth before a guaranteed peer error.
pub fn encode_frame_prefix(frame: &Frame, version: WireVersion) -> Result<Bytes, WireError> {
    let header = frame.header.to_json_string();
    let body_len = version.min_body() + header.len() + frame.payload.len();
    if body_len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(body_len));
    }
    let body_len_u32 = u32::try_from(body_len).map_err(|_| WireError::Oversized(body_len))?;
    let header_len_u32 =
        u32::try_from(header.len()).map_err(|_| WireError::Oversized(header.len()))?;
    let mut out = BytesMut::with_capacity(4 + version.min_body() + header.len());
    out.put_u32_le(body_len_u32);
    out.put_u8(frame.opcode as u8);
    if version == WireVersion::V2 {
        out.put_u64_le(frame.request_id);
    }
    out.put_u32_le(header_len_u32);
    out.put_slice(header.as_bytes());
    Ok(out.freeze())
}

/// Encodes a frame into one contiguous buffer (length prefix included)
/// under the given framing version.
pub fn encode_frame_v(frame: &Frame, version: WireVersion) -> Result<Bytes, WireError> {
    let prefix = encode_frame_prefix(frame, version)?;
    if frame.payload.is_empty() {
        return Ok(prefix);
    }
    let mut out = BytesMut::with_capacity(prefix.len() + frame.payload.len());
    out.put_slice(&prefix);
    out.put_slice(&frame.payload);
    Ok(out.freeze())
}

/// Encodes a frame under the legacy v1 framing (the request id is not
/// written). Kept as the stable name the original protocol exposed.
pub fn encode_frame(frame: &Frame) -> Result<Bytes, WireError> {
    encode_frame_v(frame, WireVersion::V1)
}

/// Decodes one frame's *body* (everything after the u32 length prefix).
/// `body` must hold exactly the declared body bytes.
fn decode_body(mut body: Bytes, version: WireVersion) -> Result<Frame, WireError> {
    if body.remaining() < version.min_body() {
        return Err(WireError::Truncated);
    }
    let opcode = Opcode::try_from(body.get_u8())?;
    let request_id = match version {
        WireVersion::V1 => 0,
        WireVersion::V2 => body.get_u64_le(),
    };
    let header_len = usize::try_from(body.get_u32_le()).unwrap_or(usize::MAX);
    if body.remaining() < header_len {
        return Err(WireError::Truncated);
    }
    let header_bytes = body.split_to(header_len);
    let header_text = std::str::from_utf8(&header_bytes)
        .map_err(|e| WireError::BadHeader(format!("header not UTF-8: {e}")))?;
    let header =
        Value::parse(header_text).map_err(|e| WireError::BadHeader(e.to_string()))?;
    Ok(Frame { opcode, request_id, header, payload: body })
}

/// Decodes one frame from a buffer under the given framing, consuming
/// exactly its bytes. The payload is a zero-copy slice of the input.
///
/// Fails with [`WireError::Truncated`] when the buffer holds less than the
/// declared length and [`WireError::Oversized`] when the declared length
/// exceeds [`MAX_FRAME_LEN`] (without consuming past the prefix).
pub fn decode_frame_v(buf: &mut Bytes, version: WireVersion) -> Result<Frame, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let body_len = usize::try_from(buf.get_u32_le()).unwrap_or(usize::MAX);
    if body_len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(body_len));
    }
    if body_len < version.min_body() || buf.remaining() < body_len {
        return Err(WireError::Truncated);
    }
    let body = buf.split_to(body_len);
    decode_body(body, version)
}

/// Decodes one v1 frame (the stable legacy entry point).
pub fn decode_frame(buf: &mut Bytes) -> Result<Frame, WireError> {
    decode_frame_v(buf, WireVersion::V1)
}

/// Incremental decode for event-loop readers: examines `buf` (the start of
/// a frame stream) and returns the first complete frame plus the number of
/// bytes it occupied, or `Ok(None)` when more bytes are needed. Errors are
/// unrecoverable for the stream (framing is lost).
pub fn try_decode_frame(
    buf: &[u8],
    version: WireVersion,
) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let declared = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let body_len = usize::try_from(declared).unwrap_or(usize::MAX);
    if body_len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(body_len));
    }
    if body_len < version.min_body() {
        return Err(WireError::Truncated);
    }
    let total = 4 + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    let body = Bytes::copy_from_slice(&buf[4..total]);
    Ok(Some((decode_body(body, version)?, total)))
}

/// Writes one frame to a stream under the given framing. The payload is
/// written straight from the frame's shared buffer — no copy.
pub fn write_frame_v(
    w: &mut impl Write,
    frame: &Frame,
    version: WireVersion,
) -> Result<(), WireError> {
    let prefix = encode_frame_prefix(frame, version)?;
    w.write_all(&prefix)?;
    if !frame.payload.is_empty() {
        w.write_all(&frame.payload)?;
    }
    Ok(())
}

/// Writes one v1 frame (the stable legacy entry point).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    write_frame_v(w, frame, WireVersion::V1)
}

/// Reads one frame from a stream under the given framing, also returning
/// the exact number of wire bytes consumed (length prefix included).
/// Returns [`WireError::Closed`] on a clean EOF at a frame boundary.
pub fn read_frame_counted(
    r: &mut impl Read,
    version: WireVersion,
) -> Result<(Frame, u64), WireError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(WireError::Closed)
        }
        Err(e) => return Err(WireError::Io(e)),
    }
    // A u32 that does not fit usize (16-bit targets only) is oversized by
    // definition: saturate so the MAX_FRAME_LEN check below rejects it.
    let body_len = usize::try_from(u32::from_le_bytes(len_buf)).unwrap_or(usize::MAX);
    if body_len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(body_len));
    }
    if body_len < version.min_body() {
        return Err(WireError::Truncated);
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    let wire_len = 4 + body_len as u64;
    Ok((decode_body(Bytes::from(body), version)?, wire_len))
}

/// Reads one frame from a stream under the given framing.
pub fn read_frame_v(r: &mut impl Read, version: WireVersion) -> Result<Frame, WireError> {
    read_frame_counted(r, version).map(|(frame, _)| frame)
}

/// Reads one v1 frame (the stable legacy entry point).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    read_frame_v(r, WireVersion::V1)
}

/// Splits `blob` into the `Chunk` frames of its transfer, each at most
/// [`CHUNK_SIZE`] bytes, tagged with `request_id`. Every chunk's payload is
/// a zero-copy slice of `blob` — the bytes are shared, never duplicated.
/// Empty blobs yield no chunks (the announcement's `len: 0` says it all).
pub fn chunk_frames(request_id: u64, blob: &Bytes) -> Vec<Frame> {
    let mut out = Vec::with_capacity(blob.len().div_ceil(CHUNK_SIZE));
    let mut start = 0usize;
    while start < blob.len() {
        let end = (start + CHUNK_SIZE).min(blob.len());
        out.push(
            Frame::with_payload(Opcode::Chunk, serde_json::json!({}), blob.slice(start..end))
                .with_request_id(request_id),
        );
        start = end;
    }
    out
}

/// Streams `blob` to `w` as `Chunk` frames of at most [`CHUNK_SIZE`] bytes
/// under the given framing, tagging each with `request_id` (ignored by v1
/// framing). Payload bytes are written straight from `blob` — no copy.
pub fn write_chunks_v(
    w: &mut impl Write,
    request_id: u64,
    blob: &Bytes,
    version: WireVersion,
) -> Result<(), WireError> {
    for frame in chunk_frames(request_id, blob) {
        write_frame_v(w, &frame, version)?;
    }
    Ok(())
}

/// Streams `blob` to `w` as v1 `Chunk` frames (the stable legacy entry
/// point; copies each chunk into its frame).
pub fn write_chunks(w: &mut impl Write, blob: &[u8]) -> Result<(), WireError> {
    write_chunks_v(w, 0, &Bytes::copy_from_slice(blob), WireVersion::V1)
}

/// Reads an announced `len`-byte blob as consecutive `Chunk` frames into
/// one allocation (v1 streams only — under v2, chunks may interleave with
/// other responses and are assembled per request id by the demultiplexer).
pub fn read_chunks(r: &mut impl Read, len: u64) -> Result<Vec<u8>, WireError> {
    if len > MAX_BLOB_LEN {
        return Err(WireError::Protocol(format!(
            "announced blob of {len} bytes exceeds maximum {MAX_BLOB_LEN}"
        )));
    }
    let cap = usize::try_from(len).map_err(|_| {
        WireError::Protocol(format!("blob of {len} bytes exceeds addressable memory"))
    })?;
    let mut blob = Vec::with_capacity(cap);
    while (blob.len() as u64) < len {
        let frame = read_frame(r)?;
        if frame.opcode != Opcode::Chunk {
            return Err(WireError::Protocol(format!(
                "expected chunk frame, got {}",
                frame.opcode.name()
            )));
        }
        if frame.payload.is_empty() {
            return Err(WireError::Protocol("empty chunk frame".to_string()));
        }
        if blob.len() as u64 + frame.payload.len() as u64 > len {
            return Err(WireError::Protocol("chunk overruns announced length".to_string()));
        }
        blob.extend_from_slice(&frame.payload);
    }
    Ok(blob)
}

/// Reads the string field `key` from a frame header.
pub fn header_str<'a>(header: &'a Value, key: &str) -> Result<&'a str, WireError> {
    header
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::BadHeader(format!("missing string field `{key}`")))
}

/// Reads the u64 field `key` from a frame header.
pub fn header_u64(header: &Value, key: &str) -> Result<u64, WireError> {
    header
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| WireError::BadHeader(format!("missing integer field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn frame_round_trips() {
        let frame = Frame::with_payload(
            Opcode::FilePut,
            json!({"len": 3, "meta": {"k": [1, 2]}}),
            Bytes::copy_from_slice(b"abc"),
        );
        let mut encoded = encode_frame(&frame).unwrap();
        let decoded = decode_frame(&mut encoded).unwrap();
        assert_eq!(decoded, frame);
        assert!(!encoded.has_remaining());
    }

    #[test]
    fn v2_frame_round_trips_with_request_id() {
        let frame = Frame::with_payload(
            Opcode::FileGet,
            json!({"id": "f-1"}),
            Bytes::copy_from_slice(b"xyz"),
        )
        .with_request_id(0xDEAD_BEEF_F00D_u64);
        let mut encoded = encode_frame_v(&frame, WireVersion::V2).unwrap();
        let decoded = decode_frame_v(&mut encoded, WireVersion::V2).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(decoded.request_id, 0xDEAD_BEEF_F00D_u64);
        assert!(!encoded.has_remaining());
    }

    #[test]
    fn v1_encoding_does_not_carry_the_request_id() {
        let frame = Frame::new(Opcode::Ping, json!({"version": 1})).with_request_id(42);
        let mut encoded = encode_frame_v(&frame, WireVersion::V1).unwrap();
        let decoded = decode_frame_v(&mut encoded, WireVersion::V1).unwrap();
        assert_eq!(decoded.request_id, 0, "v1 framing has no id field");
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let frame = Frame::new(Opcode::Ping, json!({"version": 1}));
        for version in [WireVersion::V1, WireVersion::V2] {
            let encoded = encode_frame_v(&frame, version).unwrap();
            for cut in 0..encoded.len() {
                let mut partial = encoded.slice(0..cut);
                assert!(
                    decode_frame_v(&mut partial, version).is_err(),
                    "{version:?} cut at {cut} of {} decoded anyway",
                    encoded.len()
                );
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_slice(&[0u8; 16]);
        match decode_frame(&mut buf.freeze()) {
            Err(WireError::Oversized(n)) => assert_eq!(n, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let frame = Frame::new(Opcode::Ping, json!({}));
        let encoded = encode_frame(&frame).unwrap();
        let mut bytes = encoded.to_vec();
        bytes[4] = 0xEE; // the opcode byte, after the u32 length prefix
        match decode_frame(&mut Bytes::from(bytes)) {
            Err(WireError::BadOpcode(0xEE)) => {}
            other => panic!("expected BadOpcode, got {other:?}"),
        }
    }

    #[test]
    fn index_matches_all_order() {
        for (i, op) in Opcode::ALL.into_iter().enumerate() {
            assert_eq!(op.index(), i, "index() drifted from ALL order for {}", op.name());
        }
    }

    #[test]
    fn opcode_bytes_are_unique() {
        for (i, a) in Opcode::ALL.into_iter().enumerate() {
            for b in Opcode::ALL.into_iter().skip(i + 1) {
                assert_ne!(a as u8, b as u8, "{} and {} share a byte", a.name(), b.name());
            }
        }
    }

    #[test]
    fn oversized_frame_is_rejected_at_encode_time() {
        let frame = Frame::with_payload(
            Opcode::FilePut,
            json!({}),
            Bytes::from(vec![0u8; MAX_FRAME_LEN + 1]),
        );
        match encode_frame(&frame) {
            Err(WireError::Oversized(_)) => {}
            other => panic!("expected Oversized, got {:?}", other.map(|b| b.len())),
        }
    }

    #[test]
    fn chunked_blob_round_trips_over_a_stream() {
        let blob: Vec<u8> = (0..200_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut wire = Vec::new();
        write_chunks(&mut wire, &blob).unwrap();
        // 200_000 bytes = 3 chunks of ≤ 64 KiB.
        let mut reader = wire.as_slice();
        let back = read_chunks(&mut reader, blob.len() as u64).unwrap();
        assert_eq!(back, blob);
        assert!(reader.is_empty());
    }

    #[test]
    fn chunk_overrun_is_rejected() {
        let mut wire = Vec::new();
        write_chunks(&mut wire, &[7u8; 100]).unwrap();
        let mut reader = wire.as_slice();
        assert!(matches!(read_chunks(&mut reader, 50), Err(WireError::Protocol(_))));
    }

    #[test]
    fn chunk_frames_share_the_blob_allocation() {
        let blob = Bytes::from((0..150_000u32).map(|i| (i % 255) as u8).collect::<Vec<u8>>());
        let frames = chunk_frames(9, &blob);
        assert_eq!(frames.len(), 3);
        assert!(frames.iter().all(|f| f.request_id == 9));
        let total: usize = frames.iter().map(|f| f.payload.len()).sum();
        assert_eq!(total, blob.len());
        // Zero-copy: the reassembled bytes are identical without any copy
        // having happened at split time.
        let mut back = Vec::new();
        for f in &frames {
            back.extend_from_slice(&f.payload);
        }
        assert_eq!(back, blob.to_vec());
    }

    #[test]
    fn try_decode_frame_is_incremental() {
        let a = Frame::new(Opcode::DocIds, json!({})).with_request_id(1);
        let b = Frame::with_payload(Opcode::Chunk, json!({}), Bytes::copy_from_slice(b"pp"))
            .with_request_id(2);
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_frame_v(&a, WireVersion::V2).unwrap());
        wire.extend_from_slice(&encode_frame_v(&b, WireVersion::V2).unwrap());

        // Nothing decodes until the first frame is complete.
        let first_len = encode_frame_v(&a, WireVersion::V2).unwrap().len();
        for cut in 0..first_len {
            assert!(matches!(
                try_decode_frame(&wire[..cut], WireVersion::V2),
                Ok(None)
            ));
        }
        let (frame, used) = try_decode_frame(&wire, WireVersion::V2).unwrap().unwrap();
        assert_eq!(frame, a);
        assert_eq!(used, first_len);
        let (frame2, used2) = try_decode_frame(&wire[used..], WireVersion::V2).unwrap().unwrap();
        assert_eq!(frame2, b);
        assert_eq!(used + used2, wire.len());
    }

    #[test]
    fn wire_version_maps_handshake_numbers() {
        assert_eq!(WireVersion::from_number(1), Some(WireVersion::V1));
        assert_eq!(WireVersion::from_number(2), Some(WireVersion::V2));
        assert_eq!(WireVersion::from_number(3), None);
        assert_eq!(WireVersion::V2.number(), PROTOCOL_V2);
    }
}
