//! mmlib-net: the wire protocol between nodes and the model registry.
//!
//! The paper's system runs as a central server holding all model data
//! (metadata in MongoDB, files on a shared FS) with cluster nodes saving
//! and recovering models over the network (§4.1). This crate provides that
//! split for the reproduction with real bytes on real sockets:
//!
//! * [`protocol`] — length-prefixed binary frames (u32 length + opcode +
//!   frame id + JSON header + raw payload) with 64 KiB chunked blob
//!   streaming, so a 242 MB ResNet-152 snapshot never sits in one
//!   allocation twice. Protocol **v2** multiplexes many in-flight requests
//!   per connection, correlated by a `u64` frame id; the `Hello` handshake
//!   negotiates the version, so v1 peers keep working.
//! * [`RegistryServer`] — a TCP server over a [`mmlib_store::ModelStorage`]
//!   with nonblocking I/O threads, sharded worker pools keyed by model id
//!   (per-model request ordering), admission control with `Busy` load
//!   shedding, and per-opcode request/byte metrics.
//! * [`RemoteStore`] — a pooled, pipelined client implementing
//!   [`mmlib_store::StorageBackend`], so the entire save/recover stack runs
//!   unmodified against a remote registry; retries with exponential backoff
//!   plus jitter, configurable through [`RemoteStore::builder`].
//!
//! [`SimNetwork`](mmlib_store::SimNetwork) models transfer time without
//! moving bytes (reproducible evaluation numbers); this crate moves the
//! bytes (real loopback/LAN behaviour). `mmlib-dist` exposes the choice as
//! its `Transport` setting.

#![forbid(unsafe_code)]

pub mod client;
pub mod fault;
pub mod protocol;
pub mod server;

pub use client::{
    ClientConfig, LineageNode, RemoteStore, RemoteStoreBuilder, ServerStats,
};
pub use fault::NetFaults;
pub use protocol::{
    Frame, Opcode, WireError, WireVersion, CHUNK_SIZE, MAX_FRAME_LEN, PROTOCOL_V1, PROTOCOL_V2,
    PROTOCOL_VERSION,
};
pub use server::{
    AdmissionConfig, ConfigError, RegistryServer, ServerConfig, ServerMetrics, ShardConfig,
    WireConfig,
};
