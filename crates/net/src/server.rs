//! The model-registry server: a multiplexed TCP front-end over a
//! [`ModelStorage`].
//!
//! The paper's deployment keeps all model data on a central server (a
//! MongoDB plus a shared FS) that every node reads and writes over the
//! cluster network (§4.1). [`RegistryServer`] is that component, built for
//! the ROADMAP's "thousands of concurrent clients" north star:
//!
//! * a small set of **I/O threads** ([`WireConfig::io_threads`]) own every
//!   socket, running a nonblocking read/decode/write loop — a connection
//!   costs a buffer, not a thread;
//! * decoded requests are dispatched to **sharded worker pools**
//!   ([`ShardConfig::workers`]) keyed by the model/document/file id in the
//!   request header, so requests naming the same model execute in arrival
//!   order on one shard while different models proceed in parallel;
//! * **admission control** ([`AdmissionConfig`]) bounds in-flight requests
//!   per connection and globally; an over-budget request is answered with
//!   an [`Opcode::Busy`] frame instead of queueing without bound, and the
//!   connection stays healthy. The in-flight budget also bounds each
//!   connection's outbound queue, which is why no write timeout is needed.
//!
//! Version negotiation (see [`crate::protocol`]) keeps v1 clients working:
//! a connection that opens with `Ping` stays on the serial v1 framing and
//! is exempt from load shedding (it can only have one request in flight).
//!
//! Per-opcode request counts and byte counters are recorded so distributed
//! experiments can report *measured* transfer volume instead of modeled
//! volume; `bytes_in`/`bytes_out` count raw socket bytes, exactly.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use mmlib_obs::{Counter, Gauge, Recorder};
use mmlib_store::fault::Fault;
use mmlib_store::{DocId, FileId, ModelStorage, StoreError};
use parking_lot::Mutex;
use serde_json::{json, Value};

use crate::fault::NetFaults;
use crate::protocol::{
    chunk_frames, encode_frame_v, header_str, header_u64, try_decode_frame, Frame, Opcode,
    WireError, WireVersion, MAX_BLOB_LEN, PROTOCOL_V1,
};

/// An invalid server configuration value.
#[derive(Debug)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid server config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Wire-level settings: socket ownership and connection lifecycle.
///
/// I/O threads multiplex *all* connections — neither they nor the shard
/// workers cap how many connections the server accepts.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Event-loop threads owning the sockets. Each connection is pinned to
    /// one I/O thread; two or three keep a loopback registry saturated.
    pub io_threads: usize,
    /// Close a connection silently after this long with no traffic and no
    /// request in flight (`None` = never).
    pub idle_timeout: Option<Duration>,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig { io_threads: 2, idle_timeout: Some(Duration::from_secs(30)) }
    }
}

impl WireConfig {
    /// Validated constructor: `io_threads` must be nonzero.
    pub fn new(io_threads: usize) -> Result<WireConfig, ConfigError> {
        let config = WireConfig { io_threads, ..WireConfig::default() };
        config.validate()?;
        Ok(config)
    }

    /// Replaces the idle timeout.
    pub fn with_idle_timeout(mut self, timeout: Option<Duration>) -> WireConfig {
        self.idle_timeout = timeout;
        self
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.io_threads == 0 {
            return Err(ConfigError("io_threads must be at least 1".to_string()));
        }
        Ok(())
    }
}

/// Worker-shard settings: request execution parallelism.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker threads, one queue each. Requests are routed by hashing the
    /// id in the request header, so all requests naming one model land on
    /// one worker in arrival order (the per-model ordering guarantee).
    pub workers: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { workers: 8 }
    }
}

impl ShardConfig {
    /// Validated constructor: `workers` must be nonzero.
    pub fn new(workers: usize) -> Result<ShardConfig, ConfigError> {
        let config = ShardConfig { workers };
        config.validate()?;
        Ok(config)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError("shard workers must be at least 1".to_string()));
        }
        Ok(())
    }
}

/// Admission-control settings: the in-flight request budget.
///
/// Only v2 (multiplexed) connections are shed — a v1 connection is serial
/// by construction and predates the `Busy` opcode.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// In-flight requests one connection may hold before being shed.
    pub per_conn_inflight: usize,
    /// In-flight requests the whole server may hold before shedding.
    pub global_inflight: usize,
    /// Backoff hint carried in `Busy` responses, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { per_conn_inflight: 64, global_inflight: 1024, retry_after_ms: 25 }
    }
}

impl AdmissionConfig {
    /// Validated constructor: both budgets must be nonzero and the global
    /// budget must admit at least one connection's worth.
    pub fn new(
        per_conn_inflight: usize,
        global_inflight: usize,
    ) -> Result<AdmissionConfig, ConfigError> {
        let config = AdmissionConfig {
            per_conn_inflight,
            global_inflight,
            ..AdmissionConfig::default()
        };
        config.validate()?;
        Ok(config)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.per_conn_inflight == 0 {
            return Err(ConfigError("per_conn_inflight must be at least 1".to_string()));
        }
        if self.global_inflight < self.per_conn_inflight {
            return Err(ConfigError(format!(
                "global_inflight ({}) must be >= per_conn_inflight ({})",
                self.global_inflight, self.per_conn_inflight
            )));
        }
        Ok(())
    }
}

/// Server tuning knobs, grouped by layer.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Socket ownership and connection lifecycle.
    pub wire: WireConfig,
    /// Request execution parallelism.
    pub shards: ShardConfig,
    /// In-flight request budget.
    pub admission: AdmissionConfig,
    /// Deterministic fault schedules for the accept loop and response
    /// frames (tests only; `None` serves faithfully).
    pub faults: Option<Arc<NetFaults>>,
    /// The metrics registry this server records into. `None` gives the
    /// server its own fresh [`Recorder`] (isolated counts — what the fault
    /// tests assert against); `mmlib serve` passes the process-wide
    /// recorder so the `stats` opcodes expose save/recover phase metrics
    /// alongside the server's own.
    pub recorder: Option<Arc<Recorder>>,
}

impl ServerConfig {
    /// Validates every layer's settings.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.wire.validate()?;
        self.shards.validate()?;
        self.admission.validate()
    }
}

/// Per-opcode request counts, latency histograms, and byte totals —
/// recorded through an [`mmlib_obs::Recorder`] registry.
///
/// The hot-path counters (raw socket byte counts) go through cached
/// [`Counter`] handles, so counting stays a single `fetch_add` and totals
/// stay EXACT even under fault-injected truncation; the registry is what
/// makes the same numbers visible in the Prometheus exposition.
#[derive(Debug)]
pub struct ServerMetrics {
    recorder: Arc<Recorder>,
    requests: [Arc<Counter>; Opcode::ALL.len()],
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    connections: Arc<Counter>,
    load_shed: Arc<Counter>,
    inflight: Arc<Gauge>,
}

/// Counter of requests served, labeled `opcode="..."`.
pub const NET_REQUESTS_TOTAL: &str = "mmlib_net_requests_total";
/// Histogram of request service time, labeled `opcode="..."`.
pub const NET_REQUEST_SECONDS: &str = "mmlib_net_request_seconds";
/// Counter of wire bytes received.
pub const NET_BYTES_IN_TOTAL: &str = "mmlib_net_bytes_in_total";
/// Counter of wire bytes sent.
pub const NET_BYTES_OUT_TOTAL: &str = "mmlib_net_bytes_out_total";
/// Counter of connections accepted.
pub const NET_CONNECTIONS_TOTAL: &str = "mmlib_net_connections_total";
/// Counter of requests shed with a `Busy` response.
pub const NET_LOAD_SHED_TOTAL: &str = "mmlib_net_load_shed_total";
/// Gauge of requests currently in flight (admitted, response not yet sent).
pub const NET_INFLIGHT_REQUESTS: &str = "mmlib_net_inflight_requests";

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new(Arc::new(Recorder::new()))
    }
}

impl ServerMetrics {
    /// Creates metrics registered on `recorder`.
    pub fn new(recorder: Arc<Recorder>) -> ServerMetrics {
        let requests = std::array::from_fn(|i| {
            recorder.counter(NET_REQUESTS_TOTAL, Some(("opcode", Opcode::ALL[i].name())))
        });
        let bytes_in = recorder.counter(NET_BYTES_IN_TOTAL, None);
        let bytes_out = recorder.counter(NET_BYTES_OUT_TOTAL, None);
        let connections = recorder.counter(NET_CONNECTIONS_TOTAL, None);
        let load_shed = recorder.counter(NET_LOAD_SHED_TOTAL, None);
        let inflight = recorder.gauge(NET_INFLIGHT_REQUESTS, None);
        ServerMetrics {
            recorder,
            requests,
            bytes_in,
            bytes_out,
            connections,
            load_shed,
            inflight,
        }
    }

    /// The registry backing these metrics.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Requests served for one opcode (admitted requests; shed requests
    /// count under [`ServerMetrics::load_shed`] instead).
    pub fn requests(&self, op: Opcode) -> u64 {
        self.requests[op.index()].value()
    }

    /// Requests served across all opcodes.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().map(|c| c.value()).sum()
    }

    /// Total raw socket bytes received.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.value()
    }

    /// Total raw socket bytes sent.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.value()
    }

    /// Connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.value()
    }

    /// Requests answered with `Busy` by admission control.
    pub fn load_shed(&self) -> u64 {
        self.load_shed.value()
    }

    /// Requests currently in flight.
    pub fn inflight(&self) -> f64 {
        self.inflight.value()
    }

    /// JSON snapshot, as served by the `Stats` opcode.
    pub fn snapshot(&self) -> Value {
        let mut by_opcode = serde_json::Map::new();
        for op in Opcode::ALL {
            let n = self.requests(op);
            if n > 0 {
                by_opcode.insert(op.name().to_string(), json!(n));
            }
        }
        json!({
            "requests": Value::Object(by_opcode),
            "total_requests": self.total_requests(),
            "bytes_in": self.bytes_in(),
            "bytes_out": self.bytes_out(),
            "connections": self.connections(),
            "load_shed": self.load_shed(),
            "inflight": self.inflight() as u64,
        })
    }

    /// The full registry in Prometheus text format, as served by the
    /// `StatsText` opcode.
    pub fn render_text(&self) -> String {
        self.recorder.render_text()
    }

    fn count(&self, op: Opcode) {
        self.requests[op.index()].add(1);
    }

    fn observe_latency(&self, op: Opcode, elapsed: Duration) {
        self.recorder.observe_duration(NET_REQUEST_SECONDS, ("opcode", op.name()), elapsed);
    }
}

/// A running registry server; shuts down on [`RegistryServer::shutdown`] or
/// drop.
pub struct RegistryServer {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RegistryServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `storage` with the default config.
    pub fn bind(storage: ModelStorage, addr: impl ToSocketAddrs) -> std::io::Result<RegistryServer> {
        RegistryServer::bind_with_config(storage, addr, ServerConfig::default())
    }

    /// Binds with explicit tuning knobs.
    pub fn bind_with_config(
        storage: ModelStorage,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<RegistryServer> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        // The accept loop polls so the shutdown flag is honoured promptly.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let recorder =
            config.recorder.clone().unwrap_or_else(|| Arc::new(Recorder::new()));
        let metrics = Arc::new(ServerMetrics::new(recorder));
        let stop = Arc::new(AtomicBool::new(false));

        let thread = {
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("mmlib-registry-{addr}"))
                .spawn(move || serve(listener, storage, config, metrics, stop))?
        };

        Ok(RegistryServer { addr, metrics, stop, thread: Some(thread) })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live request/byte counters.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Stops accepting, drains in-flight requests and queued responses
    /// (bounded by a short grace period for stalled peers), joins all
    /// threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for RegistryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Shared server state every I/O thread and worker sees.
struct ServerState {
    storage: ModelStorage,
    metrics: Arc<ServerMetrics>,
    admission: AdmissionConfig,
    faults: Option<Arc<NetFaults>>,
    global_inflight: AtomicUsize,
}

/// One request handed from an I/O thread to a shard worker.
struct Job {
    conn: Arc<ConnShared>,
    frame: Frame,
    /// Assembled `FilePut` payload, when the request announced one.
    blob: Option<Vec<u8>>,
    started: Instant,
}

/// The half of a connection that shard workers touch: the outbound queue
/// plus the flags the I/O thread and workers coordinate through.
struct ConnShared {
    out: Mutex<OutQueue>,
    /// Negotiated wire version number (starts at v1; `Hello` may raise it).
    version: AtomicU32,
    /// Requests admitted on this connection and not yet answered.
    inflight: AtomicUsize,
}

/// Outbound bytes awaiting the socket, with a partial-write cursor.
struct OutQueue {
    queue: VecDeque<Bytes>,
    /// Bytes of the front buffer already written.
    front_written: usize,
    /// Stop accepting new buffers; close the socket once drained. Set by
    /// a fault (truncation), a protocol error, or peer EOF.
    close_after_flush: bool,
    /// Close immediately, discarding anything queued (injected drop).
    dead: bool,
}

impl ConnShared {
    fn new() -> ConnShared {
        ConnShared {
            out: Mutex::new(OutQueue {
                queue: VecDeque::new(),
                front_written: 0,
                close_after_flush: false,
                dead: false,
            }),
            version: AtomicU32::new(PROTOCOL_V1),
            inflight: AtomicUsize::new(0),
        }
    }

    fn wire_version(&self) -> WireVersion {
        WireVersion::from_number(u64::from(self.version.load(Ordering::Acquire)))
            .unwrap_or(WireVersion::V1)
    }

    /// Encodes and enqueues response frames, consulting the fault schedule
    /// once per frame (replies *and* blob chunks — the v1 contract):
    ///
    /// * `TruncateFrame`/`TornWrite` — only a prefix of the frame's bytes
    ///   is queued and the connection closes after flushing it;
    /// * `DropConnection`/`ConnReset` — the connection dies immediately,
    ///   discarding everything queued;
    /// * `IoError` — *this one frame* vanishes and the connection lives
    ///   on: the injected loss of a single multiplexed response, which
    ///   must not corrupt its neighbors.
    fn send_frames(
        &self,
        frames: &[Frame],
        version: WireVersion,
        faults: Option<&NetFaults>,
    ) -> Result<(), WireError> {
        for frame in frames {
            match faults.and_then(NetFaults::on_response) {
                None => {}
                Some(Fault::TruncateFrame { after_bytes })
                | Some(Fault::TornWrite { after_bytes }) => {
                    let encoded = encode_frame_v(frame, version)?;
                    // Saturate: a cut point beyond addressable memory means
                    // "the whole frame", which `min` clamps to its length.
                    let cut =
                        usize::try_from(after_bytes).unwrap_or(usize::MAX).min(encoded.len());
                    let mut out = self.out.lock();
                    if !out.dead && !out.close_after_flush {
                        out.queue.push_back(encoded.slice(0..cut));
                        out.close_after_flush = true;
                    }
                    return Ok(());
                }
                Some(Fault::DropConnection) | Some(Fault::ConnReset) => {
                    let mut out = self.out.lock();
                    out.queue.clear();
                    out.front_written = 0;
                    out.dead = true;
                    return Ok(());
                }
                Some(Fault::IoError) => continue,
                // Latency faults sleep inside the injector and are never
                // returned; any other variant belongs to the storage layer
                // — ignore it rather than kill the server.
                Some(_) => {}
            }
            let encoded = encode_frame_v(frame, version)?;
            let mut out = self.out.lock();
            if out.dead || out.close_after_flush {
                return Ok(());
            }
            out.queue.push_back(encoded);
        }
        Ok(())
    }
}

/// A connection as owned by its I/O thread.
struct IoConn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    recv: RecvBuf,
    /// Blob transfers announced but not fully received, by request id
    /// (v1 chunks decode with id 0, so one map serves both framings).
    pending_blobs: HashMap<u64, PendingBlob>,
    last_activity: Instant,
    /// Set once any frame has been processed — `Hello` is only legal
    /// before this.
    saw_frame: bool,
    /// Peer half-closed; finish writing, then close.
    eof: bool,
}

/// An announced inbound blob being assembled from chunk frames.
struct PendingBlob {
    announce: Frame,
    want: u64,
    data: Vec<u8>,
    started: Instant,
    /// The request was shed at announce time: consume its chunks (the
    /// client already sent them) but execute nothing.
    discard: bool,
}

/// Inbound byte accumulator with a consumed-prefix cursor.
struct RecvBuf {
    buf: Vec<u8>,
    start: usize,
}

impl RecvBuf {
    fn new() -> RecvBuf {
        RecvBuf { buf: Vec::new(), start: 0 }
    }

    fn readable(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        // Reclaim the consumed prefix once it dominates the buffer,
        // keeping amortized cost linear.
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Supervisor: accept loop + I/O threads + shard workers under one scope.
fn serve(
    listener: TcpListener,
    storage: ModelStorage,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
) {
    let state = Arc::new(ServerState {
        storage,
        metrics: Arc::clone(&metrics),
        admission: config.admission.clone(),
        faults: config.faults.clone(),
        global_inflight: AtomicUsize::new(0),
    });

    let result = crossbeam::scope(|s| {
        // Shard workers: one FIFO queue each. Requests are routed by id
        // hash, so a queue is a per-model serialization point.
        let mut shard_txs = Vec::with_capacity(config.shards.workers);
        for _ in 0..config.shards.workers {
            let (tx, rx) = crossbeam::channel::unbounded::<Job>();
            shard_txs.push(tx);
            let state = Arc::clone(&state);
            s.spawn(move |_| {
                while let Ok(job) = rx.recv() {
                    run_job(&state, job);
                }
            });
        }

        // I/O threads: each adopts connections from its intake and
        // multiplexes them with a nonblocking event loop.
        let mut intakes = Vec::with_capacity(config.wire.io_threads);
        for _ in 0..config.wire.io_threads {
            let intake: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
            intakes.push(Arc::clone(&intake));
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let shard_txs = shard_txs.clone();
            let idle_timeout = config.wire.idle_timeout;
            s.spawn(move |_| io_loop(&state, &intake, &shard_txs, idle_timeout, &stop));
        }
        // The supervisor's own senders must drop so workers exit when the
        // I/O threads do.
        drop(shard_txs);

        // Accept loop: pin each connection to an I/O thread round-robin.
        let mut next_io = 0usize;
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Fault hook: a scheduled accept fault closes the
                    // connection before it is served — the transient
                    // ECONNRESET of a restarting registry. Clients survive
                    // it through their retry loop.
                    if let Some(faults) = &state.faults {
                        if faults.on_accept().is_some() {
                            drop(stream);
                            continue;
                        }
                    }
                    intakes[next_io % intakes.len()].lock().push(stream);
                    next_io = next_io.wrapping_add(1);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => break,
            }
        }
    });
    // A thread panic (already reported on its own thread) surfaces here
    // after the scope joins. The server is tearing down at this point, so
    // note it instead of re-panicking into the joining thread.
    if result.is_err() {
        eprintln!("mmlib-net: a registry thread panicked; server shut down");
    }
}

/// How long an I/O thread keeps servicing its connections after the stop
/// flag is set, waiting for in-flight requests and outbound queues to
/// drain. Quiescent connections drain instantly; the grace only bounds a
/// peer that stalls mid-request or stops reading.
const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_secs(2);

/// One I/O thread: adopt, read, decode, dispatch, write — never block.
/// On stop, drains in-flight requests and queued responses (bounded by
/// [`SHUTDOWN_DRAIN_GRACE`]) before exiting.
fn io_loop(
    state: &ServerState,
    intake: &Mutex<Vec<TcpStream>>,
    shard_txs: &[crossbeam::channel::Sender<Job>],
    idle_timeout: Option<Duration>,
    stop: &AtomicBool,
) {
    let mut conns: Vec<IoConn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut drain_deadline: Option<Instant> = None;
    loop {
        let stopping = stop.load(Ordering::SeqCst);
        let mut progressed = false;
        if stopping {
            drain_deadline.get_or_insert_with(|| Instant::now() + SHUTDOWN_DRAIN_GRACE);
        } else {
            for stream in intake.lock().drain(..) {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                state.metrics.connections.add(1);
                conns.push(IoConn {
                    stream,
                    shared: Arc::new(ConnShared::new()),
                    recv: RecvBuf::new(),
                    pending_blobs: HashMap::new(),
                    last_activity: Instant::now(),
                    saw_frame: false,
                    eof: false,
                });
                progressed = true;
            }
        }

        let mut i = 0;
        while i < conns.len() {
            match service_conn(state, &mut conns[i], shard_txs, idle_timeout, &mut scratch) {
                Ok(active) => {
                    progressed |= active;
                    i += 1;
                }
                Err(()) => {
                    // Fatal for this connection only: drop the socket. Any
                    // in-flight jobs keep their Arc and finish harmlessly;
                    // announced-but-incomplete blob transfers never will,
                    // so their admission budget is released here.
                    let dead = conns.swap_remove(i);
                    release_pending(state, &dead);
                    progressed = true;
                }
            }
        }

        if stopping {
            let drained = conns.iter().all(|c| {
                c.shared.inflight.load(Ordering::Acquire) == 0
                    && c.pending_blobs.is_empty()
                    && c.shared.out.lock().queue.is_empty()
            });
            if drained || drain_deadline.is_some_and(|d| Instant::now() >= d) {
                break;
            }
        }

        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    for conn in &conns {
        release_pending(state, conn);
    }
}

/// Releases the admission budget held by blob transfers that were admitted
/// at announce time but will never complete — the connection carrying them
/// is going away. Requests already dispatched to a shard are untouched:
/// they hold their own `Arc` and release through [`run_job`].
fn release_pending(state: &ServerState, conn: &IoConn) {
    for pending in conn.pending_blobs.values() {
        if !pending.discard {
            finish_inflight(state, &conn.shared);
        }
    }
}

/// Services one connection once: flush, read, decode, dispatch, flush.
/// `Ok(true)` when any bytes moved; `Err(())` when the connection is done.
fn service_conn(
    state: &ServerState,
    conn: &mut IoConn,
    shard_txs: &[crossbeam::channel::Sender<Job>],
    idle_timeout: Option<Duration>,
    scratch: &mut [u8],
) -> Result<bool, ()> {
    let mut active = flush_out(state, conn)?;

    // Read whatever the socket has, bounded per pass so one firehose
    // connection cannot starve its neighbors.
    let mut reads = 0;
    while reads < 8 && !conn.eof {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.eof = true;
                conn.shared.out.lock().close_after_flush = true;
            }
            Ok(n) => {
                state.metrics.bytes_in.add(n as u64);
                conn.recv.buf.extend_from_slice(&scratch[..n]);
                conn.last_activity = Instant::now();
                active = true;
                reads += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }

    // Decode and handle every complete frame buffered so far.
    loop {
        let version = conn.shared.wire_version();
        match try_decode_frame(conn.recv.readable(), version) {
            Ok(None) => break,
            Ok(Some((frame, used))) => {
                conn.recv.consume(used);
                active = true;
                handle_frame(state, conn, frame, shard_txs);
            }
            Err(e) => {
                // Framing is lost: tell the peer (best effort) and close.
                let reply = err_frame("protocol", &e.to_string());
                let _ = conn.shared.send_frames(&[reply], version, None);
                conn.shared.out.lock().close_after_flush = true;
                let garbage = conn.recv.readable().len();
                conn.recv.consume(garbage);
                break;
            }
        }
    }

    active |= flush_out(state, conn)?;

    {
        let out = conn.shared.out.lock();
        if out.dead || (out.close_after_flush && out.queue.is_empty()) {
            return Err(());
        }
    }
    if let Some(idle) = idle_timeout {
        if conn.last_activity.elapsed() > idle
            && conn.shared.inflight.load(Ordering::Acquire) == 0
            && conn.pending_blobs.is_empty()
            && conn.shared.out.lock().queue.is_empty()
        {
            // Idle close is silent — writing an error frame would later
            // read back as a stale reply.
            return Err(());
        }
    }
    Ok(active)
}

/// Writes queued outbound bytes until the socket would block. Counts every
/// byte that reaches the socket — and only those — into `bytes_out`.
fn flush_out(state: &ServerState, conn: &mut IoConn) -> Result<bool, ()> {
    let mut out = conn.shared.out.lock();
    if out.dead {
        return Err(());
    }
    let mut active = false;
    while let Some(front) = out.queue.front() {
        let from = out.front_written;
        // mmlib-lint: allow(H1, nonblocking socket - write returns WouldBlock instead of stalling and the out queue must stay consistent with what reached the kernel)
        match conn.stream.write(&front[from..]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                state.metrics.bytes_out.add(n as u64);
                active = true;
                if from + n == front.len() {
                    out.queue.pop_front();
                    out.front_written = 0;
                } else {
                    out.front_written = from + n;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(active)
}

/// Routes one decoded frame: handshake and chunk assembly run on the I/O
/// thread; admitted requests dispatch to their shard.
fn handle_frame(
    state: &ServerState,
    conn: &mut IoConn,
    frame: Frame,
    shard_txs: &[crossbeam::channel::Sender<Job>],
) {
    let started = Instant::now();
    let version = conn.shared.wire_version();
    let first_frame = !conn.saw_frame;
    conn.saw_frame = true;
    match frame.opcode {
        Opcode::Hello => {
            handle_hello(state, conn, &frame, version, first_frame, started);
        }
        Opcode::Chunk => {
            handle_chunk(state, conn, frame, shard_txs);
        }
        Opcode::Ok | Opcode::Err | Opcode::Busy => {
            let reply = err_frame(
                "protocol",
                &format!("{} is not a request opcode", frame.opcode.name()),
            )
            .with_request_id(frame.request_id);
            let _ = conn.shared.send_frames(&[reply], version, None);
            conn.shared.out.lock().close_after_flush = true;
        }
        Opcode::FilePut => {
            let request_id = frame.request_id;
            let Ok(len) = header_u64(&frame.header, "len") else {
                let reply = err_frame("bad_header", "missing integer field `len`")
                    .with_request_id(request_id);
                let _ = conn.shared.send_frames(&[reply], version, None);
                return;
            };
            if len > MAX_BLOB_LEN {
                let reply = err_frame(
                    "protocol",
                    &format!("announced blob of {len} bytes exceeds maximum {MAX_BLOB_LEN}"),
                )
                .with_request_id(request_id);
                let _ = conn.shared.send_frames(&[reply], version, None);
                conn.shared.out.lock().close_after_flush = true;
                return;
            }
            if conn.pending_blobs.contains_key(&request_id) {
                let reply = err_frame(
                    "protocol",
                    "a blob transfer is already in flight for this request id",
                )
                .with_request_id(request_id);
                let _ = conn.shared.send_frames(&[reply], version, None);
                conn.shared.out.lock().close_after_flush = true;
                return;
            }
            // The admission decision happens at announce time: a shed
            // upload still has its (already sent) chunks consumed, but
            // buffers and executes nothing.
            let discard = !admit(state, conn, &frame, version);
            if len == 0 {
                if !discard {
                    dispatch(state, conn, frame, Some(Vec::new()), started, shard_txs);
                }
                return;
            }
            conn.pending_blobs.insert(
                request_id,
                PendingBlob { announce: frame, want: len, data: Vec::new(), started, discard },
            );
        }
        _ => {
            if admit(state, conn, &frame, version) {
                dispatch(state, conn, frame, None, started, shard_txs);
            }
        }
    }
}

/// The v2 version-negotiation handshake, handled inline on the I/O thread
/// because it must flip the connection's framing *between* its reply and
/// the next frame.
fn handle_hello(
    state: &ServerState,
    conn: &mut IoConn,
    frame: &Frame,
    version: WireVersion,
    first_frame: bool,
    started: Instant,
) {
    if !first_frame {
        let reply = err_frame("protocol", "hello must be the first frame on a connection")
            .with_request_id(frame.request_id);
        let _ = conn.shared.send_frames(&[reply], version, None);
        conn.shared.out.lock().close_after_flush = true;
        return;
    }
    let requested = header_u64(&frame.header, "version").ok().and_then(WireVersion::from_number);
    match requested {
        Some(agreed) => {
            let reply = ok_frame(json!({
                "version": agreed.number(),
                "max_inflight": state.admission.per_conn_inflight as u64,
            }))
            .with_request_id(frame.request_id);
            // The reply itself is always v1-framed; only frames after the
            // handshake pair use the agreed framing.
            let _ = conn.shared.send_frames(&[reply], WireVersion::V1, None);
            conn.shared.version.store(agreed.number(), Ordering::Release);
            state.metrics.count(Opcode::Hello);
            state.metrics.observe_latency(Opcode::Hello, started.elapsed());
        }
        None => {
            let reply = err_frame(
                "version_mismatch",
                &format!(
                    "server speaks versions {PROTOCOL_V1}..={}, client asked for {}",
                    crate::protocol::PROTOCOL_VERSION,
                    frame.header.get("version").and_then(Value::as_u64).unwrap_or(0)
                ),
            )
            .with_request_id(frame.request_id);
            let _ = conn.shared.send_frames(&[reply], WireVersion::V1, None);
            conn.shared.out.lock().close_after_flush = true;
        }
    }
}

/// Appends a chunk to its pending blob; a completed blob dispatches its
/// announced request (or evaporates, if the request was shed).
fn handle_chunk(
    state: &ServerState,
    conn: &mut IoConn,
    frame: Frame,
    shard_txs: &[crossbeam::channel::Sender<Job>],
) {
    let version = conn.shared.wire_version();
    let request_id = frame.request_id;
    let Some(pending) = conn.pending_blobs.get_mut(&request_id) else {
        let reply = err_frame("protocol", "chunk without an announced transfer")
            .with_request_id(request_id);
        let _ = conn.shared.send_frames(&[reply], version, None);
        conn.shared.out.lock().close_after_flush = true;
        return;
    };
    if frame.payload.is_empty()
        || pending.data.len() as u64 + frame.payload.len() as u64 > pending.want
    {
        let reply = err_frame("protocol", "chunk overruns announced length")
            .with_request_id(request_id);
        let _ = conn.shared.send_frames(&[reply], version, None);
        conn.shared.out.lock().close_after_flush = true;
        // The transfer dies without ever dispatching, so the admission
        // budget it reserved at announce time must be released here.
        if let Some(dead) = conn.pending_blobs.remove(&request_id) {
            if !dead.discard {
                finish_inflight(state, &conn.shared);
            }
        }
        return;
    }
    if pending.discard {
        // Shed transfer: track progress without buffering the bytes.
        if frame.payload.len() as u64 == pending.want {
            conn.pending_blobs.remove(&request_id);
        } else {
            pending.want -= frame.payload.len() as u64;
        }
        return;
    }
    pending.data.extend_from_slice(&frame.payload);
    if pending.data.len() as u64 == pending.want {
        let Some(done) = conn.pending_blobs.remove(&request_id) else { return };
        dispatch(state, conn, done.announce, Some(done.data), done.started, shard_txs);
    }
}

/// Admission control: admits the request (incrementing the in-flight
/// accounting) or sheds it with a `Busy` response. v1 connections are
/// serial by construction and always admitted.
fn admit(state: &ServerState, conn: &IoConn, frame: &Frame, version: WireVersion) -> bool {
    if version != WireVersion::V1 {
        // Per-connection budget: only this I/O thread increments it, so a
        // plain load cannot race another admission.
        if conn.shared.inflight.load(Ordering::Acquire) >= state.admission.per_conn_inflight {
            return shed(state, conn, frame, version);
        }
        // Global budget: I/O threads race here, so reserve first and undo
        // on overshoot — check-then-increment could exceed the cap by up
        // to one admission per concurrent thread.
        let prev = state.global_inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= state.admission.global_inflight {
            state.global_inflight.fetch_sub(1, Ordering::AcqRel);
            return shed(state, conn, frame, version);
        }
    } else {
        state.global_inflight.fetch_add(1, Ordering::AcqRel);
    }
    conn.shared.inflight.fetch_add(1, Ordering::AcqRel);
    state.metrics.inflight.add(1.0);
    state.metrics.count(frame.opcode);
    true
}

/// Sheds one request with a `Busy` reply carrying the retry hint.
fn shed(state: &ServerState, conn: &IoConn, frame: &Frame, version: WireVersion) -> bool {
    state.metrics.load_shed.add(1);
    let reply = busy_frame(state.admission.retry_after_ms).with_request_id(frame.request_id);
    let _ = conn.shared.send_frames(&[reply], version, state.faults.as_deref());
    false
}

/// Hands an admitted request to its shard. Routing hashes the id named in
/// the header, so every request about one model/document/file serializes
/// on one worker; requests without an id spread by request id.
fn dispatch(
    state: &ServerState,
    conn: &IoConn,
    frame: Frame,
    blob: Option<Vec<u8>>,
    started: Instant,
    shard_txs: &[crossbeam::channel::Sender<Job>],
) {
    let key = match header_str(&frame.header, "id") {
        Ok(id) => fnv1a(id.as_bytes()),
        Err(_) => frame.request_id,
    };
    let shard = usize::try_from(key % shard_txs.len() as u64).unwrap_or(0);
    let job = Job { conn: Arc::clone(&conn.shared), frame, blob, started };
    if shard_txs[shard].send(job).is_err() {
        // Shutdown race: workers are gone; the connection is about to be
        // torn down with them.
        finish_inflight(state, &conn.shared);
    }
}

/// Executes one admitted request on its shard worker and enqueues the
/// response frames.
fn run_job(state: &ServerState, job: Job) {
    let version = job.conn.wire_version();
    let reply = respond(&job.frame, job.blob.as_deref(), &state.storage, &state.metrics, version);
    let mut frames = vec![reply.frame.with_request_id(job.frame.request_id)];
    if let Some(blob) = reply.blob {
        frames.extend(chunk_frames(job.frame.request_id, &blob));
    }
    let _ = job.conn.send_frames(&frames, version, state.faults.as_deref());
    state.metrics.observe_latency(job.frame.opcode, job.started.elapsed());
    finish_inflight(state, &job.conn);
}

fn finish_inflight(state: &ServerState, conn: &ConnShared) {
    state.global_inflight.fetch_sub(1, Ordering::AcqRel);
    conn.inflight.fetch_sub(1, Ordering::AcqRel);
    state.metrics.inflight.add(-1.0);
}

/// A request's response: one reply frame, plus an outbound blob to stream
/// as chunks after it.
struct Reply {
    frame: Frame,
    blob: Option<Bytes>,
}

impl Reply {
    fn frame(frame: Frame) -> Reply {
        Reply { frame, blob: None }
    }
}

/// Handles one request frame against storage, building (not sending) the
/// response. Per-request errors come back as `Err` frames — under v2 they
/// poison only their own request id, never the connection.
fn respond(
    frame: &Frame,
    blob: Option<&[u8]>,
    storage: &ModelStorage,
    metrics: &ServerMetrics,
    version: WireVersion,
) -> Reply {
    match frame.opcode {
        Opcode::Ping => {
            // The v1 liveness/handshake exchange: the requested version
            // must match the connection's negotiated framing.
            let reply = match header_u64(&frame.header, "version") {
                Ok(v) if v == u64::from(version.number()) => {
                    ok_frame(json!({"version": version.number()}))
                }
                Ok(v) => err_frame(
                    "version_mismatch",
                    &format!("connection speaks version {}, ping sent {v}", version.number()),
                ),
                Err(e) => err_frame("bad_header", &e.to_string()),
            };
            Reply::frame(reply)
        }
        Opcode::DocInsert => {
            let (kind, body) = match (header_str(&frame.header, "kind"), frame.header.get("body"))
            {
                (Ok(kind), Some(body)) => (kind, body.clone()),
                (Err(e), _) => return Reply::frame(err_frame("bad_header", &e.to_string())),
                (_, None) => return Reply::frame(err_frame("bad_header", "missing `body`")),
            };
            let reply = match storage.insert_doc(kind, body) {
                Ok(id) => ok_frame(json!({"id": id.as_str()})),
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::DocGet => {
            let id = match header_str(&frame.header, "id") {
                Ok(id) => DocId::from_string(id.to_string()),
                Err(e) => return Reply::frame(err_frame("bad_header", &e.to_string())),
            };
            let reply = match storage.get_doc(&id) {
                Ok(doc) => ok_frame(json!({
                    "id": doc.id.as_str(),
                    "kind": doc.kind,
                    "body": doc.body,
                })),
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::DocUpdate => {
            let id = match header_str(&frame.header, "id") {
                Ok(id) => DocId::from_string(id.to_string()),
                Err(e) => return Reply::frame(err_frame("bad_header", &e.to_string())),
            };
            let Some(body) = frame.header.get("body").cloned() else {
                return Reply::frame(err_frame("bad_header", "missing `body`"));
            };
            // Reply with the document's kind so clients can account the new
            // stored size without an extra round trip.
            let reply = match storage
                .get_doc(&id)
                .and_then(|doc| storage.docs().update(&id, body).map(|()| doc.kind))
            {
                Ok(kind) => ok_frame(json!({"kind": kind})),
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::DocContains => {
            let id = match header_str(&frame.header, "id") {
                Ok(id) => DocId::from_string(id.to_string()),
                Err(e) => return Reply::frame(err_frame("bad_header", &e.to_string())),
            };
            Reply::frame(ok_frame(json!({"present": storage.docs().contains(&id)})))
        }
        Opcode::DocRemove => {
            let id = match header_str(&frame.header, "id") {
                Ok(id) => DocId::from_string(id.to_string()),
                Err(e) => return Reply::frame(err_frame("bad_header", &e.to_string())),
            };
            let reply = match storage.docs().remove(&id) {
                Ok(()) => ok_frame(json!({})),
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::DocIds => {
            let reply = match storage.docs().ids() {
                Ok(ids) => {
                    let ids: Vec<Value> =
                        ids.iter().map(|id| Value::String(id.as_str().to_string())).collect();
                    ok_frame(json!({"ids": Value::Array(ids)}))
                }
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::FilePut => {
            let blob = blob.unwrap_or(&[]);
            let reply = match storage.put_file(blob) {
                Ok(id) => ok_frame(json!({"id": id.as_str()})),
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::FileGet => {
            let id = match header_str(&frame.header, "id") {
                Ok(id) => FileId::from_string(id.to_string()),
                Err(e) => return Reply::frame(err_frame("bad_header", &e.to_string())),
            };
            match storage.get_file(&id) {
                Ok(blob) => {
                    let blob = Bytes::from(blob);
                    Reply { frame: ok_frame(json!({"len": blob.len() as u64})), blob: Some(blob) }
                }
                Err(e) => Reply::frame(store_err_frame(&e)),
            }
        }
        Opcode::FileSize => {
            let id = match header_str(&frame.header, "id") {
                Ok(id) => FileId::from_string(id.to_string()),
                Err(e) => return Reply::frame(err_frame("bad_header", &e.to_string())),
            };
            let reply = match storage.files().size(&id) {
                Ok(size) => ok_frame(json!({"len": size})),
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::FileContains => {
            let id = match header_str(&frame.header, "id") {
                Ok(id) => FileId::from_string(id.to_string()),
                Err(e) => return Reply::frame(err_frame("bad_header", &e.to_string())),
            };
            Reply::frame(ok_frame(json!({"present": storage.files().contains(&id)})))
        }
        Opcode::FileRemove => {
            let id = match header_str(&frame.header, "id") {
                Ok(id) => FileId::from_string(id.to_string()),
                Err(e) => return Reply::frame(err_frame("bad_header", &e.to_string())),
            };
            let reply = match storage.files().remove(&id) {
                Ok(()) => ok_frame(json!({})),
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::FileIds => {
            let reply = match storage.files().ids() {
                Ok(ids) => {
                    let ids: Vec<Value> =
                        ids.iter().map(|id| Value::String(id.as_str().to_string())).collect();
                    ok_frame(json!({"ids": Value::Array(ids)}))
                }
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::Stats => Reply::frame(ok_frame(metrics.snapshot())),
        Opcode::StatsText => Reply::frame(ok_frame(json!({"text": metrics.render_text()}))),
        Opcode::LineageGet => {
            let id = match header_str(&frame.header, "id") {
                Ok(id) => id,
                Err(e) => return Reply::frame(err_frame("bad_header", &e.to_string())),
            };
            let reply = match lineage_record(storage, id) {
                Ok(Some(record)) => ok_frame(json!({"id": id, "record": record})),
                Ok(None) => store_err_frame(&StoreError::MissingDocument(DocId::from_string(
                    id.to_string(),
                ))),
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::LineageAncestry => {
            let id = match header_str(&frame.header, "id") {
                Ok(id) => id,
                Err(e) => return Reply::frame(err_frame("bad_header", &e.to_string())),
            };
            let reply = match lineage_ancestry(storage, id) {
                Ok(Some(ancestry)) => ok_frame(json!({"id": id, "ancestry": ancestry})),
                Ok(None) => store_err_frame(&StoreError::MissingDocument(DocId::from_string(
                    id.to_string(),
                ))),
                Err(e) => store_err_frame(&e),
            };
            Reply::frame(reply)
        }
        Opcode::Hello | Opcode::Ok | Opcode::Err | Opcode::Busy | Opcode::Chunk => {
            // Handled (or rejected) on the I/O thread before dispatch;
            // reaching a worker would be a routing bug.
            Reply::frame(err_frame(
                "protocol",
                &format!("{} is not a dispatchable request", frame.opcode.name()),
            ))
        }
    }
}

/// One model's lineage record, as stored by `mmlib-core` saves (doc kind
/// `lineage`), or synthesized from its `model_info` base reference for
/// models saved before lineage records existed. `Ok(None)` when the model
/// is unknown.
///
/// The server reads the documents structurally (`mmlib-net` does not link
/// the model library), so the registry can answer lineage queries for any
/// store it fronts.
fn lineage_record(storage: &ModelStorage, model: &str) -> Result<Option<Value>, StoreError> {
    let mut info: Option<Value> = None;
    for doc_id in storage.docs().ids()? {
        let doc = storage.get_doc(&doc_id)?;
        match doc.kind.as_str() {
            "lineage" if doc.body.get("model").and_then(Value::as_str) == Some(model) => {
                return Ok(Some(doc.body));
            }
            "model_info" if doc_id.as_str() == model => info = Some(doc.body),
            _ => {}
        }
    }
    Ok(info.map(|body| {
        json!({
            "model": model,
            "parent": body.get("base_model").cloned().unwrap_or(Value::Null),
            "approach": body.get("approach").cloned().unwrap_or(Value::Null),
            "relation": body.get("relation").cloned().unwrap_or(Value::Null),
            "root_hash": body.get("root_hash").cloned().unwrap_or(Value::Null),
        })
    }))
}

/// A model's ancestry over live lineage `parent` edges, tip first. The
/// walk is cycle-guarded and stops at a missing parent (fsck territory)
/// instead of failing the whole query.
fn lineage_ancestry(storage: &ModelStorage, model: &str) -> Result<Option<Vec<Value>>, StoreError> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut cur = model.to_string();
    loop {
        if !seen.insert(cur.clone()) {
            break; // cyclic parent chain: return what we have
        }
        let record = match lineage_record(storage, &cur)? {
            Some(record) => record,
            None if out.is_empty() => return Ok(None), // unknown root query
            None => break,                             // dangling parent edge
        };
        let parent = record.get("parent").and_then(Value::as_str).map(str::to_string);
        out.push(record);
        match parent {
            Some(p) => cur = p,
            None => break,
        }
    }
    Ok(Some(out))
}

fn ok_frame(result: Value) -> Frame {
    Frame::new(Opcode::Ok, result)
}

fn err_frame(code: &str, message: &str) -> Frame {
    Frame::new(Opcode::Err, json!({"code": code, "message": message}))
}

fn busy_frame(retry_after_ms: u64) -> Frame {
    Frame::new(Opcode::Busy, json!({"code": "busy", "retry_after_ms": retry_after_ms}))
}

/// Maps a [`StoreError`] onto the wire so clients can reconstruct it.
fn store_err_frame(e: &StoreError) -> Frame {
    match e {
        StoreError::MissingDocument(id) => Frame::new(
            Opcode::Err,
            json!({"code": "missing_document", "message": e.to_string(), "id": id.as_str()}),
        ),
        StoreError::MissingFile(id) => Frame::new(
            Opcode::Err,
            json!({"code": "missing_file", "message": e.to_string(), "id": id.as_str()}),
        ),
        StoreError::Io(_) => err_frame("io", &e.to_string()),
        StoreError::Json(_) => err_frame("json", &e.to_string()),
        StoreError::Malformed(_) => err_frame("malformed", &e.to_string()),
        StoreError::Remote(_) => err_frame("remote", &e.to_string()),
    }
}

/// FNV-1a: the shard router's stable, dependency-free string hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
