//! The model-registry server: a TCP front-end over a [`ModelStorage`].
//!
//! The paper's deployment keeps all model data on a central server (a
//! MongoDB plus a shared FS) that every node reads and writes over the
//! cluster network (§4.1). [`RegistryServer`] is that component: it binds a
//! `std::net::TcpListener`, accepts node connections, and serves the wire
//! protocol of [`crate::protocol`] against a local store using a crossbeam
//! worker-thread pool. Per-opcode request counts and byte counters are
//! recorded so distributed experiments can report *measured* transfer
//! volume instead of modeled volume.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use mmlib_obs::{Counter, Recorder};
use mmlib_store::fault::Fault;
use mmlib_store::{DocId, FileId, ModelStorage, StoreError};
use serde_json::{json, Value};

use crate::fault::{injected_io_error, NetFaults};
use crate::protocol::{
    encode_frame, header_str, header_u64, read_chunks, read_frame, write_frame, Frame, Opcode,
    WireError, CHUNK_SIZE, PROTOCOL_VERSION,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads; one connection is handled per worker at a time, so
    /// this also caps concurrent connections.
    pub workers: usize,
    /// Per-connection socket read timeout (None = block forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Deterministic fault schedules for the accept loop and response
    /// frames (tests only; `None` serves faithfully).
    pub faults: Option<Arc<NetFaults>>,
    /// The metrics registry this server records into. `None` gives the
    /// server its own fresh [`Recorder`] (isolated counts — what the fault
    /// tests assert against); `mmlib serve` passes the process-wide
    /// recorder so the `stats` opcodes expose save/recover phase metrics
    /// alongside the server's own.
    pub recorder: Option<Arc<Recorder>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            faults: None,
            recorder: None,
        }
    }
}

/// Per-opcode request counts, latency histograms, and byte totals —
/// recorded through an [`mmlib_obs::Recorder`] registry.
///
/// The hot-path counters (per-frame byte counts) go through cached
/// [`Counter`] handles, so counting stays a single `fetch_add` and totals
/// stay EXACT even under fault-injected truncation; the registry is what
/// makes the same numbers visible in the Prometheus exposition.
#[derive(Debug)]
pub struct ServerMetrics {
    recorder: Arc<Recorder>,
    requests: [Arc<Counter>; Opcode::ALL.len()],
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    connections: Arc<Counter>,
}

/// Counter of requests served, labeled `opcode="..."`.
pub const NET_REQUESTS_TOTAL: &str = "mmlib_net_requests_total";
/// Histogram of request service time, labeled `opcode="..."`.
pub const NET_REQUEST_SECONDS: &str = "mmlib_net_request_seconds";
/// Counter of wire bytes received.
pub const NET_BYTES_IN_TOTAL: &str = "mmlib_net_bytes_in_total";
/// Counter of wire bytes sent.
pub const NET_BYTES_OUT_TOTAL: &str = "mmlib_net_bytes_out_total";
/// Counter of connections accepted.
pub const NET_CONNECTIONS_TOTAL: &str = "mmlib_net_connections_total";

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new(Arc::new(Recorder::new()))
    }
}

impl ServerMetrics {
    /// Creates metrics registered on `recorder`.
    pub fn new(recorder: Arc<Recorder>) -> ServerMetrics {
        let requests = std::array::from_fn(|i| {
            recorder.counter(NET_REQUESTS_TOTAL, Some(("opcode", Opcode::ALL[i].name())))
        });
        let bytes_in = recorder.counter(NET_BYTES_IN_TOTAL, None);
        let bytes_out = recorder.counter(NET_BYTES_OUT_TOTAL, None);
        let connections = recorder.counter(NET_CONNECTIONS_TOTAL, None);
        ServerMetrics { recorder, requests, bytes_in, bytes_out, connections }
    }

    /// The registry backing these metrics.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Requests served for one opcode.
    pub fn requests(&self, op: Opcode) -> u64 {
        self.requests[op.index()].value()
    }

    /// Requests served across all opcodes.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().map(|c| c.value()).sum()
    }

    /// Total wire bytes received (frames in, chunks included).
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.value()
    }

    /// Total wire bytes sent.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.value()
    }

    /// Connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.value()
    }

    /// JSON snapshot, as served by the `Stats` opcode.
    pub fn snapshot(&self) -> Value {
        let mut by_opcode = serde_json::Map::new();
        for op in Opcode::ALL {
            let n = self.requests(op);
            if n > 0 {
                by_opcode.insert(op.name().to_string(), json!(n));
            }
        }
        json!({
            "requests": Value::Object(by_opcode),
            "total_requests": self.total_requests(),
            "bytes_in": self.bytes_in(),
            "bytes_out": self.bytes_out(),
            "connections": self.connections(),
        })
    }

    /// The full registry in Prometheus text format, as served by the
    /// `StatsText` opcode.
    pub fn render_text(&self) -> String {
        self.recorder.render_text()
    }

    fn count(&self, op: Opcode) {
        self.requests[op.index()].add(1);
    }

    fn observe_latency(&self, op: Opcode, elapsed: Duration) {
        self.recorder.observe_duration(NET_REQUEST_SECONDS, ("opcode", op.name()), elapsed);
    }
}

/// A running registry server; shuts down on [`RegistryServer::shutdown`] or
/// drop.
pub struct RegistryServer {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RegistryServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `storage` with the default config.
    pub fn bind(storage: ModelStorage, addr: impl ToSocketAddrs) -> std::io::Result<RegistryServer> {
        RegistryServer::bind_with_config(storage, addr, ServerConfig::default())
    }

    /// Binds with explicit tuning knobs.
    pub fn bind_with_config(
        storage: ModelStorage,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<RegistryServer> {
        assert!(config.workers > 0, "server needs at least one worker");
        let listener = TcpListener::bind(addr)?;
        // The accept loop polls so the shutdown flag is honoured promptly.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let recorder =
            config.recorder.clone().unwrap_or_else(|| Arc::new(Recorder::new()));
        let metrics = Arc::new(ServerMetrics::new(recorder));
        let stop = Arc::new(AtomicBool::new(false));

        let thread = {
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("mmlib-registry-{addr}"))
                .spawn(move || serve(listener, storage, config, metrics, stop))?
        };

        Ok(RegistryServer { addr, metrics, stop, thread: Some(thread) })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live request/byte counters.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Stops accepting, drains in-flight connections, joins all threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for RegistryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept loop + crossbeam-scoped worker pool.
fn serve(
    listener: TcpListener,
    storage: ModelStorage,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
) {
    let result = crossbeam::scope(|s| {
        let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();
        for _ in 0..config.workers {
            let rx = rx.clone();
            let storage = storage.clone();
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            s.spawn(move |_| {
                while let Ok(stream) = rx.recv() {
                    metrics.connections.add(1);
                    // A failed connection must not take the worker down.
                    let _ = handle_connection(stream, &storage, &config, &metrics);
                }
            });
        }

        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Fault hook: a scheduled accept fault closes the
                    // connection before it is served — the transient
                    // ECONNRESET of a restarting registry. Clients survive
                    // it through their retry loop.
                    if let Some(faults) = &config.faults {
                        if faults.on_accept().is_some() {
                            drop(stream);
                            continue;
                        }
                    }
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        drop(tx); // workers drain the queue, then their recv fails and they exit
    });
    // A worker panic (already reported on its own thread) surfaces here
    // after the scope joins. The server is tearing down at this point, so
    // note it instead of re-panicking into the joining thread.
    if result.is_err() {
        eprintln!("mmlib-net: a registry worker panicked; server shut down");
    }
}

/// Serves one connection until the peer disconnects or errors.
fn handle_connection(
    stream: TcpStream,
    storage: &ModelStorage,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) -> Result<(), WireError> {
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(WireError::Closed) => return Ok(()),
            // Idle timeout between requests: close silently — writing an
            // error frame would later read back as a stale reply.
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(())
            }
            Err(e) => return Err(e),
        };
        metrics.count(frame.opcode);
        let faults = config.faults.as_deref();
        let started = Instant::now();
        let outcome = respond(&frame, &mut reader, &mut writer, storage, metrics, faults);
        metrics.observe_latency(frame.opcode, started.elapsed());
        match outcome {
            Ok(()) => writer.flush()?,
            Err(e) => {
                // Try to tell the peer before giving up on the connection —
                // unless the failure *is* an injected drop, which must look
                // like a dead socket, not a served error.
                if !is_injected(&e) {
                    let _ = send_counted(
                        &mut writer,
                        metrics,
                        None,
                        &err_frame("protocol", &e.to_string()),
                    );
                }
                let _ = writer.flush();
                return Err(e);
            }
        }
    }
}

/// Handles one request frame, writing the response (and any chunks).
fn respond(
    frame: &Frame,
    reader: &mut impl std::io::Read,
    writer: &mut (impl Write + Sized),
    storage: &ModelStorage,
    metrics: &ServerMetrics,
    faults: Option<&NetFaults>,
) -> Result<(), WireError> {
    metrics.bytes_in.add(wire_size(frame));
    match frame.opcode {
        Opcode::Ping => {
            let version = header_u64(&frame.header, "version")?;
            if version as u32 != PROTOCOL_VERSION {
                let reply = err_frame(
                    "version_mismatch",
                    &format!("server speaks version {PROTOCOL_VERSION}, client sent {version}"),
                );
                return send_counted(writer, metrics, faults, &reply);
            }
            send_counted(writer, metrics, faults, &ok_frame(json!({"version": PROTOCOL_VERSION})))
        }
        Opcode::DocInsert => {
            let kind = header_str(&frame.header, "kind")?;
            let body = frame
                .header
                .get("body")
                .cloned()
                .ok_or_else(|| WireError::BadHeader("missing `body`".to_string()))?;
            let reply = match storage.insert_doc(kind, body) {
                Ok(id) => ok_frame(json!({"id": id.as_str()})),
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::DocGet => {
            let id = DocId::from_string(header_str(&frame.header, "id")?.to_string());
            let reply = match storage.get_doc(&id) {
                Ok(doc) => ok_frame(json!({
                    "id": doc.id.as_str(),
                    "kind": doc.kind,
                    "body": doc.body,
                })),
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::DocUpdate => {
            let id = DocId::from_string(header_str(&frame.header, "id")?.to_string());
            let body = frame
                .header
                .get("body")
                .cloned()
                .ok_or_else(|| WireError::BadHeader("missing `body`".to_string()))?;
            // Reply with the document's kind so clients can account the new
            // stored size without an extra round trip.
            let reply = match storage
                .get_doc(&id)
                .and_then(|doc| storage.docs().update(&id, body).map(|()| doc.kind))
            {
                Ok(kind) => ok_frame(json!({"kind": kind})),
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::DocContains => {
            let id = DocId::from_string(header_str(&frame.header, "id")?.to_string());
            let present = storage.docs().contains(&id);
            send_counted(writer, metrics, faults, &ok_frame(json!({"present": present})))
        }
        Opcode::DocRemove => {
            let id = DocId::from_string(header_str(&frame.header, "id")?.to_string());
            let reply = match storage.docs().remove(&id) {
                Ok(()) => ok_frame(json!({})),
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::DocIds => {
            let reply = match storage.docs().ids() {
                Ok(ids) => {
                    let ids: Vec<Value> =
                        ids.iter().map(|id| Value::String(id.as_str().to_string())).collect();
                    ok_frame(json!({"ids": Value::Array(ids)}))
                }
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::FilePut => {
            let len = header_u64(&frame.header, "len")?;
            let blob = read_chunks(reader, len)?;
            metrics.bytes_in.add(blob.len() as u64);
            let reply = match storage.put_file(&blob) {
                Ok(id) => ok_frame(json!({"id": id.as_str()})),
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::FileGet => {
            let id = FileId::from_string(header_str(&frame.header, "id")?.to_string());
            match storage.get_file(&id) {
                Ok(blob) => {
                    send_counted(writer, metrics, faults, &ok_frame(json!({"len": blob.len() as u64})))?;
                    send_chunks_counted(writer, metrics, faults, &blob)
                }
                Err(e) => send_counted(writer, metrics, faults, &store_err_frame(&e)),
            }
        }
        Opcode::FileSize => {
            let id = FileId::from_string(header_str(&frame.header, "id")?.to_string());
            let reply = match storage.files().size(&id) {
                Ok(size) => ok_frame(json!({"len": size})),
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::FileContains => {
            let id = FileId::from_string(header_str(&frame.header, "id")?.to_string());
            let present = storage.files().contains(&id);
            send_counted(writer, metrics, faults, &ok_frame(json!({"present": present})))
        }
        Opcode::FileRemove => {
            let id = FileId::from_string(header_str(&frame.header, "id")?.to_string());
            let reply = match storage.files().remove(&id) {
                Ok(()) => ok_frame(json!({})),
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::FileIds => {
            let reply = match storage.files().ids() {
                Ok(ids) => {
                    let ids: Vec<Value> =
                        ids.iter().map(|id| Value::String(id.as_str().to_string())).collect();
                    ok_frame(json!({"ids": Value::Array(ids)}))
                }
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::Stats => send_counted(writer, metrics, faults, &ok_frame(metrics.snapshot())),
        Opcode::StatsText => {
            let reply = ok_frame(json!({"text": metrics.render_text()}));
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::LineageGet => {
            let id = header_str(&frame.header, "id")?;
            let reply = match lineage_record(storage, id) {
                Ok(Some(record)) => ok_frame(json!({"id": id, "record": record})),
                Ok(None) => store_err_frame(&StoreError::MissingDocument(DocId::from_string(
                    id.to_string(),
                ))),
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::LineageAncestry => {
            let id = header_str(&frame.header, "id")?;
            let reply = match lineage_ancestry(storage, id) {
                Ok(Some(ancestry)) => ok_frame(json!({"id": id, "ancestry": ancestry})),
                Ok(None) => store_err_frame(&StoreError::MissingDocument(DocId::from_string(
                    id.to_string(),
                ))),
                Err(e) => store_err_frame(&e),
            };
            send_counted(writer, metrics, faults, &reply)
        }
        Opcode::Ok | Opcode::Err | Opcode::Chunk => Err(WireError::Protocol(format!(
            "{} is not a request opcode",
            frame.opcode.name()
        ))),
    }
}

/// One model's lineage record, as stored by `mmlib-core` saves (doc kind
/// `lineage`), or synthesized from its `model_info` base reference for
/// models saved before lineage records existed. `Ok(None)` when the model
/// is unknown.
///
/// The server reads the documents structurally (`mmlib-net` does not link
/// the model library), so the registry can answer lineage queries for any
/// store it fronts.
fn lineage_record(storage: &ModelStorage, model: &str) -> Result<Option<Value>, StoreError> {
    let mut info: Option<Value> = None;
    for doc_id in storage.docs().ids()? {
        let doc = storage.get_doc(&doc_id)?;
        match doc.kind.as_str() {
            "lineage" if doc.body.get("model").and_then(Value::as_str) == Some(model) => {
                return Ok(Some(doc.body));
            }
            "model_info" if doc_id.as_str() == model => info = Some(doc.body),
            _ => {}
        }
    }
    Ok(info.map(|body| {
        json!({
            "model": model,
            "parent": body.get("base_model").cloned().unwrap_or(Value::Null),
            "approach": body.get("approach").cloned().unwrap_or(Value::Null),
            "relation": body.get("relation").cloned().unwrap_or(Value::Null),
            "root_hash": body.get("root_hash").cloned().unwrap_or(Value::Null),
        })
    }))
}

/// A model's ancestry over live lineage `parent` edges, tip first. The
/// walk is cycle-guarded and stops at a missing parent (fsck territory)
/// instead of failing the whole query.
fn lineage_ancestry(storage: &ModelStorage, model: &str) -> Result<Option<Vec<Value>>, StoreError> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut cur = model.to_string();
    loop {
        if !seen.insert(cur.clone()) {
            break; // cyclic parent chain: return what we have
        }
        let record = match lineage_record(storage, &cur)? {
            Some(record) => record,
            None if out.is_empty() => return Ok(None), // unknown root query
            None => break,                             // dangling parent edge
        };
        let parent = record.get("parent").and_then(Value::as_str).map(str::to_string);
        out.push(record);
        match parent {
            Some(p) => cur = p,
            None => break,
        }
    }
    Ok(Some(out))
}

fn ok_frame(result: Value) -> Frame {
    Frame::new(Opcode::Ok, result)
}

fn err_frame(code: &str, message: &str) -> Frame {
    Frame::new(Opcode::Err, json!({"code": code, "message": message}))
}

/// Maps a [`StoreError`] onto the wire so clients can reconstruct it.
fn store_err_frame(e: &StoreError) -> Frame {
    match e {
        StoreError::MissingDocument(id) => Frame::new(
            Opcode::Err,
            json!({"code": "missing_document", "message": e.to_string(), "id": id.as_str()}),
        ),
        StoreError::MissingFile(id) => Frame::new(
            Opcode::Err,
            json!({"code": "missing_file", "message": e.to_string(), "id": id.as_str()}),
        ),
        StoreError::Io(_) => err_frame("io", &e.to_string()),
        StoreError::Json(_) => err_frame("json", &e.to_string()),
        StoreError::Malformed(_) => err_frame("malformed", &e.to_string()),
        StoreError::Remote(_) => err_frame("remote", &e.to_string()),
    }
}

/// True when a wire error stems from an injected fault (such failures must
/// look like a dead socket to the peer, never like a served error frame).
fn is_injected(e: &WireError) -> bool {
    matches!(e, WireError::Io(io) if io.to_string().starts_with("injected fault"))
}

/// Sends a frame, adding its wire size to the outbound byte counter.
///
/// The fault hook fires here, once per outgoing frame (replies and blob
/// chunks alike): a scheduled truncation writes only a prefix of the
/// encoded frame before failing, a drop fails before any byte — and the
/// byte counter records exactly what reached the socket, so metrics stay
/// consistent with committed data even mid-fault.
fn send_counted(
    writer: &mut impl Write,
    metrics: &ServerMetrics,
    faults: Option<&NetFaults>,
    frame: &Frame,
) -> Result<(), WireError> {
    match faults.and_then(NetFaults::on_response) {
        None => {}
        Some(Fault::TruncateFrame { after_bytes }) | Some(Fault::TornWrite { after_bytes }) => {
            let encoded = encode_frame(frame)?;
            // Saturate: a cut point beyond addressable memory means "the
            // whole frame", which `min` then clamps to the actual length.
            let cut = usize::try_from(after_bytes).unwrap_or(usize::MAX).min(encoded.len());
            writer.write_all(&encoded[..cut])?;
            writer.flush()?;
            metrics.bytes_out.add(cut as u64);
            return Err(WireError::Io(injected_io_error(&Fault::TruncateFrame {
                after_bytes,
            })));
        }
        Some(other) => return Err(WireError::Io(injected_io_error(&other))),
    }
    metrics.bytes_out.add(wire_size(frame));
    write_frame(writer, frame)
}

/// Streams a blob as `Chunk` frames through [`send_counted`], so each chunk
/// passes the fault hook and is byte-counted individually.
fn send_chunks_counted(
    writer: &mut impl Write,
    metrics: &ServerMetrics,
    faults: Option<&NetFaults>,
    blob: &[u8],
) -> Result<(), WireError> {
    for chunk in blob.chunks(CHUNK_SIZE) {
        let frame =
            Frame::with_payload(Opcode::Chunk, json!({}), Bytes::copy_from_slice(chunk));
        send_counted(writer, metrics, faults, &frame)?;
    }
    Ok(())
}

/// Approximate on-wire size of a frame (exact for frames we build).
fn wire_size(frame: &Frame) -> u64 {
    4 + 1 + 4 + frame.header.to_json_string().len() as u64 + frame.payload.len() as u64
}
