//! The remote store client: [`mmlib_store::StorageBackend`] over TCP.
//!
//! [`RemoteStore`] speaks the wire protocol of [`crate::protocol`] to a
//! [`crate::RegistryServer`] and implements the same document/file surface
//! as local storage, so the whole save/recover stack runs unmodified
//! against a registry across the network — the paper's node/server split
//! (§4.1). Blobs stream in 64 KiB chunks both ways; requests are retried
//! with exponential backoff plus jitter when the connection drops.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mmlib_store::{DocId, Document, FileId, ModelStorage, StorageBackend, StoreError};
use parking_lot::Mutex;
use serde_json::{json, Value};

use crate::protocol::{
    header_str, header_u64, read_chunks, read_frame, write_chunks, write_frame, Frame, Opcode,
    WireError, PROTOCOL_VERSION,
};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Attempts per request beyond the first (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_backoff * 2^n` plus jitter.
    pub base_backoff: Duration,
    /// Socket read timeout (None = block forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_retries: 3,
            base_backoff: Duration::from_millis(20),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// A connection to a registry server, usable as a storage backend.
///
/// One `RemoteStore` holds one TCP connection (requests are serialized on
/// it); clone-free sharing happens by wrapping it in an `Arc` via
/// [`RemoteStore::into_storage`]. For concurrent clients, open one
/// `RemoteStore` per thread — the loopback stress test does exactly that.
pub struct RemoteStore {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Mutex<Option<Conn>>,
    jitter: Jitter,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl RemoteStore {
    /// Connects to a registry server and verifies the protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteStore, StoreError> {
        RemoteStore::connect_with_config(addr, ClientConfig::default())
    }

    /// Connects with explicit tuning knobs.
    pub fn connect_with_config(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<RemoteStore, StoreError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| StoreError::Remote(format!("bad address: {e}")))?
            .next()
            .ok_or_else(|| StoreError::Remote("address resolved to nothing".to_string()))?;
        let store = RemoteStore {
            addr,
            config,
            conn: Mutex::new(None),
            jitter: Jitter::new(),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        };
        // Handshake now so misconfiguration fails at connect, not first use.
        let reply = store.request(Frame::new(Opcode::Ping, json!({"version": PROTOCOL_VERSION})))?;
        let version = header_u64(&reply.header, "version")
            .map_err(|e| StoreError::Remote(e.to_string()))?;
        if version as u32 != PROTOCOL_VERSION {
            return Err(StoreError::Remote(format!(
                "server speaks protocol version {version}, client needs {PROTOCOL_VERSION}"
            )));
        }
        Ok(store)
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wraps this client into a [`ModelStorage`] the save/recover stack can
    /// use in place of a local directory.
    pub fn into_storage(self) -> ModelStorage {
        let descriptor = format!("tcp://{}", self.addr);
        ModelStorage::from_backend(Arc::new(self), descriptor)
    }

    /// Fetches the server's metrics snapshot (the `Stats` opcode).
    pub fn server_stats(&self) -> Result<Value, StoreError> {
        Ok(self.request(Frame::new(Opcode::Stats, json!({})))?.header)
    }

    /// Fetches the server's full metrics registry rendered in Prometheus
    /// text format (the `StatsText` opcode).
    pub fn server_stats_text(&self) -> Result<String, StoreError> {
        let header = self.request(Frame::new(Opcode::StatsText, json!({})))?.header;
        match header.get("text").and_then(Value::as_str) {
            Some(text) => Ok(text.to_string()),
            None => Err(StoreError::Remote("stats_text reply missing `text`".to_string())),
        }
    }

    /// Fetches one model's lineage record from the registry (the
    /// `LineageGet` opcode). The returned value is the record body:
    /// `{"model", "parent", "approach", ...}`.
    pub fn lineage_get(&self, id: &str) -> Result<Value, StoreError> {
        let reply = self.request(Frame::new(Opcode::LineageGet, json!({"id": id})))?;
        let header = expect_ok(reply)?;
        header
            .get("record")
            .cloned()
            .ok_or_else(|| StoreError::Remote("lineage_get reply missing `record`".to_string()))
    }

    /// Fetches a model's ancestry, tip first, over live lineage parent
    /// edges (the `LineageAncestry` opcode). Each element is one lineage
    /// record body.
    pub fn lineage_ancestry(&self, id: &str) -> Result<Vec<Value>, StoreError> {
        let reply = self.request(Frame::new(Opcode::LineageAncestry, json!({"id": id})))?;
        let header = expect_ok(reply)?;
        match header.get("ancestry").and_then(Value::as_array) {
            Some(list) => Ok(list.clone()),
            None => {
                Err(StoreError::Remote("lineage_ancestry reply missing `ancestry`".to_string()))
            }
        }
    }

    fn open_conn(&self) -> Result<Conn, WireError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(self.config.read_timeout)?;
        stream.set_write_timeout(self.config.write_timeout)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads its `Ok` reply, retrying the whole
    /// exchange on connection failure with exponential backoff + jitter.
    /// An `Err` *reply* is a server-side answer, not a connection failure —
    /// it maps to a [`StoreError`] and is never retried.
    fn request(&self, frame: Frame) -> Result<Frame, StoreError> {
        self.request_blob(frame, None).map(|(reply, _)| reply)
    }

    /// Like [`RemoteStore::request`], also streaming `blob` after the
    /// request frame and reading any blob announced by the reply.
    fn request_blob(
        &self,
        frame: Frame,
        blob: Option<&[u8]>,
    ) -> Result<(Frame, Option<Vec<u8>>), StoreError> {
        let mut attempt = 0u32;
        loop {
            match self.try_exchange(&frame, blob) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // Reconnect on any wire failure; the old socket is gone.
                    *self.conn.lock() = None;
                    if attempt >= self.config.max_retries {
                        return Err(StoreError::Remote(format!(
                            "request {} failed after {} attempts: {e}",
                            frame.opcode.name(),
                            attempt + 1
                        )));
                    }
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// One request/reply exchange on the cached connection.
    fn try_exchange(
        &self,
        frame: &Frame,
        blob: Option<&[u8]>,
    ) -> Result<(Frame, Option<Vec<u8>>), WireError> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(self.open_conn()?);
        }
        let Some(conn) = guard.as_mut() else {
            return Err(WireError::Protocol("connection cache unexpectedly empty".to_string()));
        };

        write_frame(&mut conn.writer, frame)?;
        let mut sent = frame.payload.len() as u64;
        if let Some(blob) = blob {
            write_chunks(&mut conn.writer, blob)?;
            sent += blob.len() as u64;
        }
        conn.writer.flush()?;
        self.bytes_written.fetch_add(sent, Ordering::Relaxed);

        let reply = read_frame(&mut conn.reader)?;
        let mut received = reply.payload.len() as u64;
        let reply_blob = if reply.opcode == Opcode::Ok {
            match reply.header.get("len").and_then(Value::as_u64) {
                Some(len) if wants_blob(frame.opcode) => {
                    let blob = read_chunks(&mut conn.reader, len)?;
                    received += blob.len() as u64;
                    Some(blob)
                }
                _ => None,
            }
        } else {
            None
        };
        self.bytes_read.fetch_add(received, Ordering::Relaxed);
        Ok((reply, reply_blob))
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.config.base_backoff * 2u32.saturating_pow(attempt);
        // Up to +50% jitter so clients retrying together spread out.
        base + base.mul_f64(self.jitter.next_fraction() * 0.5)
    }
}

/// Unwraps an `Ok` reply or maps an `Err` reply back to a [`StoreError`].
fn expect_ok(reply: Frame) -> Result<Value, StoreError> {
    match reply.opcode {
        Opcode::Ok => Ok(reply.header),
        Opcode::Err => {
            let code = reply.header.get("code").and_then(Value::as_str).unwrap_or("unknown");
            let message = reply
                .header
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("server error")
                .to_string();
            let id = reply.header.get("id").and_then(Value::as_str);
            match (code, id) {
                ("missing_document", Some(id)) => {
                    Err(StoreError::MissingDocument(DocId::from_string(id.to_string())))
                }
                ("missing_file", Some(id)) => {
                    Err(StoreError::MissingFile(FileId::from_string(id.to_string())))
                }
                _ => Err(StoreError::Remote(format!("{code}: {message}"))),
            }
        }
        other => Err(StoreError::Remote(format!(
            "unexpected reply opcode {}",
            other.name()
        ))),
    }
}

/// Whether a request opcode's `Ok` reply announces a streamed blob.
fn wants_blob(request: Opcode) -> bool {
    request == Opcode::FileGet
}

/// Bytes a document occupies in the registry's store. The server persists
/// `to_vec_pretty(&doc)`, so serializing the same document client-side gives
/// the identical size — keeping the paper's storage-consumption metric
/// transport-invariant (a save "costs" the same whether measured against a
/// local directory or through the wire).
fn doc_stored_bytes(doc: &Document) -> u64 {
    serde_json::to_vec_pretty(doc).map(|b| b.len() as u64).unwrap_or(0)
}

fn remote(e: WireError) -> StoreError {
    StoreError::Remote(e.to_string())
}

impl StorageBackend for RemoteStore {
    fn insert_doc(&self, kind: &str, body: Value) -> Result<DocId, StoreError> {
        let reply = self.request(Frame::new(
            Opcode::DocInsert,
            json!({"kind": kind, "body": body.clone()}),
        ))?;
        let header = expect_ok(reply)?;
        let id = DocId::from_string(header_str(&header, "id").map_err(remote)?.to_string());
        let doc = Document { id: id.clone(), kind: kind.to_string(), body };
        self.bytes_written.fetch_add(doc_stored_bytes(&doc), Ordering::Relaxed);
        Ok(id)
    }

    fn get_doc(&self, id: &DocId) -> Result<Document, StoreError> {
        let reply = self.request(Frame::new(Opcode::DocGet, json!({"id": id.as_str()})))?;
        let header = expect_ok(reply)?;
        let body = header
            .get("body")
            .cloned()
            .ok_or_else(|| StoreError::Remote("doc reply missing body".to_string()))?;
        let doc = Document {
            id: DocId::from_string(header_str(&header, "id").map_err(remote)?.to_string()),
            kind: header_str(&header, "kind").map_err(remote)?.to_string(),
            body,
        };
        self.bytes_read.fetch_add(doc_stored_bytes(&doc), Ordering::Relaxed);
        Ok(doc)
    }

    fn update_doc(&self, id: &DocId, body: Value) -> Result<(), StoreError> {
        let reply = self.request(Frame::new(
            Opcode::DocUpdate,
            json!({"id": id.as_str(), "body": body.clone()}),
        ))?;
        let header = expect_ok(reply)?;
        // The reply carries the document's kind so the new stored size can
        // be accounted like a local write. (The update's internal re-read of
        // the old document is not mirrored — sizes of past versions are
        // unknown here — which only affects bytes_read, never the paper's
        // bytes_written storage metric.)
        if let Some(kind) = header.get("kind").and_then(Value::as_str) {
            let doc = Document { id: id.clone(), kind: kind.to_string(), body };
            self.bytes_written.fetch_add(doc_stored_bytes(&doc), Ordering::Relaxed);
        }
        Ok(())
    }

    fn contains_doc(&self, id: &DocId) -> bool {
        self.request(Frame::new(Opcode::DocContains, json!({"id": id.as_str()})))
            .ok()
            .and_then(|reply| expect_ok(reply).ok())
            .and_then(|h| h.get("present").and_then(Value::as_bool))
            .unwrap_or(false)
    }

    fn remove_doc(&self, id: &DocId) -> Result<(), StoreError> {
        let reply = self.request(Frame::new(Opcode::DocRemove, json!({"id": id.as_str()})))?;
        expect_ok(reply).map(|_| ())
    }

    fn doc_ids(&self) -> Result<Vec<DocId>, StoreError> {
        let reply = self.request(Frame::new(Opcode::DocIds, json!({})))?;
        let header = expect_ok(reply)?;
        let ids = header
            .get("ids")
            .and_then(Value::as_array)
            .ok_or_else(|| StoreError::Remote("ids reply missing list".to_string()))?;
        ids.iter()
            .map(|v| {
                v.as_str()
                    .map(|s| DocId::from_string(s.to_string()))
                    .ok_or_else(|| StoreError::Remote("non-string id in list".to_string()))
            })
            .collect()
    }

    fn put_file(&self, bytes: &[u8]) -> Result<FileId, StoreError> {
        let announce = Frame::new(Opcode::FilePut, json!({"len": bytes.len() as u64}));
        let (reply, _) = self.request_blob(announce, Some(bytes))?;
        let header = expect_ok(reply)?;
        let id = header_str(&header, "id").map_err(remote)?;
        Ok(FileId::from_string(id.to_string()))
    }

    fn get_file(&self, id: &FileId) -> Result<Vec<u8>, StoreError> {
        let request = Frame::new(Opcode::FileGet, json!({"id": id.as_str()}));
        let (reply, blob) = self.request_blob(request, None)?;
        let header = expect_ok(reply)?;
        let len = header_u64(&header, "len").map_err(remote)?;
        let blob =
            blob.ok_or_else(|| StoreError::Remote("file reply announced no blob".to_string()))?;
        if blob.len() as u64 != len {
            return Err(StoreError::Remote(format!(
                "file reply announced {len} bytes but streamed {}",
                blob.len()
            )));
        }
        Ok(blob)
    }

    fn file_size(&self, id: &FileId) -> Result<u64, StoreError> {
        let reply = self.request(Frame::new(Opcode::FileSize, json!({"id": id.as_str()})))?;
        let header = expect_ok(reply)?;
        header_u64(&header, "len").map_err(remote)
    }

    fn contains_file(&self, id: &FileId) -> bool {
        self.request(Frame::new(Opcode::FileContains, json!({"id": id.as_str()})))
            .ok()
            .and_then(|reply| expect_ok(reply).ok())
            .and_then(|h| h.get("present").and_then(Value::as_bool))
            .unwrap_or(false)
    }

    fn remove_file(&self, id: &FileId) -> Result<(), StoreError> {
        let reply = self.request(Frame::new(Opcode::FileRemove, json!({"id": id.as_str()})))?;
        expect_ok(reply).map(|_| ())
    }

    fn file_ids(&self) -> Result<Vec<FileId>, StoreError> {
        let reply = self.request(Frame::new(Opcode::FileIds, json!({})))?;
        let header = expect_ok(reply)?;
        let ids = header
            .get("ids")
            .and_then(Value::as_array)
            .ok_or_else(|| StoreError::Remote("ids reply missing list".to_string()))?;
        ids.iter()
            .map(|v| {
                v.as_str()
                    .map(|s| FileId::from_string(s.to_string()))
                    .ok_or_else(|| StoreError::Remote("non-string id in list".to_string()))
            })
            .collect()
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

/// Cheap xorshift jitter source. Retry spreading only — never used on a
/// reproducibility-sensitive path (simulated results use no randomness).
struct Jitter {
    state: AtomicU64,
}

impl Jitter {
    fn new() -> Jitter {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            | 1;
        Jitter { state: AtomicU64::new(seed) }
    }

    /// Uniform-ish fraction in [0, 1).
    fn next_fraction(&self) -> f64 {
        let mut x = self.state.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state.store(x, Ordering::Relaxed);
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}
