//! The remote store client: [`mmlib_store::StorageBackend`] over TCP.
//!
//! [`RemoteStore`] speaks the wire protocol of [`crate::protocol`] to a
//! [`crate::RegistryServer`] and implements the same document/file surface
//! as local storage, so the whole save/recover stack runs unmodified
//! against a registry across the network — the paper's node/server split
//! (§4.1).
//!
//! Connections come from a small **pool** with **request pipelining**: each
//! pooled socket negotiates protocol v2 at open, a dedicated reader thread
//! demultiplexes responses by frame id, and any number of caller threads
//! share the pool concurrently — `recover_flow_family` and the dist flows
//! no longer pay per-request connection latency. Requests are retried with
//! exponential backoff plus jitter on connection failure, and a server
//! `Busy` load-shed answer is just another retryable outcome (the
//! connection stays up). Pinning [`RemoteStoreBuilder::protocol_version`]
//! to 1 keeps the legacy serial framing for old servers.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use bytes::Bytes;
use mmlib_obs::Gauge;
use mmlib_store::{DocId, Document, FileId, ModelStorage, StorageBackend, StoreError};
use parking_lot::Mutex;
use serde_json::{json, Value};

use crate::protocol::{
    chunk_frames, encode_frame_prefix, header_str, header_u64, read_frame_counted,
    try_decode_frame, Frame, Opcode, WireError, WireVersion, PROTOCOL_V1, PROTOCOL_V2,
};

/// Gauge of currently open pooled client connections (process-wide).
pub const NET_POOL_CONNECTIONS: &str = "mmlib_net_pool_connections";

/// Client tuning knobs. Usually set through [`RemoteStore::builder`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Attempts per request beyond the first (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_backoff * 2^n` plus jitter.
    pub base_backoff: Duration,
    /// How long a caller waits for its pipelined reply (None = forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Pooled connections; callers round-robin across them.
    pub pool_size: usize,
    /// Wire protocol to negotiate ([`PROTOCOL_V2`] multiplexes; pin to
    /// [`PROTOCOL_V1`] for the legacy one-request-at-a-time framing).
    pub protocol_version: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_retries: 3,
            base_backoff: Duration::from_millis(20),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            connect_timeout: Duration::from_secs(5),
            pool_size: 2,
            protocol_version: PROTOCOL_V2,
        }
    }
}

/// Configures and opens a [`RemoteStore`]. Obtained from
/// [`RemoteStore::builder`].
#[derive(Debug)]
pub struct RemoteStoreBuilder {
    addr: Result<SocketAddr, StoreError>,
    config: ClientConfig,
}

impl RemoteStoreBuilder {
    /// Pooled connections the client multiplexes requests over.
    pub fn pool_size(mut self, n: usize) -> RemoteStoreBuilder {
        self.config.pool_size = n;
        self
    }

    /// Attempts per request beyond the first (0 = fail fast).
    pub fn max_retries(mut self, n: u32) -> RemoteStoreBuilder {
        self.config.max_retries = n;
        self
    }

    /// Base of the exponential retry backoff.
    pub fn base_backoff(mut self, d: Duration) -> RemoteStoreBuilder {
        self.config.base_backoff = d;
        self
    }

    /// How long a caller waits for its reply (None = forever).
    pub fn read_timeout(mut self, d: Option<Duration>) -> RemoteStoreBuilder {
        self.config.read_timeout = d;
        self
    }

    /// Socket write timeout.
    pub fn write_timeout(mut self, d: Option<Duration>) -> RemoteStoreBuilder {
        self.config.write_timeout = d;
        self
    }

    /// TCP connect timeout per attempt.
    pub fn connect_timeout(mut self, d: Duration) -> RemoteStoreBuilder {
        self.config.connect_timeout = d;
        self
    }

    /// Pins the wire protocol version ([`PROTOCOL_V1`] or [`PROTOCOL_V2`]).
    pub fn protocol_version(mut self, v: u32) -> RemoteStoreBuilder {
        self.config.protocol_version = v;
        self
    }

    /// Opens the store and verifies the server speaks the pinned protocol
    /// version, so misconfiguration fails here rather than at first use.
    pub fn build(self) -> Result<RemoteStore, StoreError> {
        let addr = self.addr?;
        let config = self.config;
        if config.pool_size == 0 {
            return Err(StoreError::Remote("pool_size must be at least 1".to_string()));
        }
        if config.protocol_version != PROTOCOL_V1 && config.protocol_version != PROTOCOL_V2 {
            return Err(StoreError::Remote(format!(
                "unsupported protocol version pin {} (client speaks {PROTOCOL_V1} and {PROTOCOL_V2})",
                config.protocol_version
            )));
        }
        let pool = (0..config.pool_size).map(|_| PoolSlot::new()).collect();
        let store = RemoteStore {
            addr,
            config,
            pool,
            next_slot: AtomicUsize::new(0),
            next_request_id: AtomicU64::new(1),
            jitter: Jitter::new(),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            wire_out: Arc::new(AtomicU64::new(0)),
            wire_in: Arc::new(AtomicU64::new(0)),
            pool_gauge: mmlib_obs::recorder().gauge(NET_POOL_CONNECTIONS, None),
        };
        // Handshake one connection now; the rest open lazily on demand.
        let reply = store.request(Frame::new(
            Opcode::Ping,
            json!({"version": store.config.protocol_version}),
        ))?;
        let version =
            header_u64(&reply.header, "version").map_err(|e| StoreError::Remote(e.to_string()))?;
        if version != u64::from(store.config.protocol_version) {
            return Err(StoreError::Remote(format!(
                "server speaks protocol version {version}, client pinned {}",
                store.config.protocol_version
            )));
        }
        Ok(store)
    }
}

/// A pooled, pipelined client for a registry server, usable as a storage
/// backend.
///
/// One `RemoteStore` holds [`ClientConfig::pool_size`] TCP connections and
/// is safe to share across any number of threads — callers round-robin
/// over the pool and concurrent requests on one socket are correlated by
/// frame id. Wrap it in an `Arc` directly, or hand the whole stack a
/// [`ModelStorage`] via [`RemoteStore::into_storage`].
pub struct RemoteStore {
    addr: SocketAddr,
    config: ClientConfig,
    pool: Vec<PoolSlot>,
    next_slot: AtomicUsize,
    next_request_id: AtomicU64,
    jitter: Jitter,
    /// Storage-semantic bytes (stored document/blob sizes), mirroring what
    /// a local backend would report — the paper's storage metric.
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    /// Exact raw socket bytes, for reconciling against the server's
    /// `bytes_in`/`bytes_out` counters.
    wire_out: Arc<AtomicU64>,
    wire_in: Arc<AtomicU64>,
    pool_gauge: Arc<Gauge>,
}

impl RemoteStore {
    /// Starts building a client for the registry at `addr`.
    pub fn builder(addr: impl ToSocketAddrs) -> RemoteStoreBuilder {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| StoreError::Remote(format!("bad address: {e}")))
            .and_then(|mut addrs| {
                addrs
                    .next()
                    .ok_or_else(|| StoreError::Remote("address resolved to nothing".to_string()))
            });
        RemoteStoreBuilder { addr, config: ClientConfig::default() }
    }

    /// Connects with default settings.
    ///
    /// Deprecated: use [`RemoteStore::builder`] — `builder(addr).build()`
    /// is the direct equivalent.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteStore, StoreError> {
        RemoteStore::builder(addr).build()
    }

    /// Connects with explicit tuning knobs.
    ///
    /// Deprecated: use [`RemoteStore::builder`], which exposes every field
    /// of [`ClientConfig`] as a named setter.
    pub fn connect_with_config(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<RemoteStore, StoreError> {
        let mut builder = RemoteStore::builder(addr);
        builder.config = config;
        builder.build()
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wraps this client into a [`ModelStorage`] the save/recover stack can
    /// use in place of a local directory.
    pub fn into_storage(self) -> ModelStorage {
        let descriptor = format!("tcp://{}", self.addr);
        ModelStorage::from_backend(Arc::new(self), descriptor)
    }

    /// Fetches the server's metrics snapshot, typed (the `Stats` opcode).
    pub fn stats(&self) -> Result<ServerStats, StoreError> {
        let reply = self.request(Frame::new(Opcode::Stats, json!({})))?;
        Ok(ServerStats::from_value(expect_ok(reply)?))
    }

    /// Fetches one model's lineage record, typed (the `LineageGet`
    /// opcode).
    pub fn lineage_node(&self, id: &str) -> Result<LineageNode, StoreError> {
        self.lineage_get(id).map(LineageNode::from_value)
    }

    /// Fetches a model's ancestry, tip first, typed (the `LineageAncestry`
    /// opcode).
    pub fn lineage_chain(&self, id: &str) -> Result<Vec<LineageNode>, StoreError> {
        Ok(self.lineage_ancestry(id)?.into_iter().map(LineageNode::from_value).collect())
    }

    /// Fetches the server's metrics snapshot as raw JSON.
    ///
    /// Deprecated: use [`RemoteStore::stats`], which returns the typed
    /// [`ServerStats`] (the raw JSON stays available as
    /// [`ServerStats::raw`]).
    pub fn server_stats(&self) -> Result<Value, StoreError> {
        Ok(self.request(Frame::new(Opcode::Stats, json!({})))?.header)
    }

    /// Fetches the server's full metrics registry rendered in Prometheus
    /// text format (the `StatsText` opcode).
    pub fn server_stats_text(&self) -> Result<String, StoreError> {
        let header = self.request(Frame::new(Opcode::StatsText, json!({})))?.header;
        match header.get("text").and_then(Value::as_str) {
            Some(text) => Ok(text.to_string()),
            None => Err(StoreError::Remote("stats_text reply missing `text`".to_string())),
        }
    }

    /// Fetches one model's lineage record as raw JSON.
    ///
    /// Deprecated: use [`RemoteStore::lineage_node`], which returns the
    /// typed [`LineageNode`] (raw JSON in [`LineageNode::raw`]).
    pub fn lineage_get(&self, id: &str) -> Result<Value, StoreError> {
        let reply = self.request(Frame::new(Opcode::LineageGet, json!({"id": id})))?;
        let header = expect_ok(reply)?;
        header
            .get("record")
            .cloned()
            .ok_or_else(|| StoreError::Remote("lineage_get reply missing `record`".to_string()))
    }

    /// Fetches a model's ancestry as raw JSON records, tip first.
    ///
    /// Deprecated: use [`RemoteStore::lineage_chain`], which returns typed
    /// [`LineageNode`]s.
    pub fn lineage_ancestry(&self, id: &str) -> Result<Vec<Value>, StoreError> {
        let reply = self.request(Frame::new(Opcode::LineageAncestry, json!({"id": id})))?;
        let header = expect_ok(reply)?;
        match header.get("ancestry").and_then(Value::as_array) {
            Some(list) => Ok(list.clone()),
            None => {
                Err(StoreError::Remote("lineage_ancestry reply missing `ancestry`".to_string()))
            }
        }
    }

    /// Exact raw bytes this client has written to its sockets. At
    /// quiescence this equals the server's `bytes_in` for a server only
    /// this client talks to.
    pub fn wire_bytes_out(&self) -> u64 {
        self.wire_out.load(Ordering::Relaxed)
    }

    /// Exact raw bytes this client has read from its sockets (counterpart
    /// of the server's `bytes_out`).
    pub fn wire_bytes_in(&self) -> u64 {
        self.wire_in.load(Ordering::Relaxed)
    }

    /// Sends one request and reads its `Ok`/`Err` reply, retrying the whole
    /// exchange on connection failure or server load-shed with exponential
    /// backoff + jitter. An `Err` *reply* is a server-side answer, not a
    /// connection failure — it maps to a [`StoreError`] and is never
    /// retried.
    fn request(&self, frame: Frame) -> Result<Frame, StoreError> {
        self.request_blob(frame, None).map(|(reply, _)| reply)
    }

    /// Like [`RemoteStore::request`], also streaming `blob` after the
    /// request frame and reading any blob announced by the reply. The blob
    /// is a `Bytes` so retried attempts re-slice the same buffer instead
    /// of copying it.
    fn request_blob(
        &self,
        frame: Frame,
        blob: Option<Bytes>,
    ) -> Result<(Frame, Option<Vec<u8>>), StoreError> {
        let mut attempt = 0u32;
        loop {
            // Every attempt gets a fresh frame id, so a late reply to a
            // timed-out attempt can never be mistaken for this one's.
            match self.try_exchange(&frame, blob.as_ref()) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    let shed_hint = match e {
                        WireError::Busy(ms) => Some(Duration::from_millis(ms)),
                        _ => None,
                    };
                    if attempt >= self.config.max_retries {
                        return Err(StoreError::Remote(format!(
                            "request {} failed after {} attempts: {e}",
                            frame.opcode.name(),
                            attempt + 1
                        )));
                    }
                    let backoff = self.backoff(attempt);
                    std::thread::sleep(shed_hint.map_or(backoff, |hint| backoff.max(hint)));
                    attempt += 1;
                }
            }
        }
    }

    /// One exchange on a pooled connection (round-robin pick, lazily
    /// opened). All errors out of here are retryable: wire failures have
    /// already torn the connection down, and `Busy` left it healthy.
    fn try_exchange(
        &self,
        frame: &Frame,
        blob: Option<&Bytes>,
    ) -> Result<(Frame, Option<Vec<u8>>), WireError> {
        let slot = &self.pool[self.next_slot.fetch_add(1, Ordering::Relaxed) % self.pool.len()];
        let (reply, reply_blob) = match self.config.protocol_version {
            PROTOCOL_V1 => self.exchange_v1(slot, frame, blob)?,
            _ => self.exchange_v2(slot, frame, blob)?,
        };
        if reply.opcode == Opcode::Busy {
            let hint = reply.header.get("retry_after_ms").and_then(Value::as_u64).unwrap_or(0);
            return Err(WireError::Busy(hint));
        }
        // Storage-semantic accounting: payload bytes moved, as a local
        // backend would see them (headers are transport overhead).
        let sent = frame.payload.len() as u64 + blob.map_or(0, |b| b.len() as u64);
        let received = reply.payload.len() as u64
            + reply_blob.as_ref().map_or(0, |b| b.len() as u64);
        self.bytes_written.fetch_add(sent, Ordering::Relaxed);
        self.bytes_read.fetch_add(received, Ordering::Relaxed);
        Ok((reply, reply_blob))
    }

    /// Pipelined v2 exchange: register the frame id, write, wait for the
    /// reader thread to hand back the correlated reply.
    fn exchange_v2(
        &self,
        slot: &PoolSlot,
        frame: &Frame,
        blob: Option<&Bytes>,
    ) -> Result<(Frame, Option<Vec<u8>>), WireError> {
        let conn = {
            let mut guard = slot.conn.lock();
            match &*guard {
                Some(PooledConn::V2(conn)) if conn.alive.load(Ordering::Acquire) => {
                    Arc::clone(conn)
                }
                _ => {
                    // mmlib-lint: allow(H1, reconnect under the slot lock is deliberate - it serializes handshakes so racing callers share one connection instead of opening N)
                    let conn = self.open_v2()?;
                    *guard = Some(PooledConn::V2(Arc::clone(&conn)));
                    conn
                }
            }
        };

        let id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        conn.pending
            .lock()
            .insert(id, PendingEntry { tx, wants_blob: wants_blob(frame.opcode) });

        let sent = frame.clone().with_request_id(id);
        let wrote = {
            let mut writer = conn.writer.lock();
            // mmlib-lint: allow(H1, the writer lock exists to serialize whole-frame writes on the shared v2 socket - I/O under it is the point)
            self.write_request(&mut *writer, &sent, blob, WireVersion::V2)
        };
        if let Err(e) = wrote {
            conn.pending.lock().remove(&id);
            self.teardown_v2(slot, &conn, &format!("write failed: {e}"));
            return Err(e);
        }

        let event = match self.config.read_timeout {
            Some(timeout) => rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => {
                    // Leave the connection up: the reader discards the
                    // stale reply if it ever arrives.
                    conn.pending.lock().remove(&id);
                    WireError::Protocol(format!(
                        "timed out after {timeout:?} waiting for a reply"
                    ))
                }
                mpsc::RecvTimeoutError::Disconnected => {
                    WireError::Protocol("connection reader exited".to_string())
                }
            }),
            None => rx
                .recv()
                .map_err(|_| WireError::Protocol("connection reader exited".to_string())),
        };
        match event? {
            ConnEvent::Reply(reply, reply_blob) => Ok((reply, reply_blob)),
            ConnEvent::Failed(reason) => {
                self.clear_slot_if(slot, &conn);
                Err(WireError::Protocol(reason))
            }
        }
    }

    /// Legacy serial v1 exchange, one request at a time under the slot
    /// lock (the seed client's behaviour, kept for old servers).
    fn exchange_v1(
        &self,
        slot: &PoolSlot,
        frame: &Frame,
        blob: Option<&Bytes>,
    ) -> Result<(Frame, Option<Vec<u8>>), WireError> {
        let mut guard = slot.conn.lock();
        if !matches!(&*guard, Some(PooledConn::V1(_))) {
            *guard = Some(PooledConn::V1(self.open_v1()?));
        }
        let Some(PooledConn::V1(conn)) = guard.as_mut() else {
            return Err(WireError::Protocol("connection cache unexpectedly empty".to_string()));
        };
        // mmlib-lint: allow(H1, v1 is one blocking exchange per connection - the slot lock is the per-connection serialization and nothing else contends it meanwhile)
        let result = self.exchange_v1_on(conn, frame, blob);
        if result.is_err() {
            // The socket's framing state is unknown after any failure.
            *guard = None;
        }
        result
    }

    fn exchange_v1_on(
        &self,
        conn: &mut V1Conn,
        frame: &Frame,
        blob: Option<&Bytes>,
    ) -> Result<(Frame, Option<Vec<u8>>), WireError> {
        self.write_request(&mut conn.stream, frame, blob, WireVersion::V1)?;
        let (reply, n) = read_frame_counted(&mut conn.stream, WireVersion::V1)?;
        self.wire_in.fetch_add(n, Ordering::Relaxed);
        let reply_blob = if reply.opcode == Opcode::Ok && wants_blob(frame.opcode) {
            match reply.header.get("len").and_then(Value::as_u64) {
                Some(len) => Some(self.read_chunks_v1(conn, len)?),
                None => None,
            }
        } else {
            None
        };
        Ok((reply, reply_blob))
    }

    fn read_chunks_v1(&self, conn: &mut V1Conn, len: u64) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        while (out.len() as u64) < len {
            let (chunk, n) = read_frame_counted(&mut conn.stream, WireVersion::V1)?;
            self.wire_in.fetch_add(n, Ordering::Relaxed);
            if chunk.opcode != Opcode::Chunk {
                return Err(WireError::Protocol(format!(
                    "expected chunk frame, got {}",
                    chunk.opcode.name()
                )));
            }
            if chunk.payload.is_empty() || out.len() as u64 + chunk.payload.len() as u64 > len {
                return Err(WireError::Protocol("chunk overruns announced length".to_string()));
            }
            out.extend_from_slice(&chunk.payload);
        }
        Ok(out)
    }

    /// Writes one request frame (and its blob as chunk frames) to `w`,
    /// counting exact wire bytes. Chunk payloads are zero-copy slices of
    /// the request's one `Bytes` buffer — no per-attempt copy.
    fn write_request(
        &self,
        w: &mut impl Write,
        frame: &Frame,
        blob: Option<&Bytes>,
        version: WireVersion,
    ) -> Result<(), WireError> {
        let mut wrote = self.write_one(w, frame, version)?;
        if let Some(blob) = blob {
            for chunk in chunk_frames(frame.request_id, blob) {
                wrote += self.write_one(w, &chunk, version)?;
            }
        }
        w.flush()?;
        self.wire_out.fetch_add(wrote, Ordering::Relaxed);
        Ok(())
    }

    fn write_one(
        &self,
        w: &mut impl Write,
        frame: &Frame,
        version: WireVersion,
    ) -> Result<u64, WireError> {
        let prefix = encode_frame_prefix(frame, version)?;
        w.write_all(&prefix)?;
        w.write_all(&frame.payload)?;
        Ok((prefix.len() + frame.payload.len()) as u64)
    }

    /// Opens a socket and negotiates v2 with a `Hello` handshake, then
    /// spawns the demultiplexing reader thread.
    fn open_v2(&self) -> Result<Arc<V2Conn>, WireError> {
        let stream = self.open_socket()?;
        let hello = Frame::new(Opcode::Hello, json!({"version": u64::from(PROTOCOL_V2)}));
        self.write_request(&mut &stream, &hello, None, WireVersion::V1)?;
        let (reply, n) = read_frame_counted(&mut &stream, WireVersion::V1)?;
        self.wire_in.fetch_add(n, Ordering::Relaxed);
        match reply.opcode {
            Opcode::Ok => {
                let agreed = header_u64(&reply.header, "version")
                    .map_err(|e| WireError::Protocol(e.to_string()))?;
                if agreed != u64::from(PROTOCOL_V2) {
                    return Err(WireError::Protocol(format!(
                        "handshake agreed on version {agreed}, expected {PROTOCOL_V2}"
                    )));
                }
            }
            _ => {
                let msg = reply
                    .header
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("handshake rejected");
                return Err(WireError::Protocol(format!("hello rejected: {msg}")));
            }
        }
        let reader_stream = stream.try_clone()?;
        // The reader polls so it can notice a locally-initiated close even
        // when the wire is silent.
        reader_stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let conn = Arc::new(V2Conn {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(true),
        });
        self.pool_gauge.add(1.0);
        {
            let reader_conn = Arc::clone(&conn);
            let wire_in = Arc::clone(&self.wire_in);
            let gauge = Arc::clone(&self.pool_gauge);
            std::thread::Builder::new()
                .name(format!("mmlib-client-{}", self.addr))
                .spawn(move || reader_loop(&reader_conn, reader_stream, &wire_in, &gauge))
                .map_err(|e| {
                    conn.alive.store(false, Ordering::Release);
                    self.pool_gauge.add(-1.0);
                    WireError::Io(e)
                })?;
        }
        Ok(conn)
    }

    fn open_v1(&self) -> Result<V1Conn, WireError> {
        let stream = self.open_socket()?;
        self.pool_gauge.add(1.0);
        Ok(V1Conn { stream, gauge: Arc::clone(&self.pool_gauge) })
    }

    fn open_socket(&self) -> Result<TcpStream, WireError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(self.config.read_timeout)?;
        stream.set_write_timeout(self.config.write_timeout)?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Tears a failed v2 connection down: fail every waiter, free the pool
    /// slot for a fresh connection.
    fn teardown_v2(&self, slot: &PoolSlot, conn: &Arc<V2Conn>, reason: &str) {
        conn.fail_all(reason);
        let _ = conn.writer.lock().shutdown(Shutdown::Both);
        self.clear_slot_if(slot, conn);
    }

    fn clear_slot_if(&self, slot: &PoolSlot, conn: &Arc<V2Conn>) {
        let mut guard = slot.conn.lock();
        if let Some(PooledConn::V2(current)) = &*guard {
            if Arc::ptr_eq(current, conn) {
                *guard = None;
            }
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.config.base_backoff * 2u32.saturating_pow(attempt);
        // Up to +50% jitter so clients retrying together spread out.
        base + base.mul_f64(self.jitter.next_fraction() * 0.5)
    }
}

impl Drop for RemoteStore {
    fn drop(&mut self) {
        for slot in &self.pool {
            if let Some(PooledConn::V2(conn)) = &*slot.conn.lock() {
                conn.fail_all("client shut down");
                let _ = conn.writer.lock().shutdown(Shutdown::Both);
            }
        }
    }
}

/// One pool entry; its connection opens on first use.
struct PoolSlot {
    conn: Mutex<Option<PooledConn>>,
}

impl PoolSlot {
    fn new() -> PoolSlot {
        PoolSlot { conn: Mutex::new(None) }
    }
}

enum PooledConn {
    V1(V1Conn),
    V2(Arc<V2Conn>),
}

struct V1Conn {
    stream: TcpStream,
    gauge: Arc<Gauge>,
}

impl Drop for V1Conn {
    fn drop(&mut self) {
        self.gauge.add(-1.0);
    }
}

/// A multiplexed v2 connection: writers interleave under the lock, one
/// reader thread demultiplexes replies by frame id.
struct V2Conn {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, PendingEntry>>,
    alive: AtomicBool,
}

struct PendingEntry {
    tx: mpsc::Sender<ConnEvent>,
    wants_blob: bool,
}

enum ConnEvent {
    Reply(Frame, Option<Vec<u8>>),
    Failed(String),
}

impl V2Conn {
    fn fail_all(&self, reason: &str) {
        self.alive.store(false, Ordering::Release);
        for (_, entry) in self.pending.lock().drain() {
            let _ = entry.tx.send(ConnEvent::Failed(reason.to_string()));
        }
    }
}

/// A reply blob mid-assembly on the reader thread.
struct Partial {
    frame: Frame,
    want: u64,
    data: Vec<u8>,
    tx: mpsc::Sender<ConnEvent>,
}

/// The per-connection reader: accumulate bytes, decode v2 frames, route
/// each to the caller waiting on its frame id. Replies to ids nobody waits
/// for (a timed-out attempt's late answer) are discarded.
fn reader_loop(conn: &V2Conn, mut stream: TcpStream, wire_in: &AtomicU64, gauge: &Gauge) {
    let mut buf: Vec<u8> = Vec::new();
    let mut start = 0usize;
    let mut partials: HashMap<u64, Partial> = HashMap::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let reason = 'conn: loop {
        if !conn.alive.load(Ordering::Acquire) {
            break "connection closed".to_string();
        }
        match stream.read(&mut scratch) {
            Ok(0) => break "server closed the connection".to_string(),
            Ok(n) => {
                wire_in.fetch_add(n as u64, Ordering::Relaxed);
                buf.extend_from_slice(&scratch[..n]);
                loop {
                    match try_decode_frame(&buf[start..], WireVersion::V2) {
                        Ok(None) => break,
                        Ok(Some((frame, used))) => {
                            start += used;
                            route_reply(conn, frame, &mut partials);
                        }
                        Err(e) => break 'conn format!("protocol error: {e}"),
                    }
                }
                if start > 4096 && start * 2 >= buf.len() {
                    buf.drain(..start);
                    start = 0;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(e) => break format!("read failed: {e}"),
        }
    };
    conn.fail_all(&reason);
    gauge.add(-1.0);
}

/// Routes one decoded response frame on the reader thread.
fn route_reply(conn: &V2Conn, frame: Frame, partials: &mut HashMap<u64, Partial>) {
    let id = frame.request_id;
    match frame.opcode {
        Opcode::Chunk => {
            let Some(partial) = partials.get_mut(&id) else { return };
            if frame.payload.is_empty()
                || partial.data.len() as u64 + frame.payload.len() as u64 > partial.want
            {
                if let Some(partial) = partials.remove(&id) {
                    let _ = partial
                        .tx
                        .send(ConnEvent::Failed("chunk overruns announced length".to_string()));
                }
                return;
            }
            partial.data.extend_from_slice(&frame.payload);
            if partial.data.len() as u64 == partial.want {
                let Some(done) = partials.remove(&id) else { return };
                let _ = done.tx.send(ConnEvent::Reply(done.frame, Some(done.data)));
            }
        }
        Opcode::Ok => {
            let Some(entry) = conn.pending.lock().remove(&id) else { return };
            let announced = frame.header.get("len").and_then(Value::as_u64);
            match announced {
                Some(len) if entry.wants_blob && len > 0 => {
                    partials.insert(id, Partial { frame, want: len, data: Vec::new(), tx: entry.tx });
                }
                Some(_) if entry.wants_blob => {
                    let _ = entry.tx.send(ConnEvent::Reply(frame, Some(Vec::new())));
                }
                _ => {
                    let _ = entry.tx.send(ConnEvent::Reply(frame, None));
                }
            }
        }
        Opcode::Err | Opcode::Busy => {
            partials.remove(&id);
            let Some(entry) = conn.pending.lock().remove(&id) else { return };
            let _ = entry.tx.send(ConnEvent::Reply(frame, None));
        }
        // The server never sends request opcodes; a stray one is dropped
        // rather than poisoning every in-flight request on the socket.
        _ => {}
    }
}

/// The registry server's metrics snapshot, decoded from the `Stats` reply.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Requests served across all opcodes.
    pub total_requests: u64,
    /// Raw socket bytes the server received.
    pub bytes_in: u64,
    /// Raw socket bytes the server sent.
    pub bytes_out: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered with `Busy` by admission control.
    pub load_shed: u64,
    /// Requests in flight when the snapshot was taken.
    pub inflight: u64,
    /// Per-opcode request counts, sorted by opcode name.
    pub requests_by_opcode: Vec<(String, u64)>,
    /// The undecoded snapshot, for fields this struct predates.
    pub raw: Value,
}

impl ServerStats {
    fn from_value(raw: Value) -> ServerStats {
        let get = |key: &str| raw.get(key).and_then(Value::as_u64).unwrap_or(0);
        let mut requests_by_opcode: Vec<(String, u64)> = Vec::new();
        if let Some(Value::Object(map)) = raw.get("requests") {
            for (name, count) in map {
                requests_by_opcode.push((name.clone(), count.as_u64().unwrap_or(0)));
            }
        }
        requests_by_opcode.sort();
        ServerStats {
            total_requests: get("total_requests"),
            bytes_in: get("bytes_in"),
            bytes_out: get("bytes_out"),
            connections: get("connections"),
            load_shed: get("load_shed"),
            inflight: get("inflight"),
            requests_by_opcode,
            raw,
        }
    }
}

/// One model's lineage record, decoded from a `LineageGet` /
/// `LineageAncestry` reply.
#[derive(Debug, Clone)]
pub struct LineageNode {
    /// The model this record describes.
    pub model: String,
    /// Parent model id, if the model was derived from one.
    pub parent: Option<String>,
    /// Save approach recorded at derivation (`param_update`, ...).
    pub approach: Option<String>,
    /// Relation to the parent (`fine_tuned`, `distilled`, ...).
    pub relation: Option<String>,
    /// Content root hash recorded for the version, when present.
    pub root_hash: Option<String>,
    /// The undecoded record, for fields this struct predates.
    pub raw: Value,
}

impl LineageNode {
    fn from_value(raw: Value) -> LineageNode {
        let get = |key: &str| {
            raw.get(key).and_then(Value::as_str).map(str::to_string)
        };
        LineageNode {
            model: get("model").unwrap_or_default(),
            parent: get("parent"),
            approach: get("approach"),
            relation: get("relation"),
            root_hash: get("root_hash"),
            raw,
        }
    }
}

/// Unwraps an `Ok` reply or maps an `Err` reply back to a [`StoreError`].
fn expect_ok(reply: Frame) -> Result<Value, StoreError> {
    match reply.opcode {
        Opcode::Ok => Ok(reply.header),
        Opcode::Err => {
            let code = reply.header.get("code").and_then(Value::as_str).unwrap_or("unknown");
            let message = reply
                .header
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("server error")
                .to_string();
            let id = reply.header.get("id").and_then(Value::as_str);
            match (code, id) {
                ("missing_document", Some(id)) => {
                    Err(StoreError::MissingDocument(DocId::from_string(id.to_string())))
                }
                ("missing_file", Some(id)) => {
                    Err(StoreError::MissingFile(FileId::from_string(id.to_string())))
                }
                _ => Err(StoreError::Remote(format!("{code}: {message}"))),
            }
        }
        other => Err(StoreError::Remote(format!(
            "unexpected reply opcode {}",
            other.name()
        ))),
    }
}

/// Whether a request opcode's `Ok` reply announces a streamed blob.
fn wants_blob(request: Opcode) -> bool {
    request == Opcode::FileGet
}

/// Bytes a document occupies in the registry's store. The server persists
/// `to_vec_pretty(&doc)`, so serializing the same document client-side gives
/// the identical size — keeping the paper's storage-consumption metric
/// transport-invariant (a save "costs" the same whether measured against a
/// local directory or through the wire).
fn doc_stored_bytes(doc: &Document) -> u64 {
    serde_json::to_vec_pretty(doc).map(|b| b.len() as u64).unwrap_or(0)
}

fn remote(e: WireError) -> StoreError {
    StoreError::Remote(e.to_string())
}

impl StorageBackend for RemoteStore {
    fn insert_doc(&self, kind: &str, body: Value) -> Result<DocId, StoreError> {
        let reply = self.request(Frame::new(
            Opcode::DocInsert,
            json!({"kind": kind, "body": body.clone()}),
        ))?;
        let header = expect_ok(reply)?;
        let id = DocId::from_string(header_str(&header, "id").map_err(remote)?.to_string());
        let doc = Document { id: id.clone(), kind: kind.to_string(), body };
        self.bytes_written.fetch_add(doc_stored_bytes(&doc), Ordering::Relaxed);
        Ok(id)
    }

    fn get_doc(&self, id: &DocId) -> Result<Document, StoreError> {
        let reply = self.request(Frame::new(Opcode::DocGet, json!({"id": id.as_str()})))?;
        let header = expect_ok(reply)?;
        let body = header
            .get("body")
            .cloned()
            .ok_or_else(|| StoreError::Remote("doc reply missing body".to_string()))?;
        let doc = Document {
            id: DocId::from_string(header_str(&header, "id").map_err(remote)?.to_string()),
            kind: header_str(&header, "kind").map_err(remote)?.to_string(),
            body,
        };
        self.bytes_read.fetch_add(doc_stored_bytes(&doc), Ordering::Relaxed);
        Ok(doc)
    }

    fn update_doc(&self, id: &DocId, body: Value) -> Result<(), StoreError> {
        let reply = self.request(Frame::new(
            Opcode::DocUpdate,
            json!({"id": id.as_str(), "body": body.clone()}),
        ))?;
        let header = expect_ok(reply)?;
        // The reply carries the document's kind so the new stored size can
        // be accounted like a local write. (The update's internal re-read of
        // the old document is not mirrored — sizes of past versions are
        // unknown here — which only affects bytes_read, never the paper's
        // bytes_written storage metric.)
        if let Some(kind) = header.get("kind").and_then(Value::as_str) {
            let doc = Document { id: id.clone(), kind: kind.to_string(), body };
            self.bytes_written.fetch_add(doc_stored_bytes(&doc), Ordering::Relaxed);
        }
        Ok(())
    }

    fn contains_doc(&self, id: &DocId) -> bool {
        self.request(Frame::new(Opcode::DocContains, json!({"id": id.as_str()})))
            .ok()
            .and_then(|reply| expect_ok(reply).ok())
            .and_then(|h| h.get("present").and_then(Value::as_bool))
            .unwrap_or(false)
    }

    fn remove_doc(&self, id: &DocId) -> Result<(), StoreError> {
        let reply = self.request(Frame::new(Opcode::DocRemove, json!({"id": id.as_str()})))?;
        expect_ok(reply).map(|_| ())
    }

    fn doc_ids(&self) -> Result<Vec<DocId>, StoreError> {
        let reply = self.request(Frame::new(Opcode::DocIds, json!({})))?;
        let header = expect_ok(reply)?;
        let ids = header
            .get("ids")
            .and_then(Value::as_array)
            .ok_or_else(|| StoreError::Remote("ids reply missing list".to_string()))?;
        ids.iter()
            .map(|v| {
                v.as_str()
                    .map(|s| DocId::from_string(s.to_string()))
                    .ok_or_else(|| StoreError::Remote("non-string id in list".to_string()))
            })
            .collect()
    }

    fn put_file(&self, bytes: &[u8]) -> Result<FileId, StoreError> {
        let announce = Frame::new(Opcode::FilePut, json!({"len": bytes.len() as u64}));
        // One copy at the trait boundary (the backend only lends a slice);
        // every attempt and chunk frame below slices this same buffer.
        let (reply, _) = self.request_blob(announce, Some(Bytes::copy_from_slice(bytes)))?;
        let header = expect_ok(reply)?;
        let id = header_str(&header, "id").map_err(remote)?;
        Ok(FileId::from_string(id.to_string()))
    }

    fn get_file(&self, id: &FileId) -> Result<Vec<u8>, StoreError> {
        let request = Frame::new(Opcode::FileGet, json!({"id": id.as_str()}));
        let (reply, blob) = self.request_blob(request, None)?;
        let header = expect_ok(reply)?;
        let len = header_u64(&header, "len").map_err(remote)?;
        let blob =
            blob.ok_or_else(|| StoreError::Remote("file reply announced no blob".to_string()))?;
        if blob.len() as u64 != len {
            return Err(StoreError::Remote(format!(
                "file reply announced {len} bytes but streamed {}",
                blob.len()
            )));
        }
        Ok(blob)
    }

    fn file_size(&self, id: &FileId) -> Result<u64, StoreError> {
        let reply = self.request(Frame::new(Opcode::FileSize, json!({"id": id.as_str()})))?;
        let header = expect_ok(reply)?;
        header_u64(&header, "len").map_err(remote)
    }

    fn contains_file(&self, id: &FileId) -> bool {
        self.request(Frame::new(Opcode::FileContains, json!({"id": id.as_str()})))
            .ok()
            .and_then(|reply| expect_ok(reply).ok())
            .and_then(|h| h.get("present").and_then(Value::as_bool))
            .unwrap_or(false)
    }

    fn remove_file(&self, id: &FileId) -> Result<(), StoreError> {
        let reply = self.request(Frame::new(Opcode::FileRemove, json!({"id": id.as_str()})))?;
        expect_ok(reply).map(|_| ())
    }

    fn file_ids(&self) -> Result<Vec<FileId>, StoreError> {
        let reply = self.request(Frame::new(Opcode::FileIds, json!({})))?;
        let header = expect_ok(reply)?;
        let ids = header
            .get("ids")
            .and_then(Value::as_array)
            .ok_or_else(|| StoreError::Remote("ids reply missing list".to_string()))?;
        ids.iter()
            .map(|v| {
                v.as_str()
                    .map(|s| FileId::from_string(s.to_string()))
                    .ok_or_else(|| StoreError::Remote("non-string id in list".to_string()))
            })
            .collect()
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

/// Cheap xorshift jitter source. Retry spreading only — never used on a
/// reproducibility-sensitive path (simulated results use no randomness).
struct Jitter {
    state: AtomicU64,
}

impl Jitter {
    fn new() -> Jitter {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            | 1;
        Jitter { state: AtomicU64::new(seed) }
    }

    /// Uniform-ish fraction in [0, 1).
    fn next_fraction(&self) -> f64 {
        let mut x = self.state.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state.store(x, Ordering::Relaxed);
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}
