//! Distributed-environment simulation for the mmlib reproduction.
//!
//! The paper evaluates its approaches over *evaluation flows* (§4.1, §4.6):
//! sequences of the four use cases of Fig. 3 executed by a central server
//! and one or more nodes that share a document database and file system.
//!
//! * **U1** — the server develops an initial model and distributes it.
//! * **U2** — the server improves the model and deploys the update.
//! * **U3** — a node retrains its model on locally collected data and saves
//!   the derived model.
//! * **U4** — the server losslessly recovers any saved model.
//!
//! The *standard* flow is `U1, 4×U3, U2, 4×U3` on one node (10 models); the
//! distributed flows DIST-5/10/20 run ten U3 iterations per phase on 5/10/20
//! concurrent nodes (102/202/402 models — paper Table 3).
//!
//! Modules:
//! * [`flow`] — flow configuration and execution, producing per-save and
//!   per-recover records (storage bytes, TTS, TTR with breakdown).
//! * [`metrics`] — aggregation helpers (medians per use case, per node).

#![forbid(unsafe_code)]

pub mod flow;
pub mod metrics;

pub use flow::{
    recover_flow_family, run_flow_with_faulty_tcp, FlowConfig, FlowKind, FlowResult,
    RecoverRecord, SaveRecord, TrainParams, Transport,
};
pub use metrics::{median_duration, MedianSeries};
