//! Aggregation helpers for flow results.
//!
//! The paper reports *median* times over five runs of each experiment and,
//! for the distributed flows, aggregates per use-case iteration "by taking
//! the median time of all nodes" (§4.6).

use std::collections::BTreeMap;
use std::time::Duration;

use crate::flow::{FlowResult, RecoverRecord, SaveRecord};

/// Median of a duration sample (empty → zero).
pub fn median_duration(mut samples: Vec<Duration>) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

/// Median of a u64 sample (empty → zero).
pub fn median_u64(mut samples: Vec<u64>) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

/// A per-use-case median series: use-case label → value, in flow order.
#[derive(Debug, Clone, Default)]
pub struct MedianSeries {
    entries: Vec<(String, f64)>,
}

impl MedianSeries {
    /// The `(use_case, value)` pairs in flow order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Value for a use-case label, if present.
    pub fn get(&self, use_case: &str) -> Option<f64> {
        self.entries.iter().find(|(u, _)| u == use_case).map(|(_, v)| *v)
    }
}

/// Canonical flow order of use-case labels.
fn use_case_order(label: &str) -> (u8, u8, u8) {
    if label == "U1" {
        return (0, 0, 0);
    }
    if label == "U2" {
        return (2, 0, 0);
    }
    // U3-<phase>-<n>
    let mut parts = label.split('-');
    let _ = parts.next();
    let phase: u8 = parts.next().and_then(|p| p.parse().ok()).unwrap_or(9);
    let n: u8 = parts.next().and_then(|p| p.parse().ok()).unwrap_or(99);
    (if phase == 1 { 1 } else { 3 }, phase, n)
}

fn grouped<T, F: Fn(&T) -> (&str, f64)>(records: &[T], f: F) -> MedianSeries {
    let mut groups: BTreeMap<(u8, u8, u8), (String, Vec<f64>)> = BTreeMap::new();
    for r in records {
        let (label, value) = f(r);
        groups
            .entry(use_case_order(label))
            .or_insert_with(|| (label.to_string(), Vec::new()))
            .1
            .push(value);
    }
    let entries = groups
        .into_values()
        .map(|(label, mut vs)| {
            vs.sort_unstable_by(|a, b| a.total_cmp(b));
            let mid = vs.len() / 2;
            let median = if vs.len() % 2 == 1 { vs[mid] } else { (vs[mid - 1] + vs[mid]) / 2.0 };
            (label, median)
        })
        .collect();
    MedianSeries { entries }
}

/// Per-use-case median TTS in milliseconds (over nodes within one run, or
/// over nodes × runs when results are concatenated).
pub fn tts_series(saves: &[SaveRecord]) -> MedianSeries {
    grouped(saves, |s| (s.use_case.as_str(), s.tts.as_secs_f64() * 1e3))
}

/// Per-use-case median storage bytes.
pub fn storage_series(saves: &[SaveRecord]) -> MedianSeries {
    grouped(saves, |s| (s.use_case.as_str(), s.storage_bytes as f64))
}

/// Per-use-case median TTR in milliseconds.
pub fn ttr_series(recovers: &[RecoverRecord]) -> MedianSeries {
    grouped(recovers, |r| (r.use_case.as_str(), r.ttr.as_secs_f64() * 1e3))
}

/// Concatenates several runs' results (for cross-run medians).
pub fn concat_results(runs: &[FlowResult]) -> FlowResult {
    let mut out = FlowResult::default();
    for r in runs {
        out.saves.extend(r.saves.iter().cloned());
        out.recovers.extend(r.recovers.iter().cloned());
    }
    out
}

/// Sums the per-phase save breakdowns of a whole flow: total time spent
/// hashing, diffing, serializing, compressing, packing, and writing across
/// every save, in first-seen phase order.
pub fn save_phase_totals(saves: &[SaveRecord]) -> mmlib_obs::PhaseBreakdown {
    let mut total = mmlib_obs::PhaseBreakdown::new();
    for s in saves {
        total.merge(&s.phases);
    }
    total
}

/// Sums the per-phase recover breakdowns of a whole flow (fetch / rebuild /
/// check_env / verify).
pub fn recover_phase_totals(recovers: &[RecoverRecord]) -> mmlib_obs::PhaseBreakdown {
    let mut total = mmlib_obs::PhaseBreakdown::new();
    for r in recovers {
        total.merge(&r.phases);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_duration_odd_even_empty() {
        assert_eq!(median_duration(vec![]), Duration::ZERO);
        assert_eq!(
            median_duration(vec![Duration::from_secs(3), Duration::from_secs(1), Duration::from_secs(2)]),
            Duration::from_secs(2)
        );
        assert_eq!(
            median_duration(vec![Duration::from_secs(1), Duration::from_secs(3)]),
            Duration::from_secs(2)
        );
    }

    #[test]
    fn median_u64_works() {
        assert_eq!(median_u64(vec![]), 0);
        assert_eq!(median_u64(vec![5, 1, 9]), 5);
        assert_eq!(median_u64(vec![4, 8]), 6);
    }

    #[test]
    fn use_case_order_sorts_flow_labels() {
        let labels = ["U2", "U3-1-2", "U1", "U3-2-1", "U3-1-10", "U3-1-1"];
        let mut sorted = labels.to_vec();
        sorted.sort_by_key(|l| use_case_order(l));
        assert_eq!(sorted, ["U1", "U3-1-1", "U3-1-2", "U3-1-10", "U2", "U3-2-1"]);
    }
}
