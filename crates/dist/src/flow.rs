//! Evaluation-flow execution (paper §4.1 and §4.6).

use std::time::Duration;

use mmlib_core::meta::{ApproachKind, ModelRelation, SavedModelId};
use mmlib_core::{RecoverOptions, SaveRequest, SaveService, TrainProvenance};
use mmlib_obs::PhaseBreakdown;
use mmlib_data::loader::LoaderConfig;
use mmlib_data::{DataLoader, Dataset, DatasetId};
use mmlib_model::{ArchId, Model};
use mmlib_store::{ModelStorage, SimNetwork};
use mmlib_tensor::ExecMode;
use mmlib_train::{ImageNetTrainService, Sgd, SgdConfig, TrainConfig, TrainService};

/// Which evaluation flow to run (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// 1 node, 4 U3 iterations per phase → 10 models.
    Standard,
    /// 5 nodes, 10 U3 iterations per phase → 102 models.
    Dist5,
    /// 10 nodes → 202 models.
    Dist10,
    /// 20 nodes → 402 models.
    Dist20,
}

/// How model bytes travel between nodes and the registry during a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Modeled network: storage is a shared directory and transfer times
    /// come from [`SimNetwork`] accounting. No bytes move over sockets, so
    /// results are reproducible — this is the default and what the paper
    /// figures use.
    #[default]
    Sim,
    /// Real loopback TCP: a `mmlib-net` registry server fronts the storage
    /// root and every node talks to it through a remote store client. Real
    /// bytes move and network time is *real* — folded into each save's TTS
    /// rather than reported as modeled [`SaveRecord::network_time`] (which
    /// is zero under this transport). Measured wire traffic lands in
    /// [`FlowResult::transport_stats`].
    Tcp {
        /// Server worker threads (and thus max concurrent connections).
        workers: usize,
    },
}

impl FlowKind {
    /// All flows in Table 3 order.
    pub fn all() -> [FlowKind; 4] {
        [FlowKind::Standard, FlowKind::Dist5, FlowKind::Dist10, FlowKind::Dist20]
    }

    /// The paper's flow name.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::Standard => "STANDARD",
            FlowKind::Dist5 => "DIST-5",
            FlowKind::Dist10 => "DIST-10",
            FlowKind::Dist20 => "DIST-20",
        }
    }

    /// Node count (Table 3).
    pub fn nodes(self) -> usize {
        match self {
            FlowKind::Standard => 1,
            FlowKind::Dist5 => 5,
            FlowKind::Dist10 => 10,
            FlowKind::Dist20 => 20,
        }
    }

    /// U3 iterations per phase (4 for standard, 10 for distributed flows).
    pub fn u3_iterations(self) -> usize {
        match self {
            FlowKind::Standard => 4,
            _ => 10,
        }
    }

    /// Total models one run saves: `2 + nodes × 2 × iterations` (Table 3).
    pub fn total_models(self) -> usize {
        2 + self.nodes() * 2 * self.u3_iterations()
    }
}

/// Training-cost knobs.
///
/// The paper trains U2 for ten epochs on ImageNet-val and each U3 for five
/// epochs on a COCO subset, on a GPU cluster; it also *simulates* MPA
/// training replays with "two epochs with two batches" (§4.4) to keep the
/// evaluation feasible. These knobs are that same feasibility lever: the
/// defaults keep a flow run laptop-sized while preserving every structural
/// property (per-model training, per-chain replay cost, deterministic
/// replays).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainParams {
    /// Images per batch.
    pub batch_size: usize,
    /// Decode resolution.
    pub resolution: usize,
    /// Epochs per U3 training.
    pub epochs: u64,
    /// Batch cap per epoch.
    pub max_batches_per_epoch: Option<u64>,
    /// Optimizer hyper-parameters.
    pub sgd: SgdConfig,
    /// Execution mode for training (deterministic is required whenever the
    /// provenance approach is in use).
    pub mode: ExecMode,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            batch_size: 2,
            resolution: 32,
            epochs: 1,
            max_batches_per_epoch: Some(2),
            // The paper assumes "all trainable parameters will change at
            // least marginally" during a retraining. At this scaled-down
            // training length, pure gradient steps vanish below f32
            // resolution for early layers of deep networks; the standard
            // CNN-recipe weight decay (as torchvision training uses) moves
            // every nonzero weight multiplicatively, keeping the paper's
            // assumption true without affecting any timing/storage path.
            // The learning rate stays moderate: an aggressive rate diverges
            // random-init nets to NaN, whose bit patterns then stop changing.
            sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-3, max_grad_norm: Some(1.0) },
            mode: ExecMode::Deterministic,
        }
    }
}

/// Configuration of one experiment: a flow for a given approach, model
/// architecture, model relation, and U3 dataset (paper §4.1 "one experiment
/// is a full run of the evaluation flow for a given approach, model
/// architecture, model relation, and dataset").
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Which flow (node count / iteration count).
    pub kind: FlowKind,
    /// Save/recover approach under test.
    pub approach: ApproachKind,
    /// Model architecture.
    pub arch: ArchId,
    /// Relation of U2/U3 models to their bases.
    pub relation: ModelRelation,
    /// Dataset used in U3 (CF-512 or CO-512).
    pub u3_dataset: DatasetId,
    /// Dataset used in U2 (the paper uses INet_val; for the provenance
    /// approach it stores the smaller mINet_val, §4.1).
    pub u2_dataset: DatasetId,
    /// Byte-size scale applied to all datasets.
    pub dataset_scale: f64,
    /// Training cost knobs.
    pub train: TrainParams,
    /// Base RNG seed for the whole flow.
    pub seed: u64,
    /// Whether U4 (recover every saved model) runs at the end.
    pub recover_all: bool,
}

impl FlowConfig {
    /// A laptop-sized standard-flow configuration.
    pub fn standard(approach: ApproachKind, arch: ArchId, relation: ModelRelation) -> FlowConfig {
        FlowConfig {
            kind: FlowKind::Standard,
            approach,
            arch,
            relation,
            u3_dataset: DatasetId::CocoFood512,
            u2_dataset: if approach == ApproachKind::Provenance {
                DatasetId::MiniINetVal
            } else {
                DatasetId::INetVal
            },
            dataset_scale: 1.0 / 1024.0,
            train: TrainParams::default(),
            seed: 0,
            recover_all: true,
        }
    }
}

/// One saved model's record.
#[derive(Debug, Clone)]
pub struct SaveRecord {
    /// Use-case label (`"U1"`, `"U3-1-2"`, `"U2"` ...).
    pub use_case: String,
    /// Node index (0 = server).
    pub node: usize,
    /// The saved model id.
    pub id: SavedModelId,
    /// Bytes written by this save (excluding the base model, §4.2).
    pub storage_bytes: u64,
    /// Time-to-save.
    pub tts: Duration,
    /// Per-phase breakdown of the save (hash / diff / serialize / compress /
    /// pack / write), straight from the [`mmlib_core::SaveReport`].
    pub phases: PhaseBreakdown,
    /// Durability sync operations (payload fdatasync / directory fsync)
    /// this save issued. Unlike wall-clock write time, this is independent
    /// of device throughput, so the bench gate reads it to hold the
    /// batch-commit coalescing win.
    pub sync_ops: u64,
    /// Simulated network transfer time for shipping this model's data over
    /// the cluster link (reported separately; never slept).
    pub network_time: Duration,
}

/// One recovery's record (U4).
#[derive(Debug, Clone)]
pub struct RecoverRecord {
    /// Use-case label of the recovered model.
    pub use_case: String,
    /// Node index the model was saved from.
    pub node: usize,
    /// Time-to-recover (total).
    pub ttr: Duration,
    /// Per-step breakdown (load / recover / check-env / verify).
    pub breakdown: mmlib_core::RecoverBreakdown,
    /// The same steps as named recovery phases (fetch / rebuild / check_env
    /// / verify), straight from the [`mmlib_core::RecoverReport`].
    pub phases: PhaseBreakdown,
    /// Chain length resolved during recovery.
    pub recovered_bases: u32,
}

/// The outcome of one flow run.
#[derive(Debug, Clone, Default)]
pub struct FlowResult {
    /// Every save, in execution order.
    pub saves: Vec<SaveRecord>,
    /// Every recovery (empty if `recover_all` was off).
    pub recovers: Vec<RecoverRecord>,
    /// Registry-server metrics snapshot (per-opcode request counts, wire
    /// bytes) when the flow ran over [`Transport::Tcp`]; `None` under
    /// [`Transport::Sim`].
    pub transport_stats: Option<serde_json::Value>,
}

/// Node-local state while a flow runs.
struct NodeState {
    service: SaveService,
    model: Model,
    base: SavedModelId,
}

/// The flow's internal network-time source: modeled under
/// [`Transport::Sim`], nothing under [`Transport::Tcp`] (real transfer time
/// is already inside each measured TTS).
enum NetModel {
    Sim(SimNetwork),
    Real,
}

impl NetModel {
    fn record_transfer(&self, bytes: u64) -> Duration {
        match self {
            NetModel::Sim(network) => network.record_transfer(bytes),
            NetModel::Real => Duration::ZERO,
        }
    }
}

/// Executes one evaluation flow over the default [`Transport::Sim`] and
/// returns its records.
///
/// Storage is a shared directory (the paper's MongoDB + shared FS); every
/// node opens its own handle so per-save byte accounting stays per-node.
/// Distributed flows run their nodes on concurrent OS threads.
pub fn run_flow(config: &FlowConfig, storage_root: &std::path::Path) -> FlowResult {
    run_flow_with_transport(config, storage_root, Transport::Sim)
}

/// Executes one evaluation flow over an explicit transport.
///
/// Under [`Transport::Tcp`] a `mmlib-net` registry server is spun up on
/// loopback over `storage_root` and the server plus every node talk to it
/// through remote store clients — real bytes on real sockets. The server is
/// shut down (and its metrics snapshotted into
/// [`FlowResult::transport_stats`]) before returning.
pub fn run_flow_with_transport(
    config: &FlowConfig,
    storage_root: &std::path::Path,
    transport: Transport,
) -> FlowResult {
    match transport {
        Transport::Sim => {
            let net = NetModel::Sim(SimNetwork::infiniband_100g());
            let make_storage = || {
                // mmlib-lint: allow(P1, flow harness aborts on unusable experiment storage by design)
                ModelStorage::open(storage_root).expect("storage root must be writable")
            };
            run_flow_inner(config, &make_storage, &net)
        }
        Transport::Tcp { workers } => run_flow_tcp(config, storage_root, workers, None),
    }
}

/// Executes one flow over loopback TCP against a registry server that
/// injects the given network faults (dropped replies, truncated frames,
/// connection resets) — the distributed half of the fault-injection rig.
/// The nodes' retry loops must absorb every fault, so the flow's records
/// come out exactly as they would against a healthy server; what faults
/// *do* leave behind are at-least-once duplicates in the backing store,
/// which `mmlib fsck` finds as orphans.
///
/// Takes the faults as an [`Arc`] so callers keep a handle for inspecting
/// the injectors after the flow.
pub fn run_flow_with_faulty_tcp(
    config: &FlowConfig,
    storage_root: &std::path::Path,
    workers: usize,
    faults: std::sync::Arc<mmlib_net::NetFaults>,
) -> FlowResult {
    run_flow_tcp(config, storage_root, workers, Some(faults))
}

fn run_flow_tcp(
    config: &FlowConfig,
    storage_root: &std::path::Path,
    workers: usize,
    faults: Option<std::sync::Arc<mmlib_net::NetFaults>>,
) -> FlowResult {
    // mmlib-lint: allow(P1, flow harness aborts on unusable experiment storage by design)
    let backing = ModelStorage::open(storage_root).expect("storage root must be writable");
    // Workers are execution shards, not a connection cap — the v2 server
    // multiplexes any number of connections over its I/O threads. Still
    // honour the caller's figure as the shard count floor.
    let shards = mmlib_net::ShardConfig { workers: workers.max(1) };
    let mut server = mmlib_net::RegistryServer::bind_with_config(
        backing,
        "127.0.0.1:0",
        mmlib_net::ServerConfig { shards, faults, ..Default::default() },
    )
    // mmlib-lint: allow(P1, flow harness aborts when the loopback server cannot bind)
    .expect("bind loopback registry server");
    let addr = server.addr();
    let make_storage = move || {
        mmlib_net::RemoteStore::builder(addr)
            .build()
            // mmlib-lint: allow(P1, flow harness aborts when the loopback server is unreachable)
            .expect("connect to loopback registry")
            .into_storage()
    };
    let mut result = run_flow_inner(config, &make_storage, &NetModel::Real);
    result.transport_stats = Some(server.metrics().snapshot());
    server.shutdown();
    result
}

/// Transport-agnostic flow body; `make_storage` yields one storage handle
/// per participant (server or node).
fn run_flow_inner(
    config: &FlowConfig,
    make_storage: &dyn Fn() -> ModelStorage,
    network: &NetModel,
) -> FlowResult {
    let server = SaveService::new(make_storage());

    let mut result = FlowResult::default();

    // ---- U1: initial model, saved with full-snapshot logic by every
    // approach (§3.2/§3.3: "saves the first model with the same logic the
    // BA uses").
    let mut initial = Model::new_initialized(config.arch, config.seed);
    initial.set_fully_trainable();
    let syncs_before = server.storage().sync_ops();
    // mmlib-lint: allow(P1, a failed save invalidates the whole experiment; the harness aborts)
    let u1 = server.save(SaveRequest::full(&initial).relation("initial")).expect("U1 save");
    let sync_ops = server.storage().sync_ops() - syncs_before;
    // Distribute the initial model to every node over the cluster link.
    let network_time = (0..config.kind.nodes())
        .map(|_| network.record_transfer(u1.storage_bytes))
        .sum();
    let u1_id = u1.id.clone();
    result.saves.push(SaveRecord {
        use_case: "U1".into(),
        node: 0,
        id: u1.id,
        storage_bytes: u1.storage_bytes,
        tts: u1.tts,
        phases: u1.phases,
        sync_ops,
        network_time,
    });

    // ---- Phase 1: U3 iterations on every node, starting from U1.
    let states = make_node_states(config, make_storage, &initial, &u1_id);
    let phase1 = run_u3_phase_with_states(config, states, 1, network);
    let mut node_states = Vec::new();
    for (records, state) in phase1 {
        result.saves.extend(records);
        node_states.push(state);
    }

    // ---- U2: the server improves the initial model and deploys it.
    let u2_seed = config.seed ^ 0x5532;
    let (u2_model, u2_record) = {
        let mut model = clone_model(&initial);
        model.arch = config.arch;
        config.relation.apply_trainability(&mut model);
        let record = train_and_save(
            config,
            &server,
            &mut model,
            &u1_id,
            config.u2_dataset,
            u2_seed,
            "U2",
            0,
            network,
        );
        (model, record)
    };
    let u2_id = u2_record.id.clone();
    result.saves.push(u2_record);

    // ---- Phase 2: U3 iterations on every node, starting from U2's model.
    for state in &mut node_states {
        state.model = clone_model(&u2_model);
        state.base = u2_id.clone();
    }
    let phase2 = run_u3_phase_with_states(config, node_states, 2, network);
    for (records, _) in phase2 {
        result.saves.extend(records);
    }

    // ---- U4: recover every saved model from the server.
    if config.recover_all {
        for save in &result.saves {
            let report = server
                .recover_report(&save.id, RecoverOptions::default())
                // mmlib-lint: allow(P1, a failed recovery invalidates the whole experiment; the harness aborts)
                .expect("U4 recovery must succeed");
            result.recovers.push(RecoverRecord {
                use_case: save.use_case.clone(),
                node: save.node,
                ttr: report.ttr,
                recovered_bases: report.breakdown.recovered_bases,
                breakdown: report.breakdown,
                phases: report.phases,
            });
        }
    }

    result
}

/// Recovers every model a finished flow saved as one lineage *family*.
///
/// All of a flow's chains hang off the U1 snapshot (phase 1) or the U2
/// model (phase 2), so per-model U4 recovery rebuilds those shared
/// ancestors once per chain. Batch family recovery over the same save set
/// materializes each distinct ancestor exactly once — the win the lineage
/// DAG buys the distributed flows, where a server restores a whole
/// fleet's models in one pass.
pub fn recover_flow_family(
    service: &SaveService,
    result: &FlowResult,
    verify: bool,
) -> Result<mmlib_lineage::FamilyRecovery, mmlib_core::CoreError> {
    let ids: Vec<SavedModelId> = result.saves.iter().map(|s| s.id.clone()).collect();
    mmlib_lineage::Lineage::new(service).recover_family(&ids, verify)
}

/// Builds fresh node states all starting from `start_model`/`base`.
fn make_node_states(
    config: &FlowConfig,
    make_storage: &dyn Fn() -> ModelStorage,
    start_model: &Model,
    base: &SavedModelId,
) -> Vec<NodeState> {
    (0..config.kind.nodes())
        .map(|_| {
            let storage = make_storage();
            let mut model = clone_model(start_model);
            config.relation.apply_trainability(&mut model);
            NodeState { service: SaveService::new(storage), model, base: base.clone() }
        })
        .collect()
}

/// Runs one U3 phase over prepared node states; nodes execute concurrently
/// (one OS thread per node, as in the paper's multi-node experiments).
/// Returns each node's save records together with its final state.
fn run_u3_phase_with_states(
    config: &FlowConfig,
    states: Vec<NodeState>,
    phase: usize,
    network: &NetModel,
) -> Vec<(Vec<SaveRecord>, NodeState)> {
    let iterations = config.kind.u3_iterations();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = states
            .into_iter()
            .enumerate()
            .map(|(node_idx, mut state)| {
                scope.spawn(move |_| {
                    let mut records = Vec::with_capacity(iterations);
                    for n in 1..=iterations {
                        let seed = config.seed
                            ^ ((phase as u64) << 32)
                            ^ ((node_idx as u64) << 16)
                            ^ n as u64;
                        config.relation.apply_trainability(&mut state.model);
                        let label = format!("U3-{phase}-{n}");
                        let record = train_and_save(
                            config,
                            &state.service,
                            &mut state.model,
                            &state.base,
                            config.u3_dataset,
                            seed,
                            &label,
                            node_idx + 1,
                            network,
                        );
                        state.base = record.id.clone();
                        records.push(record);
                    }
                    (records, state)
                })
            })
            .collect();
        handles
            .into_iter()
            // mmlib-lint: allow(P1, a panicked node thread invalidates the experiment; propagate it)
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    })
    // mmlib-lint: allow(P1, a panicked node scope invalidates the experiment; propagate it)
    .expect("node scope panicked")
}

/// Trains the node/server model on `dataset` and saves it with the
/// configured approach; returns the save record. Training time is NOT part
/// of TTS (the paper's TTS covers extraction + persistence only).
#[allow(clippy::too_many_arguments)]
fn train_and_save(
    config: &FlowConfig,
    service: &SaveService,
    model: &mut Model,
    base: &SavedModelId,
    dataset_id: DatasetId,
    seed: u64,
    label: &str,
    node: usize,
    network: &NetModel,
) -> SaveRecord {
    let loader_config = LoaderConfig {
        batch_size: config.train.batch_size,
        resolution: config.train.resolution,
        shuffle: true,
        augment: true,
        seed,
        max_images: config
            .train
            .max_batches_per_epoch
            .map(|b| b * config.train.batch_size as u64),
    };
    let train_config = TrainConfig {
        epochs: config.train.epochs,
        max_batches_per_epoch: config.train.max_batches_per_epoch,
        seed,
        mode: config.train.mode,
    };
    let dataset = Dataset::new(dataset_id, config.dataset_scale);
    let loader = DataLoader::new(dataset, loader_config);

    // Each retraining constructs a fresh optimizer, as the paper's per-use-
    // case training runs do: the pre-training state file is therefore empty
    // and the provenance save is dominated by the dataset (paper Fig. 9).
    let optimizer = Sgd::new(config.train.sgd);
    let optimizer_state_before = optimizer.state_bytes();

    // The (untimed) training itself.
    let mut svc = ImageNetTrainService::new(loader, optimizer, train_config);
    svc.train(model);

    let relation_str = match config.relation {
        // mmlib-lint: allow(P1, flow configs never train the initial relation; harness invariant)
        ModelRelation::Initial => unreachable!("U2/U3 models always have a base"),
        ModelRelation::FullyUpdated => "fully_updated",
        ModelRelation::PartiallyUpdated => "partially_updated",
    };

    // The timed save: one SaveRequest per approach, and the report carries
    // TTS, bytes, and the per-phase breakdown — no external stopwatch.
    let prov;
    let request = match config.approach {
        ApproachKind::Baseline => SaveRequest::full(model).base(base).relation(relation_str),
        ApproachKind::ParamUpdate => SaveRequest::update(model, base).relation(relation_str),
        ApproachKind::Provenance => {
            prov = TrainProvenance {
                dataset_id,
                dataset_scale: config.dataset_scale,
                dataset_external: false,
                loader_config,
                optimizer: config.train.sgd.into(),
                optimizer_state_before,
                train_config,
                relation: config.relation,
            };
            SaveRequest::provenance(model, base, &prov)
        }
    };
    let syncs_before = service.storage().sync_ops();
    // mmlib-lint: allow(P1, a failed save invalidates the whole experiment; the harness aborts)
    let report = service.save(request).expect("flow save");
    let sync_ops = service.storage().sync_ops() - syncs_before;
    // The node informs the server / ships the update over the cluster link.
    let network_time = network.record_transfer(report.storage_bytes);

    SaveRecord {
        use_case: label.to_string(),
        node,
        id: report.id,
        storage_bytes: report.storage_bytes,
        tts: report.tts,
        phases: report.phases,
        sync_ops,
        network_time,
    }
}

/// Copies a model for distribution to a node (U1/U2 deployments).
fn clone_model(model: &Model) -> Model {
    model.duplicate()
}
