//! Integration tests of the evaluation flows: structure, correctness of
//! every recovery, and the paper's headline patterns at test scale.

use mmlib_core::meta::{ApproachKind, ModelRelation};
use mmlib_dist::flow::{run_flow, FlowConfig, FlowKind};
use mmlib_dist::metrics;
use mmlib_model::ArchId;

fn fast_config(approach: ApproachKind, relation: ModelRelation) -> FlowConfig {
    let mut config = FlowConfig::standard(approach, ArchId::ResNet18, relation);
    config.dataset_scale = 1.0 / 8192.0;
    // ResNet's stride pyramid still works at 16x16; tests don't need 32.
    config.train.resolution = 16;
    config
}

#[test]
fn table3_flow_geometry() {
    assert_eq!(FlowKind::Standard.total_models(), 10);
    assert_eq!(FlowKind::Dist5.total_models(), 102);
    assert_eq!(FlowKind::Dist10.total_models(), 202);
    assert_eq!(FlowKind::Dist20.total_models(), 402);
    assert_eq!(FlowKind::Standard.nodes(), 1);
    assert_eq!(FlowKind::Dist20.nodes(), 20);
}

#[test]
fn standard_flow_baseline_runs_and_recovers_everything() {
    let dir = tempfile::tempdir().unwrap();
    let config = fast_config(ApproachKind::Baseline, ModelRelation::FullyUpdated);
    let result = run_flow(&config, dir.path());
    assert_eq!(result.saves.len(), 10);
    assert_eq!(result.recovers.len(), 10);
    let labels: Vec<&str> = result.saves.iter().map(|s| s.use_case.as_str()).collect();
    assert_eq!(
        labels,
        ["U1", "U3-1-1", "U3-1-2", "U3-1-3", "U3-1-4", "U2", "U3-2-1", "U3-2-2", "U3-2-3", "U3-2-4"]
    );
    // Baseline recoveries never resolve a chain.
    assert!(result.recovers.iter().all(|r| r.recovered_bases == 0));
}

#[test]
fn baseline_storage_is_constant_across_use_cases() {
    let dir = tempfile::tempdir().unwrap();
    let config = fast_config(ApproachKind::Baseline, ModelRelation::PartiallyUpdated);
    let result = run_flow(&config, dir.path());
    let sizes: Vec<u64> = result.saves.iter().map(|s| s.storage_bytes).collect();
    let min = *sizes.iter().min().unwrap();
    let max = *sizes.iter().max().unwrap();
    // §4.2: "neither the use case nor the model relation has an impact".
    assert!(max - min < max / 50, "baseline sizes vary too much: {sizes:?}");
}

#[test]
fn param_update_flow_shows_staircase_and_savings() {
    let dir = tempfile::tempdir().unwrap();
    let config = fast_config(ApproachKind::ParamUpdate, ModelRelation::PartiallyUpdated);
    let result = run_flow(&config, dir.path());
    assert_eq!(result.saves.len(), 10);

    // Storage: U3 updates are tiny compared to the U1 snapshot (paper: up
    // to 95.6% smaller for partial updates).
    let u1 = result.saves.iter().find(|s| s.use_case == "U1").unwrap().storage_bytes;
    for s in result.saves.iter().filter(|s| s.use_case.starts_with("U3")) {
        assert!(
            s.storage_bytes * 5 < u1,
            "{}: update ({}) should be far below the U1 snapshot ({u1})",
            s.use_case,
            s.storage_bytes
        );
    }

    // TTR: chain depth (and thus recovered_bases) grows per iteration and
    // resets shape at U2 (paper Fig. 11's two staircases).
    let depth = |uc: &str| {
        result.recovers.iter().find(|r| r.use_case == uc).unwrap().recovered_bases
    };
    assert_eq!(depth("U1"), 0);
    assert_eq!(depth("U3-1-1"), 1);
    assert_eq!(depth("U3-1-4"), 4);
    assert_eq!(depth("U2"), 1);
    assert_eq!(depth("U3-2-1"), 2);
    assert_eq!(depth("U3-2-4"), 5);
}

#[test]
fn provenance_flow_replays_exactly_and_staircases() {
    let dir = tempfile::tempdir().unwrap();
    let config = fast_config(ApproachKind::Provenance, ModelRelation::PartiallyUpdated);
    let result = run_flow(&config, dir.path());
    assert_eq!(result.saves.len(), 10);
    assert_eq!(result.recovers.len(), 10);

    // Recovery verified bit-exactness internally (verify=true); the chain
    // depths must match the PUA staircase.
    let depth = |uc: &str| {
        result.recovers.iter().find(|r| r.use_case == uc).unwrap().recovered_bases
    };
    assert_eq!(depth("U3-1-4"), 4);
    assert_eq!(depth("U3-2-4"), 5);

    // TTR is dominated by training replay and grows along the chain
    // (paper §4.4): the deepest model must cost more than the first.
    let ttr = |uc: &str| result.recovers.iter().find(|r| r.use_case == uc).unwrap().ttr;
    assert!(ttr("U3-1-4") > ttr("U3-1-1"));
}

#[test]
fn fully_updated_flow_updates_every_layer() {
    // §4.2: "for fully updated model versions ... the parameter update is
    // equivalent to a complete snapshot" — every U3 save must carry ~the
    // whole model, every iteration (including late ones, where pure
    // gradient steps vanish; weight decay keeps all layers moving).
    let dir = tempfile::tempdir().unwrap();
    let config = fast_config(ApproachKind::ParamUpdate, ModelRelation::FullyUpdated);
    let result = run_flow(&config, dir.path());
    let u1 = result.saves.iter().find(|s| s.use_case == "U1").unwrap().storage_bytes;
    for s in result.saves.iter().filter(|s| s.use_case.starts_with("U3")) {
        assert!(
            s.storage_bytes * 10 >= u1 * 9,
            "{}: full update ({}) should be ~the full snapshot ({u1})",
            s.use_case,
            s.storage_bytes
        );
    }
}

#[test]
fn family_recovery_restores_a_whole_flow_without_repeating_ancestors() {
    use mmlib_core::{RecoverOptions, SaveService};
    use mmlib_dist::flow::recover_flow_family;
    use mmlib_store::ModelStorage;

    let dir = tempfile::tempdir().unwrap();
    let config = fast_config(ApproachKind::ParamUpdate, ModelRelation::PartiallyUpdated);
    let result = run_flow(&config, dir.path());
    assert_eq!(result.saves.len(), 10);

    let service = SaveService::new(ModelStorage::open(dir.path()).unwrap());
    let family = recover_flow_family(&service, &result, true).unwrap();

    // Every save comes back, and since every ancestor in the flow is itself
    // a saved model, the family materializes exactly the 10 saved models —
    // versus the 25 chain links per-model U4 recovery resolves one by one
    // (0+1+2+3+4 in phase 1, 1+2+3+4+5 in phase 2).
    assert_eq!(family.models.len(), 10);
    assert_eq!(family.unique_nodes, 10);
    let naive: u32 = result.recovers.iter().map(|r| r.recovered_bases).sum();
    assert!(
        (family.unique_nodes as u32) < naive,
        "family recovery ({}) must beat per-model chain walks ({naive})",
        family.unique_nodes
    );

    // Byte-identical to what per-model recovery returns.
    for (id, model) in &family.models {
        let solo = service.recover(id, RecoverOptions::default()).unwrap();
        assert!(solo.model.models_equal(model), "family recovery of {id} differs");
    }
}

#[test]
fn dist5_flow_has_table3_model_count() {
    let dir = tempfile::tempdir().unwrap();
    let mut config = fast_config(ApproachKind::ParamUpdate, ModelRelation::PartiallyUpdated);
    config.kind = FlowKind::Dist5;
    config.recover_all = false; // 102 recoveries would dominate test time
    let result = run_flow(&config, dir.path());
    assert_eq!(result.saves.len(), FlowKind::Dist5.total_models());

    // Per-node storage for the same use case must be constant (§4.6).
    let series = metrics::storage_series(&result.saves);
    let u311: Vec<u64> = result
        .saves
        .iter()
        .filter(|s| s.use_case == "U3-1-1")
        .map(|s| s.storage_bytes)
        .collect();
    assert_eq!(u311.len(), 5);
    let min = *u311.iter().min().unwrap();
    let max = *u311.iter().max().unwrap();
    assert!(max - min <= max / 20, "per-node storage differs: {u311:?}");
    assert!(series.get("U3-1-1").is_some());
}

#[test]
fn median_series_orders_use_cases() {
    let dir = tempfile::tempdir().unwrap();
    let config = fast_config(ApproachKind::Baseline, ModelRelation::FullyUpdated);
    let result = run_flow(&config, dir.path());
    let series = metrics::tts_series(&result.saves);
    let labels: Vec<&str> = series.entries().iter().map(|(l, _)| l.as_str()).collect();
    assert_eq!(
        labels,
        ["U1", "U3-1-1", "U3-1-2", "U3-1-3", "U3-1-4", "U2", "U3-2-1", "U3-2-2", "U3-2-3", "U3-2-4"]
    );
}

#[test]
fn network_ledger_sees_every_save() {
    let dir = tempfile::tempdir().unwrap();
    let config = fast_config(ApproachKind::Baseline, ModelRelation::FullyUpdated);
    let result = run_flow(&config, dir.path());
    assert!(result.saves.iter().all(|s| s.network_time > std::time::Duration::ZERO));
}

#[test]
fn dist5_flow_runs_end_to_end_over_tcp() {
    use mmlib_dist::flow::{run_flow_with_transport, Transport};
    let dir = tempfile::tempdir().unwrap();
    let mut config = fast_config(ApproachKind::ParamUpdate, ModelRelation::PartiallyUpdated);
    config.kind = FlowKind::Dist5;
    let result =
        run_flow_with_transport(&config, dir.path(), Transport::Tcp { workers: 8 });

    // Full Table-3 geometry, with every model recovered (bit-exactness is
    // verified inside recovery) — all of it across real loopback sockets.
    assert_eq!(result.saves.len(), FlowKind::Dist5.total_models());
    assert_eq!(result.recovers.len(), FlowKind::Dist5.total_models());

    // The registry server measured real traffic: every stored blob byte
    // crossed the wire into the server and was counted. (Comparing against
    // `storage_bytes` would not be sound: that metric prices documents at
    // their pretty-printed stored size, while the wire carries compact JSON
    // and doc updates ship only the patch.)
    let stats = result.transport_stats.expect("tcp transport reports stats");
    let blob_bytes: u64 = std::fs::read_dir(dir.path().join("files"))
        .expect("file store dir")
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    assert!(blob_bytes > 0);
    assert!(stats["bytes_in"].as_u64().unwrap() >= blob_bytes);
    assert!(stats["bytes_out"].as_u64().unwrap() > 0);
    assert!(stats["requests"]["file_put"].as_u64().unwrap() > 0);
    assert!(stats["requests"]["doc_insert"].as_u64().unwrap() > 0);
    // Server + 5 nodes each held a connection.
    assert!(stats["connections"].as_u64().unwrap() >= 6);

    // Under Tcp, network time is real (inside TTS), not modeled.
    assert!(result.saves.iter().all(|s| s.network_time == std::time::Duration::ZERO));
}

#[test]
fn recovered_model_is_byte_identical_across_the_socket() {
    use mmlib_core::{RecoverOptions, SaveService};
    use mmlib_model::Model;
    use mmlib_net::{RegistryServer, RemoteStore};
    use mmlib_store::ModelStorage;

    let dir = tempfile::tempdir().unwrap();
    let backing = ModelStorage::open(dir.path()).unwrap();
    let server = RegistryServer::bind(backing, "127.0.0.1:0").unwrap();
    let storage = RemoteStore::connect(server.addr()).unwrap().into_storage();
    let service = SaveService::new(storage);

    let mut model = Model::new_initialized(ArchId::ResNet18, 7);
    model.set_fully_trainable();
    let id = service.save_full(&model, None, "initial").unwrap();
    let recovered = service.recover(&id, RecoverOptions::default()).unwrap();
    assert!(recovered.model.models_equal(&model), "recover(save(m)) != m over TCP");
}

#[test]
fn sim_and_tcp_transports_store_identical_model_bytes() {
    use mmlib_dist::flow::{run_flow_with_transport, Transport};
    // The same flow config over both transports must persist the same
    // per-save storage footprint — the transport only changes how bytes
    // travel, never what is stored.
    let config = fast_config(ApproachKind::Baseline, ModelRelation::FullyUpdated);

    let sim_dir = tempfile::tempdir().unwrap();
    let sim = run_flow_with_transport(&config, sim_dir.path(), Transport::Sim);
    let tcp_dir = tempfile::tempdir().unwrap();
    let tcp = run_flow_with_transport(&config, tcp_dir.path(), Transport::Tcp { workers: 4 });

    // Generated document ids gain a hex digit at different points (one id
    // counter per node handle under Sim, one shared server counter under
    // Tcp), so stored sizes may differ by single bytes — nothing more.
    assert_eq!(sim.saves.len(), tcp.saves.len());
    for (s, t) in sim.saves.iter().zip(&tcp.saves) {
        assert_eq!(s.use_case, t.use_case);
        let diff = s.storage_bytes.abs_diff(t.storage_bytes);
        assert!(
            diff <= 64,
            "{}: sim stored {} bytes, tcp {} bytes",
            s.use_case,
            s.storage_bytes,
            t.storage_bytes
        );
    }
    assert!(sim.transport_stats.is_none());
}

#[test]
fn flow_over_faulty_tcp_survives_and_fsck_finds_only_duplicates() {
    use mmlib_core::fsck::{fsck, FsckIssue, FsckOptions};
    use mmlib_dist::flow::run_flow_with_faulty_tcp;
    use mmlib_net::NetFaults;
    use mmlib_store::fault::{Fault, FaultPlan};
    use mmlib_store::ModelStorage;
    use std::sync::Arc;

    let dir = tempfile::tempdir().unwrap();
    let config = fast_config(ApproachKind::Baseline, ModelRelation::FullyUpdated);

    // Scatter faults across the flow's wire traffic: a reset on the first
    // accepted connection, dropped replies (the at-least-once window), and
    // a frame truncated mid-write. Every one must be absorbed by the
    // clients' retry loops.
    let response_plan = FaultPlan::new(23)
        .with(2, Fault::DropConnection)
        .with(9, Fault::TruncateFrame { after_bytes: 40 })
        .with(25, Fault::DropConnection)
        .with(60, Fault::ConnReset);
    let accept_plan = FaultPlan::new(23).with(0, Fault::ConnReset);
    let faults = Arc::new(NetFaults::new(accept_plan, response_plan));

    let result = run_flow_with_faulty_tcp(&config, dir.path(), 4, Arc::clone(&faults));

    // The flow's own verification ran inside recovery: full Table-3 shape,
    // every model recovered bit-exactly despite the injected faults.
    assert_eq!(result.saves.len(), 10);
    assert_eq!(result.recovers.len(), 10);
    assert!(
        faults.accept_injector().injected() + faults.response_injector().injected() >= 4,
        "the fault plans must actually have fired"
    );

    // What faults leave behind: at most at-least-once duplicates (a commit
    // whose reply was dropped, then retried). fsck classifies them as
    // orphans; nothing a saved model references may be damaged.
    let storage = ModelStorage::open(dir.path()).unwrap();
    let report = fsck(&storage, &FsckOptions::default()).unwrap();
    assert!(
        report.issues.iter().all(|i| matches!(
            i,
            FsckIssue::OrphanDoc { .. } | FsckIssue::OrphanFile { .. }
        )),
        "faults must never damage committed data: {:?}",
        report.issues
    );

    // Quarantining the duplicates leaves a fully clean store.
    fsck(&storage, &FsckOptions { repair: true, ..Default::default() }).unwrap();
    let after = fsck(&storage, &FsckOptions::default()).unwrap();
    assert!(after.is_clean(), "store dirty after repair: {:?}", after.issues);
}
