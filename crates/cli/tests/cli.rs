//! End-to-end tests of the `mmlib` CLI command layer.

use mmlib_cli::{run, CliError};
use mmlib_core::SaveService;
use mmlib_model::{ArchId, Model};
use mmlib_store::ModelStorage;

fn args(store: &std::path::Path, rest: &[&str]) -> Vec<String> {
    let mut v = vec!["--store".to_string(), store.to_string_lossy().into_owned()];
    v.extend(rest.iter().map(|s| s.to_string()));
    v
}

fn seed_store(dir: &std::path::Path) -> (String, String) {
    let svc = SaveService::new(ModelStorage::open(dir).unwrap());
    let mut model = Model::new_initialized(ArchId::TinyCnn, 1);
    model.set_fully_trainable();
    let initial = svc.save_full(&model, None, "initial").unwrap();
    // Nudge the classifier and save an update.
    model.visit_trainable_mut(&mut |path, param, _| {
        if path.starts_with("fc") {
            param.data_mut()[0] += 1.0;
        }
    });
    let (update, _) = svc.save_update(&model, &initial, "partially_updated").unwrap();
    (initial.to_string(), update.to_string())
}

#[test]
fn list_shows_models_and_dependents() {
    let dir = tempfile::tempdir().unwrap();
    let (initial, update) = seed_store(dir.path());
    let out = run(&args(dir.path(), &["list"])).unwrap();
    assert!(out.contains(&initial));
    assert!(out.contains(&update));
    assert!(out.contains("2 model(s)"));
    assert!(out.contains("BA") && out.contains("PUA"));
}

#[test]
fn show_renders_the_document() {
    let dir = tempfile::tempdir().unwrap();
    let (initial, _) = seed_store(dir.path());
    let out = run(&args(dir.path(), &["show", &initial])).unwrap();
    assert!(out.contains("\"approach\": \"baseline\""));
    assert!(out.contains("\"arch\": \"tinycnn\""));
}

#[test]
fn chain_prints_the_recovery_path() {
    let dir = tempfile::tempdir().unwrap();
    let (initial, update) = seed_store(dir.path());
    let out = run(&args(dir.path(), &["chain", &update])).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains(&update));
    assert!(lines[1].contains(&initial));
}

#[test]
fn verify_recovers_and_reports() {
    let dir = tempfile::tempdir().unwrap();
    let (_, update) = seed_store(dir.path());
    let out = run(&args(dir.path(), &["verify", &update])).unwrap();
    assert!(out.contains("verified OK"));
    assert!(out.contains("chain depth 1"));
}

#[test]
fn recover_writes_a_state_dict_file() {
    let dir = tempfile::tempdir().unwrap();
    let (_, update) = seed_store(dir.path());
    let out_file = dir.path().join("recovered.mmsd");
    let out = run(&args(dir.path(), &["recover", &update, "--out", out_file.to_str().unwrap()]))
        .unwrap();
    assert!(out.contains("recovered tinycnn"));
    let bytes = std::fs::read(&out_file).unwrap();
    let entries = mmlib_tensor::ser::state_from_bytes(&bytes).unwrap();
    assert!(!entries.is_empty());
}

#[test]
fn delete_refuses_bases_then_deletes_leaves() {
    let dir = tempfile::tempdir().unwrap();
    let (initial, update) = seed_store(dir.path());
    assert!(matches!(
        run(&args(dir.path(), &["delete", &initial])),
        Err(CliError::Failed(_))
    ));
    let out = run(&args(dir.path(), &["delete", &update])).unwrap();
    assert!(out.contains("deleted"));
    let out = run(&args(dir.path(), &["delete", &initial])).unwrap();
    assert!(out.contains("deleted"));
    let out = run(&args(dir.path(), &["list"])).unwrap();
    assert!(out.contains("0 model(s)"));
}

#[test]
fn gc_keeps_requested_chains() {
    let dir = tempfile::tempdir().unwrap();
    let (_, update) = seed_store(dir.path());
    let out = run(&args(dir.path(), &["gc", "--keep", &update])).unwrap();
    assert!(out.contains("removed 0 model(s)"), "{out}");
    let out = run(&args(dir.path(), &["gc"])).unwrap();
    assert!(out.contains("removed 2 model(s)"), "{out}");
}

#[test]
fn stats_summarizes() {
    let dir = tempfile::tempdir().unwrap();
    seed_store(dir.path());
    let out = run(&args(dir.path(), &["stats"])).unwrap();
    assert!(out.contains("models: 2"));
    assert!(out.contains("BA: 1"));
    assert!(out.contains("PUA: 1"));
    assert!(out.contains("leaves (deletable): 1"));
}

#[test]
fn usage_errors_are_reported() {
    let dir = tempfile::tempdir().unwrap();
    assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    assert!(matches!(run(&args(dir.path(), &[])), Err(CliError::Usage(_))));
    assert!(matches!(run(&args(dir.path(), &["frobnicate"])), Err(CliError::Usage(_))));
    assert!(matches!(run(&args(dir.path(), &["show"])), Err(CliError::Usage(_))));
    assert!(matches!(run(&args(dir.path(), &["lineage"])), Err(CliError::Usage(_))));
    assert!(matches!(run(&args(dir.path(), &["lineage", "warp", "x"])), Err(CliError::Usage(_))));
}

#[test]
fn lineage_show_ancestry_diff_and_tag() {
    let dir = tempfile::tempdir().unwrap();
    let (initial, update) = seed_store(dir.path());

    let out = run(&args(dir.path(), &["lineage", "show", &update])).unwrap();
    assert!(out.contains(&format!("parent:   {initial}")), "{out}");
    assert!(out.contains("approach: PUA"), "{out}");

    let out = run(&args(dir.path(), &["lineage", "ancestry", &update])).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains(&update) && lines[1].contains(&initial));

    let out = run(&args(dir.path(), &["lineage", "diff", &initial, &update])).unwrap();
    assert!(out.contains("layer(s) changed"), "{out}");
    assert!(out.contains(&format!("common ancestor: {initial}")), "{out}");

    let out = run(&args(dir.path(), &["lineage", "tag", &update, "best"])).unwrap();
    assert!(out.contains("tags [best]"), "{out}");
    let out = run(&args(dir.path(), &["lineage", "show", &update])).unwrap();
    assert!(out.contains("tags:     [best]"), "{out}");
}

#[test]
fn lineage_compact_promotes_and_recovery_still_verifies() {
    let dir = tempfile::tempdir().unwrap();
    let (_, update) = seed_store(dir.path());
    // The seeded chain is depth 1; a bound of 1 promotes the tip itself.
    let out =
        run(&args(dir.path(), &["lineage", "compact", &update, "--max-depth", "1"])).unwrap();
    assert!(out.contains("1 promotion(s)"), "{out}");
    assert!(out.contains(&format!("promoted {update} to snapshot")), "{out}");

    let out = run(&args(dir.path(), &["verify", &update])).unwrap();
    assert!(out.contains("verified OK") && out.contains("chain depth 0"), "{out}");
    let out = run(&args(dir.path(), &["lineage", "ancestry", &update])).unwrap();
    assert!(out.contains("[rebased from"), "{out}");
    let out = run(&args(dir.path(), &["fsck"])).unwrap();
    assert!(out.contains("clean"), "{out}");
}

#[test]
fn lineage_remote_uses_the_dedicated_opcodes() {
    let dir = tempfile::tempdir().unwrap();
    let (initial, update) = seed_store(dir.path());
    let server = mmlib_net::RegistryServer::bind(
        ModelStorage::open(dir.path()).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let remote = |rest: &[&str]| {
        let mut v = vec!["--remote".to_string(), server.addr().to_string()];
        v.extend(rest.iter().map(|s| s.to_string()));
        v
    };

    let out = run(&remote(&["lineage", "show", &update])).unwrap();
    assert!(out.contains(&initial), "{out}");
    let out = run(&remote(&["lineage", "ancestry", &update])).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "{out}");
    assert!(lines[0].contains(&update) && lines[1].contains(&initial));

    // The dedicated opcodes served these, not a document walk.
    assert_eq!(server.metrics().requests(mmlib_net::Opcode::LineageGet), 1);
    assert_eq!(server.metrics().requests(mmlib_net::Opcode::LineageAncestry), 1);

    // A lineage subcommand without a dedicated opcode still works remotely
    // through the generic storage backend.
    let out = run(&remote(&["lineage", "diff", &initial, &update])).unwrap();
    assert!(out.contains("layer(s) changed"), "{out}");
}

#[test]
fn probe_reports_reproducibility() {
    let dir = tempfile::tempdir().unwrap();
    let (initial, _) = seed_store(dir.path());
    let out = run(&args(dir.path(), &["probe", &initial])).unwrap();
    assert!(out.contains("REPRODUCIBLE under Deterministic"), "{out}");
    assert!(matches!(
        run(&args(dir.path(), &["probe", &initial, "bogus"])),
        Err(CliError::Usage(_))
    ));
}

#[test]
fn remote_flag_runs_commands_against_a_served_store() {
    let dir = tempfile::tempdir().unwrap();
    let (initial, update) = seed_store(dir.path());
    let server = mmlib_net::RegistryServer::bind(
        ModelStorage::open(dir.path()).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let remote = |rest: &[&str]| {
        let mut v = vec!["--remote".to_string(), server.addr().to_string()];
        v.extend(rest.iter().map(|s| s.to_string()));
        v
    };

    // list / show / verify / recover — the documented remote commands.
    let out = run(&remote(&["list"])).unwrap();
    assert!(out.contains(&initial) && out.contains("2 model(s)"));

    let out = run(&remote(&["show", &initial])).unwrap();
    assert!(out.contains("\"approach\": \"baseline\""));

    let out = run(&remote(&["verify", &update])).unwrap();
    assert!(out.contains("verified OK"));

    // fsck works over the wire too: reference resolution and hash checks
    // run through the remote backend (repair needs the local store).
    let out = run(&remote(&["fsck"])).unwrap();
    assert!(out.contains("clean"), "remote fsck: {out}");

    let out_file = dir.path().join("remote-recovered.bin");
    let out = run(&remote(&["recover", &update, "--out", out_file.to_str().unwrap()])).unwrap();
    assert!(out.contains("recovered"));
    assert!(out_file.metadata().unwrap().len() > 0);

    // Registry metrics saw the traffic.
    assert!(server.metrics().total_requests() > 0);

    // `stats --remote` renders the server's registry, not local doc counts.
    let out = run(&remote(&["stats"])).unwrap();
    assert!(out.contains("# TYPE mmlib_net_requests_total counter"), "{out}");
    assert!(out.contains("mmlib_net_request_seconds_bucket"), "{out}");
    assert!(out.contains("mmlib_net_bytes_out_total"), "{out}");
}

#[test]
fn remote_stats_includes_phase_taxonomy_when_served_like_serve() {
    // A server configured the way `mmlib serve` configures one: the core
    // save/recover phase taxonomy is pre-registered on its recorder, so
    // the exposition carries phase histograms alongside wire metrics.
    let dir = tempfile::tempdir().unwrap();
    seed_store(dir.path());
    let recorder = std::sync::Arc::new(mmlib_obs::Recorder::new());
    mmlib_core::register_metrics(&recorder);
    let server = mmlib_net::RegistryServer::bind_with_config(
        ModelStorage::open(dir.path()).unwrap(),
        "127.0.0.1:0",
        mmlib_net::ServerConfig { recorder: Some(recorder), ..Default::default() },
    )
    .unwrap();
    let out = run(&[
        "--remote".to_string(),
        server.addr().to_string(),
        "stats".to_string(),
    ])
    .unwrap();
    assert!(out.contains("# TYPE mmlib_save_phase_seconds histogram"), "{out}");
    assert!(out.contains("mmlib_save_phase_seconds_count{phase=\"hash\"}"), "{out}");
    assert!(out.contains("mmlib_recover_phase_seconds_count{phase=\"fetch\"}"), "{out}");
    assert!(out.contains("mmlib_net_requests_total{opcode=\"stats_text\"} 1"), "{out}");
}

#[test]
fn remote_flag_reports_connection_failures() {
    // A port nothing listens on: the command must fail, not hang.
    let err = run(&[
        "--remote".to_string(),
        "127.0.0.1:1".to_string(),
        "list".to_string(),
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Failed(_)));
}

#[test]
fn serve_command_serves_then_reports() {
    let dir = tempfile::tempdir().unwrap();
    seed_store(dir.path());
    // `--for 1` keeps run() bounded; the ephemeral port avoids collisions.
    let out = run(&args(dir.path(), &["serve", "--addr", "127.0.0.1:0", "--for", "1"])).unwrap();
    assert!(out.contains("served 0 request(s)"), "unexpected summary: {out}");
}

#[test]
fn serve_requires_a_local_store() {
    let err = run(&["serve".to_string()]).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)));
}

/// `mmlib fsck` must detect every injected corruption: a truncated weights
/// blob, a bit-flipped (unparsable) document, and an orphaned file — and
/// `--repair` must quarantine the damage.
#[test]
fn fsck_detects_every_injected_corruption() {
    let dir = tempfile::tempdir().unwrap();
    let (initial, _) = seed_store(dir.path());

    let clean = run(&args(dir.path(), &["fsck"])).unwrap();
    assert!(clean.contains("clean"), "fresh store must fsck clean: {clean}");

    let storage = ModelStorage::open(dir.path()).unwrap();
    let info = storage
        .get_doc(&mmlib_store::DocId::from_string(initial.clone()))
        .unwrap();

    // Corruption 1: truncate the baseline's weights blob.
    let weights = info.body["weights_file"].as_str().unwrap();
    let blob_path = dir.path().join("files").join(format!("{weights}.bin"));
    let bytes = std::fs::read(&blob_path).unwrap();
    std::fs::write(&blob_path, &bytes[..bytes.len() / 3]).unwrap();

    // Corruption 2: bit-flip the environment document into invalid JSON.
    let env = info.body["environment_doc"].as_str().unwrap();
    let doc_path = dir.path().join("docs").join(format!("{env}.json"));
    let mut doc_bytes = std::fs::read(&doc_path).unwrap();
    doc_bytes[0] ^= 0x80;
    std::fs::write(&doc_path, &doc_bytes).unwrap();

    // Corruption 3: a blob no saved model references.
    let orphan = storage.put_file(b"stray bytes").unwrap();

    let out = run(&args(dir.path(), &["fsck"])).unwrap();
    assert!(out.contains("corrupt blob"), "truncated blob missed: {out}");
    assert!(out.contains("corrupt document"), "flipped doc missed: {out}");
    assert!(
        out.contains(&format!("orphan file {orphan}")),
        "orphan file missed: {out}"
    );

    let repaired = run(&args(dir.path(), &["fsck", "--repair"])).unwrap();
    assert!(repaired.contains("quarantined"), "no repairs reported: {repaired}");
    assert!(!blob_path.exists() && !doc_path.exists());

    // Only the now-dangling references remain; the damage itself is gone.
    let after = run(&args(dir.path(), &["fsck"])).unwrap();
    assert!(!after.contains("corrupt"), "damage must be quarantined: {after}");
    assert!(after.contains("missing"), "dangling refs still reported: {after}");
}

#[test]
fn fsck_rejects_unknown_flags() {
    let dir = tempfile::tempdir().unwrap();
    seed_store(dir.path());
    let err = run(&args(dir.path(), &["fsck", "--frobnicate"])).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)));
}
