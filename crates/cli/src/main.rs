//! `mmlib` — manage an mmlib model store from the command line.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mmlib_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
