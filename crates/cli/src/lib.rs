//! Command implementations for the `mmlib` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin argv wrapper around [`run`], which
//! returns the rendered output so commands are directly testable.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::Path;

use mmlib_core::gc::{collect_garbage, delete_model, dependency_graph};
use mmlib_core::meta::SavedModelId;
use mmlib_core::{RecoverOptions, SaveService};
use mmlib_store::{DocId, ModelStorage};

/// CLI errors: usage problems or underlying operation failures.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation; the string is the usage message.
    Usage(String),
    /// An operation failed.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(u) => write!(f, "usage: {u}"),
            CliError::Failed(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

fn fail<E: std::fmt::Display>(e: E) -> CliError {
    CliError::Failed(e.to_string())
}

const USAGE: &str = "mmlib (--store <dir> | --remote <addr>) <command>\n\
commands:\n  \
  list                     list saved models\n  \
  show <id>                show one model's metadata\n  \
  chain <id>               print the recovery chain\n  \
  verify <id>              recover + verify a model, print the breakdown\n  \
  recover <id> --out <f>   recover a model and write its state dict to a file\n  \
  delete <id>              delete a model (refused while dependents exist)\n  \
  gc --keep <id,id,...>    garbage-collect everything unreachable from the kept models\n  \
  probe <id> [det|par]     recover a model and probe its reproducibility\n  \
  fsck [--repair] [--no-hashes]\n                           \
check store consistency: re-verify layer hashes, find\n                           \
orphans/truncations; --repair quarantines damaged entries\n  \
  stats                    store statistics; with --remote, the server's\n                           \
live metrics registry in Prometheus text format\n                           \
(per-opcode requests/latency/bytes, save/recover phases)\n  \
  lineage show <id>        one model's lineage record (parent, diff, tags)\n  \
  lineage ancestry <id>    the lineage chain from a model to its root\n  \
  lineage diff <a> <b>     layer-level diff between two saved versions\n  \
  lineage compact <id> [--max-depth <n>]\n                           \
re-base the model's delta chain: promote every n-th\n                           \
node to a full snapshot (default n = 8) so recovery\n                           \
time stays flat; recovery stays byte-identical\n  \
  lineage tag <id> <tag>   attach a tag to a model's lineage record\n  \
  serve --addr <ip:port> [--for <secs>] [--io-threads <n>] [--shards <n>]\n        \
[--max-inflight <n>] [--per-conn-inflight <n>]\n                           \
serve the store as a TCP model registry (requires --store);\n                           \
--shards sets the worker pool, --io-threads the socket\n                           \
pollers, and the inflight caps bound admission before\n                           \
the server sheds load with Busy\n\
\n\
--remote <addr> runs a command against a registry served elsewhere\n\
(`mmlib serve`) instead of a local --store directory.";

/// Runs one CLI invocation, returning the rendered output.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut store_dir: Option<String> = None;
    let mut remote_addr: Option<String> = None;
    let mut rest: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--store" {
            store_dir = iter.next().cloned();
        } else if arg == "--remote" {
            remote_addr = iter.next().cloned();
        } else {
            rest.push(arg.as_str());
        }
    }
    let (&command, tail) = rest.split_first().ok_or_else(|| CliError::Usage(USAGE.into()))?;

    if command == "serve" {
        let store_dir = store_dir
            .ok_or_else(|| CliError::Usage(format!("serve needs a local --store\n{USAGE}")))?;
        return serve(&store_dir, tail);
    }

    // `stats --remote` asks the server for its registry instead of walking
    // documents: the server sees every node's traffic, the client doesn't.
    if command == "stats" {
        if let Some(addr) = &remote_addr {
            let client = mmlib_net::RemoteStore::builder(addr.as_str()).build().map_err(fail)?;
            return client.server_stats_text().map_err(fail);
        }
    }

    // `lineage show/ancestry --remote` use the dedicated registry opcodes
    // (one request instead of a full document walk); the other lineage
    // subcommands fall through to the generic remote-backed storage path.
    if command == "lineage" {
        if let Some(addr) = &remote_addr {
            if let Some(out) = lineage_remote(addr, tail)? {
                return Ok(out);
            }
        }
    }

    let storage = match (store_dir, remote_addr) {
        (Some(dir), None) => ModelStorage::open(Path::new(&dir)).map_err(fail)?,
        (None, Some(addr)) => mmlib_net::RemoteStore::builder(addr.as_str())
            .build()
            .map_err(fail)?
            .into_storage(),
        _ => return Err(CliError::Usage(USAGE.into())),
    };
    let svc = SaveService::new(storage);
    match command {
        "list" => list(&svc),
        "show" => show(&svc, one_id(tail)?),
        "chain" => chain(&svc, one_id(tail)?),
        "verify" => verify(&svc, one_id(tail)?),
        "recover" => recover(&svc, tail),
        "delete" => delete(&svc, one_id(tail)?),
        "gc" => gc(&svc, tail),
        "probe" => probe(&svc, tail),
        "fsck" => fsck(&svc, tail),
        "stats" => stats(&svc),
        "lineage" => lineage_cmd(&svc, tail),
        other => Err(CliError::Usage(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

/// Serves a local store over TCP: `mmlib --store <dir> serve --addr <a>`.
///
/// Runs until interrupted, or for `--for <secs>` seconds (useful for
/// scripts and tests), then reports what the server measured.
fn serve(store_dir: &str, tail: &[&str]) -> Result<String, CliError> {
    let mut addr = "127.0.0.1:7440".to_string();
    let mut run_for: Option<u64> = None;
    let defaults = mmlib_net::AdmissionConfig::default();
    let mut io_threads = mmlib_net::WireConfig::default().io_threads;
    let mut shards = mmlib_net::ShardConfig::default().workers;
    let mut per_conn_inflight = defaults.per_conn_inflight;
    let mut global_inflight = defaults.global_inflight;
    let mut iter = tail.iter();
    let parse_count = |flag: &str, value: Option<&&str>| -> Result<usize, CliError> {
        let value = value.ok_or_else(|| CliError::Usage(USAGE.into()))?;
        value.parse().map_err(|_| {
            CliError::Usage(format!("{flag} needs a positive count, got {value:?}"))
        })
    };
    while let Some(&flag) = iter.next() {
        match flag {
            "--addr" => {
                addr = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(USAGE.into()))?
                    .to_string();
            }
            "--for" => {
                let secs = iter.next().ok_or_else(|| CliError::Usage(USAGE.into()))?;
                run_for = Some(secs.parse().map_err(|_| {
                    CliError::Usage(format!("--for needs a number of seconds, got {secs:?}"))
                })?);
            }
            "--io-threads" => io_threads = parse_count(flag, iter.next())?,
            "--shards" => shards = parse_count(flag, iter.next())?,
            "--max-inflight" => global_inflight = parse_count(flag, iter.next())?,
            "--per-conn-inflight" => per_conn_inflight = parse_count(flag, iter.next())?,
            other => return Err(CliError::Usage(format!("unknown serve flag {other:?}\n{USAGE}"))),
        }
    }
    // Each flag maps 1:1 onto a validated sub-config; bad combinations
    // (zero threads, a per-connection cap above the global one) are
    // refused here with the constructor's own explanation.
    let bad_flags = |e: mmlib_net::ConfigError| CliError::Usage(format!("{e}\n{USAGE}"));
    let wire = mmlib_net::WireConfig::new(io_threads).map_err(bad_flags)?;
    let shards = mmlib_net::ShardConfig::new(shards).map_err(bad_flags)?;
    let admission =
        mmlib_net::AdmissionConfig::new(per_conn_inflight, global_inflight).map_err(bad_flags)?;

    let storage = ModelStorage::open(Path::new(store_dir)).map_err(fail)?;
    // The server's registry carries its own wire metrics plus the full
    // save/recover phase taxonomy (pre-registered so `mmlib stats --remote`
    // always shows the complete exposition, even before any save ran).
    let recorder = std::sync::Arc::new(mmlib_obs::Recorder::new());
    mmlib_core::register_metrics(&recorder);
    let config = mmlib_net::ServerConfig {
        wire,
        shards,
        admission,
        recorder: Some(recorder),
        ..Default::default()
    };
    let mut server =
        mmlib_net::RegistryServer::bind_with_config(storage, addr.as_str(), config).map_err(fail)?;
    // Announce immediately — clients need the address while we block.
    println!("mmlib registry serving {store_dir} on {}", server.addr());
    match run_for {
        Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    let metrics = server.metrics().snapshot();
    server.shutdown();
    let mut out = String::new();
    writeln!(out, "served {} request(s) over {} connection(s)",
        metrics["total_requests"].as_u64().unwrap_or(0),
        metrics["connections"].as_u64().unwrap_or(0))
    .unwrap();
    writeln!(out, "bytes in {}, bytes out {}",
        metrics["bytes_in"].as_u64().unwrap_or(0),
        metrics["bytes_out"].as_u64().unwrap_or(0))
    .unwrap();
    Ok(out)
}

fn one_id(tail: &[&str]) -> Result<SavedModelId, CliError> {
    match tail {
        [id] => Ok(SavedModelId(DocId::from_string((*id).to_string()))),
        _ => Err(CliError::Usage(USAGE.into())),
    }
}

fn list(svc: &SaveService) -> Result<String, CliError> {
    let graph = dependency_graph(svc).map_err(fail)?;
    let mut out = String::new();
    writeln!(out, "{:<14} {:<4} {:<13} {:<18} {:<14} DEPENDENTS", "ID", "VIA", "ARCH", "RELATION", "BASE")
        .unwrap();
    for (id, info) in &graph.models {
        let deps = graph.dependents.get(id).map_or(0, |d| d.len());
        writeln!(
            out,
            "{:<14} {:<4} {:<13} {:<18} {:<14} {}",
            id.to_string(),
            info.approach.abbrev(),
            info.arch,
            format!("{:?}", info.relation),
            info.base_model.as_deref().unwrap_or("-"),
            deps
        )
        .unwrap();
    }
    writeln!(out, "{} model(s)", graph.models.len()).unwrap();
    Ok(out)
}

fn show(svc: &SaveService, id: SavedModelId) -> Result<String, CliError> {
    let doc = svc.storage().get_doc(id.doc_id()).map_err(fail)?;
    serde_json::to_string_pretty(&doc.body).map_err(fail)
}

fn chain(svc: &SaveService, id: SavedModelId) -> Result<String, CliError> {
    let graph = dependency_graph(svc).map_err(fail)?;
    if !graph.models.contains_key(&id) {
        return Err(CliError::Failed(format!("{id} is not a saved model")));
    }
    let mut out = String::new();
    for (depth, link) in graph.chain_of(&id).iter().enumerate() {
        let info = &graph.models[link];
        writeln!(
            out,
            "{}{} ({} {:?})",
            "  ".repeat(depth),
            link,
            info.approach.abbrev(),
            info.relation
        )
        .unwrap();
    }
    Ok(out)
}

fn verify(svc: &SaveService, id: SavedModelId) -> Result<String, CliError> {
    let rec = svc.recover(&id, RecoverOptions::default()).map_err(fail)?;
    let b = rec.breakdown;
    Ok(format!(
        "{id}: verified OK (arch {}, chain depth {})\n\
         load {:?}, recover {:?}, check-env {:?}, verify {:?}, total {:?}\n",
        rec.model.arch.name(),
        b.recovered_bases,
        b.load,
        b.recover,
        b.check_env,
        b.verify,
        b.total()
    ))
}

fn recover(svc: &SaveService, tail: &[&str]) -> Result<String, CliError> {
    let (id, out_path) = match tail {
        [id, flag, path] if *flag == "--out" => {
            (SavedModelId(DocId::from_string((*id).to_string())), *path)
        }
        _ => return Err(CliError::Usage(USAGE.into())),
    };
    let rec = svc.recover(&id, RecoverOptions::default()).map_err(fail)?;
    let entries = rec.model.state_entries();
    let bytes = mmlib_tensor::ser::state_to_bytes(
        entries.iter().map(|(p, t, _, _)| (p.as_str(), *t)).collect::<Vec<_>>(),
    );
    std::fs::write(out_path, &bytes).map_err(fail)?;
    Ok(format!(
        "{id}: recovered {} ({} entries, {} bytes) -> {out_path}\n",
        rec.model.arch.name(),
        entries.len(),
        bytes.len()
    ))
}

fn delete(svc: &SaveService, id: SavedModelId) -> Result<String, CliError> {
    let report = delete_model(svc, &id).map_err(fail)?;
    Ok(format!(
        "deleted {id}: {} docs, {} files, {} bytes reclaimed\n",
        report.removed_docs, report.removed_files, report.reclaimed_bytes
    ))
}

fn gc(svc: &SaveService, tail: &[&str]) -> Result<String, CliError> {
    let keep: Vec<SavedModelId> = match tail {
        [flag, ids] if *flag == "--keep" => ids
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| SavedModelId(DocId::from_string(s.to_string())))
            .collect(),
        [] => Vec::new(),
        _ => return Err(CliError::Usage(USAGE.into())),
    };
    let report = collect_garbage(svc, &keep).map_err(fail)?;
    Ok(format!(
        "gc: removed {} model(s), {} docs, {} files, {} bytes reclaimed\n",
        report.removed_models.len(),
        report.removed_docs,
        report.removed_files,
        report.reclaimed_bytes
    ))
}

/// Recovers a model and runs the probing tool on a synthetic batch,
/// reporting whether two executions agree bit-for-bit (paper §2.4).
fn probe(svc: &SaveService, tail: &[&str]) -> Result<String, CliError> {
    let (id, mode) = match tail {
        [id] => (SavedModelId(DocId::from_string((*id).to_string())), "det"),
        [id, mode] => (SavedModelId(DocId::from_string((*id).to_string())), *mode),
        _ => return Err(CliError::Usage(USAGE.into())),
    };
    let exec = match mode {
        "det" => mmlib_tensor::ExecMode::Deterministic,
        "par" => mmlib_tensor::ExecMode::Parallel,
        other => return Err(CliError::Usage(format!("unknown mode {other:?} (det|par)"))),
    };
    let mut rec = svc.recover(&id, RecoverOptions::default()).map_err(fail)?;
    rec.model.set_fully_trainable();
    let res = rec.model.arch.min_resolution();
    let loader = mmlib_data::DataLoader::new(
        mmlib_data::Dataset::new(mmlib_data::DatasetId::CocoOutdoor512, 0.0005),
        mmlib_data::loader::LoaderConfig {
            batch_size: 4,
            resolution: res,
            max_images: Some(4),
            ..Default::default()
        },
    );
    let batch = loader.batch(0, 0).expect("probe batch");
    let cmp = mmlib_core::probe::probe_reproducibility(&mut rec.model, &batch, 7, exec);
    Ok(if cmp.reproducible {
        format!("{id}: REPRODUCIBLE under {exec:?} ({} intermediate records compared)\n", cmp.compared)
    } else {
        format!(
            "{id}: NOT reproducible under {exec:?}; first divergence at {}\n",
            cmp.first_divergence.unwrap_or_default()
        )
    })
}

/// Checks the store for crash damage and dangling references:
/// `mmlib --store <dir> fsck [--repair] [--no-hashes]`.
fn fsck(svc: &SaveService, tail: &[&str]) -> Result<String, CliError> {
    let mut opts = mmlib_core::FsckOptions::default();
    for flag in tail {
        match *flag {
            "--repair" => opts.repair = true,
            "--no-hashes" => opts.verify_hashes = false,
            other => return Err(CliError::Usage(format!("unknown fsck flag {other:?}\n{USAGE}"))),
        }
    }
    let report = mmlib_core::fsck::fsck(svc.storage(), &opts).map_err(fail)?;
    let mut out = String::new();
    for issue in &report.issues {
        writeln!(out, "{issue}").unwrap();
    }
    for dest in &report.quarantined {
        writeln!(out, "quarantined {}", dest.display()).unwrap();
    }
    writeln!(out, "fsck: {report}").unwrap();
    Ok(out)
}

/// `mmlib lineage <show|ancestry|diff|compact|tag> ...` over any storage
/// (local directory or remote-backed).
fn lineage_cmd(svc: &SaveService, tail: &[&str]) -> Result<String, CliError> {
    let lineage = mmlib_lineage::Lineage::new(svc);
    let id_of = |s: &str| SavedModelId(DocId::from_string(s.to_string()));
    match tail {
        ["show", id] => {
            let node = lineage.show(&id_of(id)).map_err(fail)?;
            Ok(render_lineage_node(&node))
        }
        ["ancestry", id] => {
            let mut out = String::new();
            for (depth, node) in lineage.ancestry(&id_of(id)).map_err(fail)?.iter().enumerate() {
                writeln!(
                    out,
                    "{}{} ({} {:?}){}",
                    "  ".repeat(depth),
                    node.id,
                    node.record.approach.abbrev(),
                    node.record.relation,
                    match &node.record.rebased_from {
                        Some(old) => format!(" [rebased from {old}]"),
                        None => String::new(),
                    }
                )
                .unwrap();
            }
            Ok(out)
        }
        ["diff", a, b] => {
            let diff = lineage.diff(&id_of(a), &id_of(b)).map_err(fail)?;
            let mut out = String::new();
            writeln!(
                out,
                "{} vs {}: {} of {} layer(s) changed",
                diff.a,
                diff.b,
                diff.changed_layers.len(),
                diff.total_layers
            )
            .unwrap();
            for layer in &diff.changed_layers {
                writeln!(out, "  ~ {layer}").unwrap();
            }
            match &diff.common_ancestor {
                Some(anc) => writeln!(out, "common ancestor: {anc}").unwrap(),
                None => writeln!(out, "no common ancestor").unwrap(),
            }
            Ok(out)
        }
        ["compact", id, rest @ ..] => {
            let max_depth = match rest {
                [] => 8,
                ["--max-depth", n] => n.parse().map_err(|_| {
                    CliError::Usage(format!("--max-depth needs a positive number, got {n:?}"))
                })?,
                _ => return Err(CliError::Usage(USAGE.into())),
            };
            let report = lineage.compact(&id_of(id), max_depth).map_err(fail)?;
            let mut out = String::new();
            writeln!(
                out,
                "compacted chain of {} node(s) to max depth {}: {} promotion(s), {} bytes written",
                report.chain.len(),
                report.max_depth,
                report.promoted.len(),
                report.bytes_written
            )
            .unwrap();
            for id in &report.promoted {
                writeln!(out, "  promoted {id} to snapshot").unwrap();
            }
            Ok(out)
        }
        ["tag", id, tag] => {
            let node = lineage.tag(&id_of(id), tag).map_err(fail)?;
            Ok(format!("{}: tags [{}]\n", node.id, node.record.tags.join(", ")))
        }
        _ => Err(CliError::Usage(USAGE.into())),
    }
}

fn render_lineage_node(node: &mmlib_lineage::LineageNode) -> String {
    let mut out = String::new();
    writeln!(out, "model:    {}", node.id).unwrap();
    writeln!(out, "approach: {}", node.record.approach.abbrev()).unwrap();
    writeln!(out, "relation: {:?}", node.record.relation).unwrap();
    writeln!(out, "parent:   {}", node.record.parent.as_deref().unwrap_or("-")).unwrap();
    if let Some(old) = &node.record.rebased_from {
        writeln!(out, "rebased:  from {old}").unwrap();
    }
    if let Some(n) = node.record.changed_layers {
        writeln!(out, "changed:  {n} layer(s) vs parent").unwrap();
    }
    writeln!(out, "root:     {}", node.record.root_hash).unwrap();
    if !node.record.tags.is_empty() {
        writeln!(out, "tags:     [{}]", node.record.tags.join(", ")).unwrap();
    }
    out
}

/// `lineage show/ancestry` against a remote registry, via the dedicated
/// wire opcodes. Returns `None` for subcommands that have no dedicated
/// opcode (they run through the generic remote storage path instead).
fn lineage_remote(addr: &str, tail: &[&str]) -> Result<Option<String>, CliError> {
    let node_line = |node: &mmlib_net::LineageNode| {
        let or_dash = |v: &Option<String>| v.clone().unwrap_or_else(|| "-".to_string());
        format!(
            "{} ({} {}) parent {}",
            node.model,
            or_dash(&node.approach),
            or_dash(&node.relation),
            or_dash(&node.parent)
        )
    };
    match tail {
        ["show", id] => {
            let client = mmlib_net::RemoteStore::builder(addr).build().map_err(fail)?;
            let node = client.lineage_node(id).map_err(fail)?;
            serde_json::to_string_pretty(&node.raw).map(Some).map_err(fail)
        }
        ["ancestry", id] => {
            let client = mmlib_net::RemoteStore::builder(addr).build().map_err(fail)?;
            let chain = client.lineage_chain(id).map_err(fail)?;
            let mut out = String::new();
            for (depth, node) in chain.iter().enumerate() {
                writeln!(out, "{}{}", "  ".repeat(depth), node_line(node)).unwrap();
            }
            Ok(Some(out))
        }
        _ => Ok(None),
    }
}

fn stats(svc: &SaveService) -> Result<String, CliError> {
    let graph = dependency_graph(svc).map_err(fail)?;
    let mut by_approach = std::collections::BTreeMap::new();
    for info in graph.models.values() {
        *by_approach.entry(info.approach.abbrev()).or_insert(0usize) += 1;
    }
    let docs = svc.storage().docs().ids().map_err(fail)?.len();
    let mut out = String::new();
    writeln!(out, "models: {}", graph.models.len()).unwrap();
    for (a, n) in by_approach {
        writeln!(out, "  {a}: {n}").unwrap();
    }
    writeln!(out, "documents: {docs}").unwrap();
    writeln!(out, "leaves (deletable): {}", graph.leaves().len()).unwrap();
    Ok(out)
}
