//! Property tests of crash consistency: a write torn at *any* byte offset
//! leaves `ids()`/`get()` observing the old state or the new state, never a
//! partial document or blob.

use mmlib_store::fault::{Fault, FaultPlan};
use mmlib_store::{ModelStorage, StoreError};
use proptest::prelude::*;
use serde_json::json;

/// A JSON body of roughly `size` bytes so cut offsets land inside it.
fn body_of(size: usize, tag: u64) -> serde_json::Value {
    json!({"tag": tag, "fill": "x".repeat(size)})
}

proptest! {
    #[test]
    fn torn_insert_is_never_partially_visible(
        size in 0usize..4000,
        cut in 0u64..5000,
        tag in 0u64..1_000_000,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let (storage, inj) = ModelStorage::open_with_faults(
            dir.path(),
            FaultPlan::new(tag).with(0, Fault::TornWrite { after_bytes: cut }),
        ).unwrap();

        let err = storage.insert_doc("k", body_of(size, tag)).unwrap_err();
        prop_assert!(matches!(err, StoreError::Io(_)), "torn insert fails typed");
        prop_assert_eq!(inj.injected(), 1);

        // Simulated crash + reopen: the store must look like the insert
        // never happened.
        drop(storage);
        let reopened = ModelStorage::open(dir.path()).unwrap();
        prop_assert!(reopened.docs().ids().unwrap().is_empty());
    }

    #[test]
    fn torn_update_preserves_the_old_body(
        old_size in 0usize..2000,
        new_size in 0usize..2000,
        cut in 0u64..3000,
        tag in 0u64..1_000_000,
    ) {
        let dir = tempfile::tempdir().unwrap();
        // Op 0 is the initial insert; the update at op 1 gets torn.
        let (storage, _inj) = ModelStorage::open_with_faults(
            dir.path(),
            FaultPlan::new(tag).with(1, Fault::TornWrite { after_bytes: cut }),
        ).unwrap();

        let old_body = body_of(old_size, tag);
        let id = storage.insert_doc("k", old_body.clone()).unwrap();
        prop_assert!(storage.docs().update(&id, body_of(new_size, tag + 1)).is_err());

        drop(storage);
        let reopened = ModelStorage::open(dir.path()).unwrap();
        let doc = reopened.get_doc(&id).unwrap();
        prop_assert_eq!(doc.body, old_body, "old state fully intact after torn update");
        prop_assert_eq!(reopened.docs().ids().unwrap().len(), 1);
    }

    #[test]
    fn torn_put_file_is_never_partially_visible(
        payload in prop::collection::vec(0u8..=255, 0..4000),
        cut in 0u64..5000,
        seed in 0u64..1_000_000,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let (storage, _inj) = ModelStorage::open_with_faults(
            dir.path(),
            FaultPlan::new(seed).with(1, Fault::TornWrite { after_bytes: cut }),
        ).unwrap();

        // Op 0: a healthy blob that must survive; op 1: the torn one.
        let keep = storage.put_file(b"keep-me").unwrap();
        prop_assert!(storage.put_file(&payload).is_err());

        drop(storage);
        let reopened = ModelStorage::open(dir.path()).unwrap();
        prop_assert_eq!(reopened.files().ids().unwrap(), vec![keep.clone()]);
        prop_assert_eq!(reopened.get_file(&keep).unwrap(), b"keep-me".to_vec());
    }
}
