//! Storage substrate for the mmlib reproduction.
//!
//! The paper persists two kinds of data (§3.1): *metadata* as JSON documents
//! "in a document database like MongoDB", and *files* (model code,
//! serialized parameters, dataset containers) on a shared file system, with
//! generated identifiers cross-referencing the two. This crate provides both
//! halves as embedded, directory-backed stores plus the accounting and
//! network models the evaluation needs:
//!
//! * [`document`] — a JSON document store with generated ids and recursive
//!   reference resolution (the paper's "recursively load all associated
//!   JSON documents").
//! * [`files`] — a flat file store with generated ids.
//! * [`storage`] — [`storage::ModelStorage`], bundling one document store
//!   and one file store behind shared byte accounting; every save's storage
//!   consumption is measured here.
//! * [`network`] — [`network::SimNetwork`], a bandwidth/latency transfer
//!   model for the distributed experiments (the paper's machines share a
//!   100 Gb/s InfiniBand link). Transfer times are *accounted*, never slept.
//! * [`fault`] — seeded deterministic fault injection ([`FaultPlan`],
//!   [`FaultInjector`], [`FaultyBackend`]) driving the crash-consistency
//!   test matrix.
//! * [`fsck`] — physical consistency scan of a local root (leftover tmp
//!   files, unparsable documents) with quarantine-based repair.

#![forbid(unsafe_code)]

mod atomic;
pub mod document;
pub mod fault;
pub mod files;
pub mod fsck;
pub mod network;
pub mod storage;

pub use document::{DocId, DocStore, Document};
pub use fault::{Fault, FaultInjector, FaultPlan, FaultyBackend};
pub use files::{FileId, FileStore};
pub use network::SimNetwork;
pub use storage::{
    batch_ref, BatchId, BatchItem, ModelStorage, StorageBackend, StoreError, BATCH_REF_PREFIX,
};
