//! Physical consistency scan of a local storage root.
//!
//! This is the filesystem half of `fsck`: it checks the on-disk shape of a
//! `docs/` + `files/` root without interpreting model semantics — leftover
//! temporary files from interrupted atomic writes, documents that fail to
//! parse, and documents whose embedded id disagrees with their filename.
//! The model-aware half (reference resolution, Merkle re-verification,
//! orphan detection) lives in `mmlib-core::fsck` and builds on this scan.

use std::path::{Path, PathBuf};

use crate::atomic::is_tmp_name;
use crate::document::{DocId, Document};
use crate::files::FileId;
use crate::storage::StoreError;

/// One physical inconsistency found by [`scan_local`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanIssue {
    /// A `*.tmp` file left behind by an interrupted atomic write.
    LeftoverTmp {
        /// Absolute path of the temporary file.
        path: PathBuf,
    },
    /// A document file whose contents are not a valid `Document`.
    UnparsableDoc {
        /// Id derived from the filename.
        id: DocId,
        /// Parse error text.
        error: String,
    },
    /// A document whose embedded `id` field disagrees with its filename.
    DocIdMismatch {
        /// Id derived from the filename.
        id: DocId,
        /// Id stored inside the document.
        embedded: String,
    },
}

impl std::fmt::Display for ScanIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanIssue::LeftoverTmp { path } => {
                write!(f, "leftover tmp file {}", path.display())
            }
            ScanIssue::UnparsableDoc { id, error } => {
                write!(f, "unparsable document {id}: {error}")
            }
            ScanIssue::DocIdMismatch { id, embedded } => {
                write!(f, "document {id} embeds mismatched id {embedded:?}")
            }
        }
    }
}

/// Result of a [`scan_local`] pass.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Inconsistencies found, in scan order.
    pub issues: Vec<ScanIssue>,
    /// Documents visited (parsable or not).
    pub docs_scanned: usize,
    /// Blobs visited.
    pub files_scanned: usize,
}

/// True if `root` looks like a local storage root this module can scan
/// (remote descriptors like `tcp://…` are not walkable directories).
pub fn is_local_root(root: &Path) -> bool {
    root.join("docs").is_dir() && root.join("files").is_dir()
}

/// Walks `root`'s `docs/` and `files/` directories, reporting physical
/// inconsistencies. Read-only; pair with [`quarantine`] to repair.
pub fn scan_local(root: &Path) -> Result<ScanReport, StoreError> {
    let mut report = ScanReport::default();

    let docs_dir = root.join("docs");
    for entry in std::fs::read_dir(&docs_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_tmp_name(name) {
            report.issues.push(ScanIssue::LeftoverTmp { path: entry.path() });
            continue;
        }
        let Some(stem) = name.strip_suffix(".json") else { continue };
        report.docs_scanned += 1;
        let id = DocId::from_string(stem.to_string());
        let bytes = std::fs::read(entry.path())?;
        match serde_json::from_slice::<Document>(&bytes) {
            Ok(doc) if doc.id == id => {}
            Ok(doc) => report.issues.push(ScanIssue::DocIdMismatch {
                id,
                embedded: doc.id.as_str().to_string(),
            }),
            Err(e) => {
                report.issues.push(ScanIssue::UnparsableDoc { id, error: e.to_string() })
            }
        }
    }

    let files_dir = root.join("files");
    for entry in std::fs::read_dir(&files_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_tmp_name(name) {
            report.issues.push(ScanIssue::LeftoverTmp { path: entry.path() });
        } else if name.ends_with(".bin") {
            report.files_scanned += 1;
        }
    }

    Ok(report)
}

/// Moves `path` (which must live under `root`) into `root/quarantine/`,
/// preserving its filename; returns the destination. Quarantined entries
/// vanish from store scans but stay recoverable by hand.
pub fn quarantine(root: &Path, path: &Path) -> Result<PathBuf, StoreError> {
    let qdir = root.join("quarantine");
    std::fs::create_dir_all(&qdir)?;
    let name = path
        .file_name()
        .ok_or_else(|| StoreError::Malformed(format!("cannot quarantine {}", path.display())))?;
    let dest = qdir.join(name);
    std::fs::rename(path, &dest)?;
    Ok(dest)
}

/// Quarantines the on-disk file of document `id`; returns the destination.
pub fn quarantine_doc(root: &Path, id: &DocId) -> Result<PathBuf, StoreError> {
    quarantine(root, &root.join("docs").join(format!("{id}.json")))
}

/// Quarantines the on-disk file of blob `id`; returns the destination.
pub fn quarantine_file(root: &Path, id: &FileId) -> Result<PathBuf, StoreError> {
    quarantine(root, &root.join("files").join(format!("{id}.bin")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultPlan};
    use crate::ModelStorage;
    use serde_json::json;

    #[test]
    fn clean_store_scans_clean() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();
        storage.insert_doc("k", json!({"a": 1})).unwrap();
        storage.put_file(b"blob").unwrap();
        let report = scan_local(dir.path()).unwrap();
        assert!(report.issues.is_empty());
        assert_eq!(report.docs_scanned, 1);
        assert_eq!(report.files_scanned, 1);
    }

    #[test]
    fn torn_write_leftovers_are_reported_and_quarantinable() {
        let dir = tempfile::tempdir().unwrap();
        let (storage, _inj) = ModelStorage::open_with_faults(
            dir.path(),
            FaultPlan::new(0).with(0, Fault::TornWrite { after_bytes: 3 }),
        )
        .unwrap();
        assert!(storage.insert_doc("k", json!({"a": 1})).is_err());
        assert!(storage.docs().ids().unwrap().is_empty(), "torn doc never became visible");

        let report = scan_local(dir.path()).unwrap();
        assert_eq!(report.issues.len(), 1);
        let ScanIssue::LeftoverTmp { path } = &report.issues[0] else {
            panic!("expected LeftoverTmp, got {:?}", report.issues[0]);
        };
        let dest = quarantine(dir.path(), path).unwrap();
        assert!(dest.exists());
        assert!(scan_local(dir.path()).unwrap().issues.is_empty());
    }

    #[test]
    fn corrupted_and_mislabeled_docs_are_reported() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();
        let a = storage.insert_doc("k", json!({"x": 1})).unwrap();
        let b = storage.insert_doc("k", json!({"x": 2})).unwrap();

        let docs = dir.path().join("docs");
        std::fs::write(docs.join(format!("{a}.json")), b"{truncated").unwrap();
        let b_bytes = std::fs::read(docs.join(format!("{b}.json"))).unwrap();
        std::fs::write(docs.join("00000000-ff.json"), &b_bytes).unwrap();

        let report = scan_local(dir.path()).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ScanIssue::UnparsableDoc { id, .. } if *id == a)));
        assert!(report.issues.iter().any(
            |i| matches!(i, ScanIssue::DocIdMismatch { embedded, .. } if *embedded == b.to_string())
        ));

        quarantine_doc(dir.path(), &a).unwrap();
        quarantine_doc(dir.path(), &DocId::from_string("00000000-ff".into())).unwrap();
        assert!(scan_local(dir.path()).unwrap().issues.is_empty());
    }
}
