//! The combined model storage: documents + files + byte accounting.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::document::{DocId, DocStore, Document};
use crate::files::{FileId, FileStore};

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Document serialization/deserialization failure.
    Json(serde_json::Error),
    /// A referenced document does not exist.
    MissingDocument(DocId),
    /// A referenced file does not exist.
    MissingFile(FileId),
    /// A document or field had an unexpected shape.
    Malformed(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage io error: {e}"),
            StoreError::Json(e) => write!(f, "document json error: {e}"),
            StoreError::MissingDocument(id) => write!(f, "missing document {id}"),
            StoreError::MissingFile(id) => write!(f, "missing file {id}"),
            StoreError::Malformed(m) => write!(f, "malformed document: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Json(e)
    }
}

/// Shared byte counters for a storage backend.
///
/// The paper's *storage consumption* metric is "the amount of storage that
/// every approach consumes to save a given model" excluding its base model
/// (§4.2); callers snapshot [`ModelStorage::bytes_written`] around one save
/// to obtain exactly that.
#[derive(Debug, Default)]
pub struct Accounting {
    written: AtomicU64,
    read: AtomicU64,
}

impl Accounting {
    pub(crate) fn add_written(&self, n: u64) {
        self.written.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_read(&self, n: u64) {
        self.read.fetch_add(n, Ordering::Relaxed);
    }
}

/// One logical storage backend: a document database plus a shared file
/// system, as in the paper's MongoDB + shared-FS deployment.
///
/// Cloning is cheap and shares the underlying stores and accounting (the
/// paper's server and nodes all talk to the same MongoDB instance and
/// shared file system).
#[derive(Clone)]
pub struct ModelStorage {
    docs: DocStore,
    files: FileStore,
    accounting: Arc<Accounting>,
    root: PathBuf,
}

impl ModelStorage {
    /// Opens (or creates) a storage rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<ModelStorage, StoreError> {
        let root = root.as_ref().to_path_buf();
        let accounting = Arc::new(Accounting::default());
        let docs = DocStore::open(root.join("docs"), Arc::clone(&accounting))?;
        let files = FileStore::open(root.join("files"), Arc::clone(&accounting))?;
        Ok(ModelStorage { docs, files, accounting, root })
    }

    /// The storage root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The document half.
    pub fn docs(&self) -> &DocStore {
        &self.docs
    }

    /// The file half.
    pub fn files(&self) -> &FileStore {
        &self.files
    }

    /// Total bytes written through this storage so far.
    pub fn bytes_written(&self) -> u64 {
        self.accounting.written.load(Ordering::Relaxed)
    }

    /// Total bytes read through this storage so far.
    pub fn bytes_read(&self) -> u64 {
        self.accounting.read.load(Ordering::Relaxed)
    }

    /// Convenience: insert a document of `kind` with a JSON `body`.
    pub fn insert_doc(&self, kind: &str, body: serde_json::Value) -> Result<DocId, StoreError> {
        self.docs.insert(kind, body)
    }

    /// Convenience: load a document by id.
    pub fn get_doc(&self, id: &DocId) -> Result<Document, StoreError> {
        self.docs.get(id)
    }

    /// Convenience: save a file and return its generated id.
    pub fn put_file(&self, bytes: &[u8]) -> Result<FileId, StoreError> {
        self.files.put(bytes)
    }

    /// Convenience: load a file by id.
    pub fn get_file(&self, id: &FileId) -> Result<Vec<u8>, StoreError> {
        self.files.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn bytes_written_accounts_docs_and_files() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();
        assert_eq!(storage.bytes_written(), 0);
        storage.insert_doc("model_info", json!({"a": 1})).unwrap();
        let after_doc = storage.bytes_written();
        assert!(after_doc > 0);
        storage.put_file(&[0u8; 1000]).unwrap();
        assert!(storage.bytes_written() >= after_doc + 1000);
    }

    #[test]
    fn clones_share_accounting() {
        let dir = tempfile::tempdir().unwrap();
        let a = ModelStorage::open(dir.path()).unwrap();
        let b = a.clone();
        b.put_file(&[1u8; 10]).unwrap();
        assert!(a.bytes_written() >= 10);
    }

    #[test]
    fn doc_and_file_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();
        let id = storage.insert_doc("k", json!({"x": [1, 2, 3]})).unwrap();
        let doc = storage.get_doc(&id).unwrap();
        assert_eq!(doc.kind, "k");
        assert_eq!(doc.body["x"][2], 3);

        let fid = storage.put_file(b"payload").unwrap();
        assert_eq!(storage.get_file(&fid).unwrap(), b"payload");
        assert!(storage.bytes_read() >= 7);
    }

    #[test]
    fn reopening_sees_existing_data() {
        let dir = tempfile::tempdir().unwrap();
        let id;
        let fid;
        {
            let storage = ModelStorage::open(dir.path()).unwrap();
            id = storage.insert_doc("k", json!({"v": true})).unwrap();
            fid = storage.put_file(b"persisted").unwrap();
        }
        let reopened = ModelStorage::open(dir.path()).unwrap();
        assert_eq!(reopened.get_doc(&id).unwrap().body["v"], true);
        assert_eq!(reopened.get_file(&fid).unwrap(), b"persisted");
    }
}
