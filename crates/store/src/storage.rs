//! The combined model storage: documents + files + byte accounting.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::document::{DocId, DocStore, Document};
use crate::fault::{FaultInjector, FaultPlan};
use crate::files::{FileId, FileStore};

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Document serialization/deserialization failure.
    Json(serde_json::Error),
    /// A referenced document does not exist.
    MissingDocument(DocId),
    /// A referenced file does not exist.
    MissingFile(FileId),
    /// A document or field had an unexpected shape.
    Malformed(String),
    /// A remote backend could not complete the operation (connection,
    /// protocol, or server-side failure).
    Remote(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage io error: {e}"),
            StoreError::Json(e) => write!(f, "document json error: {e}"),
            StoreError::MissingDocument(id) => write!(f, "missing document {id}"),
            StoreError::MissingFile(id) => write!(f, "missing file {id}"),
            StoreError::Malformed(m) => write!(f, "malformed document: {m}"),
            StoreError::Remote(m) => write!(f, "remote storage error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Json(e)
    }
}

/// Shared byte counters for a storage backend.
///
/// The paper's *storage consumption* metric is "the amount of storage that
/// every approach consumes to save a given model" excluding its base model
/// (§4.2); callers snapshot [`ModelStorage::bytes_written`] around one save
/// to obtain exactly that. Every update is mirrored into the process-wide
/// [`mmlib_obs::recorder`] (`mmlib_store_bytes_{written,read}_total`), so
/// the exposition shows aggregate storage traffic without extra plumbing.
#[derive(Debug, Default)]
pub struct Accounting {
    written: AtomicU64,
    read: AtomicU64,
    syncs: AtomicU64,
}

impl Accounting {
    pub(crate) fn add_written(&self, n: u64) {
        self.written.fetch_add(n, Ordering::Relaxed);
        mmlib_obs::recorder().inc("mmlib_store_bytes_written_total", n);
    }

    pub(crate) fn add_read(&self, n: u64) {
        self.read.fetch_add(n, Ordering::Relaxed);
        mmlib_obs::recorder().inc("mmlib_store_bytes_read_total", n);
    }

    /// Records durability sync operations (payload `fdatasync` / directory
    /// `fsync` calls). These, not bytes, are the fixed per-artifact cost the
    /// batched commit path exists to coalesce, so the benchmark gate reads
    /// this counter rather than wall time (which tracks device load).
    pub(crate) fn add_syncs(&self, n: u64) {
        self.syncs.fetch_add(n, Ordering::Relaxed);
        mmlib_obs::recorder().inc("mmlib_store_sync_ops_total", n);
    }
}

/// Records one storage operation in the global ops counter.
#[inline]
fn count_op(op: &'static str) {
    mmlib_obs::recorder().inc_labeled("mmlib_store_ops_total", ("op", op), 1);
}

/// One write in a [`StorageBackend::commit_batch`] call.
///
/// Item order is the visibility order: a crash mid-commit exposes only a
/// prefix of the batch, so callers put referents before the documents that
/// reference them (model-info last), exactly as on the sequential path.
#[derive(Debug, Clone)]
pub enum BatchItem {
    /// A document of `kind` with a JSON body.
    Doc {
        /// Collection-style tag, as for [`StorageBackend::insert_doc`].
        kind: String,
        /// The JSON payload.
        body: serde_json::Value,
    },
    /// A blob.
    File {
        /// The blob payload.
        bytes: Vec<u8>,
    },
}

/// Generated id of a committed [`BatchItem`], parallel to the submitted
/// items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchId {
    /// Id of a committed [`BatchItem::Doc`].
    Doc(DocId),
    /// Id of a committed [`BatchItem::File`].
    File(FileId),
}

/// Prefix of an intra-batch id reference (see [`batch_ref`]).
pub const BATCH_REF_PREFIX: &str = "$batch:";

/// Placeholder string resolving to the generated id of an *earlier* item in
/// the same [`StorageBackend::commit_batch`] call.
///
/// Ids are generated during the commit, but documents that tie a save
/// together (model-info, lineage records) embed the ids of their referents
/// — which forces them into follow-up writes unless the reference can be
/// expressed symbolically. A body string `"$batch:2"` is replaced with item
/// 2's id before the referencing document is written. Only backward
/// references are allowed: item order is the visibility order of the batch,
/// so a forward reference could become visible before its referent and is
/// rejected as [`StoreError::Malformed`].
pub fn batch_ref(index: usize) -> String {
    format!("{BATCH_REF_PREFIX}{index}")
}

fn batch_id_str(id: &BatchId) -> &str {
    match id {
        BatchId::Doc(d) => d.as_str(),
        BatchId::File(f) => f.as_str(),
    }
}

/// Replaces every `$batch:N` string in `body` with the id of committed item
/// `N`. `ids` holds the items preceding the body's own item, so any
/// in-range index is a legal backward reference and anything else errors.
fn resolve_batch_refs(body: &mut serde_json::Value, ids: &[BatchId]) -> Result<(), StoreError> {
    match body {
        serde_json::Value::String(s) => {
            if let Some(raw) = s.strip_prefix(BATCH_REF_PREFIX) {
                let index: usize = raw.parse().map_err(|_| {
                    StoreError::Malformed(format!("unparseable batch reference {s:?}"))
                })?;
                let id = ids.get(index).ok_or_else(|| {
                    StoreError::Malformed(format!(
                        "batch reference {s:?} does not point at an earlier item \
                         (references must be backward: item order is visibility order)"
                    ))
                })?;
                *s = batch_id_str(id).to_string();
            }
        }
        serde_json::Value::Array(items) => {
            for item in items {
                resolve_batch_refs(item, ids)?;
            }
        }
        serde_json::Value::Object(map) => {
            let keys: Vec<String> = map.keys().cloned().collect();
            for key in keys {
                if let Some(v) = map.get_mut(&key) {
                    resolve_batch_refs(v, ids)?;
                }
            }
        }
        _ => {}
    }
    Ok(())
}

/// The document/file operations one storage backend must provide.
///
/// [`ModelStorage`] delegates everything here, so the save/recover stack is
/// agnostic to *where* the bytes live: the default backend writes a local
/// directory (the paper's MongoDB + shared-FS stand-in), while `mmlib-net`
/// implements this trait with a TCP client talking to a registry server.
pub trait StorageBackend: Send + Sync {
    /// Inserts a document of `kind`, returning its generated id.
    fn insert_doc(&self, kind: &str, body: serde_json::Value) -> Result<DocId, StoreError>;

    /// Loads a document by id.
    fn get_doc(&self, id: &DocId) -> Result<Document, StoreError>;

    /// Replaces an existing document's body.
    fn update_doc(&self, id: &DocId, body: serde_json::Value) -> Result<(), StoreError>;

    /// Whether a document exists.
    fn contains_doc(&self, id: &DocId) -> bool;

    /// Deletes a document.
    fn remove_doc(&self, id: &DocId) -> Result<(), StoreError>;

    /// Every stored document id.
    fn doc_ids(&self) -> Result<Vec<DocId>, StoreError>;

    /// Saves a blob, returning its generated id.
    fn put_file(&self, bytes: &[u8]) -> Result<FileId, StoreError>;

    /// Loads a blob by id.
    fn get_file(&self, id: &FileId) -> Result<Vec<u8>, StoreError>;

    /// A blob's size in bytes.
    fn file_size(&self, id: &FileId) -> Result<u64, StoreError>;

    /// Whether a blob exists.
    fn contains_file(&self, id: &FileId) -> bool;

    /// Deletes a blob.
    fn remove_file(&self, id: &FileId) -> Result<(), StoreError>;

    /// Every stored blob id (diagnostics/fsck).
    fn file_ids(&self) -> Result<Vec<FileId>, StoreError>;

    /// Total bytes written through this backend so far.
    fn bytes_written(&self) -> u64;

    /// Total bytes read through this backend so far.
    fn bytes_read(&self) -> u64;

    /// Durability sync operations (payload `fdatasync` + directory `fsync`
    /// calls) issued through this backend so far. Backends with no local
    /// durability tail of their own (e.g. remote clients, where syncing is
    /// the server's job) report 0.
    fn sync_ops(&self) -> u64 {
        0
    }

    /// Commits a batch of writes, returning the generated ids in item
    /// order.
    ///
    /// Backends may coalesce the durability tail (the local backend stages
    /// every payload, renames in item order, then fsyncs each distinct
    /// directory once); the atomicity contract is unchanged — a crash
    /// anywhere leaves each destination as either its old or its new
    /// content, with at most temporary files for `fsck` to sweep, and makes
    /// items visible only in item order. Document bodies may reference the
    /// ids of earlier items symbolically (see [`batch_ref`]); every backend
    /// resolves those before the referencing document is written. The
    /// default implementation routes each item through the per-item
    /// methods, so remote and fault-wrapping backends keep their existing
    /// semantics.
    fn commit_batch(&self, items: Vec<BatchItem>) -> Result<Vec<BatchId>, StoreError> {
        let mut ids = Vec::with_capacity(items.len());
        for item in items {
            let id = match item {
                BatchItem::Doc { kind, mut body } => {
                    resolve_batch_refs(&mut body, &ids)?;
                    BatchId::Doc(self.insert_doc(&kind, body)?)
                }
                BatchItem::File { bytes } => BatchId::File(self.put_file(&bytes)?),
            };
            ids.push(id);
        }
        Ok(ids)
    }
}

/// The default backend: a local directory split into `docs/` + `files/`.
struct LocalBackend {
    docs: DocStore,
    files: FileStore,
    accounting: Arc<Accounting>,
}

impl StorageBackend for LocalBackend {
    fn insert_doc(&self, kind: &str, body: serde_json::Value) -> Result<DocId, StoreError> {
        self.docs.insert(kind, body)
    }

    fn get_doc(&self, id: &DocId) -> Result<Document, StoreError> {
        self.docs.get(id)
    }

    fn update_doc(&self, id: &DocId, body: serde_json::Value) -> Result<(), StoreError> {
        self.docs.update(id, body)
    }

    fn contains_doc(&self, id: &DocId) -> bool {
        self.docs.contains(id)
    }

    fn remove_doc(&self, id: &DocId) -> Result<(), StoreError> {
        self.docs.remove(id)
    }

    fn doc_ids(&self) -> Result<Vec<DocId>, StoreError> {
        self.docs.ids()
    }

    fn put_file(&self, bytes: &[u8]) -> Result<FileId, StoreError> {
        self.files.put(bytes)
    }

    fn get_file(&self, id: &FileId) -> Result<Vec<u8>, StoreError> {
        self.files.get(id)
    }

    fn file_size(&self, id: &FileId) -> Result<u64, StoreError> {
        self.files.size(id)
    }

    fn contains_file(&self, id: &FileId) -> bool {
        self.files.contains(id)
    }

    fn remove_file(&self, id: &FileId) -> Result<(), StoreError> {
        self.files.remove(id)
    }

    fn file_ids(&self) -> Result<Vec<FileId>, StoreError> {
        self.files.ids()
    }

    fn bytes_written(&self) -> u64 {
        self.accounting.written.load(Ordering::Relaxed)
    }

    fn bytes_read(&self) -> u64 {
        self.accounting.read.load(Ordering::Relaxed)
    }

    fn sync_ops(&self) -> u64 {
        self.accounting.syncs.load(Ordering::Relaxed)
    }

    fn commit_batch(&self, items: Vec<BatchItem>) -> Result<Vec<BatchId>, StoreError> {
        // Stage everything (each stage consumes one fault-injector
        // operation, like the sequential writes it replaces), then pay the
        // rename + directory-fsync tail once for the whole batch. A failed
        // stage aborts before any rename, so the committed state is
        // untouched; staged tmp files stay behind for fsck, as a crash
        // would leave them. Staged ids are reserved up front, so a document
        // body may reference an earlier item of its own batch (`$batch:N`).
        let mut staged = Vec::with_capacity(items.len());
        let mut ids = Vec::with_capacity(items.len());
        let mut written = Vec::with_capacity(items.len());
        for item in items {
            match item {
                BatchItem::Doc { kind, mut body } => {
                    resolve_batch_refs(&mut body, &ids)?;
                    let (id, s, n) = self.docs.stage(&kind, body)?;
                    staged.push(s);
                    ids.push(BatchId::Doc(id));
                    written.push(n);
                }
                BatchItem::File { bytes } => {
                    let (id, s, n) = self.files.stage(&bytes)?;
                    staged.push(s);
                    ids.push(BatchId::File(id));
                    written.push(n);
                }
            }
        }
        // The commit itself is one more injector operation, so fault plans
        // can target the rename/dir-fsync step specifically. Both stores
        // share one injector when faults are enabled.
        let injector = self.docs.faults().or_else(|| self.files.faults());
        let dir_syncs = crate::atomic::commit_staged(&staged, injector)?;
        self.accounting.add_syncs(dir_syncs as u64);
        for n in written {
            self.accounting.add_written(n);
        }
        Ok(ids)
    }
}

/// One logical storage backend: a document database plus a shared file
/// system, as in the paper's MongoDB + shared-FS deployment.
///
/// Cloning is cheap and shares the underlying backend and accounting (the
/// paper's server and nodes all talk to the same MongoDB instance and
/// shared file system).
#[derive(Clone)]
pub struct ModelStorage {
    backend: Arc<dyn StorageBackend>,
    root: PathBuf,
}

impl ModelStorage {
    /// Opens (or creates) a local directory-backed storage rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<ModelStorage, StoreError> {
        let root = root.as_ref().to_path_buf();
        let accounting = Arc::new(Accounting::default());
        let docs = DocStore::open(root.join("docs"), Arc::clone(&accounting))?;
        let files = FileStore::open(root.join("files"), Arc::clone(&accounting))?;
        let backend = Arc::new(LocalBackend { docs, files, accounting });
        Ok(ModelStorage { backend, root })
    }

    /// Opens local storage like [`ModelStorage::open`], but routes every
    /// document/file write through a [`FaultInjector`] executing `plan`.
    /// Writes consume operation indices in issue order, so the plan's op
    /// numbers address "the K-th write of this run" deterministically.
    ///
    /// Returns the injector alongside the storage so tests can inspect how
    /// many faults actually fired.
    pub fn open_with_faults(
        root: impl AsRef<Path>,
        plan: FaultPlan,
    ) -> Result<(ModelStorage, Arc<FaultInjector>), StoreError> {
        let root = root.as_ref().to_path_buf();
        let injector = Arc::new(FaultInjector::new(plan));
        let accounting = Arc::new(Accounting::default());
        let mut docs = DocStore::open(root.join("docs"), Arc::clone(&accounting))?;
        let mut files = FileStore::open(root.join("files"), Arc::clone(&accounting))?;
        docs.set_faults(Arc::clone(&injector));
        files.set_faults(Arc::clone(&injector));
        let backend = Arc::new(LocalBackend { docs, files, accounting });
        Ok((ModelStorage { backend, root }, injector))
    }

    /// Wraps a custom backend (e.g. a remote registry client). `descriptor`
    /// labels the storage location in diagnostics, like the root directory
    /// does for local storage.
    pub fn from_backend(
        backend: Arc<dyn StorageBackend>,
        descriptor: impl Into<PathBuf>,
    ) -> ModelStorage {
        ModelStorage { backend, root: descriptor.into() }
    }

    /// The storage root directory (or descriptor for non-local backends).
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The underlying backend handle (for wrapping, e.g. by
    /// [`FaultyBackend`](crate::fault::FaultyBackend)).
    pub fn backend(&self) -> Arc<dyn StorageBackend> {
        Arc::clone(&self.backend)
    }

    /// The document half.
    pub fn docs(&self) -> DocsView<'_> {
        DocsView { backend: &*self.backend }
    }

    /// The file half.
    pub fn files(&self) -> FilesView<'_> {
        FilesView { backend: &*self.backend }
    }

    /// Total bytes written through this storage so far.
    pub fn bytes_written(&self) -> u64 {
        self.backend.bytes_written()
    }

    /// Total bytes read through this storage so far.
    pub fn bytes_read(&self) -> u64 {
        self.backend.bytes_read()
    }

    /// Durability sync operations (payload `fdatasync` + directory `fsync`
    /// calls) issued through this storage so far. The save benchmark
    /// snapshots this around a flow: sync count, unlike wall time, is a
    /// device-independent measure of the write path's durability tail.
    pub fn sync_ops(&self) -> u64 {
        self.backend.sync_ops()
    }

    /// Convenience: insert a document of `kind` with a JSON `body`.
    pub fn insert_doc(&self, kind: &str, body: serde_json::Value) -> Result<DocId, StoreError> {
        self.docs().insert(kind, body)
    }

    /// Convenience: load a document by id.
    pub fn get_doc(&self, id: &DocId) -> Result<Document, StoreError> {
        self.docs().get(id)
    }

    /// Convenience: save a file and return its generated id.
    pub fn put_file(&self, bytes: &[u8]) -> Result<FileId, StoreError> {
        self.files().put(bytes)
    }

    /// Convenience: load a file by id.
    pub fn get_file(&self, id: &FileId) -> Result<Vec<u8>, StoreError> {
        self.files().get(id)
    }

    /// Commits a batch of document/file writes, coalescing the durability
    /// tail where the backend supports it (see
    /// [`StorageBackend::commit_batch`] for the ordering contract).
    pub fn commit_batch(&self, items: Vec<BatchItem>) -> Result<Vec<BatchId>, StoreError> {
        count_op("batch_commit");
        self.backend.commit_batch(items)
    }
}

/// Document operations of a [`ModelStorage`], backend-agnostic.
pub struct DocsView<'a> {
    backend: &'a dyn StorageBackend,
}

impl DocsView<'_> {
    pub fn insert(&self, kind: &str, body: serde_json::Value) -> Result<DocId, StoreError> {
        count_op("doc_insert");
        self.backend.insert_doc(kind, body)
    }

    pub fn get(&self, id: &DocId) -> Result<Document, StoreError> {
        count_op("doc_get");
        self.backend.get_doc(id)
    }

    pub fn update(&self, id: &DocId, body: serde_json::Value) -> Result<(), StoreError> {
        count_op("doc_update");
        self.backend.update_doc(id, body)
    }

    pub fn contains(&self, id: &DocId) -> bool {
        self.backend.contains_doc(id)
    }

    pub fn remove(&self, id: &DocId) -> Result<(), StoreError> {
        count_op("doc_remove");
        self.backend.remove_doc(id)
    }

    pub fn ids(&self) -> Result<Vec<DocId>, StoreError> {
        self.backend.doc_ids()
    }
}

/// File operations of a [`ModelStorage`], backend-agnostic.
pub struct FilesView<'a> {
    backend: &'a dyn StorageBackend,
}

impl FilesView<'_> {
    pub fn put(&self, bytes: &[u8]) -> Result<FileId, StoreError> {
        count_op("file_put");
        self.backend.put_file(bytes)
    }

    pub fn get(&self, id: &FileId) -> Result<Vec<u8>, StoreError> {
        count_op("file_get");
        self.backend.get_file(id)
    }

    pub fn size(&self, id: &FileId) -> Result<u64, StoreError> {
        self.backend.file_size(id)
    }

    pub fn contains(&self, id: &FileId) -> bool {
        self.backend.contains_file(id)
    }

    pub fn remove(&self, id: &FileId) -> Result<(), StoreError> {
        count_op("file_remove");
        self.backend.remove_file(id)
    }

    pub fn ids(&self) -> Result<Vec<FileId>, StoreError> {
        self.backend.file_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn bytes_written_accounts_docs_and_files() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();
        assert_eq!(storage.bytes_written(), 0);
        storage.insert_doc("model_info", json!({"a": 1})).unwrap();
        let after_doc = storage.bytes_written();
        assert!(after_doc > 0);
        storage.put_file(&[0u8; 1000]).unwrap();
        assert!(storage.bytes_written() >= after_doc + 1000);
    }

    #[test]
    fn clones_share_accounting() {
        let dir = tempfile::tempdir().unwrap();
        let a = ModelStorage::open(dir.path()).unwrap();
        let b = a.clone();
        b.put_file(&[1u8; 10]).unwrap();
        assert!(a.bytes_written() >= 10);
    }

    #[test]
    fn doc_and_file_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();
        let id = storage.insert_doc("k", json!({"x": [1, 2, 3]})).unwrap();
        let doc = storage.get_doc(&id).unwrap();
        assert_eq!(doc.kind, "k");
        assert_eq!(doc.body["x"][2], 3);

        let fid = storage.put_file(b"payload").unwrap();
        assert_eq!(storage.get_file(&fid).unwrap(), b"payload");
        assert!(storage.bytes_read() >= 7);
    }

    #[test]
    fn reopening_sees_existing_data() {
        let dir = tempfile::tempdir().unwrap();
        let id;
        let fid;
        {
            let storage = ModelStorage::open(dir.path()).unwrap();
            id = storage.insert_doc("k", json!({"v": true})).unwrap();
            fid = storage.put_file(b"persisted").unwrap();
        }
        let reopened = ModelStorage::open(dir.path()).unwrap();
        assert_eq!(reopened.get_doc(&id).unwrap().body["v"], true);
        assert_eq!(reopened.get_file(&fid).unwrap(), b"persisted");
    }

    #[test]
    fn commit_batch_returns_ids_in_item_order_and_accounts_bytes() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();
        let before = storage.bytes_written();
        let ids = storage
            .commit_batch(vec![
                BatchItem::Doc { kind: "env".into(), body: json!({"k": 1}) },
                BatchItem::File { bytes: vec![7u8; 500] },
                BatchItem::Doc { kind: "model_info".into(), body: json!({"k": 2}) },
            ])
            .unwrap();
        assert_eq!(ids.len(), 3);
        match (&ids[0], &ids[1], &ids[2]) {
            (BatchId::Doc(a), BatchId::File(f), BatchId::Doc(b)) => {
                assert_eq!(storage.get_doc(a).unwrap().kind, "env");
                assert_eq!(storage.get_file(f).unwrap(), vec![7u8; 500]);
                assert_eq!(storage.get_doc(b).unwrap().kind, "model_info");
            }
            other => panic!("ids out of order: {other:?}"),
        }
        assert!(storage.bytes_written() >= before + 500);
        // No tmp leftovers after a clean batch.
        for sub in ["docs", "files"] {
            for entry in std::fs::read_dir(dir.path().join(sub)).unwrap() {
                let name = entry.unwrap().file_name();
                assert!(!name.to_str().unwrap().ends_with(".tmp"), "leftover {name:?}");
            }
        }
    }

    #[test]
    fn faulted_batch_commits_nothing_or_a_prefix() {
        use crate::fault::{Fault, FaultPlan};
        let dir = tempfile::tempdir().unwrap();
        // Fault op 3 is the commit (ops 0-2 are the three stages): torn at
        // cut 1 → only the first item becomes visible.
        let plan = FaultPlan::new(0).with(3, Fault::TornWrite { after_bytes: 1 });
        let (storage, _inj) = ModelStorage::open_with_faults(dir.path(), plan).unwrap();
        let err = storage
            .commit_batch(vec![
                BatchItem::Doc { kind: "a".into(), body: json!({}) },
                BatchItem::Doc { kind: "b".into(), body: json!({}) },
                BatchItem::File { bytes: vec![1, 2, 3] },
            ])
            .unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(storage.docs().ids().unwrap().len(), 1, "prefix visible in item order");
        assert_eq!(storage.files().ids().unwrap().len(), 0);
        assert_eq!(storage.bytes_written(), 0, "interrupted batches account nothing");
    }

    #[test]
    fn views_expose_full_backend_surface() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();
        let id = storage.docs().insert("k", json!({"n": 1})).unwrap();
        assert!(storage.docs().contains(&id));
        storage.docs().update(&id, json!({"n": 2})).unwrap();
        assert_eq!(storage.docs().get(&id).unwrap().body["n"], 2);
        assert_eq!(storage.docs().ids().unwrap(), vec![id.clone()]);
        storage.docs().remove(&id).unwrap();
        assert!(!storage.docs().contains(&id));

        let fid = storage.files().put(b"abc").unwrap();
        assert!(storage.files().contains(&fid));
        assert_eq!(storage.files().size(&fid).unwrap(), 3);
        storage.files().remove(&fid).unwrap();
        assert!(!storage.files().contains(&fid));
    }
}
