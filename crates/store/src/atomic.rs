//! Crash-consistent file writes: tmp + rename with fsync points.
//!
//! Both stores persist every document/blob through [`atomic_write`], so a
//! crash (real or injected) at any point leaves either the old file or the
//! new file fully visible — never a prefix. The protocol:
//!
//! 1. write the payload to `<name>.<n>.tmp` in the destination directory,
//! 2. `fdatasync` the temporary file (the data — and the file size, which
//!    `fdatasync` must flush for the data to be retrievable — is durable
//!    before it is named; the tmp's other metadata is irrelevant, so the
//!    full-`fsync` journal flush per payload is skipped),
//! 3. `rename` it over the destination (atomic on POSIX),
//! 4. best-effort `fsync` of the parent directory (the rename is durable).
//!
//! Temporary names never match the stores' `.json`/`.bin` scans, so an
//! interrupted write is invisible to readers; `fsck` sweeps the leftovers.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::fault::{injected_io_error, Fault, FaultInjector};

/// Process-wide counter making temporary names and writer nonces unique
/// within one process regardless of how many store handles exist.
static PROCESS_SEQ: AtomicU64 = AtomicU64::new(0);

/// Temporary-file sibling of `path`: `<file_name>.<n>.tmp` in the same
/// directory (rename must not cross filesystems).
fn tmp_sibling(path: &Path) -> PathBuf {
    let n = PROCESS_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("unnamed");
    path.with_file_name(format!("{name}.{n}.tmp"))
}

/// True if `file_name` is one of our temporary names (an interrupted write).
pub(crate) fn is_tmp_name(file_name: &str) -> bool {
    file_name.ends_with(".tmp")
}

/// Payload write granularity. One giant `write_all` of a multi-megabyte
/// blob can stall on dirty-page throttling; feeding the page cache in
/// bounded chunks keeps the write pipelined. Durability is unchanged — the
/// fsync points stay the same.
const WRITE_CHUNK: usize = 256 * 1024;

fn write_payload(f: &mut std::fs::File, bytes: &[u8]) -> std::io::Result<()> {
    for chunk in bytes.chunks(WRITE_CHUNK) {
        f.write_all(chunk)?;
    }
    Ok(())
}

/// Writes `bytes` to `path` atomically; consults `injector` (one operation
/// per call) for scheduled faults. A [`Fault::TornWrite`] persists only a
/// prefix of the temporary file and fails without renaming — the simulated
/// mid-write crash; any other scheduled fault fails before writing.
pub(crate) fn atomic_write(
    path: &Path,
    bytes: &[u8],
    injector: Option<&FaultInjector>,
) -> std::io::Result<()> {
    let fault = injector.and_then(|i| i.next());
    let tmp = tmp_sibling(path);
    match fault {
        None => {}
        Some(Fault::TornWrite { after_bytes }) => {
            // Saturate: a cut point beyond addressable memory means "the
            // whole buffer", which `min` then clamps to the actual length.
            let cut = usize::try_from(after_bytes).unwrap_or(usize::MAX).min(bytes.len());
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes[..cut])?;
            f.sync_all()?;
            // The "crash": the tmp file stays on disk, the rename never
            // happens, and the caller sees a failed operation.
            return Err(injected_io_error(&Fault::TornWrite { after_bytes }));
        }
        Some(other) => return Err(injected_io_error(&other)),
    }

    let mut f = std::fs::File::create(&tmp)?;
    write_payload(&mut f, bytes)?;
    // sync point 1: payload (data + size) durable under its temporary name.
    f.sync_data()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // fsync point 2: the rename itself. Directory fsync is best-effort —
    // not every filesystem supports opening a directory for sync.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// A payload made durable under its temporary name but not yet renamed to
/// its destination — the first half of [`atomic_write`], split out so a
/// batch can pay the rename + directory-fsync tail once for many writes.
#[derive(Debug)]
pub(crate) struct StagedWrite {
    tmp: PathBuf,
    dest: PathBuf,
}

/// Stages `bytes` for `path`: writes and fsyncs the temporary sibling
/// without renaming it. Consults `injector` exactly like [`atomic_write`]
/// (one operation per call): a [`Fault::TornWrite`] persists a prefix of
/// the tmp file and fails, any other scheduled fault fails before writing.
/// On failure the tmp file (if any) is left behind, as a crash would leave
/// it — `fsck` sweeps temporaries.
pub(crate) fn stage_write(
    path: &Path,
    bytes: &[u8],
    injector: Option<&FaultInjector>,
) -> std::io::Result<StagedWrite> {
    let fault = injector.and_then(|i| i.next());
    let tmp = tmp_sibling(path);
    match fault {
        None => {}
        Some(Fault::TornWrite { after_bytes }) => {
            let cut = usize::try_from(after_bytes).unwrap_or(usize::MAX).min(bytes.len());
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes[..cut])?;
            f.sync_all()?;
            return Err(injected_io_error(&Fault::TornWrite { after_bytes }));
        }
        Some(other) => return Err(injected_io_error(&other)),
    }
    let mut f = std::fs::File::create(&tmp)?;
    write_payload(&mut f, bytes)?;
    f.sync_data()?;
    Ok(StagedWrite { tmp, dest: path.to_path_buf() })
}

/// Commits staged writes: renames each tmp over its destination *in item
/// order*, then fsyncs each distinct parent directory once. Item order is
/// therefore the visibility order — a crash mid-commit exposes a prefix of
/// the batch, so callers must order referents before referencing documents
/// (the same discipline the sequential save path already follows).
///
/// Consults `injector` for one operation covering the whole commit:
/// a [`Fault::TornWrite`] renames only the first `after_bytes` items and
/// fails before the directory fsync (the simulated crash between batch
/// rename and dir fsync when the cut is past the end); any other scheduled
/// fault fails before any rename. Un-renamed tmp files stay on disk for
/// `fsck`, exactly as after a real crash.
///
/// Returns the number of directory fsyncs the commit issued (one per
/// distinct destination directory), for the caller's sync-op accounting.
pub(crate) fn commit_staged(
    staged: &[StagedWrite],
    injector: Option<&FaultInjector>,
) -> std::io::Result<usize> {
    let fault = injector.and_then(|i| i.next());
    let rename_upto = match fault {
        None => staged.len(),
        Some(Fault::TornWrite { after_bytes }) => {
            usize::try_from(after_bytes).unwrap_or(usize::MAX).min(staged.len())
        }
        Some(other) => return Err(injected_io_error(&other)),
    };
    for s in &staged[..rename_upto] {
        std::fs::rename(&s.tmp, &s.dest)?;
    }
    if let Some(f) = fault {
        // The "crash": some (possibly all) renames landed, the directory
        // fsync never ran, and the caller sees a failed operation.
        return Err(injected_io_error(&f));
    }
    let mut parents: Vec<&Path> = staged.iter().filter_map(|s| s.dest.parent()).collect();
    parents.sort_unstable();
    parents.dedup();
    let dir_syncs = parents.len();
    for parent in parents {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(dir_syncs)
}

/// A writer nonce unique across processes (pid + clock) *and* across
/// handles within one process (process-wide counter) — the collision guard
/// `nanotime()` alone did not provide. Only the low 32 bits survive into
/// generated ids, so the counter is spread with a 64-bit odd multiplier.
pub(crate) fn writer_nonce() -> u64 {
    let seq = PROCESS_SEQ.fetch_add(1, Ordering::Relaxed);
    (std::process::id() as u64) ^ nanotime() ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

pub(crate) fn nanotime() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn atomic_write_replaces_content() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.json");
        atomic_write(&path, b"old", None).unwrap();
        atomic_write(&path, b"new", None).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
        // No temporary files survive a successful write.
        let leftovers: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .filter(|e| is_tmp_name(e.as_ref().unwrap().file_name().to_str().unwrap()))
            .collect();
        assert!(leftovers.is_empty());
    }

    #[test]
    fn torn_write_leaves_old_content_and_a_tmp_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.json");
        atomic_write(&path, b"old", None).unwrap();

        let inj = FaultInjector::new(FaultPlan::new(0).with(0, Fault::TornWrite { after_bytes: 2 }));
        let err = atomic_write(&path, b"new-content", Some(&inj)).unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(std::fs::read(&path).unwrap(), b"old", "destination untouched");

        let tmps: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap())
            .filter(|e| is_tmp_name(e.file_name().to_str().unwrap()))
            .collect();
        assert_eq!(tmps.len(), 1, "the interrupted write leaves its tmp file");
        assert_eq!(std::fs::metadata(tmps[0].path()).unwrap().len(), 2, "cut after 2 bytes");
    }

    #[test]
    fn io_error_fault_writes_nothing() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("x.bin");
        let inj = FaultInjector::new(FaultPlan::new(0).with(0, Fault::IoError));
        assert!(atomic_write(&path, b"data", Some(&inj)).is_err());
        assert!(!path.exists());
        assert_eq!(std::fs::read_dir(dir.path()).unwrap().count(), 0);
    }

    fn stage_three(dir: &Path) -> Vec<StagedWrite> {
        (0..3)
            .map(|i| {
                stage_write(&dir.join(format!("f{i}.json")), format!("v{i}").as_bytes(), None)
                    .unwrap()
            })
            .collect()
    }

    fn tmp_count(dir: &Path) -> usize {
        std::fs::read_dir(dir)
            .unwrap()
            .filter(|e| is_tmp_name(e.as_ref().unwrap().file_name().to_str().unwrap()))
            .count()
    }

    #[test]
    fn staged_commit_makes_everything_visible_with_no_tmp_leftovers() {
        let dir = tempfile::tempdir().unwrap();
        let staged = stage_three(dir.path());
        // Staged but uncommitted: nothing visible yet.
        assert!(!dir.path().join("f0.json").exists());
        assert_eq!(tmp_count(dir.path()), 3);
        commit_staged(&staged, None).unwrap();
        for i in 0..3 {
            let bytes = std::fs::read(dir.path().join(format!("f{i}.json"))).unwrap();
            assert_eq!(bytes, format!("v{i}").as_bytes());
        }
        assert_eq!(tmp_count(dir.path()), 0);
    }

    #[test]
    fn torn_commit_exposes_only_a_prefix_in_item_order() {
        let dir = tempfile::tempdir().unwrap();
        let staged = stage_three(dir.path());
        let inj = FaultInjector::new(FaultPlan::new(0).with(0, Fault::TornWrite { after_bytes: 1 }));
        assert!(commit_staged(&staged, Some(&inj)).is_err());
        assert!(dir.path().join("f0.json").exists(), "first item renamed");
        assert!(!dir.path().join("f1.json").exists(), "later items never renamed");
        assert!(!dir.path().join("f2.json").exists());
        assert_eq!(tmp_count(dir.path()), 2, "un-renamed tmps stay for fsck");
    }

    #[test]
    fn faulted_commit_before_rename_leaves_old_state() {
        let dir = tempfile::tempdir().unwrap();
        let staged = stage_three(dir.path());
        let inj = FaultInjector::new(FaultPlan::new(0).with(0, Fault::IoError));
        assert!(commit_staged(&staged, Some(&inj)).is_err());
        for i in 0..3 {
            assert!(!dir.path().join(format!("f{i}.json")).exists());
        }
        assert_eq!(tmp_count(dir.path()), 3);
    }

    #[test]
    fn torn_stage_persists_a_prefix_without_visibility() {
        let dir = tempfile::tempdir().unwrap();
        let inj = FaultInjector::new(FaultPlan::new(0).with(0, Fault::TornWrite { after_bytes: 2 }));
        let err = stage_write(&dir.path().join("x.json"), b"payload", Some(&inj)).unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert!(!dir.path().join("x.json").exists());
        assert_eq!(tmp_count(dir.path()), 1);
    }

    #[test]
    fn writer_nonces_differ_within_a_process() {
        let a = writer_nonce();
        let b = writer_nonce();
        assert_ne!(a as u32, b as u32, "low 32 bits (the id prefix) must differ");
    }
}
