//! JSON document store — the MongoDB analog.
//!
//! The paper (§3.1) saves model metadata as JSON documents "identified by a
//! generated identifier" and organized hierarchically: documents reference
//! other documents (and files) by id. This store persists one pretty-printed
//! JSON file per document under `docs/` and supports the recursive
//! resolution the recovery path performs.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::atomic::{atomic_write, stage_write, StagedWrite};
use crate::fault::FaultInjector;
use crate::storage::{Accounting, StoreError};

/// Generated identifier of a stored document.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(String);

impl DocId {
    /// Wraps a raw id string (for ids read back out of document bodies).
    pub fn from_string(s: String) -> DocId {
        DocId(s)
    }

    /// The raw id string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A stored document: generated id, a `kind` tag, and a JSON body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    /// Generated identifier.
    pub id: DocId,
    /// Collection-style tag (`"model_info"`, `"environment"`, ...).
    pub kind: String,
    /// Arbitrary JSON payload; references to other documents/files are
    /// stored as their id strings inside this body.
    pub body: serde_json::Value,
}

/// Directory-backed JSON document store.
#[derive(Clone)]
pub struct DocStore {
    dir: PathBuf,
    counter: Arc<AtomicU64>,
    nonce: u64,
    accounting: Arc<Accounting>,
    // Serializes id generation scans on reopen.
    init_lock: Arc<Mutex<()>>,
    faults: Option<Arc<FaultInjector>>,
}

impl DocStore {
    /// Opens (or creates) a document store in `dir`.
    pub(crate) fn open(dir: PathBuf, accounting: Arc<Accounting>) -> Result<DocStore, StoreError> {
        std::fs::create_dir_all(&dir)?;
        // Continue id generation past any existing documents.
        let mut max_seq = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            if let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) {
                if let Some(seq) = stem.split('-').nth(1).and_then(|s| u64::from_str_radix(s, 16).ok()) {
                    max_seq = max_seq.max(seq);
                }
            }
        }
        // The nonce distinguishes writers sharing a directory; it only
        // needs uniqueness (across processes and across handles), not
        // secrecy.
        let nonce = crate::atomic::writer_nonce();
        Ok(DocStore {
            dir,
            counter: Arc::new(AtomicU64::new(max_seq + 1)),
            nonce,
            accounting,
            init_lock: Arc::new(Mutex::new(())),
            faults: None,
        })
    }

    /// Routes every subsequent write through `injector` (fault injection).
    pub(crate) fn set_faults(&mut self, injector: Arc<FaultInjector>) {
        self.faults = Some(injector);
    }

    fn path_of(&self, id: &DocId) -> PathBuf {
        self.dir.join(format!("{}.json", id.as_str()))
    }

    fn next_id(&self) -> DocId {
        // Uniqueness fallback: two writers can race to the same id when
        // their nonces collide (e.g. a handle reopened from a stale scan),
        // so skip ids whose file already exists instead of overwriting.
        loop {
            let seq = self.counter.fetch_add(1, Ordering::Relaxed);
            let candidate = DocId(format!("{:08x}-{:x}", self.nonce as u32, seq));
            if !self.path_of(&candidate).exists() {
                break candidate;
            }
        }
    }

    /// Inserts a document of `kind`, returning its generated id.
    pub fn insert(&self, kind: &str, body: serde_json::Value) -> Result<DocId, StoreError> {
        let id = self.next_id();
        let doc = Document { id: id.clone(), kind: kind.to_string(), body };
        let bytes = serde_json::to_vec_pretty(&doc)?;
        atomic_write(&self.path_of(&id), &bytes, self.faults.as_deref())?;
        self.accounting.add_written(bytes.len() as u64);
        self.accounting.add_syncs(2); // payload fdatasync + directory fsync
        Ok(id)
    }

    /// Stages a document for a batch commit: durable under a temporary
    /// name, invisible until [`crate::atomic::commit_staged`] renames it.
    /// Returns the reserved id, the staged write, and the byte count to
    /// account for once the batch commits.
    pub(crate) fn stage(
        &self,
        kind: &str,
        body: serde_json::Value,
    ) -> Result<(DocId, StagedWrite, u64), StoreError> {
        let id = self.next_id();
        let doc = Document { id: id.clone(), kind: kind.to_string(), body };
        let bytes = serde_json::to_vec_pretty(&doc)?;
        let staged = stage_write(&self.path_of(&id), &bytes, self.faults.as_deref())?;
        self.accounting.add_syncs(1); // payload fdatasync; the commit fsyncs dirs
        Ok((id, staged, bytes.len() as u64))
    }

    pub(crate) fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_deref()
    }

    /// Loads a document by id.
    pub fn get(&self, id: &DocId) -> Result<Document, StoreError> {
        let path = self.path_of(id);
        let bytes = std::fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingDocument(id.clone())
            } else {
                StoreError::Io(e)
            }
        })?;
        self.accounting.add_read(bytes.len() as u64);
        Ok(serde_json::from_slice(&bytes)?)
    }

    /// Overwrites an existing document's body (used by append-style indices).
    pub fn update(&self, id: &DocId, body: serde_json::Value) -> Result<(), StoreError> {
        let mut doc = self.get(id)?;
        doc.body = body;
        let bytes = serde_json::to_vec_pretty(&doc)?;
        atomic_write(&self.path_of(id), &bytes, self.faults.as_deref())?;
        self.accounting.add_written(bytes.len() as u64);
        self.accounting.add_syncs(2);
        Ok(())
    }

    /// True if a document with this id exists.
    pub fn contains(&self, id: &DocId) -> bool {
        self.path_of(id).exists()
    }

    /// Removes a document (used by deletion and garbage collection).
    pub fn remove(&self, id: &DocId) -> Result<(), StoreError> {
        std::fs::remove_file(self.path_of(id)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingDocument(id.clone())
            } else {
                StoreError::Io(e)
            }
        })
    }

    /// Ids of all stored documents (diagnostics/tests).
    pub fn ids(&self) -> Result<Vec<DocId>, StoreError> {
        let _g = self.init_lock.lock();
        let mut out = Vec::new();
        // mmlib-lint: allow(H1, diagnostics-only path - the directory scan is serialized against init/compaction by design)
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) {
                out.push(DocId(stem.to_string()));
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn store(dir: &std::path::Path) -> DocStore {
        DocStore::open(dir.join("docs"), Arc::new(Accounting::default())).unwrap()
    }

    #[test]
    fn insert_get_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let id = s.insert("model_info", json!({"arch": "resnet18", "base": null})).unwrap();
        let doc = s.get(&id).unwrap();
        assert_eq!(doc.id, id);
        assert_eq!(doc.kind, "model_info");
        assert_eq!(doc.body["arch"], "resnet18");
    }

    #[test]
    fn ids_are_unique() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(s.insert("k", json!({})).unwrap()));
        }
    }

    #[test]
    fn missing_document_is_a_typed_error() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let err = s.get(&DocId::from_string("deadbeef-1".into())).unwrap_err();
        assert!(matches!(err, StoreError::MissingDocument(_)));
    }

    #[test]
    fn update_replaces_body() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let id = s.insert("k", json!({"v": 1})).unwrap();
        s.update(&id, json!({"v": 2})).unwrap();
        assert_eq!(s.get(&id).unwrap().body["v"], 2);
    }

    #[test]
    fn reopen_continues_id_sequence() {
        let dir = tempfile::tempdir().unwrap();
        let first = {
            let s = store(dir.path());
            s.insert("k", json!({})).unwrap()
        };
        let s2 = store(dir.path());
        let second = s2.insert("k", json!({})).unwrap();
        assert_ne!(first, second);
        assert!(s2.contains(&first));
        assert_eq!(s2.ids().unwrap().len(), 2);
    }

    #[test]
    fn colliding_nonces_never_overwrite_documents() {
        // Regression: two handles whose nonces collide (and whose counters
        // restarted at the same point, as after a stale reopen scan) used to
        // silently overwrite each other's documents. The exists-check
        // fallback must skip taken ids.
        let dir = tempfile::tempdir().unwrap();
        let mut a = store(dir.path());
        let mut b = store(dir.path());
        a.nonce = 0xdead_beef;
        b.nonce = 0xdead_beef;
        a.counter = Arc::new(AtomicU64::new(1));
        b.counter = Arc::new(AtomicU64::new(1));

        let mut ids = std::collections::HashSet::new();
        for i in 0..10 {
            assert!(ids.insert(a.insert("k", json!({"writer": "a", "i": i})).unwrap()));
            assert!(ids.insert(b.insert("k", json!({"writer": "b", "i": i})).unwrap()));
        }
        assert_eq!(a.ids().unwrap().len(), 20, "no document was overwritten");
    }

    #[test]
    fn concurrent_inserts_across_handles_stay_unique() {
        let dir = tempfile::tempdir().unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = store(dir.path());
                std::thread::spawn(move || {
                    (0..25).map(|i| s.insert("k", json!({"i": i})).unwrap()).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = std::collections::HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "two writers produced the same document id");
            }
        }
        let s = store(dir.path());
        assert_eq!(s.ids().unwrap().len(), 100);
    }

    #[test]
    fn corrupt_document_is_a_json_error() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let id = s.insert("k", json!({})).unwrap();
        std::fs::write(dir.path().join("docs").join(format!("{id}.json")), b"{not json").unwrap();
        assert!(matches!(s.get(&id), Err(StoreError::Json(_))));
    }
}
