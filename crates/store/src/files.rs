//! Flat file store — the shared-file-system analog.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::storage::{Accounting, StoreError};

/// Generated identifier of a stored file.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(String);

impl FileId {
    /// Wraps a raw id string (for ids read out of document bodies).
    pub fn from_string(s: String) -> FileId {
        FileId(s)
    }

    /// The raw id string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Directory-backed file store with generated ids.
#[derive(Clone)]
pub struct FileStore {
    dir: PathBuf,
    counter: Arc<AtomicU64>,
    nonce: u64,
    accounting: Arc<Accounting>,
}

impl FileStore {
    /// Opens (or creates) a file store in `dir`.
    pub(crate) fn open(dir: PathBuf, accounting: Arc<Accounting>) -> Result<FileStore, StoreError> {
        std::fs::create_dir_all(&dir)?;
        let mut max_seq = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            if let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".bin")) {
                if let Some(seq) = stem.split('-').nth(1).and_then(|s| u64::from_str_radix(s, 16).ok()) {
                    max_seq = max_seq.max(seq);
                }
            }
        }
        let nonce = std::process::id() as u64 ^ nanotime();
        Ok(FileStore { dir, counter: Arc::new(AtomicU64::new(max_seq + 1)), nonce, accounting })
    }

    fn path_of(&self, id: &FileId) -> PathBuf {
        self.dir.join(format!("{}.bin", id.as_str()))
    }

    /// Stores `bytes`, returning the generated file id.
    pub fn put(&self, bytes: &[u8]) -> Result<FileId, StoreError> {
        let seq = self.counter.fetch_add(1, Ordering::Relaxed);
        let id = FileId(format!("{:08x}-{:x}", self.nonce as u32, seq));
        std::fs::write(self.path_of(&id), bytes)?;
        self.accounting.add_written(bytes.len() as u64);
        Ok(id)
    }

    /// Loads a file by id.
    pub fn get(&self, id: &FileId) -> Result<Vec<u8>, StoreError> {
        let bytes = std::fs::read(self.path_of(id)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingFile(id.clone())
            } else {
                StoreError::Io(e)
            }
        })?;
        self.accounting.add_read(bytes.len() as u64);
        Ok(bytes)
    }

    /// Size in bytes of a stored file without reading it.
    pub fn size(&self, id: &FileId) -> Result<u64, StoreError> {
        let meta = std::fs::metadata(self.path_of(id)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingFile(id.clone())
            } else {
                StoreError::Io(e)
            }
        })?;
        Ok(meta.len())
    }

    /// True if a file with this id exists.
    pub fn contains(&self, id: &FileId) -> bool {
        self.path_of(id).exists()
    }

    /// Removes a file (used by deletion and garbage collection).
    pub fn remove(&self, id: &FileId) -> Result<(), StoreError> {
        std::fs::remove_file(self.path_of(id)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingFile(id.clone())
            } else {
                StoreError::Io(e)
            }
        })
    }
}

fn nanotime() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(dir: &std::path::Path) -> FileStore {
        FileStore::open(dir.join("files"), Arc::new(Accounting::default())).unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let id = s.put(b"hello world").unwrap();
        assert_eq!(s.get(&id).unwrap(), b"hello world");
        assert_eq!(s.size(&id).unwrap(), 11);
        assert!(s.contains(&id));
    }

    #[test]
    fn empty_file_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let id = s.put(&[]).unwrap();
        assert_eq!(s.get(&id).unwrap(), Vec::<u8>::new());
        assert_eq!(s.size(&id).unwrap(), 0);
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let missing = FileId::from_string("no-1".into());
        assert!(matches!(s.get(&missing), Err(StoreError::MissingFile(_))));
        assert!(matches!(s.size(&missing), Err(StoreError::MissingFile(_))));
        assert!(!s.contains(&missing));
    }

    #[test]
    fn ids_are_unique_and_persist() {
        let dir = tempfile::tempdir().unwrap();
        let first = {
            let s = store(dir.path());
            s.put(b"a").unwrap()
        };
        let s2 = store(dir.path());
        let second = s2.put(b"b").unwrap();
        assert_ne!(first, second);
        assert_eq!(s2.get(&first).unwrap(), b"a");
    }
}
