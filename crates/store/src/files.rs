//! Flat file store — the shared-file-system analog.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::atomic::{atomic_write, stage_write, StagedWrite};
use crate::fault::FaultInjector;
use crate::storage::{Accounting, StoreError};

/// Generated identifier of a stored file.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(String);

impl FileId {
    /// Wraps a raw id string (for ids read out of document bodies).
    pub fn from_string(s: String) -> FileId {
        FileId(s)
    }

    /// The raw id string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Directory-backed file store with generated ids.
#[derive(Clone)]
pub struct FileStore {
    dir: PathBuf,
    counter: Arc<AtomicU64>,
    nonce: u64,
    accounting: Arc<Accounting>,
    faults: Option<Arc<FaultInjector>>,
}

impl FileStore {
    /// Opens (or creates) a file store in `dir`.
    pub(crate) fn open(dir: PathBuf, accounting: Arc<Accounting>) -> Result<FileStore, StoreError> {
        std::fs::create_dir_all(&dir)?;
        let mut max_seq = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            if let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".bin")) {
                if let Some(seq) = stem.split('-').nth(1).and_then(|s| u64::from_str_radix(s, 16).ok()) {
                    max_seq = max_seq.max(seq);
                }
            }
        }
        let nonce = crate::atomic::writer_nonce();
        Ok(FileStore {
            dir,
            counter: Arc::new(AtomicU64::new(max_seq + 1)),
            nonce,
            accounting,
            faults: None,
        })
    }

    /// Routes every subsequent write through `injector` (fault injection).
    pub(crate) fn set_faults(&mut self, injector: Arc<FaultInjector>) {
        self.faults = Some(injector);
    }

    fn path_of(&self, id: &FileId) -> PathBuf {
        self.dir.join(format!("{}.bin", id.as_str()))
    }

    fn next_id(&self) -> FileId {
        // Uniqueness fallback mirroring `DocStore::insert`: skip ids whose
        // file already exists rather than overwriting a colliding writer's
        // blob.
        loop {
            let seq = self.counter.fetch_add(1, Ordering::Relaxed);
            let candidate = FileId(format!("{:08x}-{:x}", self.nonce as u32, seq));
            if !self.path_of(&candidate).exists() {
                break candidate;
            }
        }
    }

    /// Stores `bytes`, returning the generated file id.
    pub fn put(&self, bytes: &[u8]) -> Result<FileId, StoreError> {
        let id = self.next_id();
        atomic_write(&self.path_of(&id), bytes, self.faults.as_deref())?;
        self.accounting.add_written(bytes.len() as u64);
        self.accounting.add_syncs(2); // payload fdatasync + directory fsync
        Ok(id)
    }

    /// Stages `bytes` for a batch commit: durable under a temporary name,
    /// invisible until [`crate::atomic::commit_staged`] renames it. Returns
    /// the reserved id, the staged write, and the byte count to account for
    /// once the batch commits.
    pub(crate) fn stage(&self, bytes: &[u8]) -> Result<(FileId, StagedWrite, u64), StoreError> {
        let id = self.next_id();
        let staged = stage_write(&self.path_of(&id), bytes, self.faults.as_deref())?;
        self.accounting.add_syncs(1); // payload fdatasync; the commit fsyncs dirs
        Ok((id, staged, bytes.len() as u64))
    }

    pub(crate) fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_deref()
    }

    /// Ids of all stored files (diagnostics/fsck).
    pub fn ids(&self) -> Result<Vec<FileId>, StoreError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".bin")) {
                out.push(FileId(stem.to_string()));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads a file by id.
    pub fn get(&self, id: &FileId) -> Result<Vec<u8>, StoreError> {
        let bytes = std::fs::read(self.path_of(id)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingFile(id.clone())
            } else {
                StoreError::Io(e)
            }
        })?;
        self.accounting.add_read(bytes.len() as u64);
        Ok(bytes)
    }

    /// Size in bytes of a stored file without reading it.
    pub fn size(&self, id: &FileId) -> Result<u64, StoreError> {
        let meta = std::fs::metadata(self.path_of(id)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingFile(id.clone())
            } else {
                StoreError::Io(e)
            }
        })?;
        Ok(meta.len())
    }

    /// True if a file with this id exists.
    pub fn contains(&self, id: &FileId) -> bool {
        self.path_of(id).exists()
    }

    /// Removes a file (used by deletion and garbage collection).
    pub fn remove(&self, id: &FileId) -> Result<(), StoreError> {
        std::fs::remove_file(self.path_of(id)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingFile(id.clone())
            } else {
                StoreError::Io(e)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(dir: &std::path::Path) -> FileStore {
        FileStore::open(dir.join("files"), Arc::new(Accounting::default())).unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let id = s.put(b"hello world").unwrap();
        assert_eq!(s.get(&id).unwrap(), b"hello world");
        assert_eq!(s.size(&id).unwrap(), 11);
        assert!(s.contains(&id));
    }

    #[test]
    fn empty_file_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let id = s.put(&[]).unwrap();
        assert_eq!(s.get(&id).unwrap(), Vec::<u8>::new());
        assert_eq!(s.size(&id).unwrap(), 0);
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let missing = FileId::from_string("no-1".into());
        assert!(matches!(s.get(&missing), Err(StoreError::MissingFile(_))));
        assert!(matches!(s.size(&missing), Err(StoreError::MissingFile(_))));
        assert!(!s.contains(&missing));
    }

    #[test]
    fn colliding_nonces_never_overwrite_files() {
        // Regression: writers whose `nanotime()`-derived nonces collided
        // could hand out the same file id and silently clobber each other's
        // bytes; the exists-check fallback must skip taken ids.
        let dir = tempfile::tempdir().unwrap();
        let mut a = store(dir.path());
        let mut b = store(dir.path());
        a.nonce = 0xfeed_f00d;
        b.nonce = 0xfeed_f00d;
        a.counter = Arc::new(AtomicU64::new(1));
        b.counter = Arc::new(AtomicU64::new(1));

        let ia = a.put(b"from-a").unwrap();
        let ib = b.put(b"from-b").unwrap();
        assert_ne!(ia, ib);
        assert_eq!(a.get(&ia).unwrap(), b"from-a");
        assert_eq!(a.get(&ib).unwrap(), b"from-b");
    }

    #[test]
    fn concurrent_puts_across_handles_stay_unique() {
        let dir = tempfile::tempdir().unwrap();
        let handles: Vec<_> = (0..4)
            .map(|w: u8| {
                let s = store(dir.path());
                std::thread::spawn(move || {
                    (0..25u8).map(|i| (s.put(&[w, i]).unwrap(), vec![w, i])).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = std::collections::HashSet::new();
        let reader = store(dir.path());
        for h in handles {
            for (id, expect) in h.join().unwrap() {
                assert!(all.insert(id.clone()), "two writers produced the same file id");
                assert_eq!(reader.get(&id).unwrap(), expect, "blob content intact");
            }
        }
        assert_eq!(reader.ids().unwrap().len(), 100);
    }

    #[test]
    fn ids_scan_lists_stored_files() {
        let dir = tempfile::tempdir().unwrap();
        let s = store(dir.path());
        let a = s.put(b"a").unwrap();
        let b = s.put(b"b").unwrap();
        let mut expect = vec![a, b];
        expect.sort();
        assert_eq!(s.ids().unwrap(), expect);
    }

    #[test]
    fn ids_are_unique_and_persist() {
        let dir = tempfile::tempdir().unwrap();
        let first = {
            let s = store(dir.path());
            s.put(b"a").unwrap()
        };
        let s2 = store(dir.path());
        let second = s2.put(b"b").unwrap();
        assert_ne!(first, second);
        assert_eq!(s2.get(&first).unwrap(), b"a");
    }
}
