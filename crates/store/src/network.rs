//! Simulated network link.
//!
//! The paper's machines are "connected via 100G InfiniBand" (§4.1). We do
//! not sleep to fake transfers; instead [`SimNetwork`] computes the transfer
//! time a given payload would take and keeps a cumulative ledger, so the
//! distributed experiments can report network cost separately from the real
//! compute/IO time they measure.

use std::sync::Arc;
use std::time::Duration;

use mmlib_obs::Recorder;

/// Counter names for the link ledger, kept in one place so readers and
/// writers cannot drift.
const BYTES_TOTAL: &str = "mmlib_simnet_bytes_total";
const NANOS_TOTAL: &str = "mmlib_simnet_nanos_total";

/// A point-to-point link model: latency + bandwidth, with a transfer ledger.
///
/// The ledger is an [`mmlib_obs::Recorder`] shared by all clones of one
/// link (each `new` starts a fresh, isolated ledger); transfers are also
/// mirrored into the process-wide recorder so the exposition shows
/// aggregate simulated-network traffic.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    /// One-way latency per transfer.
    latency: Duration,
    /// Usable bandwidth in bytes per second.
    bytes_per_sec: u64,
    ledger: Arc<Recorder>,
}

impl SimNetwork {
    /// A link with the given latency and bandwidth (bytes/second).
    pub fn new(latency: Duration, bytes_per_sec: u64) -> SimNetwork {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        SimNetwork { latency, bytes_per_sec, ledger: Arc::new(Recorder::new()) }
    }

    /// The paper's setup: 100 Gb/s InfiniBand. We assume ~90% goodput and
    /// a 2 µs switch latency.
    pub fn infiniband_100g() -> SimNetwork {
        SimNetwork::new(Duration::from_micros(2), 100_000_000_000 / 8 * 9 / 10)
    }

    /// A slow constrained edge link (1 Gb/s, 10 ms) — the paper's motivation
    /// mentions transfers "with limited available bandwidth".
    pub fn edge_1g() -> SimNetwork {
        SimNetwork::new(Duration::from_millis(10), 1_000_000_000 / 8)
    }

    /// Time one transfer of `bytes` takes on this link.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        // Widen to u128: `bytes * 1e9` overflows u64 beyond ~18.4 GB, which
        // full-scale DIST payloads exceed.
        let nanos = u128::from(bytes) * 1_000_000_000 / u128::from(self.bytes_per_sec);
        self.latency + duration_from_nanos_u128(nanos)
    }

    /// Records a transfer in the ledger and returns its simulated duration.
    pub fn record_transfer(&self, bytes: u64) -> Duration {
        let d = self.transfer_time(bytes);
        self.ledger.inc(BYTES_TOTAL, bytes);
        self.ledger.inc(NANOS_TOTAL, d.as_nanos() as u64);
        mmlib_obs::recorder().inc(BYTES_TOTAL, bytes);
        d
    }

    /// Total bytes recorded.
    pub fn bytes_transferred(&self) -> u64 {
        self.ledger.counter_value(BYTES_TOTAL, None)
    }

    /// Total simulated transfer time recorded.
    pub fn simulated_time(&self) -> Duration {
        Duration::from_nanos(self.ledger.counter_value(NANOS_TOTAL, None))
    }
}

/// `Duration::from_nanos` takes u64, which caps out at ~584 years of
/// nanoseconds; split into whole seconds first so arbitrarily large modeled
/// transfers stay exact.
fn duration_from_nanos_u128(nanos: u128) -> Duration {
    let secs = (nanos / 1_000_000_000) as u64;
    let subsec = (nanos % 1_000_000_000) as u32;
    Duration::new(secs, subsec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let net = SimNetwork::new(Duration::ZERO, 1_000_000);
        assert_eq!(net.transfer_time(1_000_000), Duration::from_secs(1));
        assert_eq!(net.transfer_time(500_000), Duration::from_millis(500));
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let net = SimNetwork::infiniband_100g();
        let t = net.transfer_time(100);
        assert!(t >= Duration::from_micros(2));
        assert!(t < Duration::from_micros(3));
    }

    #[test]
    fn ledger_accumulates() {
        let net = SimNetwork::new(Duration::from_millis(1), 1_000_000);
        net.record_transfer(1_000_000);
        net.record_transfer(2_000_000);
        assert_eq!(net.bytes_transferred(), 3_000_000);
        assert_eq!(net.simulated_time(), Duration::from_millis(3000 + 2));
    }

    #[test]
    fn huge_transfers_do_not_overflow() {
        // Regression: `bytes * 1_000_000_000` saturated u64 above ~18.4 GB,
        // collapsing every larger payload to the same wrong duration.
        let hundred_gb: u64 = 100 * 1_000_000_000;
        let net = SimNetwork::infiniband_100g();
        let t = net.transfer_time(hundred_gb);
        // 100 GB at 11.25 GB/s goodput ≈ 8.889 s.
        assert!(t > Duration::from_secs(8), "got {t:?}");
        assert!(t < Duration::from_secs(10), "got {t:?}");
        // Strictly monotone in size even past the old saturation point.
        assert!(net.transfer_time(2 * hundred_gb) > t);
    }

    #[test]
    fn clones_share_the_ledger() {
        let net = SimNetwork::edge_1g();
        let other = net.clone();
        other.record_transfer(125_000_000); // 1s at 1 Gb/s
        assert_eq!(net.bytes_transferred(), 125_000_000);
        assert!(net.simulated_time() >= Duration::from_secs(1));
    }

    #[test]
    fn hundred_megabyte_model_on_infiniband_is_fast() {
        // Sanity of the paper's setting: a ResNet-152 snapshot (242 MB)
        // crosses a 100G link in ~20 ms — network is not the bottleneck.
        let net = SimNetwork::infiniband_100g();
        let t = net.transfer_time(242_000_000);
        assert!(t < Duration::from_millis(50), "{t:?}");
    }
}
