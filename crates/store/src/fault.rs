//! Deterministic fault injection for the storage stack.
//!
//! The paper's claim — exact model representations recovered in a
//! distributed environment — is only testable if the save/recover path is
//! exercised under the failures a real server+nodes deployment sees: torn
//! file writes, transient IO errors, dropped and truncated TCP frames.
//! This module provides the *schedule* for such failures:
//!
//! * [`FaultPlan`] — a seeded, deterministic schedule mapping operation
//!   indices to [`Fault`]s. The same seed always produces the same
//!   schedule, so every fault-matrix test failure is reproducible from its
//!   seed alone.
//! * [`FaultInjector`] — the runtime counterpart: an operation cursor that
//!   hands out the scheduled fault (if any) each time the instrumented code
//!   reaches an injection point.
//! * [`FaultyBackend`] — a [`StorageBackend`] wrapper injecting op-level
//!   faults (errors, latency) in front of any backend, local or remote.
//!
//! Byte-level torn writes are injected *inside* the local store's atomic
//! write path (see [`ModelStorage::open_with_faults`]); network faults are
//! interpreted by `mmlib-net`'s server hook. Both consume the same plan
//! type, so one seed describes one failure scenario end to end.
//!
//! [`ModelStorage::open_with_faults`]: crate::ModelStorage::open_with_faults

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;

use crate::document::{DocId, Document};
use crate::files::FileId;
use crate::storage::{StorageBackend, StoreError};

/// One injectable failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with an injected IO error before any bytes are
    /// written (a full-disk or permission-style failure).
    IoError,
    /// A file write is cut after `after_bytes` bytes; the remainder never
    /// reaches disk and the operation reports failure — the simulated
    /// process crash mid-write.
    TornWrite {
        /// Bytes that make it to the temporary file before the "crash".
        after_bytes: u64,
    },
    /// The operation is delayed by `micros` before proceeding normally
    /// (a slow-disk / congested-link stand-in).
    Latency {
        /// Injected delay in microseconds.
        micros: u64,
    },
    /// Network: the connection is dropped before the frame is written.
    DropConnection,
    /// Network: the frame's bytes are cut after `after_bytes`, then the
    /// connection is dropped — a torn write's wire-protocol sibling.
    TruncateFrame {
        /// Frame bytes that reach the socket before the drop.
        after_bytes: u64,
    },
    /// Network: the connection is reset as soon as it is accepted — the
    /// transient `ECONNRESET` a restarting registry produces.
    ConnReset,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::IoError => f.write_str("io-error"),
            Fault::TornWrite { after_bytes } => write!(f, "torn-write@{after_bytes}"),
            Fault::Latency { micros } => write!(f, "latency:{micros}us"),
            Fault::DropConnection => f.write_str("drop-connection"),
            Fault::TruncateFrame { after_bytes } => write!(f, "truncate-frame@{after_bytes}"),
            Fault::ConnReset => f.write_str("conn-reset"),
        }
    }
}

/// A seeded, deterministic fault schedule: operation index → fault.
///
/// Construct an explicit schedule with [`FaultPlan::new`] + [`FaultPlan::with`],
/// or derive one pseudo-randomly (but reproducibly) from a seed with
/// [`FaultPlan::storage_from_seed`] / [`FaultPlan::net_from_seed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: BTreeMap<u64, Fault>,
}

/// Splitmix64 step — the standard seed expander; deterministic across
/// platforms, which is all the schedule generator needs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan carrying `seed` as its label.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, faults: BTreeMap::new() }
    }

    /// Schedules `fault` at write-operation index `op` (0-based).
    pub fn with(mut self, op: u64, fault: Fault) -> FaultPlan {
        self.faults.insert(op, fault);
        self
    }

    /// Derives a storage-fault schedule from `seed`: one to three faults
    /// (torn writes, IO errors, latency) over the first 16 write ops —
    /// enough to hit every document/file write of one model save.
    pub fn storage_from_seed(seed: u64) -> FaultPlan {
        let mut state = seed ^ 0x6d6d_6c69_622d_7273; // "mmlib-rs" flavour
        let mut plan = FaultPlan::new(seed);
        let count = 1 + splitmix64(&mut state) % 3;
        for _ in 0..count {
            let op = splitmix64(&mut state) % 16;
            let fault = match splitmix64(&mut state) % 4 {
                0 => Fault::IoError,
                1 | 2 => Fault::TornWrite { after_bytes: splitmix64(&mut state) % 4096 },
                _ => Fault::Latency { micros: splitmix64(&mut state) % 500 },
            };
            plan.faults.insert(op, fault);
        }
        plan
    }

    /// Derives a network-fault schedule from `seed`: one to three faults
    /// (dropped connections, truncated frames, latency) over the first 24
    /// response frames.
    pub fn net_from_seed(seed: u64) -> FaultPlan {
        let mut state = seed ^ 0x6d6d_6c69_622d_6e65; // "mmlib-ne" flavour
        let mut plan = FaultPlan::new(seed);
        let count = 1 + splitmix64(&mut state) % 3;
        for _ in 0..count {
            let op = splitmix64(&mut state) % 24;
            let fault = match splitmix64(&mut state) % 4 {
                0 => Fault::DropConnection,
                1 | 2 => Fault::TruncateFrame { after_bytes: splitmix64(&mut state) % 64 },
                _ => Fault::Latency { micros: splitmix64(&mut state) % 500 },
            };
            plan.faults.insert(op, fault);
        }
        plan
    }

    /// The seed this plan was built from (diagnostics / reproduction).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled `(op, fault)` pairs in op order.
    pub fn scheduled(&self) -> impl Iterator<Item = (u64, Fault)> + '_ {
        self.faults.iter().map(|(&op, &f)| (op, f))
    }

    fn at(&self, op: u64) -> Option<Fault> {
        self.faults.get(&op).copied()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed {}: [", self.seed)?;
        for (i, (op, fault)) in self.scheduled().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "op {op} {fault}")?;
        }
        f.write_str("]")
    }
}

/// Runtime cursor over a [`FaultPlan`]: each call to [`FaultInjector::next`]
/// consumes one operation index and returns the fault scheduled there.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: AtomicU64,
    injected: AtomicU64,
}

impl FaultInjector {
    /// Wraps a plan with a fresh cursor.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan, cursor: AtomicU64::new(0), injected: AtomicU64::new(0) }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consumes the next operation index; returns its scheduled fault.
    /// `Latency` faults are slept here and not returned — callers only see
    /// faults they must act on.
    pub fn next(&self) -> Option<Fault> {
        let op = self.cursor.fetch_add(1, Ordering::SeqCst);
        match self.plan.at(op) {
            Some(Fault::Latency { micros }) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(micros));
                None
            }
            Some(fault) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Some(fault)
            }
            None => None,
        }
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.cursor.load(Ordering::SeqCst)
    }

    /// Faults injected so far (latency included).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// The `io::Error` representing an injected fault; `kind` is `Other` so it
/// is never confused with a real `NotFound`/`UnexpectedEof` classification.
pub(crate) fn injected_io_error(fault: &Fault) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {fault}"))
}

/// A [`StorageBackend`] wrapper that injects op-level faults in front of
/// any backend. Every backend call consumes one injector op; a scheduled
/// fault makes the call fail with a typed [`StoreError::Io`] (the wrapped
/// backend is not invoked), latency delays it, and unscheduled ops pass
/// through untouched.
///
/// Torn writes cannot be expressed at this level (the wrapper cannot cut a
/// write the backend performs internally); they map to a plain injected
/// error here and are injected for real by
/// [`ModelStorage::open_with_faults`](crate::ModelStorage::open_with_faults).
pub struct FaultyBackend {
    inner: std::sync::Arc<dyn StorageBackend>,
    injector: std::sync::Arc<FaultInjector>,
}

impl FaultyBackend {
    /// Wraps `inner`, consulting `injector` before every operation.
    pub fn wrap(
        inner: std::sync::Arc<dyn StorageBackend>,
        injector: std::sync::Arc<FaultInjector>,
    ) -> FaultyBackend {
        FaultyBackend { inner, injector }
    }

    fn gate(&self) -> Result<(), StoreError> {
        match self.injector.next() {
            Some(fault) => Err(StoreError::Io(injected_io_error(&fault))),
            None => Ok(()),
        }
    }
}

impl StorageBackend for FaultyBackend {
    fn insert_doc(&self, kind: &str, body: Value) -> Result<DocId, StoreError> {
        self.gate()?;
        self.inner.insert_doc(kind, body)
    }

    fn get_doc(&self, id: &DocId) -> Result<Document, StoreError> {
        self.gate()?;
        self.inner.get_doc(id)
    }

    fn update_doc(&self, id: &DocId, body: Value) -> Result<(), StoreError> {
        self.gate()?;
        self.inner.update_doc(id, body)
    }

    fn contains_doc(&self, id: &DocId) -> bool {
        self.gate().is_ok() && self.inner.contains_doc(id)
    }

    fn remove_doc(&self, id: &DocId) -> Result<(), StoreError> {
        self.gate()?;
        self.inner.remove_doc(id)
    }

    fn doc_ids(&self) -> Result<Vec<DocId>, StoreError> {
        self.gate()?;
        self.inner.doc_ids()
    }

    fn put_file(&self, bytes: &[u8]) -> Result<FileId, StoreError> {
        self.gate()?;
        self.inner.put_file(bytes)
    }

    fn get_file(&self, id: &FileId) -> Result<Vec<u8>, StoreError> {
        self.gate()?;
        self.inner.get_file(id)
    }

    fn file_size(&self, id: &FileId) -> Result<u64, StoreError> {
        self.gate()?;
        self.inner.file_size(id)
    }

    fn contains_file(&self, id: &FileId) -> bool {
        self.gate().is_ok() && self.inner.contains_file(id)
    }

    fn remove_file(&self, id: &FileId) -> Result<(), StoreError> {
        self.gate()?;
        self.inner.remove_file(id)
    }

    fn file_ids(&self) -> Result<Vec<FileId>, StoreError> {
        self.gate()?;
        self.inner.file_ids()
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }

    fn sync_ops(&self) -> u64 {
        self.inner.sync_ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        for seed in 0..64u64 {
            let a = FaultPlan::storage_from_seed(seed);
            let b = FaultPlan::storage_from_seed(seed);
            assert_eq!(a, b, "same seed must give the same schedule");
            assert!(!a.is_empty(), "generated plans always schedule at least one fault");
        }
        // Different seeds (almost always) give different schedules; assert
        // over a window so the test is deterministic, not probabilistic.
        let distinct: std::collections::BTreeSet<String> =
            (0..64u64).map(|s| FaultPlan::storage_from_seed(s).to_string()).collect();
        assert!(distinct.len() > 32, "seeds must actually vary the schedule");
    }

    #[test]
    fn injector_fires_exactly_at_scheduled_ops() {
        let plan = FaultPlan::new(7)
            .with(1, Fault::IoError)
            .with(3, Fault::TornWrite { after_bytes: 10 });
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.next(), None);
        assert_eq!(inj.next(), Some(Fault::IoError));
        assert_eq!(inj.next(), None);
        assert_eq!(inj.next(), Some(Fault::TornWrite { after_bytes: 10 }));
        assert_eq!(inj.next(), None);
        assert_eq!(inj.ops(), 5);
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn latency_faults_are_absorbed_by_the_injector() {
        let inj = FaultInjector::new(FaultPlan::new(0).with(0, Fault::Latency { micros: 1 }));
        assert_eq!(inj.next(), None, "latency is slept, not surfaced");
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn plan_display_lists_schedule_for_reproduction() {
        let plan = FaultPlan::new(42).with(2, Fault::TruncateFrame { after_bytes: 9 });
        assert_eq!(plan.to_string(), "seed 42: [op 2 truncate-frame@9]");
    }

    #[test]
    fn faulty_backend_injects_typed_errors_and_passes_through() {
        let dir = tempfile::tempdir().unwrap();
        let local = crate::ModelStorage::open(dir.path()).unwrap();
        let fid = local.put_file(b"existing").unwrap();

        let injector =
            std::sync::Arc::new(FaultInjector::new(FaultPlan::new(1).with(1, Fault::IoError)));
        let faulty = crate::ModelStorage::from_backend(
            std::sync::Arc::new(FaultyBackend::wrap(local.backend(), injector.clone())),
            "faulty://test",
        );
        // Op 0 passes through, op 1 fails typed, op 2 passes again.
        assert_eq!(faulty.get_file(&fid).unwrap(), b"existing");
        assert!(matches!(faulty.get_file(&fid), Err(StoreError::Io(_))));
        assert_eq!(faulty.get_file(&fid).unwrap(), b"existing");
        assert_eq!(injector.injected(), 1);
    }
}
