//! The lineage DAG: nodes are saved model versions, edges are live parent
//! links carrying diff provenance and tags.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mmlib_core::meta::{kinds, LineageRecordDoc, ModelInfoDoc, SavedModelId};
use mmlib_core::{CoreError, SaveService};
use mmlib_store::DocId;

/// One node of the lineage DAG: a saved model version and its record.
#[derive(Debug, Clone)]
pub struct LineageNode {
    /// The saved model this node describes.
    pub id: SavedModelId,
    /// The persisted record (derivation edge, diff provenance, tags).
    pub record: LineageRecordDoc,
    /// The backing `lineage` document, or `None` for nodes synthesized
    /// from `model_info` metadata of models saved before lineage records
    /// existed.
    pub doc: Option<DocId>,
}

impl LineageNode {
    /// The live parent edge, as a model id.
    pub fn parent_id(&self) -> Option<SavedModelId> {
        self.record.parent.as_ref().map(|p| SavedModelId(DocId::from_string(p.clone())))
    }
}

/// The lineage DAG over one store's saved models.
///
/// Built from the `lineage` records `SaveService::save` emits. Models
/// without a record (stores predating lineage, or a record lost to a
/// crash) get a node synthesized from their `model_info` base reference,
/// so the graph is always total over the store's models. Lineage records
/// describing models that no longer exist are skipped — reporting them is
/// `fsck`'s job.
#[derive(Debug, Default)]
pub struct LineageGraph {
    nodes: BTreeMap<String, LineageNode>,
    children: BTreeMap<String, Vec<String>>,
}

impl LineageGraph {
    /// Scans the store and builds the DAG.
    pub fn load(svc: &SaveService) -> Result<LineageGraph, CoreError> {
        let mut infos: BTreeMap<String, ModelInfoDoc> = BTreeMap::new();
        let mut records: BTreeMap<String, (DocId, LineageRecordDoc)> = BTreeMap::new();
        for doc_id in svc.storage().docs().ids()? {
            let doc = svc.storage().get_doc(&doc_id)?;
            match doc.kind.as_str() {
                k if k == kinds::MODEL_INFO => {
                    let info: ModelInfoDoc = serde_json::from_value(doc.body).map_err(|e| {
                        CoreError::BadModelDocument {
                            id: SavedModelId(doc_id.clone()),
                            reason: format!("undecodable body: {e}"),
                        }
                    })?;
                    infos.insert(doc_id.as_str().to_string(), info);
                }
                k if k == kinds::LINEAGE => {
                    if let Ok(record) =
                        serde_json::from_value::<LineageRecordDoc>(doc.body)
                    {
                        records.insert(record.model.clone(), (doc_id, record));
                    }
                    // Undecodable lineage records are ignored here and
                    // reported by fsck's lineage pass.
                }
                _ => {}
            }
        }

        let mut graph = LineageGraph::default();
        for (model, info) in &infos {
            let node = match records.remove(model) {
                Some((doc_id, record)) => LineageNode {
                    id: SavedModelId(DocId::from_string(model.clone())),
                    record,
                    doc: Some(doc_id),
                },
                // Legacy model: synthesize the record from its info doc.
                None => LineageNode {
                    id: SavedModelId(DocId::from_string(model.clone())),
                    record: LineageRecordDoc {
                        model: model.clone(),
                        parent: info.base_model.clone(),
                        approach: info.approach,
                        relation: info.relation,
                        root_hash: info.root_hash.clone(),
                        changed_layers: None,
                        tags: Vec::new(),
                        rebased_from: None,
                    },
                    doc: None,
                },
            };
            if let Some(parent) = &node.record.parent {
                // Edges into missing models are dropped (fsck reports the
                // dangling reference); edges between live models are kept.
                if infos.contains_key(parent) {
                    graph.children.entry(parent.clone()).or_default().push(model.clone());
                }
            }
            graph.nodes.insert(model.clone(), node);
        }
        Ok(graph)
    }

    /// Number of nodes (= saved models).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the store has no saved models.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, ordered by model id.
    pub fn nodes(&self) -> impl Iterator<Item = &LineageNode> {
        self.nodes.values()
    }

    /// The node for `id`, when the model exists.
    pub fn node(&self, id: &SavedModelId) -> Option<&LineageNode> {
        self.nodes.get(id.doc_id().as_str())
    }

    /// The node for `id`, or a typed error naming the missing model.
    pub fn require(&self, id: &SavedModelId) -> Result<&LineageNode, CoreError> {
        self.node(id).ok_or_else(|| CoreError::BadModelDocument {
            id: id.clone(),
            reason: "not a saved model (no lineage node)".into(),
        })
    }

    /// Nodes with no live parent edge (chain roots and compacted nodes).
    pub fn roots(&self) -> Vec<&LineageNode> {
        self.nodes.values().filter(|n| n.record.parent.is_none()).collect()
    }

    /// Direct children of `id`, ordered by model id.
    pub fn children_of(&self, id: &SavedModelId) -> Vec<&LineageNode> {
        self.children
            .get(id.doc_id().as_str())
            .map(|c| c.iter().filter_map(|m| self.nodes.get(m)).collect())
            .unwrap_or_default()
    }

    /// Ancestry from `id` (inclusive) to its root over live parent edges.
    /// Fails on a cyclic parent chain (corruption) rather than looping.
    pub fn ancestry_of(&self, id: &SavedModelId) -> Result<Vec<&LineageNode>, CoreError> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        let mut cur = self.require(id)?;
        loop {
            if !seen.insert(cur.id.to_string()) {
                return Err(CoreError::BadModelDocument {
                    id: id.clone(),
                    reason: format!("cyclic lineage at {}", cur.id),
                });
            }
            out.push(cur);
            match &cur.record.parent {
                Some(parent) => match self.nodes.get(parent) {
                    Some(next) => cur = next,
                    // Dangling parent: the ancestry ends here; fsck
                    // reports the broken edge.
                    None => break,
                },
                None => break,
            }
        }
        Ok(out)
    }

    /// Every transitive descendant of `id`, breadth-first, ordered by
    /// distance then model id. `id` itself is not included.
    pub fn descendants_of(&self, id: &SavedModelId) -> Vec<&LineageNode> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        queue.push_back(id.doc_id().as_str().to_string());
        seen.insert(id.doc_id().as_str().to_string());
        while let Some(cur) = queue.pop_front() {
            if let Some(children) = self.children.get(&cur) {
                for child in children {
                    if seen.insert(child.clone()) {
                        if let Some(node) = self.nodes.get(child) {
                            out.push(node);
                        }
                        queue.push_back(child.clone());
                    }
                }
            }
        }
        out
    }
}
