//! Batch family recovery: recover a set of related models, rebuilding
//! each shared ancestor exactly once.
//!
//! Recovering *n* siblings of one base independently re-fetches and
//! re-deserializes the base *n* times — the recursive-recovery cost the
//! paper measures, multiplied across the family. `recover_family`
//! memoizes rebuilt models by id: the first target to need an ancestor
//! rebuilds it, every later target copies the in-memory result. Each
//! stored blob is therefore read exactly once per call, no matter how
//! many targets share it.

use std::collections::BTreeMap;
use std::time::Instant;

use mmlib_core::meta::SavedModelId;
use mmlib_core::{CoreError, RecoverBreakdown, SaveService};
use mmlib_model::Model;

use crate::compact::recovery_chain;
use crate::{Lineage, FAMILY_MODELS, FAMILY_RECOVERS, FAMILY_SECONDS};

/// The result of one batch family recovery.
pub struct FamilyRecovery {
    /// The recovered models, in the order the targets were requested.
    pub models: Vec<(SavedModelId, Model)>,
    /// Distinct chain nodes rebuilt (targets plus shared ancestors).
    pub unique_nodes: usize,
    /// Aggregate phase breakdown over every rebuild in the batch.
    pub breakdown: RecoverBreakdown,
}

impl Lineage<'_> {
    /// Recovers every model in `ids`, sharing ancestor rebuilds across the
    /// batch. With `verify`, each returned model is checked against its
    /// stored Merkle root (shared ancestors that are not themselves
    /// targets are only verified implicitly, through the roots of the
    /// models built on top of them).
    pub fn recover_family(
        &self,
        ids: &[SavedModelId],
        verify: bool,
    ) -> Result<FamilyRecovery, CoreError> {
        let start = Instant::now();
        let svc = self.svc();
        let mut cache: BTreeMap<String, Model> = BTreeMap::new();
        let mut breakdown = RecoverBreakdown::default();
        let mut models = Vec::with_capacity(ids.len());

        for target in ids {
            for id in recovery_chain(svc, target)? {
                if cache.contains_key(id.doc_id().as_str()) {
                    continue;
                }
                let base = parent_of(svc, &id)?
                    .and_then(|p| cache.get(p.as_str()))
                    .map(Model::duplicate);
                let model = svc.recover_onto(&id, base, &mut breakdown)?;
                cache.insert(id.doc_id().as_str().to_string(), model);
            }
            let model = cache
                .get(target.doc_id().as_str())
                .map(Model::duplicate)
                .ok_or_else(|| CoreError::BadModelDocument {
                    id: target.clone(),
                    reason: "recovery chain did not produce the target".into(),
                })?;
            if verify {
                svc.verify_recovered(&model, target)?;
            }
            models.push((target.clone(), model));
        }

        let obs = self.obs();
        obs.inc(FAMILY_RECOVERS, 1);
        obs.inc(FAMILY_MODELS, ids.len() as u64);
        obs.observe(FAMILY_SECONDS, start.elapsed().as_secs_f64());
        Ok(FamilyRecovery { models, unique_nodes: cache.len(), breakdown })
    }
}

/// The recovery parent of `id`: its base model, unless `id` is a snapshot
/// (a snapshot's base reference is lineage metadata, not a dependency).
fn parent_of(svc: &SaveService, id: &SavedModelId) -> Result<Option<String>, CoreError> {
    let info = svc.load_model_info(id)?;
    Ok(if info.approach == mmlib_core::ApproachKind::Baseline {
        None
    } else {
        info.base_model
    })
}
