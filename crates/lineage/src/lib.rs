//! Model lineage: the version DAG over a store's saved models, and the
//! chain maintenance built on top of it.
//!
//! The paper's parameter-update approach materializes base→derived delta
//! chains, but leaves lineage implicit: ancestry lives scattered across
//! `model_info` base references, and recovery cost grows linearly with
//! chain depth. This crate makes lineage a first-class object, following
//! MGit's lineage-as-a-DAG abstraction and ModelHub's bounded version-graph
//! storage:
//!
//! * [`LineageGraph`] — the persistent DAG built from the `lineage`
//!   records `SaveService::save` emits (one per save), with synthesized
//!   nodes for models saved before lineage records existed;
//! * [`Lineage`] — the query/maintenance service: `show`, `ancestry`,
//!   `descendants`, `diff`, and `tag` queries;
//! * [`Lineage::compact`] — depth-bounded re-basing: rewrite a deep delta
//!   chain in one forward pass, promoting every `max_depth`-th node to a
//!   full snapshot so TTR stays flat as chains grow, with recovery kept
//!   byte-identical (every promotion is verified against the stored
//!   Merkle root before it commits);
//! * [`Lineage::recover_family`] — batch recovery of models sharing
//!   ancestry, fetching and rebuilding each shared ancestor exactly once.
//!
//! All operations report through the service's `mmlib-obs` recorder under
//! the `mmlib_lineage_*` metrics declared in the central taxonomy.

#![forbid(unsafe_code)]

mod compact;
mod family;
mod graph;

pub use compact::CompactReport;
pub use family::FamilyRecovery;
pub use graph::{LineageGraph, LineageNode};

use mmlib_core::meta::SavedModelId;
use mmlib_core::{CoreError, SaveService};
use mmlib_obs::Recorder;
use mmlib_store::DocId;

/// Counter of lineage queries served, labeled by query kind.
pub(crate) const QUERIES: &str = "mmlib_lineage_queries_total";
/// Counter of compaction runs.
pub(crate) const COMPACTIONS: &str = "mmlib_lineage_compactions_total";
/// Counter of chain nodes promoted to snapshots by compaction.
pub(crate) const PROMOTED: &str = "mmlib_lineage_promoted_total";
/// Counter of batch family recoveries.
pub(crate) const FAMILY_RECOVERS: &str = "mmlib_lineage_family_recovers_total";
/// Counter of models returned by family recoveries.
pub(crate) const FAMILY_MODELS: &str = "mmlib_lineage_family_models_total";
/// Histogram of whole family-recovery wall time.
pub(crate) const FAMILY_SECONDS: &str = "mmlib_lineage_family_recover_seconds";

/// The query kinds [`QUERIES`] is labeled with.
pub const QUERY_KINDS: [&str; 4] = ["show", "ancestry", "descendants", "diff"];

/// Pre-registers every lineage metric on `recorder`, so expositions list
/// the full lineage taxonomy (with zero counts) before any query runs.
pub fn register_metrics(recorder: &Recorder) {
    for kind in QUERY_KINDS {
        recorder.counter(QUERIES, Some(("kind", kind)));
    }
    recorder.counter(COMPACTIONS, None);
    recorder.counter(PROMOTED, None);
    recorder.counter(FAMILY_RECOVERS, None);
    recorder.counter(FAMILY_MODELS, None);
    recorder.histogram(FAMILY_SECONDS, None, &mmlib_obs::DURATION_BUCKETS);
}

/// The lineage service: queries and chain maintenance over one store,
/// borrowed from the [`SaveService`] that owns it.
pub struct Lineage<'a> {
    svc: &'a SaveService,
}

impl<'a> Lineage<'a> {
    /// Creates a lineage service over `svc`'s store. Metrics go to the
    /// same recorder the save service reports to.
    pub fn new(svc: &'a SaveService) -> Lineage<'a> {
        Lineage { svc }
    }

    pub(crate) fn svc(&self) -> &SaveService {
        self.svc
    }

    pub(crate) fn obs(&self) -> &Recorder {
        self.svc.recorder()
    }

    /// Loads the store's lineage DAG.
    pub fn graph(&self) -> Result<LineageGraph, CoreError> {
        LineageGraph::load(self.svc)
    }

    /// One model's lineage node.
    pub fn show(&self, id: &SavedModelId) -> Result<LineageNode, CoreError> {
        self.obs().inc_labeled(QUERIES, ("kind", "show"), 1);
        Ok(self.graph()?.require(id)?.clone())
    }

    /// The model's ancestry, from itself up to its root, following live
    /// `parent` edges (compacted nodes are ancestry roots; their original
    /// parent remains visible as `rebased_from`).
    pub fn ancestry(&self, id: &SavedModelId) -> Result<Vec<LineageNode>, CoreError> {
        self.obs().inc_labeled(QUERIES, ("kind", "ancestry"), 1);
        let graph = self.graph()?;
        Ok(graph.ancestry_of(id)?.into_iter().cloned().collect())
    }

    /// Every model derived from `id`, transitively (breadth-first).
    pub fn descendants(&self, id: &SavedModelId) -> Result<Vec<LineageNode>, CoreError> {
        self.obs().inc_labeled(QUERIES, ("kind", "descendants"), 1);
        let graph = self.graph()?;
        graph.require(id)?;
        Ok(graph.descendants_of(id).into_iter().cloned().collect())
    }

    /// Layer-level diff between two saved versions, computed from their
    /// stored Merkle trees — no parameters are loaded.
    pub fn diff(&self, a: &SavedModelId, b: &SavedModelId) -> Result<LineageDiff, CoreError> {
        self.obs().inc_labeled(QUERIES, ("kind", "diff"), 1);
        let tree_a = self.layer_digests(a)?;
        let tree_b = self.layer_digests(b)?;
        let mut changed: Vec<String> = tree_a
            .iter()
            .filter(|(layer, digest)| tree_b.get(*layer) != Some(digest))
            .map(|(layer, _)| layer.clone())
            .collect();
        for layer in tree_b.keys() {
            if !tree_a.contains_key(layer) {
                changed.push(layer.clone());
            }
        }
        changed.sort();
        changed.dedup();

        // Lowest common ancestor over live parent edges.
        let graph = self.graph()?;
        let up_a: Vec<String> =
            graph.ancestry_of(a)?.iter().map(|n| n.id.to_string()).collect();
        let common_ancestor = graph
            .ancestry_of(b)?
            .iter()
            .find(|n| up_a.contains(&n.id.to_string()))
            .map(|n| n.id.clone());

        Ok(LineageDiff {
            a: a.clone(),
            b: b.clone(),
            total_layers: tree_a.len().max(tree_b.len()),
            changed_layers: changed,
            common_ancestor,
        })
    }

    /// Attaches a tag to a model's lineage record (idempotent). Models
    /// saved before lineage records existed get one synthesized in place.
    pub fn tag(&self, id: &SavedModelId, tag: &str) -> Result<LineageNode, CoreError> {
        let graph = self.graph()?;
        let mut node = graph.require(id)?.clone();
        if !node.record.tags.iter().any(|t| t == tag) {
            node.record.tags.push(tag.to_string());
        }
        let body = serde_json::to_value(&node.record).map_err(|e| {
            CoreError::BadModelDocument { id: id.clone(), reason: format!("unencodable lineage record: {e}") }
        })?;
        match &node.doc {
            Some(doc_id) => self.svc.storage().docs().update(doc_id, body)?,
            None => {
                let doc_id =
                    self.svc.storage().insert_doc(mmlib_core::meta::kinds::LINEAGE, body)?;
                node.doc = Some(doc_id);
            }
        }
        Ok(node)
    }

    /// All layer digests of a saved model, from its stored Merkle tree.
    fn layer_digests(
        &self,
        id: &SavedModelId,
    ) -> Result<std::collections::BTreeMap<String, String>, CoreError> {
        let info = self.svc.load_model_info(id)?;
        let doc = self
            .svc
            .storage()
            .get_doc(&DocId::from_string(info.layer_hash_doc.clone()))?;
        let tree: mmlib_core::MerkleTree =
            serde_json::from_value(doc.body).map_err(|e| CoreError::BadModelDocument {
                id: id.clone(),
                reason: format!("undecodable layer-hash doc: {e}"),
            })?;
        Ok(tree
            .leaves()
            .map(|(path, digest)| (path.to_string(), digest.to_hex()))
            .collect())
    }
}

/// Layer-level difference between two saved versions.
#[derive(Debug, Clone)]
pub struct LineageDiff {
    /// First version compared.
    pub a: SavedModelId,
    /// Second version compared.
    pub b: SavedModelId,
    /// Layer count of the larger of the two models.
    pub total_layers: usize,
    /// Layers whose digests differ (or exist on only one side), sorted.
    pub changed_layers: Vec<String>,
    /// Lowest ancestor shared by both versions over live parent edges.
    pub common_ancestor: Option<SavedModelId>,
}
