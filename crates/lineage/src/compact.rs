//! Delta-chain compaction: depth-bounded re-basing of recovery chains.
//!
//! A parameter-update (or provenance) chain of depth *n* costs *n*
//! sequential rebuilds to recover its tip — the linear TTR growth of the
//! paper's recursive recovery. Compaction walks the chain once from its
//! root, keeping the running model in memory, and promotes every node
//! whose depth-since-last-snapshot reaches `max_depth` to a full snapshot
//! (ModelHub's bounded version-graph storage, applied in place):
//!
//! * recovery stays **byte-identical** — a promotion writes the exact
//!   parameters recovery would have produced, verified against the stored
//!   Merkle root before anything is rewritten;
//! * recovery depth after compaction is `< max_depth` for every node of
//!   the chain, so TTR stays flat no matter how deep the chain grew;
//! * promoted nodes drop their recovery base (`parent` becomes `None`,
//!   the old edge is preserved as `rebased_from`), which is what lets
//!   `gc` collect a retired chain prefix.

use std::collections::BTreeSet;

use mmlib_core::meta::{kinds, ApproachKind, SavedModelId};
use mmlib_core::{CoreError, RecoverBreakdown, SaveService};
use mmlib_store::DocId;

use crate::{Lineage, COMPACTIONS, PROMOTED};

/// What one compaction run did.
#[derive(Debug, Clone)]
pub struct CompactReport {
    /// The recovery chain that was walked, root first.
    pub chain: Vec<SavedModelId>,
    /// Nodes promoted to snapshots, in chain order.
    pub promoted: Vec<SavedModelId>,
    /// The depth bound the run enforced.
    pub max_depth: usize,
    /// Bytes written by the promotions (snapshot state dicts).
    pub bytes_written: u64,
}

impl Lineage<'_> {
    /// Compacts the recovery chain of `tip` so that no node in it is more
    /// than `max_depth - 1` rebuilds away from a snapshot.
    ///
    /// The chain is recovered in a single forward pass (each node exactly
    /// once); nodes at the depth bound are promoted in place via
    /// `SaveService::promote_to_snapshot`. Idempotent: a chain already
    /// within the bound reports zero promotions.
    pub fn compact(
        &self,
        tip: &SavedModelId,
        max_depth: usize,
    ) -> Result<CompactReport, CoreError> {
        if max_depth == 0 {
            return Err(CoreError::BadModelDocument {
                id: tip.clone(),
                reason: "compaction depth bound must be at least 1".into(),
            });
        }
        let svc = self.svc();
        let bytes_before = svc.storage().bytes_written();
        let chain = recovery_chain(svc, tip)?;

        let mut breakdown = RecoverBreakdown::default();
        let mut current = None;
        let mut promoted = Vec::new();
        let mut depth = 0usize;
        for id in &chain {
            let info = svc.load_model_info(id)?;
            let model = svc.recover_onto(id, current.take(), &mut breakdown)?;
            depth = if info.approach == ApproachKind::Baseline { 0 } else { depth + 1 };
            if depth >= max_depth {
                svc.promote_to_snapshot(id, &model)?;
                self.rebase_record(id, &info.base_model)?;
                promoted.push(id.clone());
                depth = 0;
            }
            current = Some(model);
        }

        self.obs().inc(COMPACTIONS, 1);
        self.obs().inc(PROMOTED, promoted.len() as u64);
        Ok(CompactReport {
            chain,
            promoted,
            max_depth,
            bytes_written: svc.storage().bytes_written().saturating_sub(bytes_before),
        })
    }

    /// Rewrites a promoted node's lineage record: the live parent edge is
    /// cut and preserved as `rebased_from`. Legacy nodes without a record
    /// get one inserted, so compaction upgrades old stores as it goes.
    fn rebase_record(
        &self,
        id: &SavedModelId,
        old_parent: &Option<String>,
    ) -> Result<(), CoreError> {
        let graph = self.graph()?;
        let node = graph.require(id)?;
        let mut record = node.record.clone();
        record.rebased_from = record.parent.take().or_else(|| old_parent.clone());
        let body = serde_json::to_value(&record).map_err(|e| CoreError::BadModelDocument {
            id: id.clone(),
            reason: format!("unencodable lineage record: {e}"),
        })?;
        match &node.doc {
            Some(doc_id) => self.svc().storage().docs().update(doc_id, body)?,
            None => {
                self.svc().storage().insert_doc(kinds::LINEAGE, body)?;
            }
        }
        Ok(())
    }
}

/// The recovery chain of `tip`, root first: `base_model` edges followed
/// until a snapshot (whose base is lineage metadata, not a recovery
/// dependency). Fails on cycles instead of looping.
pub(crate) fn recovery_chain(
    svc: &SaveService,
    tip: &SavedModelId,
) -> Result<Vec<SavedModelId>, CoreError> {
    let mut chain = Vec::new();
    let mut seen = BTreeSet::new();
    let mut cur = tip.clone();
    loop {
        if !seen.insert(cur.to_string()) {
            return Err(CoreError::BadModelDocument {
                id: tip.clone(),
                reason: format!("cyclic base chain at {cur}"),
            });
        }
        let info = svc.load_model_info(&cur)?;
        let base = if info.approach == ApproachKind::Baseline {
            None
        } else {
            info.base_model.clone()
        };
        chain.push(cur);
        match base {
            Some(b) => cur = SavedModelId(DocId::from_string(b)),
            None => break,
        }
    }
    chain.reverse();
    Ok(chain)
}
