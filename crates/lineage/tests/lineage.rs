//! Integration tests of the lineage DAG, delta-chain compaction, and
//! batch family recovery.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mmlib_core::meta::SavedModelId;
use mmlib_core::{RecoverOptions, SaveService};
use mmlib_lineage::Lineage;
use mmlib_model::{ArchId, Model};
use mmlib_store::{DocId, Document, FileId, ModelStorage, StorageBackend, StoreError};

fn svc(dir: &std::path::Path) -> SaveService {
    SaveService::new(ModelStorage::open(dir).unwrap())
}

/// Deterministically perturbs one parameter tensor, so the next save is a
/// genuine (small) delta against the previous version.
fn bump(model: &mut Model, step: usize) {
    let mut done = false;
    model.visit_trainable_mut(&mut |_, w, _| {
        if !done {
            w.data_mut()[0] += 1e-3 + step as f32 * 1e-4;
            done = true;
        }
    });
}

/// The model's full parameter state as exact bits, for byte-identity
/// assertions stronger than float equality.
fn state_bits(model: &Model) -> Vec<(String, Vec<u32>)> {
    model
        .state_dict()
        .into_iter()
        .map(|(name, t)| (name, t.data().iter().map(|v| v.to_bits()).collect()))
        .collect()
}

/// Builds a PUA chain `root -> u[0] -> ... -> u[depth-1]` and returns every
/// id, root first.
fn build_chain(s: &SaveService, seed: u64, depth: usize) -> (Vec<SavedModelId>, Model) {
    let mut model = Model::new_initialized(ArchId::TinyCnn, seed);
    model.set_fully_trainable();
    let mut ids = vec![s.save_full(&model, None, "initial").unwrap()];
    for step in 0..depth {
        bump(&mut model, step);
        let (id, _) = s.save_update(&model, ids.last().unwrap(), "partially_updated").unwrap();
        ids.push(id);
    }
    (ids, model)
}

#[test]
fn graph_queries_tags_and_diff() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    let (ids, model) = build_chain(&s, 7, 2);
    // Side branch off the middle node.
    let mut side_model = model.duplicate();
    bump(&mut side_model, 99);
    let (side, _) = s.save_update(&side_model, &ids[1], "partially_updated").unwrap();

    let lineage = Lineage::new(&s);
    let graph = lineage.graph().unwrap();
    assert_eq!(graph.len(), 4);
    assert_eq!(graph.roots().len(), 1);
    assert_eq!(graph.roots()[0].id, ids[0]);

    // show: the saved parent edge and diff provenance are on the node.
    let node = lineage.show(&ids[1]).unwrap();
    assert_eq!(node.record.parent.as_deref(), Some(ids[0].doc_id().as_str()));
    assert!(node.record.changed_layers.is_some_and(|n| n >= 1));
    assert!(node.doc.is_some(), "saves must persist a lineage record");

    // ancestry: tip -> middle -> root, inclusive.
    let up: Vec<String> =
        lineage.ancestry(&ids[2]).unwrap().iter().map(|n| n.id.to_string()).collect();
    assert_eq!(up, vec![ids[2].to_string(), ids[1].to_string(), ids[0].to_string()]);

    // descendants: everything below the root, and the branch below ids[1].
    assert_eq!(lineage.descendants(&ids[0]).unwrap().len(), 3);
    let below_mid: Vec<String> =
        lineage.descendants(&ids[1]).unwrap().iter().map(|n| n.id.to_string()).collect();
    assert!(below_mid.contains(&ids[2].to_string()) && below_mid.contains(&side.to_string()));

    // diff: sibling versions differ in at least the bumped layer and share
    // their branch point as common ancestor.
    let diff = lineage.diff(&ids[2], &side).unwrap();
    assert!(!diff.changed_layers.is_empty());
    assert!(diff.total_layers >= diff.changed_layers.len());
    assert_eq!(diff.common_ancestor, Some(ids[1].clone()));
    let same = lineage.diff(&ids[2], &ids[2]).unwrap();
    assert!(same.changed_layers.is_empty());

    // tag: persisted, idempotent, visible to a fresh service.
    lineage.tag(&ids[2], "release").unwrap();
    lineage.tag(&ids[2], "release").unwrap();
    let lineage = Lineage::new(&s);
    assert_eq!(lineage.show(&ids[2]).unwrap().record.tags, vec!["release".to_string()]);

    // Unknown models are typed errors, not panics.
    let ghost = SavedModelId(DocId::from_string("model-that-never-was".into()));
    assert!(lineage.show(&ghost).is_err());
    assert!(lineage.ancestry(&ghost).is_err());

    // Queries hit the labeled counter.
    let shows = s.recorder().counter_value("mmlib_lineage_queries_total", Some(("kind", "show")));
    assert!(shows >= 2);
}

/// The acceptance gate: a depth-64 PUA chain recovers byte-identically
/// after `compact(max_depth = 8)`, with TTR within 1.5x of a fresh
/// depth-8 chain.
#[test]
fn depth64_compaction_is_byte_identical_and_keeps_ttr_flat() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    let (ids, trained) = build_chain(&s, 11, 64);
    let tip = ids.last().unwrap().clone();

    let before = s.recover(&tip, RecoverOptions::default()).unwrap();
    assert!(before.model.models_equal(&trained));
    assert_eq!(before.breakdown.recovered_bases, 64);
    let want_bits = state_bits(&before.model);

    let lineage = Lineage::new(&s);
    let report = lineage.compact(&tip, 8).unwrap();
    assert_eq!(report.chain, ids);
    // Depth 64 with a bound of 8: every 8th chain node is promoted,
    // including the tip itself.
    assert_eq!(report.promoted.len(), 8);
    assert_eq!(report.promoted.last(), Some(&tip));

    // Byte-identical recovery, now without any base chain.
    let after = s.recover(&tip, RecoverOptions::default()).unwrap();
    assert_eq!(state_bits(&after.model), want_bits);
    assert_eq!(after.breakdown.recovered_bases, 0);
    // Every chain node still recovers, and none is more than 7 rebuilds
    // from a snapshot.
    for id in &ids {
        let r = s.recover(&id.clone(), RecoverOptions::default()).unwrap();
        assert!(r.breakdown.recovered_bases < 8, "{id} too deep after compaction");
    }
    // Compaction is idempotent: a second run promotes nothing.
    assert!(lineage.compact(&tip, 8).unwrap().promoted.is_empty());
    // The store stays consistent.
    let fsck = mmlib_core::fsck::fsck(s.storage(), &mmlib_core::FsckOptions::default()).unwrap();
    assert!(fsck.is_clean(), "fsck after compaction: {fsck:?}");

    // TTR: compacted depth-64 tip vs a fresh depth-8 chain, min of 5.
    let dir8 = tempfile::tempdir().unwrap();
    let s8 = svc(dir8.path());
    let (ids8, _) = build_chain(&s8, 11, 8);
    let tip8 = ids8.last().unwrap().clone();
    let time = |svc: &SaveService, id: &SavedModelId| -> Duration {
        (0..5)
            .map(|_| {
                let t = Instant::now();
                svc.recover(id, RecoverOptions::default()).unwrap();
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let compacted = time(&s, &tip);
    let control = time(&s8, &tip8);
    assert!(
        compacted <= control.mul_f64(1.5),
        "compacted depth-64 TTR {compacted:?} not within 1.5x of depth-8 {control:?}"
    );

    // The recorder is process-global, so sibling tests also bump these;
    // assert at least this test's contribution.
    assert!(s.recorder().counter_value("mmlib_lineage_compactions_total", None) >= 2);
    assert!(s.recorder().counter_value("mmlib_lineage_promoted_total", None) >= 8);
}

#[test]
fn compaction_rebases_records_and_unblocks_gc() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    let (ids, _) = build_chain(&s, 3, 16);
    let tip = ids.last().unwrap().clone();

    let lineage = Lineage::new(&s);
    lineage.compact(&tip, 4).unwrap();

    // The promoted tip keeps its history as `rebased_from` but has no live
    // parent, so it is now an ancestry root.
    let node = lineage.show(&tip).unwrap();
    assert!(node.record.parent.is_none());
    assert_eq!(node.record.rebased_from.as_deref(), Some(ids[ids.len() - 2].doc_id().as_str()));
    assert_eq!(lineage.ancestry(&tip).unwrap().len(), 1);

    // With the tip re-based onto itself, gc can now collect the whole
    // retired prefix.
    let report = mmlib_core::gc::collect_garbage(&s, std::slice::from_ref(&tip)).unwrap();
    assert_eq!(report.removed_models.len(), ids.len() - 1);
    let back = s.recover(&tip, RecoverOptions::default()).unwrap();
    assert_eq!(back.breakdown.recovered_bases, 0);
    let fsck = mmlib_core::fsck::fsck(s.storage(), &mmlib_core::FsckOptions::default()).unwrap();
    assert!(fsck.is_clean(), "fsck after gc: {fsck:?}");
}

/// A pass-through backend that counts `get_file` calls per file id.
struct CountingBackend {
    inner: Arc<dyn StorageBackend>,
    file_gets: Mutex<BTreeMap<String, u32>>,
}

impl CountingBackend {
    fn gets(&self) -> BTreeMap<String, u32> {
        self.file_gets.lock().unwrap().clone()
    }
}

impl StorageBackend for CountingBackend {
    fn insert_doc(&self, kind: &str, body: serde_json::Value) -> Result<DocId, StoreError> {
        self.inner.insert_doc(kind, body)
    }
    fn get_doc(&self, id: &DocId) -> Result<Document, StoreError> {
        self.inner.get_doc(id)
    }
    fn update_doc(&self, id: &DocId, body: serde_json::Value) -> Result<(), StoreError> {
        self.inner.update_doc(id, body)
    }
    fn contains_doc(&self, id: &DocId) -> bool {
        self.inner.contains_doc(id)
    }
    fn remove_doc(&self, id: &DocId) -> Result<(), StoreError> {
        self.inner.remove_doc(id)
    }
    fn doc_ids(&self) -> Result<Vec<DocId>, StoreError> {
        self.inner.doc_ids()
    }
    fn put_file(&self, bytes: &[u8]) -> Result<FileId, StoreError> {
        self.inner.put_file(bytes)
    }
    fn get_file(&self, id: &FileId) -> Result<Vec<u8>, StoreError> {
        *self.file_gets.lock().unwrap().entry(id.as_str().to_string()).or_insert(0) += 1;
        self.inner.get_file(id)
    }
    fn file_size(&self, id: &FileId) -> Result<u64, StoreError> {
        self.inner.file_size(id)
    }
    fn contains_file(&self, id: &FileId) -> bool {
        self.inner.contains_file(id)
    }
    fn remove_file(&self, id: &FileId) -> Result<(), StoreError> {
        self.inner.remove_file(id)
    }
    fn file_ids(&self) -> Result<Vec<FileId>, StoreError> {
        self.inner.file_ids()
    }
    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }
}

/// The acceptance gate for batch recovery: recovering a family of siblings
/// reads each shared ancestor blob exactly once.
#[test]
fn family_recovery_fetches_each_shared_blob_exactly_once() {
    let dir = tempfile::tempdir().unwrap();
    let local = ModelStorage::open(dir.path()).unwrap();
    let counting = Arc::new(CountingBackend {
        inner: local.backend(),
        file_gets: Mutex::new(BTreeMap::new()),
    });
    let s = SaveService::new(ModelStorage::from_backend(
        Arc::clone(&counting) as Arc<dyn StorageBackend>,
        dir.path(),
    ));

    // One root, one shared mid node, three sibling tips off the mid node.
    let mut model = Model::new_initialized(ArchId::TinyCnn, 5);
    model.set_fully_trainable();
    let root = s.save_full(&model, None, "initial").unwrap();
    bump(&mut model, 0);
    let (mid, _) = s.save_update(&model, &root, "partially_updated").unwrap();
    let mut tips = Vec::new();
    for i in 0..3 {
        let mut m = model.duplicate();
        bump(&mut m, 10 + i);
        let (tip, _) = s.save_update(&m, &mid, "partially_updated").unwrap();
        tips.push((tip, m));
    }

    counting.file_gets.lock().unwrap().clear();
    let lineage = Lineage::new(&s);
    let targets: Vec<SavedModelId> = tips.iter().map(|(id, _)| id.clone()).collect();
    let family = lineage.recover_family(&targets, true).unwrap();

    // Right models, right order, byte-identical.
    assert_eq!(family.models.len(), 3);
    assert_eq!(family.unique_nodes, 5);
    for ((want_id, want_model), (got_id, got_model)) in tips.iter().zip(&family.models) {
        assert_eq!(want_id, got_id);
        assert_eq!(state_bits(want_model), state_bits(got_model));
    }

    // The exactly-once contract: every blob that was read was read once —
    // the root snapshot and the shared mid delta are not re-fetched per
    // sibling.
    let gets = counting.gets();
    assert!(!gets.is_empty());
    for (file, count) in &gets {
        assert_eq!(*count, 1, "file {file} fetched {count} times during family recovery");
    }

    // Control: recovering the three tips independently re-reads shared
    // ancestors (3x the root and mid blobs), which is what the batch path
    // eliminates.
    counting.file_gets.lock().unwrap().clear();
    for (tip, _) in &tips {
        s.recover(tip, RecoverOptions::default()).unwrap();
    }
    assert!(
        counting.gets().values().any(|&c| c >= 3),
        "independent recovery should re-fetch shared ancestors"
    );

    assert_eq!(s.recorder().counter_value("mmlib_lineage_family_recovers_total", None), 1);
    assert_eq!(s.recorder().counter_value("mmlib_lineage_family_models_total", None), 3);
    assert_eq!(s.recorder().histogram_count("mmlib_lineage_family_recover_seconds", None), 1);
}
