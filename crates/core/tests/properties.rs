//! Property-based tests of the core invariants, run over the test-sized
//! `TinyCnn` architecture so each case costs milliseconds:
//!
//! * `recover(save(m)) == m` for every approach, over random derivation
//!   chains mixing approaches and relations;
//! * Merkle diff finds exactly the layers the naive scan finds, for random
//!   change sets, with at most `2·leaves − 1` comparisons;
//! * provenance replay is deterministic for random hyper-parameters.

use mmlib_core::merkle::MerkleTree;
use mmlib_core::meta::ModelRelation;
use mmlib_core::{RecoverOptions, SaveService, TrainProvenance};
use mmlib_data::loader::LoaderConfig;
use mmlib_data::{DataLoader, Dataset, DatasetId};
use mmlib_model::{ArchId, Model};
use mmlib_store::ModelStorage;
use mmlib_tensor::hash::sha256;
use mmlib_tensor::ExecMode;
use mmlib_train::{ImageNetTrainService, Sgd, SgdConfig, TrainConfig, TrainService};
use proptest::prelude::*;

const SCALE: f64 = 0.0001;

/// One random chain step.
#[derive(Debug, Clone)]
struct Step {
    approach: u8, // 0 = BA, 1 = PUA, 2 = MPA
    partial: bool,
    seed: u64,
    lr: f32,
    momentum: f32,
    epochs: u64,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (0u8..3, any::<bool>(), any::<u64>(), 0.001f32..0.1, 0.0f32..0.95, 1u64..3).prop_map(
        |(approach, partial, seed, lr, momentum, epochs)| Step {
            approach,
            partial,
            seed,
            lr,
            momentum,
            epochs,
        },
    )
}

fn apply_step(
    svc: &SaveService,
    model: &mut Model,
    base: &mmlib_core::meta::SavedModelId,
    step: &Step,
) -> mmlib_core::meta::SavedModelId {
    let relation = if step.partial {
        ModelRelation::PartiallyUpdated
    } else {
        ModelRelation::FullyUpdated
    };
    relation.apply_trainability(model);
    let loader_config = LoaderConfig {
        batch_size: 2,
        resolution: 8,
        seed: step.seed,
        max_images: Some(4),
        ..Default::default()
    };
    let sgd_config = SgdConfig { lr: step.lr, momentum: step.momentum, weight_decay: 0.0, max_grad_norm: Some(1.0) };
    let train_config = TrainConfig {
        epochs: step.epochs,
        max_batches_per_epoch: Some(2),
        seed: step.seed,
        mode: ExecMode::Deterministic,
    };
    let sgd = Sgd::new(sgd_config);
    let prov = TrainProvenance {
        dataset_id: DatasetId::CocoOutdoor512,
        dataset_scale: SCALE,
        dataset_external: step.seed.is_multiple_of(2),
        loader_config,
        optimizer: sgd_config.into(),
        optimizer_state_before: sgd.state_bytes(),
        train_config,
        relation,
    };
    let loader = DataLoader::new(Dataset::new(DatasetId::CocoOutdoor512, SCALE), loader_config);
    let mut trainer = ImageNetTrainService::new(loader, sgd, train_config);
    trainer.train(model);

    let relation_str = if step.partial { "partially_updated" } else { "fully_updated" };
    match step.approach {
        0 => svc.save_full(model, Some(base), relation_str).unwrap(),
        1 => svc.save_update(model, base, relation_str).unwrap().0,
        _ => svc.save_provenance(model, base, &prov).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn random_mixed_chains_recover_exactly(steps in prop::collection::vec(arb_step(), 1..4), init_seed in any::<u64>()) {
        let dir = tempfile::tempdir().unwrap();
        let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
        let mut model = Model::new_initialized(ArchId::TinyCnn, init_seed);
        model.set_fully_trainable();
        let mut base = svc.save_full(&model, None, "initial").unwrap();
        for step in &steps {
            base = apply_step(&svc, &mut model, &base, step);
        }
        let recovered = svc.recover(&base, RecoverOptions::default()).unwrap();
        prop_assert!(recovered.model.models_equal(&model));
        // A baseline link is an independent snapshot: recovery stops there.
        // Expected chain depth = consecutive non-baseline links at the tail.
        let expected_depth = steps.iter().rev().take_while(|s| s.approach != 0).count();
        prop_assert_eq!(recovered.breakdown.recovered_bases as usize, expected_depth);
    }

    #[test]
    fn merkle_diff_equals_naive_diff(n in 1usize..200, changed_bits in any::<u64>()) {
        let base: Vec<(String, _)> = (0..n)
            .map(|i| (format!("layer{i}"), sha256(format!("v{i}").as_bytes())))
            .collect();
        let mut other = base.clone();
        for (i, leaf) in other.iter_mut().enumerate() {
            if changed_bits >> (i % 64) & 1 == 1 {
                leaf.1 = sha256(format!("changed{i}").as_bytes());
            }
        }
        let ta = MerkleTree::from_leaves(base);
        let tb = MerkleTree::from_leaves(other);
        let merkle = ta.diff(&tb);
        let naive = ta.diff_naive(&tb);
        prop_assert_eq!(&merkle.changed, &naive.changed);
        prop_assert!(merkle.comparisons <= (2 * n - 1) as u64 + 1, "comparisons {} for {} leaves", merkle.comparisons, n);
        // Roots agree iff nothing changed.
        prop_assert_eq!(ta.root() == tb.root(), merkle.changed.is_empty());
    }

    /// Splicing an arbitrary changed-leaf subset into a cached tree via
    /// `update_leaves` must equal a from-scratch rebuild — root *and* every
    /// per-layer digest — extending `merkle_diff_equals_naive_diff` from
    /// detection to incremental maintenance.
    #[test]
    fn incremental_update_equals_full_rebuild(n in 1usize..200, changed_bits in any::<u64>()) {
        let base: Vec<(String, _)> = (0..n)
            .map(|i| (format!("layer{i}"), sha256(format!("v{i}").as_bytes())))
            .collect();
        let mut updates = Vec::new();
        let mut other = base.clone();
        for (i, leaf) in other.iter_mut().enumerate() {
            if changed_bits >> (i % 64) & 1 == 1 {
                leaf.1 = sha256(format!("changed{i}").as_bytes());
                updates.push(leaf.clone());
            }
        }
        let cached = MerkleTree::from_leaves(base);
        let rebuilt = MerkleTree::from_leaves(other);
        let spliced = cached.update_leaves(&updates).expect("all paths are leaves");
        prop_assert_eq!(spliced.root(), rebuilt.root());
        prop_assert_eq!(spliced.leaf_count(), rebuilt.leaf_count());
        for (path, digest) in rebuilt.leaves() {
            prop_assert_eq!(spliced.leaf(path), Some(digest));
        }
        // And the spliced tree diffs like the rebuilt one.
        prop_assert_eq!(cached.diff(&spliced).changed, cached.diff(&rebuilt).changed);
        // Unknown paths are rejected, never silently dropped.
        let bogus = vec![("not_a_layer".to_string(), sha256(b"x"))];
        prop_assert!(cached.update_leaves(&bogus).is_none());
    }

    /// The save-path hash cache must produce trees byte-identical to
    /// `MerkleTree::from_model` for *any* subset of parameter mutations
    /// between saves — the fingerprint gate may only skip work, never
    /// change a digest.
    #[test]
    fn hash_cache_matches_from_model_for_any_mutation_subset(
        init_seed in any::<u64>(),
        mutate_bits in any::<u64>(),
        rounds in 1usize..4,
    ) {
        let cache = mmlib_core::hash_cache::HashCache::new();
        let obs = mmlib_obs::recorder();
        let mut model = Model::new_initialized(ArchId::TinyCnn, init_seed);
        model.set_fully_trainable();
        for round in 0..rounds {
            // Mutate an arbitrary subset of parameters (round-rotated so
            // successive rounds touch different layers).
            let mut i = 0usize;
            model.visit_trainable_mut(&mut |_, param, _| {
                if mutate_bits >> ((i + round) % 64) & 1 == 1 && param.numel() > 0 {
                    let d = param.data_mut();
                    d[0] = f32::from_bits(d[0].to_bits() ^ 1);
                }
                i += 1;
            });
            let expected = MerkleTree::from_model(&model);
            let got = cache.tree_for_model(&model, obs);
            prop_assert_eq!(got.root(), expected.root(), "round {}", round);
            for (path, digest) in expected.leaves() {
                prop_assert_eq!(got.leaf(path), Some(digest));
            }
        }
    }

    #[test]
    fn provenance_replay_is_deterministic(step in arb_step(), init_seed in any::<u64>()) {
        let dir = tempfile::tempdir().unwrap();
        let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
        let mut model = Model::new_initialized(ArchId::TinyCnn, init_seed);
        model.set_fully_trainable();
        let base = svc.save_full(&model, None, "initial").unwrap();
        let mut step = step.clone();
        step.approach = 2; // force provenance
        let id = apply_step(&svc, &mut model, &base, &step);
        // Two independent recoveries replay to the same bits.
        let a = svc.recover(&id, RecoverOptions::default()).unwrap();
        let b = svc.recover(&id, RecoverOptions::default()).unwrap();
        prop_assert!(a.model.models_equal(&b.model));
        prop_assert!(a.model.models_equal(&model));
    }
}
