//! Tests of deletion and garbage collection over dependency chains.

use mmlib_core::gc::{collect_garbage, delete_model, dependency_graph};
use mmlib_core::meta::{ModelRelation, SavedModelId};
use mmlib_core::{CoreError, RecoverOptions, SaveService, TrainProvenance};
use mmlib_data::loader::LoaderConfig;
use mmlib_data::{DataLoader, Dataset, DatasetId};
use mmlib_model::{ArchId, Model};
use mmlib_store::ModelStorage;
use mmlib_tensor::ExecMode;
use mmlib_train::{ImageNetTrainService, Sgd, SgdConfig, TrainConfig, TrainService};

const SCALE: f64 = 0.0001;

fn svc(dir: &std::path::Path) -> SaveService {
    SaveService::new(ModelStorage::open(dir).unwrap())
}

fn train_step(model: &mut Model, seed: u64) -> TrainProvenance {
    model.set_classifier_only_trainable();
    let loader_config = LoaderConfig {
        batch_size: 2,
        resolution: 8,
        seed,
        max_images: Some(4),
        ..Default::default()
    };
    let sgd_config = SgdConfig::default();
    let train_config = TrainConfig {
        epochs: 1,
        max_batches_per_epoch: Some(2),
        seed,
        mode: ExecMode::Deterministic,
    };
    let sgd = Sgd::new(sgd_config);
    let prov = TrainProvenance {
        dataset_id: DatasetId::CocoOutdoor512,
        dataset_scale: SCALE,
        dataset_external: false,
        loader_config,
        optimizer: sgd_config.into(),
        optimizer_state_before: sgd.state_bytes(),
        train_config,
        relation: ModelRelation::PartiallyUpdated,
    };
    let loader = DataLoader::new(Dataset::new(DatasetId::CocoOutdoor512, SCALE), loader_config);
    let mut trainer = ImageNetTrainService::new(loader, sgd, train_config);
    trainer.train(model);
    prov
}

/// Builds: initial -> u1 -> u2 (PUA chain), plus one provenance side-branch
/// from u1. Returns (service, [initial, u1, u2, side], final model).
fn build_store(dir: &std::path::Path) -> (SaveService, Vec<SavedModelId>, Model) {
    let s = svc(dir);
    let mut model = Model::new_initialized(ArchId::TinyCnn, 1);
    model.set_fully_trainable();
    let initial = s.save_full(&model, None, "initial").unwrap();

    train_step(&mut model, 10);
    let (u1, _) = s.save_update(&model, &initial, "partially_updated").unwrap();

    // Side branch from u1 (provenance).
    let mut side_model = model.duplicate();
    let prov = train_step(&mut side_model, 20);
    let side = s.save_provenance(&side_model, &u1, &prov).unwrap();

    train_step(&mut model, 11);
    let (u2, _) = s.save_update(&model, &u1, "partially_updated").unwrap();

    (s, vec![initial, u1, u2, side], model)
}

#[test]
fn dependency_graph_sees_the_structure() {
    let dir = tempfile::tempdir().unwrap();
    let (s, ids, _) = build_store(dir.path());
    let graph = dependency_graph(&s).unwrap();
    assert_eq!(graph.models.len(), 4);
    // initial has one dependent (u1); u1 has two (u2 and side).
    assert_eq!(graph.dependents[&ids[0]].len(), 1);
    assert_eq!(graph.dependents[&ids[1]].len(), 2);
    // Leaves: u2 and side.
    let leaves = graph.leaves();
    assert_eq!(leaves.len(), 2);
    assert!(leaves.contains(&ids[2]) && leaves.contains(&ids[3]));
    // Chain of u2: u2 -> u1 -> initial.
    assert_eq!(graph.chain_of(&ids[2]).len(), 3);
}

#[test]
fn deleting_a_base_with_dependents_is_refused() {
    let dir = tempfile::tempdir().unwrap();
    let (s, ids, _) = build_store(dir.path());
    let err = delete_model(&s, &ids[1]).unwrap_err();
    assert!(matches!(err, CoreError::BadModelDocument { .. }));
    // Still recoverable afterwards.
    assert!(s.recover(&ids[2], RecoverOptions::default()).is_ok());
}

#[test]
fn deleting_a_leaf_works_and_frees_bytes() {
    let dir = tempfile::tempdir().unwrap();
    let (s, ids, _) = build_store(dir.path());
    let report = delete_model(&s, &ids[3]).unwrap();
    assert_eq!(report.removed_models, vec![ids[3].clone()]);
    assert!(report.reclaimed_bytes > 0, "provenance models own a dataset container");
    // The deleted model is gone; the rest of the chain still recovers.
    assert!(s.recover(&ids[3], RecoverOptions::default()).is_err());
    assert!(s.recover(&ids[2], RecoverOptions::default()).is_ok());
}

#[test]
fn gc_keeps_live_chains_and_sweeps_the_rest() {
    let dir = tempfile::tempdir().unwrap();
    let (s, ids, model) = build_store(dir.path());
    // Keep only u2: its chain (u2, u1, initial) must survive; side is swept.
    let report = collect_garbage(&s, &[ids[2].clone()]).unwrap();
    assert_eq!(report.removed_models, vec![ids[3].clone()]);
    let rec = s.recover(&ids[2], RecoverOptions::default()).unwrap();
    assert!(rec.model.models_equal(&model));
    // The swept provenance model's wrapper docs are gone too.
    let graph = dependency_graph(&s).unwrap();
    assert_eq!(graph.models.len(), 3);
}

#[test]
fn gc_with_no_live_roots_sweeps_everything() {
    let dir = tempfile::tempdir().unwrap();
    let (s, _ids, _) = build_store(dir.path());
    let report = collect_garbage(&s, &[]).unwrap();
    assert_eq!(report.removed_models.len(), 4);
    assert!(dependency_graph(&s).unwrap().models.is_empty());
    // All wrapper docs swept as orphans.
    assert!(s.storage().docs().ids().unwrap().is_empty());
}

#[test]
fn gc_keeps_a_snapshots_lineage_base_alive() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    let mut model = Model::new_initialized(ArchId::TinyCnn, 2);
    model.set_fully_trainable();
    let base = s.save_full(&model, None, "initial").unwrap();
    train_step(&mut model, 30);
    // A snapshot saved *against* a base: recovery is self-contained, but
    // the base reference is live lineage that ancestry queries and fsck's
    // semantic pass still resolve.
    let derived = s.save_full(&model, Some(&base), "partially_updated").unwrap();

    let report = collect_garbage(&s, std::slice::from_ref(&derived)).unwrap();
    // Regression: marking only the recovery chain collected `base` here,
    // leaving `derived` with a dangling base reference.
    assert!(report.removed_models.is_empty(), "base is referenced lineage: {report:?}");
    assert!(s.recover(&base, RecoverOptions::default()).is_ok());
    let check =
        mmlib_core::fsck::fsck(s.storage(), &mmlib_core::fsck::FsckOptions::default()).unwrap();
    assert!(check.is_clean(), "store dirty after gc: {:?}", check.issues);
}

#[test]
fn gc_sweeps_lineage_records_with_their_models() {
    let dir = tempfile::tempdir().unwrap();
    let (s, ids, _) = build_store(dir.path());
    // Every saved model carries one lineage record.
    let lineage_docs = |s: &SaveService| {
        s.storage()
            .docs()
            .ids()
            .unwrap()
            .into_iter()
            .filter(|d| s.storage().get_doc(d).unwrap().kind == "lineage")
            .count()
    };
    assert_eq!(lineage_docs(&s), 4);
    delete_model(&s, &ids[3]).unwrap();
    assert_eq!(lineage_docs(&s), 3, "deletion removes the model's lineage record");
    collect_garbage(&s, &[ids[2].clone()]).unwrap();
    assert_eq!(lineage_docs(&s), 3, "kept chain keeps its records");
}

#[test]
fn gc_rejects_unknown_live_roots() {
    let dir = tempfile::tempdir().unwrap();
    let (s, _, _) = build_store(dir.path());
    let bogus = SavedModelId(mmlib_store::DocId::from_string("nope-9".into()));
    assert!(collect_garbage(&s, &[bogus]).is_err());
}
