//! Integration tests: the three approaches' save/recover round trips,
//! recursive chains, cross-store recovery, and failure injection.

use mmlib_core::{RecoverOptions, SaveService, TrainProvenance};
use mmlib_core::meta::ModelRelation;
use mmlib_data::loader::LoaderConfig;
use mmlib_data::{DataLoader, Dataset, DatasetId};
use mmlib_model::{ArchId, Model};
use mmlib_store::ModelStorage;
use mmlib_tensor::ExecMode;
use mmlib_train::{ImageNetTrainService, Sgd, SgdConfig, TrainConfig, TrainService};

const SCALE: f64 = 0.0002;

fn service(dir: &std::path::Path) -> SaveService {
    SaveService::new(ModelStorage::open(dir).unwrap())
}

fn train_spec(relation: ModelRelation, seed: u64) -> (TrainProvenance, ImageNetTrainService) {
    let loader_config = LoaderConfig {
        batch_size: 2,
        resolution: 16,
        shuffle: true,
        augment: true,
        seed,
        max_images: Some(4),
    };
    let sgd_config = SgdConfig { lr: 0.01, momentum: 0.9, weight_decay: 0.0, max_grad_norm: None };
    let train_config = TrainConfig {
        epochs: 1,
        max_batches_per_epoch: Some(2),
        seed,
        mode: ExecMode::Deterministic,
    };
    let dataset = Dataset::new(DatasetId::CocoOutdoor512, SCALE);
    let loader = DataLoader::new(dataset, loader_config);
    let sgd = Sgd::new(sgd_config);
    let prov = TrainProvenance {
        dataset_id: DatasetId::CocoOutdoor512,
        dataset_scale: SCALE,
        dataset_external: false,
        loader_config,
        optimizer: sgd_config.into(),
        optimizer_state_before: sgd.state_bytes(),
        train_config,
        relation,
    };
    (prov, ImageNetTrainService::new(loader, sgd, train_config))
}

#[test]
fn baseline_round_trip_is_bit_exact() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let model = Model::new_initialized(ArchId::ResNet18, 1);
    let id = svc.save_full(&model, None, "initial").unwrap();
    let rec = svc.recover(&id, RecoverOptions::default()).unwrap();
    assert!(rec.model.models_equal(&model));
    assert_eq!(rec.breakdown.recovered_bases, 0);
    assert!(rec.breakdown.verify > std::time::Duration::ZERO);
}

#[test]
fn baseline_recover_on_second_machine() {
    // Save through one storage handle, recover through a fresh one over the
    // same shared directory — the paper's "store on one machine, recover on
    // another" setup.
    let dir = tempfile::tempdir().unwrap();
    let model = Model::new_initialized(ArchId::MobileNetV2, 2);
    let id = {
        let svc = service(dir.path());
        svc.save_full(&model, None, "initial").unwrap()
    };
    let svc2 = service(dir.path());
    let rec = svc2.recover(&id, RecoverOptions::default()).unwrap();
    assert!(rec.model.models_equal(&model));
}

#[test]
fn param_update_chain_recovers_exactly() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());

    // Initial model saved fully.
    let mut model = Model::new_initialized(ArchId::ResNet18, 3);
    model.set_fully_trainable();
    let base_id = svc.save_full(&model, None, "initial").unwrap();

    // Chain of partially updated versions.
    let mut prev = base_id.clone();
    let mut snapshots = Vec::new();
    for step in 0..3u64 {
        model.set_classifier_only_trainable();
        let (_, mut trainer) = train_spec(ModelRelation::PartiallyUpdated, 100 + step);
        trainer.train(&mut model);
        let (id, diff) = svc.save_update(&model, &prev, "partially_updated").unwrap();
        // Only the classifier layer should have changed.
        assert_eq!(diff.changed, vec!["fc".to_string()], "step {step}");
        snapshots.push((id.clone(), model.state_dict()));
        prev = id;
    }

    // Recover every chain member and check exactness + staircase depth.
    for (i, (id, expected)) in snapshots.iter().enumerate() {
        let rec = svc.recover(id, RecoverOptions::default()).unwrap();
        let sd = rec.model.state_dict();
        assert_eq!(sd.len(), expected.len());
        for ((p, a), (_, b)) in sd.iter().zip(expected) {
            assert!(a.bit_eq(b), "chain {i}: {p} differs");
        }
        assert_eq!(rec.breakdown.recovered_bases as usize, i + 1);
    }
}

#[test]
fn param_update_of_fully_updated_model_stores_everything() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let mut model = Model::new_initialized(ArchId::ResNet18, 4);
    model.set_fully_trainable();
    let base_id = svc.save_full(&model, None, "initial").unwrap();

    let (_, mut trainer) = train_spec(ModelRelation::FullyUpdated, 40);
    trainer.train(&mut model);
    let (_, diff) = svc.save_update(&model, &base_id, "fully_updated").unwrap();
    // Every layer retrains under full updates (BN buffers also shift).
    assert_eq!(diff.changed.len(), model.layers().len());
}

#[test]
fn provenance_replay_recovers_exactly() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let mut model = Model::new_initialized(ArchId::ResNet18, 5);
    model.set_fully_trainable();
    let base_id = svc.save_full(&model, None, "initial").unwrap();

    let (prov, mut trainer) = train_spec(ModelRelation::FullyUpdated, 50);
    trainer.train(&mut model);
    let id = svc.save_provenance(&model, &base_id, &prov).unwrap();

    let rec = svc.recover(&id, RecoverOptions::default()).unwrap();
    assert!(rec.model.models_equal(&model), "training replay must reproduce bit-exactly");
    assert_eq!(rec.breakdown.recovered_bases, 1);
}

#[test]
fn provenance_chain_replays_transitively() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let mut model = Model::new_initialized(ArchId::ResNet18, 6);
    model.set_fully_trainable();
    let mut prev = svc.save_full(&model, None, "initial").unwrap();

    let mut finals = Vec::new();
    for step in 0..2u64 {
        model.set_classifier_only_trainable();
        let (prov, mut trainer) = train_spec(ModelRelation::PartiallyUpdated, 60 + step);
        trainer.train(&mut model);
        let id = svc.save_provenance(&model, &prev, &prov).unwrap();
        finals.push((id.clone(), model.state_dict()));
        prev = id;
    }
    let (last_id, expected) = finals.last().unwrap();
    let rec = svc.recover(last_id, RecoverOptions::default()).unwrap();
    for ((p, a), (_, b)) in rec.model.state_dict().iter().zip(expected) {
        assert!(a.bit_eq(b), "{p} differs after transitive replay");
    }
    assert_eq!(rec.breakdown.recovered_bases, 2);
}

#[test]
fn provenance_replay_with_adam_recovers_exactly() {
    // The wrapper registry must reconstruct ANY stateful optimizer class
    // (paper §3.3's generality claim): run a chain step under Adam, whose
    // state file carries two moment maps plus the step counter.
    use mmlib_train::{Adam, AdamConfig};
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let mut model = Model::new_initialized(ArchId::TinyCnn, 90);
    model.set_fully_trainable();

    // Warm the optimizer with one prior step so its saved state is
    // non-trivial (moments + step counter all matter for the replay).
    let adam_config = AdamConfig { lr: 0.01, ..Default::default() };
    let mut adam = Adam::new(adam_config);
    let loader_config = LoaderConfig {
        batch_size: 2,
        resolution: 8,
        seed: 91,
        max_images: Some(4),
        ..Default::default()
    };
    let warm_cfg = TrainConfig {
        epochs: 1,
        max_batches_per_epoch: Some(1),
        seed: 91,
        mode: ExecMode::Deterministic,
    };
    let loader = DataLoader::new(Dataset::new(DatasetId::CocoOutdoor512, SCALE), loader_config);
    let mut warm = ImageNetTrainService::new(loader.clone(), adam.clone(), warm_cfg);
    warm.train(&mut model);
    if let mmlib_train::AnyOptimizer::Adam(a) = warm.optimizer() {
        adam = a.clone();
    }
    assert_eq!(adam.steps(), 1);

    // The captured run derives from the post-warm-up model state.
    let base_id = svc.save_full(&model, None, "initial").unwrap();

    // The provenance-captured training run, starting from the warmed state.
    let train_config = TrainConfig {
        epochs: 1,
        max_batches_per_epoch: Some(2),
        seed: 92,
        mode: ExecMode::Deterministic,
    };
    let prov = TrainProvenance {
        dataset_id: DatasetId::CocoOutdoor512,
        dataset_scale: SCALE,
        dataset_external: false,
        loader_config,
        optimizer: adam_config.into(),
        optimizer_state_before: adam.state_bytes(),
        train_config,
        relation: ModelRelation::FullyUpdated,
    };
    let mut trainer = ImageNetTrainService::new(loader, adam, train_config);
    trainer.train(&mut model);
    let id = svc.save_provenance(&model, &base_id, &prov).unwrap();

    let rec = svc.recover(&id, RecoverOptions::default()).unwrap();
    assert!(rec.model.models_equal(&model), "Adam replay must restore moments AND step count");
}

#[test]
fn provenance_storage_is_dominated_by_dataset_unless_external() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let mut model = Model::new_initialized(ArchId::ResNet18, 7);
    model.set_fully_trainable();
    let base_id = svc.save_full(&model, None, "initial").unwrap();

    let (mut prov, mut trainer) = train_spec(ModelRelation::FullyUpdated, 70);
    trainer.train(&mut model);

    let before = svc.storage().bytes_written();
    svc.save_provenance(&model, &base_id, &prov).unwrap();
    let with_dataset = svc.storage().bytes_written() - before;

    prov.dataset_external = true;
    let before = svc.storage().bytes_written();
    svc.save_provenance(&model, &base_id, &prov).unwrap();
    let external = svc.storage().bytes_written() - before;

    let dataset_bytes = Dataset::new(DatasetId::CocoOutdoor512, SCALE).total_bytes();
    assert!(with_dataset > dataset_bytes, "container must dominate");
    assert!(external < with_dataset / 2, "external reference must avoid the container");
}

#[test]
fn compressed_update_round_trips_and_shrinks() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let mut model = Model::new_initialized(ArchId::ResNet18, 55);
    model.set_fully_trainable();
    let base_id = svc.save_full(&model, None, "initial").unwrap();
    let base_model = model.duplicate();

    model.set_classifier_only_trainable();
    let (_, mut trainer) = train_spec(ModelRelation::PartiallyUpdated, 56);
    trainer.train(&mut model);

    // Plain update for comparison.
    let before = svc.storage().bytes_written();
    svc.save_update(&model, &base_id, "partially_updated").unwrap();
    let plain = svc.storage().bytes_written() - before;

    // Delta-compressed update.
    let before = svc.storage().bytes_written();
    let (id, diff, encoded) = svc
        .save_update_compressed(&model, &base_model, &base_id, "partially_updated")
        .unwrap();
    let compressed = svc.storage().bytes_written() - before;

    assert_eq!(diff.changed, vec!["fc".to_string()]);
    assert!(encoded.ratio() > 1.0, "ratio {}", encoded.ratio());
    assert!(compressed < plain, "compressed {compressed} >= plain {plain}");

    let rec = svc.recover(&id, RecoverOptions::default()).unwrap();
    assert!(rec.model.models_equal(&model), "delta recovery must be bit-exact");
}

#[test]
fn compressed_update_rejects_wrong_in_memory_base() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let mut model = Model::new_initialized(ArchId::TinyCnn, 57);
    model.set_fully_trainable();
    let base_id = svc.save_full(&model, None, "initial").unwrap();
    // An imposter base: same arch, different parameters.
    let imposter = Model::new_initialized(ArchId::TinyCnn, 58);
    let (_, mut trainer) = train_spec(ModelRelation::FullyUpdated, 59);
    trainer.train(&mut model);
    let err = svc
        .save_update_compressed(&model, &imposter, &base_id, "fully_updated")
        .unwrap_err();
    assert!(matches!(err, mmlib_core::CoreError::VerificationFailed { .. }));
}

#[test]
fn corrupted_weights_fail_verification() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let model = Model::new_initialized(ArchId::ResNet18, 8);
    let id = svc.save_full(&model, None, "initial").unwrap();

    // Corrupt one byte of the stored weights file, past the header, inside
    // the f32 payload (so deserialization still succeeds).
    let files_dir = dir.path().join("files");
    let mut victims: Vec<_> = std::fs::read_dir(&files_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    victims.sort();
    // The weights file is by far the largest.
    let victim = victims
        .iter()
        .max_by_key(|p| std::fs::metadata(p).unwrap().len())
        .unwrap();
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(victim, &bytes).unwrap();

    let err = svc.recover(&id, RecoverOptions::default()).unwrap_err();
    assert!(matches!(err, mmlib_core::CoreError::VerificationFailed { .. }), "{err}");

    // Without verification the corruption goes unnoticed — the exact reason
    // the paper saves checksums.
    let opts = RecoverOptions { verify: false, ..Default::default() };
    let rec = svc.recover(&id, opts).unwrap();
    assert!(!rec.model.models_equal(&model));
}

#[test]
fn environment_mismatch_blocks_recovery_unless_skipped() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let model = Model::new_initialized(ArchId::ResNet18, 9);
    let id = svc.save_full(&model, None, "initial").unwrap();

    // Tamper with the stored environment document to simulate drift.
    let info = {
        let doc = svc.storage().get_doc(id.doc_id()).unwrap();
        doc.body["environment_doc"].as_str().unwrap().to_string()
    };
    let env_id = mmlib_store::DocId::from_string(info);
    let mut env_doc = svc.storage().get_doc(&env_id).unwrap();
    env_doc.body["mmlib_version"] = serde_json::json!("0.0.0-other");
    svc.storage().docs().update(&env_id, env_doc.body).unwrap();

    let err = svc.recover(&id, RecoverOptions::default()).unwrap_err();
    assert!(matches!(err, mmlib_core::CoreError::EnvironmentMismatch { .. }));

    let opts = RecoverOptions { check_env: false, ..Default::default() };
    let rec = svc.recover(&id, opts).unwrap();
    assert!(rec.model.models_equal(&model));
}

#[test]
fn update_against_mismatched_architecture_is_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let resnet = Model::new_initialized(ArchId::ResNet18, 10);
    let base_id = svc.save_full(&resnet, None, "initial").unwrap();
    let mobilenet = Model::new_initialized(ArchId::MobileNetV2, 10);
    let err = svc.save_update(&mobilenet, &base_id, "fully_updated").unwrap_err();
    assert!(matches!(err, mmlib_core::CoreError::BadModelDocument { .. }));
}

#[test]
fn initial_relation_validation() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let model = Model::new_initialized(ArchId::ResNet18, 11);
    assert!(svc.save_full(&model, None, "fully_updated").is_err());
    let id = svc.save_full(&model, None, "initial").unwrap();
    assert!(svc.save_full(&model, Some(&id), "initial").is_err());
    assert!(svc.save_full(&model, Some(&id), "nonsense").is_err());
}

#[test]
fn provenance_requires_deterministic_mode() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let model = Model::new_initialized(ArchId::ResNet18, 12);
    let base_id = svc.save_full(&model, None, "initial").unwrap();
    let (mut prov, _) = train_spec(ModelRelation::FullyUpdated, 90);
    prov.train_config.mode = ExecMode::Parallel;
    assert!(svc.save_provenance(&model, &base_id, &prov).is_err());
}

#[test]
fn missing_document_reports_cleanly() {
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let bogus = mmlib_core::meta::SavedModelId(mmlib_store::DocId::from_string("nope-1".into()));
    let err = svc.recover(&bogus, RecoverOptions::default()).unwrap_err();
    assert!(matches!(err, mmlib_core::CoreError::Store(_)));
}

#[test]
fn storage_consumption_ordering_matches_paper_fig7() {
    // Partial ResNet-18 update: BA >> PUA, and MPA is dominated by the
    // dataset container (with this small scale the ordering BA > MPA > PUA
    // is not asserted — only the BA/PUA gap, which is scale-free).
    let dir = tempfile::tempdir().unwrap();
    let svc = service(dir.path());
    let mut model = Model::new_initialized(ArchId::ResNet18, 13);
    model.set_fully_trainable();
    let base_id = svc.save_full(&model, None, "initial").unwrap();

    model.set_classifier_only_trainable();
    let (prov, mut trainer) = train_spec(ModelRelation::PartiallyUpdated, 95);
    trainer.train(&mut model);

    let before = svc.storage().bytes_written();
    svc.save_full(&model, Some(&base_id), "partially_updated").unwrap();
    let ba = svc.storage().bytes_written() - before;

    let before = svc.storage().bytes_written();
    svc.save_update(&model, &base_id, "partially_updated").unwrap();
    let pua = svc.storage().bytes_written() - before;

    let before = svc.storage().bytes_written();
    svc.save_provenance(&model, &base_id, &prov).unwrap();
    let mpa = svc.storage().bytes_written() - before;

    // ResNet-18: full snapshot ~46.8 MB vs classifier-only update ~2 MB.
    assert!(pua * 10 < ba, "PUA ({pua}) must be far below BA ({ba})");
    // MPA cost is dominated by the dataset container bytes.
    let dataset_bytes = Dataset::new(DatasetId::CocoOutdoor512, SCALE).total_bytes();
    assert!(mpa > dataset_bytes && mpa < dataset_bytes + 200_000, "mpa={mpa}");
}
