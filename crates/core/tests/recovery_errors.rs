//! Failure-injection tests of the recovery path's document handling.

use mmlib_core::meta::SavedModelId;
use mmlib_core::{CoreError, RecoverOptions, SaveService};
use mmlib_model::{ArchId, Model};
use mmlib_store::ModelStorage;
use serde_json::json;

fn svc(dir: &std::path::Path) -> SaveService {
    SaveService::new(ModelStorage::open(dir).unwrap())
}

#[test]
fn wrong_kind_document_is_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    // An environment doc is not a model doc.
    let env_id = s.storage().insert_doc("environment", json!({})).unwrap();
    let err = s
        .recover(&SavedModelId(env_id), RecoverOptions::default())
        .unwrap_err();
    assert!(matches!(err, CoreError::BadModelDocument { .. }));
}

#[test]
fn undecodable_body_is_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    let id = s.storage().insert_doc("model_info", json!({"approach": "???"})).unwrap();
    let err = s.recover(&SavedModelId(id), RecoverOptions::default()).unwrap_err();
    assert!(matches!(err, CoreError::BadModelDocument { .. }));
}

#[test]
fn unknown_architecture_is_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    let model = Model::new_initialized(ArchId::TinyCnn, 1);
    let id = s.save_full(&model, None, "initial").unwrap();
    // Corrupt the arch field.
    let mut doc = s.storage().get_doc(id.doc_id()).unwrap();
    doc.body["arch"] = json!("lenet-9000");
    s.storage().docs().update(id.doc_id(), doc.body).unwrap();
    let err = s.recover(&id, RecoverOptions::default()).unwrap_err();
    assert!(matches!(err, CoreError::BadModelDocument { .. }), "{err}");
}

#[test]
fn missing_weights_file_is_reported() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    let model = Model::new_initialized(ArchId::TinyCnn, 2);
    let id = s.save_full(&model, None, "initial").unwrap();
    let mut doc = s.storage().get_doc(id.doc_id()).unwrap();
    let weights = doc.body["weights_file"].as_str().unwrap().to_string();
    s.storage().files().remove(&mmlib_store::FileId::from_string(weights)).unwrap();
    doc.body["code_file"] = doc.body["code_file"].clone();
    let err = s.recover(&id, RecoverOptions::default()).unwrap_err();
    assert!(matches!(err, CoreError::Store(mmlib_store::StoreError::MissingFile(_))), "{err}");
}

#[test]
fn dangling_base_reference_is_reported() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    let mut model = Model::new_initialized(ArchId::TinyCnn, 3);
    model.set_fully_trainable();
    let base = s.save_full(&model, None, "initial").unwrap();
    model.visit_trainable_mut(&mut |p, t, _| {
        if p.starts_with("fc") {
            t.data_mut()[0] += 1.0;
        }
    });
    let (update, _) = s.save_update(&model, &base, "partially_updated").unwrap();
    // Point the update at a nonexistent base.
    let mut doc = s.storage().get_doc(update.doc_id()).unwrap();
    doc.body["base_model"] = json!("gone-1");
    s.storage().docs().update(update.doc_id(), doc.body).unwrap();
    let err = s.recover(&update, RecoverOptions::default()).unwrap_err();
    assert!(matches!(err, CoreError::Store(mmlib_store::StoreError::MissingDocument(_))), "{err}");
}

#[test]
fn cyclic_base_chain_hits_the_depth_guard() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    let mut model = Model::new_initialized(ArchId::TinyCnn, 4);
    model.set_fully_trainable();
    let base = s.save_full(&model, None, "initial").unwrap();
    model.visit_trainable_mut(&mut |p, t, _| {
        if p.starts_with("fc") {
            t.data_mut()[0] += 1.0;
        }
    });
    let (update, _) = s.save_update(&model, &base, "partially_updated").unwrap();
    // Create a cycle: the update's base points at itself.
    let mut doc = s.storage().get_doc(update.doc_id()).unwrap();
    doc.body["base_model"] = json!(update.doc_id().as_str());
    s.storage().docs().update(update.doc_id(), doc.body).unwrap();
    let err = s.recover(&update, RecoverOptions::default()).unwrap_err();
    assert!(matches!(err, CoreError::BaseChainTooDeep { .. }), "{err}");
}

#[test]
fn tampered_root_hash_fails_verification() {
    let dir = tempfile::tempdir().unwrap();
    let s = svc(dir.path());
    let model = Model::new_initialized(ArchId::TinyCnn, 5);
    let id = s.save_full(&model, None, "initial").unwrap();
    let mut doc = s.storage().get_doc(id.doc_id()).unwrap();
    doc.body["root_hash"] = json!("ff".repeat(32));
    s.storage().docs().update(id.doc_id(), doc.body).unwrap();
    let err = s.recover(&id, RecoverOptions::default()).unwrap_err();
    assert!(matches!(err, CoreError::VerificationFailed { .. }));
}
