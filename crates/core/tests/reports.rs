//! The unified save/recover report surface: phase sums, delegate parity,
//! and recorder routing.

use std::sync::Arc;
use std::time::Duration;

use mmlib_core::{
    RecoverOptions, SaveRequest, SaveService, VerifyOutcome, RECOVER_PHASES, SAVE_PHASES,
};
use mmlib_model::{ArchId, Model};
use mmlib_obs::Recorder;
use mmlib_store::ModelStorage;

/// Untimed slack allowed between the sum of phase durations and the total
/// wall time (argument parsing, vec assembly, clock overhead).
const EPSILON: Duration = Duration::from_millis(50);

fn service(dir: &std::path::Path) -> (SaveService, Arc<Recorder>) {
    let recorder = Arc::new(Recorder::new());
    let svc =
        SaveService::new(ModelStorage::open(dir).unwrap()).with_recorder(Arc::clone(&recorder));
    (svc, recorder)
}

fn bump_classifier(model: &mut Model, salt: f32) {
    let prefix = model.arch.classifier_prefix();
    model.visit_trainable_mut(&mut |path, param, _| {
        if path.starts_with(prefix) {
            param.data_mut()[0] += salt;
        }
    });
}

#[test]
fn save_report_phases_sum_to_tts_within_epsilon() {
    let dir = tempfile::tempdir().unwrap();
    let (svc, _) = service(dir.path());
    let mut model = Model::new_initialized(ArchId::TinyCnn, 7);
    model.set_fully_trainable();

    let full = svc.save(SaveRequest::full(&model)).unwrap();
    bump_classifier(&mut model, 1.0);
    let update = svc.save(SaveRequest::update(&model, &full.id)).unwrap();

    for report in [&full, &update] {
        let phase_sum = report.phases.total();
        assert!(phase_sum <= report.tts + EPSILON, "phases {phase_sum:?} vs tts {:?}", report.tts);
        let gap = report.tts.saturating_sub(phase_sum);
        assert!(gap < EPSILON, "untimed gap {gap:?} exceeds epsilon ({:?} total)", report.tts);
        // Every reported phase belongs to the published taxonomy.
        for (phase, _) in report.phases.entries() {
            assert!(SAVE_PHASES.contains(phase), "unknown phase {phase:?}");
        }
        assert!(report.storage_bytes > 0);
    }
    assert!(update.diff.is_some());
    assert!(update.storage_bytes < full.storage_bytes, "updates must be cheaper than snapshots");
}

#[test]
fn recover_report_maps_breakdown_into_phases() {
    let dir = tempfile::tempdir().unwrap();
    let (svc, _) = service(dir.path());
    let mut model = Model::new_initialized(ArchId::TinyCnn, 8);
    model.set_fully_trainable();
    let base = svc.save(SaveRequest::full(&model)).unwrap();
    bump_classifier(&mut model, 2.0);
    let derived = svc.save(SaveRequest::update(&model, &base.id)).unwrap();

    let report = svc.recover_report(&derived.id, RecoverOptions::default()).unwrap();
    assert!(report.model.models_equal(&model));
    assert_eq!(report.verification, VerifyOutcome::Verified);
    assert_eq!(report.phases.get("fetch"), report.breakdown.load);
    assert_eq!(report.phases.get("rebuild"), report.breakdown.recover);
    assert_eq!(report.phases.get("verify"), report.breakdown.verify);
    assert_eq!(report.phases.total(), report.breakdown.total());
    assert!(report.phases.total() <= report.ttr + EPSILON);
    for (phase, _) in report.phases.entries() {
        assert!(RECOVER_PHASES.contains(phase), "unknown phase {phase:?}");
    }
    assert_eq!(report.breakdown.recovered_bases, 1);
}

#[test]
fn builder_options_skip_verification() {
    let dir = tempfile::tempdir().unwrap();
    let (svc, _) = service(dir.path());
    let model = Model::new_initialized(ArchId::TinyCnn, 9);
    let saved = svc.save(SaveRequest::full(&model)).unwrap();

    let opts = RecoverOptions::new().check_env(false).verify(false).max_chain_depth(4);
    assert!(!opts.check_env);
    assert!(!opts.verify);
    assert_eq!(opts.max_chain_depth, 4);
    let report = svc.recover_report(&saved.id, opts).unwrap();
    assert_eq!(report.verification, VerifyOutcome::Skipped);
    assert_eq!(report.breakdown.verify, Duration::ZERO);
    assert_eq!(report.breakdown.check_env, Duration::ZERO);
}

#[test]
fn policy_requests_report_chain_depth() {
    let dir = tempfile::tempdir().unwrap();
    let (svc, _) = service(dir.path());
    let mut model = Model::new_initialized(ArchId::TinyCnn, 10);
    model.set_fully_trainable();
    let base = svc.save(SaveRequest::full(&model)).unwrap();
    assert_eq!(base.chain_depth, None); // plain saves don't walk the chain

    bump_classifier(&mut model, 1.0);
    let policy = mmlib_core::policy::ChainPolicy::updates(2);
    let first = svc.save(SaveRequest::with_policy(&model, &base.id, policy)).unwrap();
    assert_eq!(first.chain_depth, Some(1));
    assert_eq!(first.approach, mmlib_core::ApproachKind::ParamUpdate);
    assert!(first.phases.get("plan") <= first.tts);
}

#[test]
fn service_recorder_override_isolates_and_records() {
    let dir = tempfile::tempdir().unwrap();
    let (svc, recorder) = service(dir.path());
    let model = Model::new_initialized(ArchId::TinyCnn, 11);
    let saved = svc.save(SaveRequest::full(&model)).unwrap();
    let _ = svc.recover_report(&saved.id, RecoverOptions::default()).unwrap();

    // The service's own recorder saw the save and the recovery.
    assert_eq!(recorder.histogram_count("mmlib_save_seconds", Some(("approach", "BA"))), 1);
    assert_eq!(recorder.histogram_count("mmlib_recover_seconds", None), 1);
    assert!(recorder.histogram_count("mmlib_save_phase_seconds", Some(("phase", "write"))) > 0);
    assert!(
        recorder.counter_value("mmlib_save_bytes_total", Some(("approach", "BA")))
            >= saved.storage_bytes
    );
    // Recover phases record one sample per phase, even zero-duration ones.
    for phase in RECOVER_PHASES {
        assert_eq!(
            recorder.histogram_count("mmlib_recover_phase_seconds", Some(("phase", phase))),
            1,
            "{phase}"
        );
    }
}

#[test]
fn register_metrics_pre_registers_the_taxonomy() {
    let recorder = Recorder::new();
    mmlib_core::register_metrics(&recorder);
    let text = recorder.render_text();
    for phase in SAVE_PHASES {
        assert!(
            text.contains(&format!("mmlib_save_phase_seconds_count{{phase=\"{phase}\"}} 0")),
            "{phase} missing from exposition"
        );
    }
    for phase in RECOVER_PHASES {
        assert!(
            text.contains(&format!("mmlib_recover_phase_seconds_count{{phase=\"{phase}\"}} 0")),
            "{phase} missing from exposition"
        );
    }
}
