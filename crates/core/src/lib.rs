//! # mmlib-core — the model management library
//!
//! Rust reproduction of the paper's primary contribution: three approaches
//! for saving and recovering *exact* deep-learning model representations in
//! a distributed environment, plus the probing tool that verifies model
//! reproducibility.
//!
//! ## The three approaches (paper §3)
//!
//! * **Baseline (BA)** — [`baseline`]: each model is saved as a complete,
//!   independent snapshot: metadata documents, architecture code +
//!   environment, and the full serialized state dict.
//! * **Parameter update (PUA)** — [`param_update`]: a derived model is saved
//!   as a reference to its base plus only the layers whose parameters
//!   changed, detected by comparing per-layer hashes organized in a
//!   [`merkle`] tree. Recovery is recursive: recover the base, then merge
//!   the update.
//! * **Model provenance (MPA)** — [`provenance`]: a derived model is saved
//!   as its *provenance* — training code/configuration (wrapped restorable
//!   objects, [`wrapper`]), a detailed environment capture ([`mod@env`]), the
//!   training dataset, and the base reference. Recovery replays the
//!   training deterministically.
//!
//! All three share one storage layout ([`meta`]) over `mmlib-store`'s
//! document + file stores, and one recursive [`recovery`] service that
//! dispatches on the saved approach per model. Every save records a
//! Merkle root over the model's layer hashes, so every recovery can verify
//! bit-exactness ([`verify`]).
//!
//! ## Quick start
//!
//! ```
//! use mmlib_core::{SaveService, RecoverOptions};
//! use mmlib_model::{ArchId, Model};
//! use mmlib_store::ModelStorage;
//!
//! let dir = tempfile::tempdir().unwrap();
//! let storage = ModelStorage::open(dir.path()).unwrap();
//! let svc = SaveService::new(storage);
//!
//! let model = Model::new_initialized(ArchId::ResNet18, 42);
//! let id = svc.save_full(&model, None, "initial").unwrap();
//! let recovered = svc.recover(&id, RecoverOptions::default()).unwrap();
//! assert!(recovered.model.models_equal(&model));
//! ```

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod baseline;
pub mod gc;
pub mod env;
pub mod error;
pub mod fsck;
pub mod hash_cache;
pub mod merkle;
pub mod meta;
pub mod param_update;
pub mod policy;
pub mod probe;
pub mod provenance;
pub mod recovery;
pub mod report;
pub mod verify;
pub mod wrapper;

pub use env::EnvironmentInfo;
pub use error::CoreError;
pub use fsck::{FsckIssue, FsckOptions, FsckReport};
pub use merkle::MerkleTree;
pub use meta::{ApproachKind, LineageRecordDoc, ModelRelation, SavedModelId};
pub use probe::{ProbeRecord, ProbeReport};
pub use provenance::TrainProvenance;
pub use recovery::{RecoverBreakdown, RecoverOptions, RecoveredModel, SaveService};
pub use report::{
    register_metrics, RecoverReport, SaveReport, SaveRequest, VerifyOutcome, RECOVER_PHASES,
    SAVE_PHASES,
};
