//! Save-path hash cache: fingerprint-gated incremental Merkle rebuilds.
//!
//! BENCH_PR4.json shows the `hash` phase as a flat ~0.68s/10-saves floor
//! under every approach: each save re-SHA-256s every parameter byte even
//! though consecutive saves of a training run change only a few layers. The
//! cache closes that gap without weakening any integrity property:
//!
//! 1. Every save computes a cheap 128-bit non-cryptographic *fingerprint*
//!    per state entry (one multiply-mix pass over the raw `f32` bits —
//!    roughly an order of magnitude cheaper than SHA-256).
//! 2. Entries whose fingerprint matches the previous save reuse their cached
//!    SHA-256 digest; changed entries are re-hashed on the parallel pool.
//! 3. Changed layer digests are spliced into the cached tree with
//!    [`MerkleTree::update_leaves`] instead of rebuilding from scratch.
//!
//! Invalidation rules: any entry-path mismatch (different architecture,
//! renamed entries, different entry order) drops the whole cache and takes
//! the full-rebuild path; a failed splice does the same. The cache is only
//! ever an *accelerator* — the tree it returns is byte-identical to
//! `MerkleTree::from_model` (the core proptests enforce this), and
//! recover-time verification still recomputes every digest from the
//! recovered bytes, so a (cosmically unlikely) fingerprint collision would
//! surface as a loud verification failure, never silent corruption.

use std::sync::Mutex;
use std::time::Instant;

use mmlib_model::Model;
use mmlib_obs::Recorder;
use mmlib_tensor::hash::Digest;
use mmlib_tensor::{hash_par, Tensor};

use crate::merkle::{layer_hashes_from_entries, MerkleTree};

/// Sub-phase labels recorded into `mmlib_save_phase_seconds` alongside the
/// coarse `hash` phase, so expositions show where hash time goes. These are
/// histogram labels, not breakdown phases: the bench phase taxonomy and its
/// zero-sample gate are unaffected.
pub const HASH_SUBPHASES: [&str; 3] = ["hash_fingerprint", "hash_rehash", "hash_splice"];

/// A 128-bit non-cryptographic fingerprint of a tensor: multiply-mix lanes
/// over the shape dims and raw `f32` bit patterns. Collisions between
/// *different* byte contents are what matters, and at 128 bits they are
/// negligible next to SHA-256's own collision bound.
pub fn fingerprint(t: &Tensor) -> (u64, u64) {
    const M0: u64 = 0x0000_0100_0000_01b3; // FNV-1a prime
    const M1: u64 = 0xff51_afd7_ed55_8ccd; // splitmix64 mixers
    const M2: u64 = 0xc4ce_b9fe_1a85_ec53;
    const M3: u64 = 0x9e37_79b9_7f4a_7c15; // golden ratio
    const MULS: [u64; 4] = [M0, M1, M2, M3];
    let mut a = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut b = M3;
    a ^= t.shape().rank() as u64;
    for &d in t.shape().dims() {
        a = (a ^ d as u64).wrapping_mul(M0);
        b = (b.rotate_left(23) ^ d as u64).wrapping_mul(M1);
    }
    // Data pass: four independent accumulator lanes, elements striped
    // across them. A single chained multiply is latency-bound (each step
    // waits ~4 cycles on the previous product); four disjoint chains keep
    // four multiplies in flight, which is what makes the fingerprint an
    // order of magnitude cheaper than SHA-256 on the save hot path.
    let mut lanes: [u64; 4] = [
        a ^ 0x243f_6a88_85a3_08d3,
        b ^ 0x1319_8a2e_0370_7344,
        a.rotate_left(17) ^ 0xa409_3822_299f_31d0,
        b.rotate_left(31) ^ 0x082e_fa98_ec4e_6c89,
    ];
    let quads = t.data().chunks_exact(4);
    let rest = quads.remainder();
    for quad in quads {
        for i in 0..4 {
            lanes[i] = (lanes[i] ^ u64::from(quad[i].to_bits())).wrapping_mul(MULS[i]);
        }
    }
    // Tail elements re-mix their lane with a rotate so a short tail is
    // distinguishable from a full quad of the same values (the total length
    // is also pinned by the shape dims above).
    for (i, v) in rest.iter().enumerate() {
        lanes[i] =
            (lanes[i] ^ u64::from(v.to_bits())).wrapping_mul(MULS[i]).rotate_left(11);
    }
    a ^= lanes[0].wrapping_mul(M1) ^ lanes[2].rotate_left(29).wrapping_mul(M3);
    b ^= lanes[1].wrapping_mul(M2) ^ lanes[3].rotate_left(13).wrapping_mul(M0);
    (a, b)
}

struct CacheState {
    /// State-entry paths, in state-entry order (the cache key's structure).
    paths: Vec<String>,
    /// Per-entry fingerprints, parallel to `paths`.
    prints: Vec<(u64, u64)>,
    /// Per-entry SHA-256 digests, parallel to `paths`.
    digests: Vec<Digest>,
    /// The Merkle tree of the last save.
    tree: MerkleTree,
}

/// Per-service cache of the last saved model's entry digests and tree.
///
/// Interior mutability because every `SaveService` method takes `&self`;
/// a poisoned lock (a panicking holder) just drops the cached state.
#[derive(Default)]
pub struct HashCache {
    state: Mutex<Option<CacheState>>,
}

impl HashCache {
    /// An empty cache.
    pub fn new() -> HashCache {
        HashCache::default()
    }

    /// Drops any cached state (tests use this to force full rebuilds).
    pub fn clear(&self) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// The Merkle tree of `model`'s current parameters — byte-identical to
    /// [`MerkleTree::from_model`], incrementally when the previous call saw
    /// the same entry structure.
    ///
    /// `obs` receives `hash_*` sub-phase timings under the save-phase
    /// histogram (`mmlib_save_phase_seconds`); callers charge the whole call
    /// to the coarse `hash` phase as before.
    pub fn tree_for_model(&self, model: &Model, obs: &Recorder) -> MerkleTree {
        const PHASE: &str = "mmlib_save_phase_seconds";
        let entries = model.state_entries();
        let tensors: Vec<&Tensor> = entries.iter().map(|(_, t, _, _)| *t).collect();

        let fp_start = Instant::now();
        let prints: Vec<(u64, u64)> = tensors.iter().map(|t| fingerprint(t)).collect();
        obs.observe_duration(PHASE, ("phase", "hash_fingerprint"), fp_start.elapsed());

        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(state) = guard.as_mut() {
            if state.paths.len() == entries.len()
                && state.paths.iter().zip(&entries).all(|(p, (q, _, _, _))| p == q)
            {
                // Same entry structure: re-hash only fingerprint-changed
                // entries and splice their layers into the cached tree.
                let changed: Vec<usize> =
                    (0..prints.len()).filter(|&i| state.prints[i] != prints[i]).collect();
                let rh_start = Instant::now();
                let changed_tensors: Vec<&Tensor> =
                    changed.iter().map(|&i| tensors[i]).collect();
                let new_digests = hash_par::hash_tensors(&changed_tensors);
                for (&i, d) in changed.iter().zip(&new_digests) {
                    state.digests[i] = *d;
                    state.prints[i] = prints[i];
                }
                obs.observe_duration(PHASE, ("phase", "hash_rehash"), rh_start.elapsed());

                let sp_start = Instant::now();
                let layer_hashes = layer_hashes_from_entries(&state.paths, &state.digests);
                let updates: Vec<(String, Digest)> = layer_hashes
                    .into_iter()
                    .filter(|(p, d)| state.tree.leaf(p) != Some(d))
                    .collect();
                if let Some(tree) = state.tree.update_leaves(&updates) {
                    state.tree = tree.clone();
                    obs.observe_duration(PHASE, ("phase", "hash_splice"), sp_start.elapsed());
                    return tree;
                }
                // A layer appeared that the cached tree does not know —
                // structurally impossible when entry paths matched, but fall
                // through to the total rebuild rather than trusting it.
            }
        }

        let rh_start = Instant::now();
        let digests = hash_par::hash_tensors(&tensors);
        obs.observe_duration(PHASE, ("phase", "hash_rehash"), rh_start.elapsed());
        let paths: Vec<String> = entries.into_iter().map(|(p, _, _, _)| p).collect();
        let tree = MerkleTree::from_leaves(layer_hashes_from_entries(&paths, &digests));
        *guard = Some(CacheState { paths, prints, digests, tree: tree.clone() });
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_model::ArchId;

    fn recorder() -> Recorder {
        Recorder::new()
    }

    #[test]
    fn cold_cache_matches_from_model() {
        let cache = HashCache::new();
        let model = Model::new_initialized(ArchId::TinyCnn, 3);
        let tree = cache.tree_for_model(&model, &recorder());
        assert_eq!(tree, MerkleTree::from_model(&model));
    }

    #[test]
    fn warm_cache_tracks_mutations_exactly() {
        let cache = HashCache::new();
        let obs = recorder();
        let mut model = Model::new_initialized(ArchId::TinyCnn, 3);
        model.set_fully_trainable();
        cache.tree_for_model(&model, &obs);

        // Mutate one parameter; the incremental tree must equal a rebuild.
        model.visit_trainable_mut(&mut |_, param, _| param.data_mut()[0] += 0.5);
        let warm = cache.tree_for_model(&model, &obs);
        assert_eq!(warm, MerkleTree::from_model(&model));

        // Unchanged model: pure cache hit, still identical.
        let again = cache.tree_for_model(&model, &obs);
        assert_eq!(again, warm);
    }

    #[test]
    fn arch_change_invalidates() {
        let cache = HashCache::new();
        let obs = recorder();
        let a = Model::new_initialized(ArchId::TinyCnn, 1);
        cache.tree_for_model(&a, &obs);
        let b = Model::new_initialized(ArchId::ResNet18, 1);
        assert_eq!(cache.tree_for_model(&b, &obs), MerkleTree::from_model(&b));
    }

    #[test]
    fn fingerprint_is_shape_and_bit_sensitive() {
        let a = Tensor::from_vec([2, 3], vec![1.0; 6]).unwrap();
        let b = Tensor::from_vec([3, 2], vec![1.0; 6]).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let mut c = a.clone();
        c.data_mut()[4] = f32::from_bits(1.0f32.to_bits() ^ 1);
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }
}
