//! Environment capture and checking.
//!
//! Paper §3.1/§3.3: the model architecture's behaviour depends on "the
//! framework version, all third-party libraries, the language interpreter,
//! operating system kernel, as well as the driver versions, and the hardware
//! specification" — so every save records the environment, and recovery
//! verifies the current environment against it (a step the paper measures
//! at over one second and toggles in some experiments).

use serde::{Deserialize, Serialize};

/// A captured execution environment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvironmentInfo {
    /// mmlib's own version (the "framework version").
    pub mmlib_version: String,
    /// Compiler the library was built with (stands in for the interpreter).
    pub rustc_semver: String,
    /// Third-party library versions linked into the substrate.
    pub libraries: Vec<(String, String)>,
    /// OS type (e.g. `Linux`).
    pub os_type: String,
    /// Kernel release (e.g. `6.18.5`).
    pub kernel_release: String,
    /// Machine hostname.
    pub hostname: String,
    /// CPU model string.
    pub cpu_model: String,
    /// Logical CPU count.
    pub cpu_count: usize,
    /// Total memory in kilobytes.
    pub total_memory_kb: u64,
}

fn read_trimmed(path: &str) -> Option<String> {
    std::fs::read_to_string(path).ok().map(|s| s.trim().to_string())
}

fn cpu_model() -> String {
    if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in cpuinfo.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, v)) = rest.split_once(':') {
                    return v.trim().to_string();
                }
            }
        }
    }
    "unknown".to_string()
}

fn total_memory_kb() -> u64 {
    if let Ok(meminfo) = std::fs::read_to_string("/proc/meminfo") {
        for line in meminfo.lines() {
            if let Some(rest) = line.strip_prefix("MemTotal:") {
                if let Some(kb) = rest.split_whitespace().next() {
                    return kb.parse().unwrap_or(0);
                }
            }
        }
    }
    0
}

impl EnvironmentInfo {
    /// Captures the current environment by querying the OS and the build.
    pub fn capture() -> EnvironmentInfo {
        EnvironmentInfo {
            mmlib_version: env!("CARGO_PKG_VERSION").to_string(),
            rustc_semver: rustc_version_string(),
            libraries: vec![
                ("mmlib-tensor".into(), env!("CARGO_PKG_VERSION").into()),
                ("mmlib-model".into(), env!("CARGO_PKG_VERSION").into()),
                ("mmlib-train".into(), env!("CARGO_PKG_VERSION").into()),
                ("mmlib-data".into(), env!("CARGO_PKG_VERSION").into()),
            ],
            os_type: read_trimmed("/proc/sys/kernel/ostype")
                .unwrap_or_else(|| std::env::consts::OS.to_string()),
            kernel_release: read_trimmed("/proc/sys/kernel/osrelease").unwrap_or_default(),
            hostname: read_trimmed("/proc/sys/kernel/hostname").unwrap_or_default(),
            cpu_model: cpu_model(),
            cpu_count: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            total_memory_kb: total_memory_kb(),
        }
    }

    /// Compares a saved environment against the current one.
    ///
    /// Returns the list of mismatching fields, empty when the environments
    /// are *compatible* for exact reproduction. Hostname and memory size are
    /// reported informationally but do **not** count as mismatches: the
    /// paper explicitly recovers models "identically ... on another
    /// machine" of the same hardware/software configuration.
    pub fn mismatches_against(&self, current: &EnvironmentInfo) -> Vec<String> {
        let mut out = Vec::new();
        let mut check = |field: &str, a: &str, b: &str| {
            if a != b {
                out.push(format!("{field}: saved={a:?} current={b:?}"));
            }
        };
        check("mmlib_version", &self.mmlib_version, &current.mmlib_version);
        check("rustc_semver", &self.rustc_semver, &current.rustc_semver);
        check("os_type", &self.os_type, &current.os_type);
        check("kernel_release", &self.kernel_release, &current.kernel_release);
        check("cpu_model", &self.cpu_model, &current.cpu_model);
        for (name, ver) in &self.libraries {
            match current.libraries.iter().find(|(n, _)| n == name) {
                Some((_, cur)) if cur == ver => {}
                Some((_, cur)) => out.push(format!("library {name}: saved={ver} current={cur}")),
                None => out.push(format!("library {name}: missing in current environment")),
            }
        }
        out
    }
}

fn rustc_version_string() -> String {
    // The toolchain that produced this binary is not introspectable at run
    // time without shelling out; record the compile-time target instead,
    // which is what determines kernel-level numeric behaviour.
    format!("rustc({})", std::env::consts::ARCH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_populated() {
        let env = EnvironmentInfo::capture();
        assert!(!env.mmlib_version.is_empty());
        assert!(!env.os_type.is_empty());
        assert!(env.cpu_count >= 1);
        assert_eq!(env.libraries.len(), 4);
    }

    #[test]
    fn identical_environments_match() {
        let env = EnvironmentInfo::capture();
        assert!(env.mismatches_against(&env.clone()).is_empty());
    }

    #[test]
    fn version_drift_is_detected() {
        let saved = EnvironmentInfo::capture();
        let mut current = saved.clone();
        current.mmlib_version = "9.9.9".into();
        current.libraries[0].1 = "0.0.0".into();
        let mismatches = saved.mismatches_against(&current);
        assert_eq!(mismatches.len(), 2);
        assert!(mismatches[0].contains("mmlib_version"));
    }

    #[test]
    fn hostname_difference_is_not_a_mismatch() {
        let saved = EnvironmentInfo::capture();
        let mut current = saved.clone();
        current.hostname = "other-node".into();
        current.total_memory_kb += 1;
        assert!(saved.mismatches_against(&current).is_empty());
    }

    #[test]
    fn missing_library_is_detected() {
        let saved = EnvironmentInfo::capture();
        let mut current = saved.clone();
        current.libraries.remove(0);
        let mismatches = saved.mismatches_against(&current);
        assert_eq!(mismatches.len(), 1);
        assert!(mismatches[0].contains("missing"));
    }

    #[test]
    fn serde_round_trip() {
        let env = EnvironmentInfo::capture();
        let json = serde_json::to_string(&env).unwrap();
        let back: EnvironmentInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(env, back);
    }
}
