//! Store consistency checking — the model-aware half of `mmlib fsck`.
//!
//! Crashes, torn writes, and at-least-once network retries can leave a
//! store physically intact but semantically damaged: documents whose
//! references dangle, blobs no saved model reaches, weights whose bytes no
//! longer hash to the Merkle leaves recorded at save time. [`fsck`] walks
//! every document and blob and cross-checks them against the model
//! metadata schema (paper §3.1):
//!
//! * **physical scan** (local roots only) — leftover `*.tmp` files from
//!   interrupted atomic writes, unparsable documents, id mismatches
//!   (delegated to [`mmlib_store::fsck::scan_local`]);
//! * **reference resolution** — every document and file a `model_info`
//!   document references (environment, layer hashes, base model, wrapper
//!   closure via `ref_args`, code/weights/dataset files) must exist;
//! * **hash re-verification** — weights blobs are re-parsed and re-hashed
//!   layer by layer against the stored Merkle tree, and the tree's root
//!   against the recorded `root_hash`, detecting truncations and bit
//!   flips without recovering a model. (`delta_v1`-encoded updates are
//!   checked for readability only; decoding them requires the base
//!   chain.)
//! * **orphan detection** — documents and blobs no saved model reaches.
//!
//! With [`FsckOptions::repair`] on a local root, damaged and orphaned
//! entries are moved into `root/quarantine/` — out of every scan's way but
//! recoverable by hand.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use mmlib_store::fsck as store_fsck;
use mmlib_store::fsck::ScanIssue;
use mmlib_store::{DocId, Document, FileId, ModelStorage};
use mmlib_tensor::hash::{hash_tensor, Digest, Sha256};
use mmlib_tensor::ser::state_from_bytes;
use mmlib_tensor::Tensor;

use crate::error::CoreError;
use crate::merkle::MerkleTree;
use crate::meta::{kinds, ApproachKind, ModelInfoDoc, SavedModelId};

/// What [`fsck`] should do.
#[derive(Debug, Clone)]
pub struct FsckOptions {
    /// Re-parse weights blobs and re-verify their per-layer hashes against
    /// the stored Merkle trees (slower, catches silent corruption).
    pub verify_hashes: bool,
    /// Quarantine damaged and orphaned entries under `root/quarantine/`
    /// (local roots only; ignored for remote backends).
    pub repair: bool,
}

impl Default for FsckOptions {
    fn default() -> FsckOptions {
        FsckOptions { verify_hashes: true, repair: false }
    }
}

/// One inconsistency found by [`fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckIssue {
    /// A `*.tmp` file left behind by an interrupted atomic write.
    LeftoverTmp {
        /// Absolute path of the temporary file.
        path: PathBuf,
    },
    /// A document that cannot be read or parsed (truncation, bit flip).
    CorruptDoc {
        /// The damaged document.
        id: DocId,
        /// What went wrong.
        detail: String,
    },
    /// A `model_info` document whose body does not decode to the schema.
    BadModelDoc {
        /// The offending model.
        id: SavedModelId,
        /// What was wrong.
        reason: String,
    },
    /// A document referenced by a saved model does not exist.
    MissingDoc {
        /// The model whose reference dangles.
        model: SavedModelId,
        /// The missing document.
        id: DocId,
        /// What the document was (environment, layer hashes, wrapper, ...).
        role: String,
    },
    /// A file referenced by a saved model does not exist.
    MissingFile {
        /// The model whose reference dangles.
        model: SavedModelId,
        /// The missing blob.
        id: FileId,
        /// What the file was (weights, code, dataset container, ...).
        role: String,
    },
    /// A weights blob that cannot be read or parsed back into state
    /// entries — the signature of a truncated write.
    CorruptBlob {
        /// The model owning the blob.
        model: SavedModelId,
        /// The damaged blob.
        id: FileId,
        /// Read or parse error text.
        detail: String,
    },
    /// A re-hashed layer disagrees with the stored Merkle leaf — the
    /// signature of a bit flip.
    HashMismatch {
        /// The model whose weights mismatch.
        model: SavedModelId,
        /// The offending layer path (with detail when structural).
        layer: String,
    },
    /// The stored Merkle tree's root disagrees with the model document's
    /// recorded `root_hash`.
    RootHashMismatch {
        /// The inconsistent model.
        model: SavedModelId,
    },
    /// A lineage record describing a model that does not exist (the model
    /// was removed without its record, or the record survived a crash the
    /// model did not).
    OrphanLineage {
        /// The lineage document.
        id: DocId,
        /// The model id the record claims to describe.
        model: String,
    },
    /// A lineage record whose `parent` reference is not a saved model —
    /// the ancestry edge dangles.
    DanglingLineageParent {
        /// The lineage document.
        id: DocId,
        /// The model the record describes.
        model: String,
        /// The unresolvable parent reference.
        parent: String,
    },
    /// A document no saved model reaches.
    OrphanDoc {
        /// The unreferenced document.
        id: DocId,
        /// Its document kind.
        kind: String,
    },
    /// A blob no saved model reaches.
    OrphanFile {
        /// The unreferenced blob.
        id: FileId,
    },
}

impl std::fmt::Display for FsckIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsckIssue::LeftoverTmp { path } => {
                write!(f, "leftover tmp file {}", path.display())
            }
            FsckIssue::CorruptDoc { id, detail } => {
                write!(f, "corrupt document {id}: {detail}")
            }
            FsckIssue::BadModelDoc { id, reason } => {
                write!(f, "bad model document {id}: {reason}")
            }
            FsckIssue::MissingDoc { model, id, role } => {
                write!(f, "model {model}: missing {role} document {id}")
            }
            FsckIssue::MissingFile { model, id, role } => {
                write!(f, "model {model}: missing {role} file {id}")
            }
            FsckIssue::CorruptBlob { model, id, detail } => {
                write!(f, "model {model}: corrupt blob {id}: {detail}")
            }
            FsckIssue::HashMismatch { model, layer } => {
                write!(f, "model {model}: layer hash mismatch at {layer}")
            }
            FsckIssue::RootHashMismatch { model } => {
                write!(f, "model {model}: merkle root does not match recorded root_hash")
            }
            FsckIssue::OrphanLineage { id, model } => {
                write!(f, "lineage record {id} describes missing model {model}")
            }
            FsckIssue::DanglingLineageParent { id, model, parent } => {
                write!(f, "lineage record {id} of model {model}: parent {parent} does not exist")
            }
            FsckIssue::OrphanDoc { id, kind } => {
                write!(f, "orphan document {id} (kind {kind:?})")
            }
            FsckIssue::OrphanFile { id } => write!(f, "orphan file {id}"),
        }
    }
}

/// Result of an [`fsck`] pass.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Inconsistencies found, in scan order.
    pub issues: Vec<FsckIssue>,
    /// Saved models whose references and hashes were checked.
    pub models_checked: usize,
    /// Documents visited.
    pub docs_seen: usize,
    /// Blobs visited.
    pub files_seen: usize,
    /// Destination paths of entries moved to quarantine (repair mode).
    pub quarantined: Vec<PathBuf>,
}

impl FsckReport {
    /// True when no inconsistency was found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} model(s), {} document(s), {} file(s): {}",
            self.models_checked,
            self.docs_seen,
            self.files_seen,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} issue(s)", self.issues.len())
            }
        )?;
        if !self.quarantined.is_empty() {
            write!(f, ", {} entr(ies) quarantined", self.quarantined.len())?;
        }
        Ok(())
    }
}

/// Per-layer digests of a parsed state dict, grouped exactly like
/// [`crate::merkle::model_layer_hashes`] groups a live model's entries —
/// so a weights blob can be verified against its Merkle tree without
/// constructing a [`mmlib_model::Model`].
fn entry_layer_hashes(entries: &[(String, Tensor)]) -> Vec<(String, Digest)> {
    let mut out: Vec<(String, Digest)> = Vec::new();
    let mut current: Option<(String, Sha256)> = None;
    for (path, tensor) in entries {
        let (layer, name) = path.rsplit_once('.').unwrap_or(("", path.as_str()));
        match &mut current {
            Some((cur_layer, h)) if cur_layer.as_str() == layer => {
                h.update(name.as_bytes());
                h.update(&hash_tensor(tensor).0);
            }
            _ => {
                if let Some((l, h)) = current.take() {
                    out.push((l, h.finalize()));
                }
                let mut h = Sha256::new();
                h.update(name.as_bytes());
                h.update(&hash_tensor(tensor).0);
                current = Some((layer.to_string(), h));
            }
        }
    }
    if let Some((l, h)) = current.take() {
        out.push((l, h.finalize()));
    }
    out
}

struct Checker<'a> {
    storage: &'a ModelStorage,
    opts: &'a FsckOptions,
    local: bool,
    report: FsckReport,
    /// Documents by id (only those that read and parsed).
    docs: BTreeMap<String, Document>,
    /// Ids of documents already reported as corrupt (skip orphan pass).
    corrupt_docs: BTreeSet<String>,
    file_set: BTreeSet<String>,
    reachable_docs: BTreeSet<String>,
    reachable_files: BTreeSet<String>,
}

/// Checks a store's documents and blobs for semantic consistency; see the
/// module docs for the checks performed.
pub fn fsck(storage: &ModelStorage, opts: &FsckOptions) -> Result<FsckReport, CoreError> {
    let mut c = Checker {
        storage,
        opts,
        local: store_fsck::is_local_root(storage.root()),
        report: FsckReport::default(),
        docs: BTreeMap::new(),
        corrupt_docs: BTreeSet::new(),
        file_set: BTreeSet::new(),
        reachable_docs: BTreeSet::new(),
        reachable_files: BTreeSet::new(),
    };
    c.physical_scan()?;
    c.load_documents()?;
    let models = c.decode_model_infos();
    for (id, info) in &models {
        c.check_model(id, info)?;
    }
    c.report.models_checked = models.len();
    c.lineage_pass(&models)?;
    c.orphan_pass()?;
    Ok(c.report)
}

impl Checker<'_> {
    /// Physical filesystem scan (local roots only): tmp leftovers and
    /// damaged document files, quarantined straight away in repair mode.
    fn physical_scan(&mut self) -> Result<(), CoreError> {
        if !self.local {
            return Ok(());
        }
        let root = self.storage.root();
        for issue in store_fsck::scan_local(root)?.issues {
            match issue {
                ScanIssue::LeftoverTmp { path } => {
                    if self.opts.repair {
                        self.report.quarantined.push(store_fsck::quarantine(root, &path)?);
                    }
                    self.report.issues.push(FsckIssue::LeftoverTmp { path });
                }
                ScanIssue::UnparsableDoc { id, error } => {
                    self.quarantine_doc(&id)?;
                    self.corrupt_docs.insert(id.as_str().to_string());
                    self.report.issues.push(FsckIssue::CorruptDoc { id, detail: error });
                }
                ScanIssue::DocIdMismatch { id, embedded } => {
                    self.quarantine_doc(&id)?;
                    self.corrupt_docs.insert(id.as_str().to_string());
                    self.report.issues.push(FsckIssue::CorruptDoc {
                        id,
                        detail: format!("embedded id {embedded:?} does not match filename"),
                    });
                }
            }
        }
        Ok(())
    }

    fn quarantine_doc(&mut self, id: &DocId) -> Result<(), CoreError> {
        if self.opts.repair && self.local {
            self.report.quarantined.push(store_fsck::quarantine_doc(self.storage.root(), id)?);
        }
        Ok(())
    }

    fn quarantine_file(&mut self, id: &FileId) -> Result<(), CoreError> {
        if self.opts.repair && self.local {
            self.report.quarantined.push(store_fsck::quarantine_file(self.storage.root(), id)?);
        }
        Ok(())
    }

    /// Reads every document and lists every blob. Read failures (the only
    /// corruption signal available through a remote backend) are recorded
    /// as [`FsckIssue::CorruptDoc`].
    fn load_documents(&mut self) -> Result<(), CoreError> {
        for id in self.storage.docs().ids()? {
            self.report.docs_seen += 1;
            if self.corrupt_docs.contains(id.as_str()) {
                continue;
            }
            match self.storage.get_doc(&id) {
                Ok(doc) => {
                    self.docs.insert(id.as_str().to_string(), doc);
                }
                Err(e) => {
                    self.corrupt_docs.insert(id.as_str().to_string());
                    self.report
                        .issues
                        .push(FsckIssue::CorruptDoc { id, detail: e.to_string() });
                }
            }
        }
        for id in self.storage.files().ids()? {
            self.report.files_seen += 1;
            self.file_set.insert(id.as_str().to_string());
        }
        Ok(())
    }

    fn decode_model_infos(&mut self) -> Vec<(SavedModelId, ModelInfoDoc)> {
        let mut models = Vec::new();
        for (id, doc) in &self.docs {
            if doc.kind != kinds::MODEL_INFO {
                continue;
            }
            self.reachable_docs.insert(id.clone());
            let sid = SavedModelId(DocId::from_string(id.clone()));
            match serde_json::from_value::<ModelInfoDoc>(doc.body.clone()) {
                Ok(info) => models.push((sid, info)),
                Err(e) => self.report.issues.push(FsckIssue::BadModelDoc {
                    id: sid,
                    reason: format!("undecodable body: {e}"),
                }),
            }
        }
        models
    }

    /// Resolves every reference of one saved model, then re-verifies its
    /// hashes if requested.
    fn check_model(&mut self, sid: &SavedModelId, info: &ModelInfoDoc) -> Result<(), CoreError> {
        let mut need_docs: Vec<(String, &str)> = vec![
            (info.environment_doc.clone(), "environment"),
            (info.layer_hash_doc.clone(), "layer-hash"),
        ];
        if let Some(base) = &info.base_model {
            need_docs.push((base.clone(), "base-model"));
        }
        for (id, role) in need_docs {
            self.require_doc(sid, &id, role);
        }
        if let Some(train) = &info.train_doc {
            self.walk_wrapper_closure(sid, train);
        }

        let mut need_files: Vec<(String, &str)> = Vec::new();
        if let Some(f) = &info.code_file {
            need_files.push((f.clone(), "architecture-code"));
        }
        if let Some(f) = &info.weights_file {
            need_files.push((f.clone(), "weights"));
        }
        if let Some(ds) = &info.dataset {
            if let Some(f) = &ds.container_file {
                need_files.push((f.clone(), "dataset-container"));
            }
        }
        for (id, role) in need_files {
            self.require_file(sid, &id, role);
        }

        if self.opts.verify_hashes {
            self.verify_hashes(sid, info)?;
        }
        Ok(())
    }

    fn require_doc(&mut self, sid: &SavedModelId, id: &str, role: &str) {
        self.reachable_docs.insert(id.to_string());
        if !self.docs.contains_key(id) {
            self.report.issues.push(FsckIssue::MissingDoc {
                model: sid.clone(),
                id: DocId::from_string(id.to_string()),
                role: role.to_string(),
            });
        }
    }

    fn require_file(&mut self, sid: &SavedModelId, id: &str, role: &str) {
        self.reachable_files.insert(id.to_string());
        if !self.file_set.contains(id) {
            self.report.issues.push(FsckIssue::MissingFile {
                model: sid.clone(),
                id: FileId::from_string(id.to_string()),
                role: role.to_string(),
            });
        }
    }

    /// Marks the wrapper tree of a provenance save reachable: the train
    /// wrapper, everything its `ref_args` reach transitively, and every
    /// wrapper's captured `state_file` blob.
    fn walk_wrapper_closure(&mut self, sid: &SavedModelId, train_doc: &str) {
        let mut queue = vec![train_doc.to_string()];
        while let Some(wid) = queue.pop() {
            if !self.reachable_docs.insert(wid.clone()) {
                continue; // already visited
            }
            let Some(doc) = self.docs.get(&wid) else {
                self.report.issues.push(FsckIssue::MissingDoc {
                    model: sid.clone(),
                    id: DocId::from_string(wid),
                    role: "wrapper".to_string(),
                });
                continue;
            };
            if let Some(refs) = doc.body["ref_args"].as_object() {
                queue.extend(refs.values().filter_map(|v| v.as_str().map(str::to_string)));
            }
            if let Some(state) = doc.body["state_file"].as_str().map(str::to_string) {
                self.require_file(sid, &state, "wrapper-state");
            }
        }
    }

    /// Re-verifies one model's Merkle tree: stored root vs recorded
    /// `root_hash`, and (for state-dict weights) re-parsed, re-hashed
    /// layers vs the stored leaves.
    fn verify_hashes(&mut self, sid: &SavedModelId, info: &ModelInfoDoc) -> Result<(), CoreError> {
        let Some(tree_doc) = self.docs.get(&info.layer_hash_doc) else {
            return Ok(()); // dangling reference already reported
        };
        let tree: MerkleTree = match serde_json::from_value(tree_doc.body.clone()) {
            Ok(t) => t,
            Err(e) => {
                self.report.issues.push(FsckIssue::BadModelDoc {
                    id: sid.clone(),
                    reason: format!("undecodable layer-hash tree: {e}"),
                });
                return Ok(());
            }
        };
        if tree.root().to_hex() != info.root_hash {
            self.report.issues.push(FsckIssue::RootHashMismatch { model: sid.clone() });
        }

        let Some(weights) = &info.weights_file else { return Ok(()) };
        if !self.file_set.contains(weights) {
            return Ok(()); // missing file already reported
        }
        match info.update_encoding.as_deref() {
            None | Some("state_dict") => {}
            // Compressed deltas need the base chain to decode; their
            // readability was established by the file listing.
            Some(_) => return Ok(()),
        }
        let fid = FileId::from_string(weights.clone());
        let bytes = match self.storage.get_file(&fid) {
            Ok(b) => b,
            Err(e) => {
                self.quarantine_file(&fid)?;
                self.report.issues.push(FsckIssue::CorruptBlob {
                    model: sid.clone(),
                    id: fid,
                    detail: e.to_string(),
                });
                return Ok(());
            }
        };
        let entries = match state_from_bytes(&bytes) {
            Ok(entries) => entries,
            Err(e) => {
                self.quarantine_file(&fid)?;
                self.report.issues.push(FsckIssue::CorruptBlob {
                    model: sid.clone(),
                    id: fid,
                    detail: e.to_string(),
                });
                return Ok(());
            }
        };

        let computed = entry_layer_hashes(&entries);
        match info.approach {
            // A baseline snapshot is the whole model: its layer hashes must
            // reproduce the stored leaves exactly, paths and order included.
            ApproachKind::Baseline => {
                let leaves: Vec<(&str, &Digest)> = tree.leaves().collect();
                if leaves.len() != computed.len() {
                    self.report.issues.push(FsckIssue::HashMismatch {
                        model: sid.clone(),
                        layer: format!(
                            "(structure: {} stored leaves vs {} in blob)",
                            leaves.len(),
                            computed.len()
                        ),
                    });
                    return Ok(());
                }
                for ((lpath, ldigest), (cpath, cdigest)) in leaves.iter().zip(&computed) {
                    if *lpath != cpath.as_str() || **ldigest != *cdigest {
                        self.report.issues.push(FsckIssue::HashMismatch {
                            model: sid.clone(),
                            layer: cpath.clone(),
                        });
                    }
                }
            }
            // A parameter update holds only the changed layers; each must
            // hash to that layer's leaf in the derived model's tree.
            ApproachKind::ParamUpdate => {
                for (path, digest) in &computed {
                    match tree.leaf(path) {
                        Some(d) if d == digest => {}
                        Some(_) => self.report.issues.push(FsckIssue::HashMismatch {
                            model: sid.clone(),
                            layer: path.clone(),
                        }),
                        None => self.report.issues.push(FsckIssue::HashMismatch {
                            model: sid.clone(),
                            layer: format!("{path} (layer not in tree)"),
                        }),
                    }
                }
            }
            // Provenance saves store no weights blob; nothing to re-hash.
            ApproachKind::Provenance => {}
        }
        Ok(())
    }

    /// Walks the lineage edges: every `lineage` document must describe an
    /// existing model, and its `parent` reference (the live ancestry edge)
    /// must resolve to a saved model. Violations are quarantined in repair
    /// mode — a lineage record is derived metadata; removing it never
    /// affects recoverability. `rebased_from` is historical provenance of
    /// compaction and is deliberately *not* treated as an edge: compaction
    /// exists precisely so the old base can be collected.
    fn lineage_pass(
        &mut self,
        models: &[(SavedModelId, ModelInfoDoc)],
    ) -> Result<(), CoreError> {
        let model_ids: BTreeSet<&str> =
            models.iter().map(|(id, _)| id.doc_id().as_str()).collect();
        let lineage: Vec<(String, serde_json::Value)> = self
            .docs
            .iter()
            .filter(|(_, doc)| doc.kind == kinds::LINEAGE)
            .map(|(id, doc)| (id.clone(), doc.body.clone()))
            .collect();
        for (id, body) in lineage {
            // Marked reachable either way: the issues below are more
            // specific than a generic orphan report.
            self.reachable_docs.insert(id.clone());
            let doc_id = DocId::from_string(id);
            let model = body["model"].as_str().unwrap_or("").to_string();
            if !model_ids.contains(model.as_str()) {
                self.quarantine_doc(&doc_id)?;
                self.report.issues.push(FsckIssue::OrphanLineage { id: doc_id, model });
                continue;
            }
            if let Some(parent) = body["parent"].as_str() {
                if !model_ids.contains(parent) {
                    self.quarantine_doc(&doc_id)?;
                    self.report.issues.push(FsckIssue::DanglingLineageParent {
                        id: doc_id,
                        model,
                        parent: parent.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Reports (and in repair mode quarantines) every document and blob no
    /// saved model reaches.
    fn orphan_pass(&mut self) -> Result<(), CoreError> {
        let orphan_docs: Vec<String> = self
            .docs
            .keys()
            .filter(|id| !self.reachable_docs.contains(*id))
            .cloned()
            .collect();
        for id in orphan_docs {
            let kind = self.docs[&id].kind.clone();
            let doc_id = DocId::from_string(id);
            self.quarantine_doc(&doc_id)?;
            self.report.issues.push(FsckIssue::OrphanDoc { id: doc_id, kind });
        }
        let orphan_files: Vec<String> = self
            .file_set
            .iter()
            .filter(|id| !self.reachable_files.contains(*id))
            .cloned()
            .collect();
        for id in orphan_files {
            let file_id = FileId::from_string(id);
            self.quarantine_file(&file_id)?;
            self.report.issues.push(FsckIssue::OrphanFile { id: file_id });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::SaveService;
    use mmlib_model::{ArchId, Model};

    fn service(dir: &std::path::Path) -> SaveService {
        SaveService::new(ModelStorage::open(dir).unwrap())
    }

    fn saved_info(svc: &SaveService, id: &SavedModelId) -> ModelInfoDoc {
        let doc = svc.storage().get_doc(id.doc_id()).unwrap();
        serde_json::from_value(doc.body).unwrap()
    }

    #[test]
    fn clean_store_is_clean() {
        let dir = tempfile::tempdir().unwrap();
        let svc = service(dir.path());
        let model = Model::new_initialized(ArchId::TinyCnn, 7);
        svc.save_full(&model, None, "initial").unwrap();
        let report = fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(report.is_clean(), "unexpected issues: {:?}", report.issues);
        assert_eq!(report.models_checked, 1);
        assert!(report.docs_seen >= 3, "model info + environment + layer hashes");
    }

    #[test]
    fn truncated_weights_blob_is_detected_and_quarantined() {
        let dir = tempfile::tempdir().unwrap();
        let svc = service(dir.path());
        let model = Model::new_initialized(ArchId::TinyCnn, 7);
        let id = svc.save_full(&model, None, "initial").unwrap();
        let weights = saved_info(&svc, &id).weights_file.unwrap();

        let path = dir.path().join("files").join(format!("{weights}.bin"));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let report = fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(
            report.issues.iter().any(|i| matches!(i, FsckIssue::CorruptBlob { .. })),
            "truncation not detected: {:?}",
            report.issues
        );

        let repaired =
            fsck(svc.storage(), &FsckOptions { repair: true, ..Default::default() }).unwrap();
        assert!(!repaired.quarantined.is_empty());
        assert!(!path.exists(), "corrupt blob must be quarantined");
    }

    #[test]
    fn bit_flip_in_weights_is_detected_via_merkle_leaves() {
        let dir = tempfile::tempdir().unwrap();
        let svc = service(dir.path());
        let model = Model::new_initialized(ArchId::TinyCnn, 7);
        let id = svc.save_full(&model, None, "initial").unwrap();
        let weights = saved_info(&svc, &id).weights_file.unwrap();

        let path = dir.path().join("files").join(format!("{weights}.bin"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let report = fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(
            report.issues.iter().any(|i| matches!(
                i,
                FsckIssue::HashMismatch { .. } | FsckIssue::CorruptBlob { .. }
            )),
            "bit flip not detected: {:?}",
            report.issues
        );
    }

    #[test]
    fn bit_flipped_root_hash_is_detected() {
        let dir = tempfile::tempdir().unwrap();
        let svc = service(dir.path());
        let model = Model::new_initialized(ArchId::TinyCnn, 7);
        let id = svc.save_full(&model, None, "initial").unwrap();

        let mut info = saved_info(&svc, &id);
        let mut root = info.root_hash.into_bytes();
        root[0] = if root[0] == b'0' { b'1' } else { b'0' };
        info.root_hash = String::from_utf8(root).unwrap();
        let body = serde_json::to_value(&info).unwrap();
        svc.storage().docs().update(id.doc_id(), body).unwrap();

        let report = fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(
            report.issues.iter().any(|i| matches!(i, FsckIssue::RootHashMismatch { .. })),
            "root mismatch not detected: {:?}",
            report.issues
        );
    }

    #[test]
    fn orphans_and_missing_references_are_reported() {
        let dir = tempfile::tempdir().unwrap();
        let svc = service(dir.path());
        let model = Model::new_initialized(ArchId::TinyCnn, 7);
        let id = svc.save_full(&model, None, "initial").unwrap();

        // An orphan blob and an orphan document nothing references.
        let orphan_file = svc.storage().put_file(b"stray bytes").unwrap();
        let orphan_doc = svc
            .storage()
            .insert_doc(kinds::WRAPPER, serde_json::json!({"class_name": "stray"}))
            .unwrap();
        // A dangling reference: delete the environment document.
        let env = saved_info(&svc, &id).environment_doc;
        svc.storage().docs().remove(&DocId::from_string(env)).unwrap();

        let report = fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::OrphanFile { id } if *id == orphan_file)));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::OrphanDoc { id, .. } if *id == orphan_doc)));
        assert!(report.issues.iter().any(
            |i| matches!(i, FsckIssue::MissingDoc { role, .. } if role == "environment")
        ));

        // Repair quarantines the orphans; the dangling reference remains
        // reported (fsck cannot invent a lost document).
        let repaired =
            fsck(svc.storage(), &FsckOptions { repair: true, ..Default::default() }).unwrap();
        assert_eq!(repaired.quarantined.len(), 2);
        let after =
            fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(after.issues.iter().all(|i| matches!(i, FsckIssue::MissingDoc { .. })));
    }

    /// The lineage document describing `id`, found by scan.
    fn lineage_doc_of(svc: &SaveService, id: &SavedModelId) -> DocId {
        svc.storage()
            .docs()
            .ids()
            .unwrap()
            .into_iter()
            .find(|d| {
                let doc = svc.storage().get_doc(d).unwrap();
                doc.kind == kinds::LINEAGE && doc.body["model"] == id.doc_id().as_str()
            })
            .unwrap()
    }

    #[test]
    fn orphaned_lineage_record_is_reported_and_quarantined() {
        let dir = tempfile::tempdir().unwrap();
        let svc = service(dir.path());
        let model = Model::new_initialized(ArchId::TinyCnn, 7);
        let id = svc.save_full(&model, None, "initial").unwrap();

        // Remove the model doc but leave its lineage record behind.
        let lineage = lineage_doc_of(&svc, &id);
        svc.storage().docs().remove(id.doc_id()).unwrap();

        let report = fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(
            report
                .issues
                .iter()
                .any(|i| matches!(i, FsckIssue::OrphanLineage { id, .. } if *id == lineage)),
            "orphaned lineage not reported: {:?}",
            report.issues
        );
        let repaired =
            fsck(svc.storage(), &FsckOptions { repair: true, ..Default::default() }).unwrap();
        assert!(!repaired.quarantined.is_empty());
        let after = fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(
            !after.issues.iter().any(|i| matches!(i, FsckIssue::OrphanLineage { .. })),
            "quarantine must clear the orphaned record: {:?}",
            after.issues
        );
    }

    #[test]
    fn dangling_lineage_parent_is_reported_and_quarantined() {
        let dir = tempfile::tempdir().unwrap();
        let svc = service(dir.path());
        let model = Model::new_initialized(ArchId::TinyCnn, 7);
        let id = svc.save_full(&model, None, "initial").unwrap();

        // Rewrite the lineage record to claim a parent that was never saved.
        let lineage = lineage_doc_of(&svc, &id);
        let mut body = svc.storage().get_doc(&lineage).unwrap().body;
        body["parent"] = serde_json::json!("model-that-never-was");
        svc.storage().docs().update(&lineage, body).unwrap();

        let report = fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(
            report.issues.iter().any(|i| matches!(
                i,
                FsckIssue::DanglingLineageParent { parent, .. } if parent == "model-that-never-was"
            )),
            "dangling parent not reported: {:?}",
            report.issues
        );
        fsck(svc.storage(), &FsckOptions { repair: true, ..Default::default() }).unwrap();
        let after = fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(after.is_clean(), "store dirty after repair: {:?}", after.issues);
    }

    #[test]
    fn param_update_save_verifies_clean() {
        let dir = tempfile::tempdir().unwrap();
        let svc = service(dir.path());
        let base = Model::new_initialized(ArchId::TinyCnn, 7);
        let base_id = svc.save_full(&base, None, "initial").unwrap();
        let mut derived = base.duplicate();
        derived.set_classifier_only_trainable();
        derived.visit_trainable_mut(&mut |_, param, _| param.data_mut()[0] += 0.5);
        svc.save_update(&derived, &base_id, "partially_updated").unwrap();

        let report = fsck(svc.storage(), &FsckOptions::default()).unwrap();
        assert!(report.is_clean(), "unexpected issues: {:?}", report.issues);
        assert_eq!(report.models_checked, 2);
    }
}
