//! The model-verification probing tool (paper §2.4).
//!
//! "Our probing tool executes a given PyTorch model twice using the same
//! data to compare layer-wise the input and output tensors for the forward
//! and backward pass. These intermediate results can be saved and loaded
//! which enables us to also verify the model reproducibility across
//! different machines."
//!
//! The Rust reproduction records, per probe execution: every parameterized
//! layer's forward output (via a [`mmlib_model::module::ForwardTap`]), the
//! logits, the loss, and every layer's parameter gradients after the
//! backward pass — the layer-wise forward *and* backward comparison of the
//! paper. Reports serialize to JSON so a report produced on one machine can
//! be checked on another.

use mmlib_data::Batch;
use mmlib_model::module::ForwardTap;
use mmlib_model::{Ctx, Model};
use mmlib_tensor::hash::hash_tensor;
use mmlib_tensor::{ExecMode, Pcg32};
use mmlib_train::cross_entropy;
use serde::{Deserialize, Serialize};

/// One recorded intermediate result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// Namespaced name (`"forward.logits"`, `"backward.<layer>.<param>"`).
    pub name: String,
    /// SHA-256 digest (hex) of the tensor, or the bit pattern for scalars.
    pub digest: String,
}

/// A full probe execution trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeReport {
    /// Architecture probed.
    pub arch: String,
    /// Execution mode used.
    pub mode: ExecMode,
    /// The recorded intermediates, in execution order.
    pub records: Vec<ProbeRecord>,
}

/// Result of comparing two probe reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeComparison {
    /// True when every record matches.
    pub reproducible: bool,
    /// Name of the first diverging record, if any.
    pub first_divergence: Option<String>,
    /// Total records compared.
    pub compared: usize,
}

impl ProbeReport {
    /// Executes one probe run: forward + loss + backward on `batch`, with
    /// dropout seeded by `seed`. The model's parameters and gradients are
    /// restored afterwards, so probing is side-effect free.
    pub fn run(model: &mut Model, batch: &Batch, seed: u64, mode: ExecMode) -> ProbeReport {
        let saved_state = model.state_dict();
        let mut records = Vec::new();

        let mut rng = Pcg32::new(seed, 0x70726f62); // "prob"
        // Layer-wise forward records via the module tap.
        let mut forward_records: Vec<ProbeRecord> = Vec::new();
        let mut sink = |path: &str, t: &mmlib_tensor::Tensor| {
            forward_records.push(ProbeRecord {
                name: format!("forward.{path}"),
                digest: hash_tensor(t).to_hex(),
            });
        };
        let mut ctx = Ctx::train(&mut rng, mode).with_tap(ForwardTap::new(&mut sink));
        model.zero_grad();
        let logits = model.forward(batch.images.clone(), &mut ctx);
        drop(ctx);
        records.append(&mut forward_records);
        let mut ctx = Ctx::train(&mut rng, mode);
        records.push(ProbeRecord {
            name: "forward.logits".into(),
            digest: hash_tensor(&logits).to_hex(),
        });
        let (loss, grad) = cross_entropy(&logits, &batch.labels);
        records.push(ProbeRecord { name: "loss".into(), digest: format!("{:08x}", loss.to_bits()) });
        model.backward(grad, &mut ctx);
        model.visit_trainable_mut(&mut |path, _, grad| {
            records.push(ProbeRecord {
                name: format!("backward.{path}"),
                digest: hash_tensor(grad).to_hex(),
            });
        });

        model.zero_grad();
        // mmlib-lint: allow(P1, restoring a state dict captured from this same model cannot mismatch)
        model.load_state_dict(&saved_state).expect("restoring the probed model's own state");
        ProbeReport { arch: model.arch.name().to_string(), mode, records }
    }

    /// Compares two reports record by record.
    pub fn compare(&self, other: &ProbeReport) -> ProbeComparison {
        let mut first = None;
        let compared = self.records.len().max(other.records.len());
        if self.arch != other.arch || self.records.len() != other.records.len() {
            return ProbeComparison {
                reproducible: false,
                first_divergence: Some("<structure>".into()),
                compared,
            };
        }
        for (a, b) in self.records.iter().zip(&other.records) {
            if a != b {
                first = Some(a.name.clone());
                break;
            }
        }
        ProbeComparison { reproducible: first.is_none(), first_divergence: first, compared }
    }

    /// Serializes the report (to ship across machines).
    pub fn to_bytes(&self) -> Vec<u8> {
        // mmlib-lint: allow(P1, ProbeReport is strings and vecs; serialization is infallible and the API is fixed)
        serde_json::to_vec_pretty(self).expect("ProbeReport serializes")
    }

    /// Deserializes a report written by [`ProbeReport::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ProbeReport, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

/// Probes whether `model` is reproducible under `mode`: executes it twice on
/// the same data and compares all intermediate results.
pub fn probe_reproducibility(
    model: &mut Model,
    batch: &Batch,
    seed: u64,
    mode: ExecMode,
) -> ProbeComparison {
    let a = ProbeReport::run(model, batch, seed, mode);
    let b = ProbeReport::run(model, batch, seed, mode);
    a.compare(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_data::loader::LoaderConfig;
    use mmlib_data::{DataLoader, Dataset, DatasetId};
    use mmlib_model::ArchId;

    fn batch() -> Batch {
        let loader = DataLoader::new(
            Dataset::new(DatasetId::CocoOutdoor512, 0.0002),
            LoaderConfig { batch_size: 4, resolution: 32, max_images: Some(4), ..Default::default() },
        );
        loader.batch(0, 0).unwrap()
    }

    #[test]
    fn deterministic_mode_is_reproducible() {
        let mut model = Model::new_initialized(ArchId::ResNet18, 1);
        model.set_fully_trainable();
        let cmp = probe_reproducibility(&mut model, &batch(), 5, ExecMode::Deterministic);
        assert!(cmp.reproducible, "diverged at {:?}", cmp.first_divergence);
        assert!(cmp.compared > 40, "expected layer-wise records, got {}", cmp.compared);
    }

    #[test]
    fn parallel_mode_is_detected_as_non_reproducible() {
        let mut model = Model::new_initialized(ArchId::ResNet18, 2);
        model.set_fully_trainable();
        // Run a few probes: scheduling nondeterminism is probabilistic, but
        // over full backward passes of a ResNet the chance of two bit-equal
        // runs is negligible; allow a couple of attempts to be safe.
        let b = batch();
        let diverged = (0..3).any(|i| {
            !probe_reproducibility(&mut model, &b, 100 + i, ExecMode::Parallel).reproducible
        });
        assert!(diverged, "parallel mode unexpectedly reproduced bit-identically");
    }

    #[test]
    fn forward_records_are_layer_wise() {
        let mut model = Model::new_initialized(ArchId::ResNet18, 6);
        model.set_fully_trainable();
        let report = ProbeReport::run(&mut model, &batch(), 3, ExecMode::Deterministic);
        let forwards: Vec<&str> = report
            .records
            .iter()
            .filter(|r| r.name.starts_with("forward."))
            .map(|r| r.name.as_str())
            .collect();
        // One record per parameterized leaf + the logits.
        assert_eq!(forwards.len(), model.layers().len() + 1);
        assert_eq!(forwards[0], "forward.conv1");
        assert_eq!(forwards[1], "forward.bn1");
        assert!(forwards.contains(&"forward.layer1.0.body.conv1"));
        assert_eq!(*forwards.last().unwrap(), "forward.logits");
    }

    #[test]
    fn probing_is_side_effect_free() {
        let mut model = Model::new_initialized(ArchId::ResNet18, 3);
        model.set_fully_trainable();
        let before = model.state_dict();
        let _ = ProbeReport::run(&mut model, &batch(), 7, ExecMode::Deterministic);
        let after = model.state_dict();
        for ((p, a), (_, b)) in before.iter().zip(&after) {
            assert!(a.bit_eq(b), "{p} perturbed by probing");
        }
    }

    #[test]
    fn reports_round_trip_across_machines() {
        let mut model = Model::new_initialized(ArchId::ResNet18, 4);
        model.set_fully_trainable();
        let b = batch();
        let report = ProbeReport::run(&mut model, &b, 9, ExecMode::Deterministic);
        let shipped = ProbeReport::from_bytes(&report.to_bytes()).unwrap();
        // "Another machine" reruns and compares against the shipped report.
        let rerun = ProbeReport::run(&mut model, &b, 9, ExecMode::Deterministic);
        assert!(shipped.compare(&rerun).reproducible);
    }

    #[test]
    fn structure_mismatch_is_flagged() {
        let mut m18 = Model::new_initialized(ArchId::ResNet18, 5);
        m18.set_fully_trainable();
        let mut m50 = Model::new_initialized(ArchId::ResNet50, 5);
        m50.set_fully_trainable();
        let b = batch();
        let a = ProbeReport::run(&mut m18, &b, 1, ExecMode::Deterministic);
        let c = ProbeReport::run(&mut m50, &b, 1, ExecMode::Deterministic);
        let cmp = a.compare(&c);
        assert!(!cmp.reproducible);
        assert_eq!(cmp.first_divergence.as_deref(), Some("<structure>"));
    }
}
