//! Merkle tree over per-layer parameter hashes (paper §3.2, Fig. 4).
//!
//! The parameter-update approach must find which layers of a derived model
//! changed relative to its base *without* recovering the base's parameters.
//! Every save therefore stores the model's per-layer hashes organized as a
//! Merkle tree; comparing two trees finds the changed layers with far fewer
//! hash comparisons than the naive layer-by-layer scan once models get deep
//! (the paper's example: 8 layers → 7 comparisons, 64 → 13, 128 → 15 when
//! the last two layers changed).

use mmlib_model::Model;
use mmlib_tensor::hash::{hash_pair, hash_tensor, Digest, Sha256};
use serde::{Deserialize, Serialize};

/// A Merkle tree over an ordered list of `(layer_path, digest)` leaves.
///
/// Interior levels pair adjacent nodes; an odd trailing node is carried up
/// unchanged. The root commits to every layer's parameters *and* the layer
/// order, so equal roots ⇒ equal models (up to hash collision).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleTree {
    /// `levels[0]` = leaves (layer order), last level = `[root]`.
    levels: Vec<Vec<Digest>>,
    /// Layer paths, parallel to `levels[0]`.
    paths: Vec<String>,
}

/// Result of diffing two Merkle trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleDiff {
    /// Paths of layers whose hashes differ, in canonical order.
    pub changed: Vec<String>,
    /// Number of node-pair hash comparisons performed (the metric of the
    /// paper's Fig. 4).
    pub comparisons: u64,
}

/// The digest of one mmlib layer: the chained digest of the layer's state
/// entries (parameters and buffers) in canonical order.
pub fn layer_digest(entries: &[(&str, &mmlib_tensor::Tensor)]) -> Digest {
    let mut h = Sha256::new();
    for (name, tensor) in entries {
        h.update(name.as_bytes());
        h.update(&hash_tensor(tensor).0);
    }
    h.finalize()
}

/// Computes the per-entry digests for every state entry of a model, in
/// state-entry order, hashing tensors across the parallel worker pool.
///
/// Digests are byte-identical to serial `hash_tensor` calls (SHA-256 has no
/// combine order); parallelism only changes wall time.
pub fn model_entry_digests(model: &Model) -> (Vec<String>, Vec<Digest>) {
    let entries = model.state_entries();
    let tensors: Vec<&mmlib_tensor::Tensor> = entries.iter().map(|(_, t, _, _)| *t).collect();
    let digests = mmlib_tensor::hash_par::hash_tensors(&tensors);
    (entries.into_iter().map(|(path, _, _, _)| path).collect(), digests)
}

/// Folds per-entry digests into `(layer_path, digest)` leaves: consecutive
/// entries sharing a layer prefix (the path minus its final `.name`
/// component) chain into one [`Sha256`], exactly as [`layer_digest`] does.
pub fn layer_hashes_from_entries(paths: &[String], digests: &[Digest]) -> Vec<(String, Digest)> {
    let mut out: Vec<(String, Digest)> = Vec::new();
    let mut current: Option<(String, Sha256)> = None;
    for (path, digest) in paths.iter().zip(digests) {
        let (layer, name) = path.rsplit_once('.').unwrap_or(("", path.as_str()));
        match &mut current {
            Some((cur_layer, h)) if cur_layer.as_str() == layer => {
                h.update(name.as_bytes());
                h.update(&digest.0);
            }
            _ => {
                if let Some((l, h)) = current.take() {
                    out.push((l, h.finalize()));
                }
                let mut h = Sha256::new();
                h.update(name.as_bytes());
                h.update(&digest.0);
                current = Some((layer.to_string(), h));
            }
        }
    }
    if let Some((l, h)) = current.take() {
        out.push((l, h.finalize()));
    }
    out
}

/// Computes `(layer_path, digest)` for every layer of a model.
pub fn model_layer_hashes(model: &Model) -> Vec<(String, Digest)> {
    let (paths, digests) = model_entry_digests(model);
    layer_hashes_from_entries(&paths, &digests)
}

impl MerkleTree {
    /// Builds a tree from `(layer_path, digest)` leaves.
    ///
    /// # Panics
    /// Panics on an empty leaf list — a model always has layers.
    pub fn from_leaves(leaves: Vec<(String, Digest)>) -> MerkleTree {
        assert!(!leaves.is_empty(), "merkle tree needs at least one leaf");
        let (paths, level0): (Vec<String>, Vec<Digest>) = leaves.into_iter().unzip();
        let mut levels = vec![level0];
        loop {
            let next = match levels.last() {
                Some(prev) if prev.len() > 1 => {
                    let mut next = Vec::with_capacity(prev.len().div_ceil(2));
                    for pair in prev.chunks(2) {
                        match pair {
                            [a, b] => next.push(hash_pair(a, b)),
                            [a] => next.push(*a), // odd node carried up unchanged
                            _ => continue, // chunks(2) never yields other sizes
                        }
                    }
                    next
                }
                _ => break,
            };
            levels.push(next);
        }
        MerkleTree { levels, paths }
    }

    /// Builds the tree for a model's current parameters.
    pub fn from_model(model: &Model) -> MerkleTree {
        Self::from_leaves(model_layer_hashes(model))
    }

    /// Returns a copy of this tree with the given leaves replaced,
    /// recomputing only the root-ward interior nodes above changed leaves —
    /// the incremental splice behind the save-path hash cache.
    ///
    /// Byte-identical to `from_leaves` over the updated leaf list: interior
    /// recomputation follows the same pairing (`hash_pair` of adjacent
    /// nodes, odd trailing node carried up unchanged). Returns `None` when
    /// any update names a path that is not a leaf of this tree — an
    /// architecture change is a rebuild, not an update.
    pub fn update_leaves(&self, updates: &[(String, Digest)]) -> Option<MerkleTree> {
        let mut tree = self.clone();
        let mut dirty: Vec<usize> = Vec::with_capacity(updates.len());
        for (path, digest) in updates {
            let i = tree.paths.iter().position(|p| p == path)?;
            if tree.levels[0][i] != *digest {
                tree.levels[0][i] = *digest;
                dirty.push(i);
            }
        }
        dirty.sort_unstable();
        dirty.dedup();
        for level in 1..tree.levels.len() {
            let mut parents: Vec<usize> = dirty.iter().map(|i| i / 2).collect();
            parents.dedup();
            let (below, at) = {
                // Split-borrow the consecutive levels being read and written.
                let (lo, hi) = tree.levels.split_at_mut(level);
                (&lo[level - 1], &mut hi[0])
            };
            for &p in &parents {
                let left = p * 2;
                let right = left + 1;
                at[p] = if right < below.len() {
                    hash_pair(&below[left], &below[right])
                } else {
                    below[left] // odd node carried up unchanged
                };
            }
            dirty = parents;
        }
        Some(tree)
    }

    /// The root digest, committing to all layers.
    pub fn root(&self) -> Digest {
        // Construction guarantees at least one level holding one digest;
        // the zero digest covers the impossible empty shape without a panic.
        self.levels.last().and_then(|level| level.first()).copied().unwrap_or(Digest([0u8; 32]))
    }

    /// Number of leaves (layers).
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Leaf digests with their layer paths.
    pub fn leaves(&self) -> impl Iterator<Item = (&str, &Digest)> {
        self.paths.iter().map(|p| p.as_str()).zip(self.levels[0].iter())
    }

    /// The digest of the named layer, if present.
    pub fn leaf(&self, path: &str) -> Option<&Digest> {
        self.paths.iter().position(|p| p == path).map(|i| &self.levels[0][i])
    }

    /// Diffs two trees built over the same layer structure, returning the
    /// changed layer paths and the number of hash comparisons performed.
    ///
    /// Top-down walk: compare roots; recurse only into differing subtrees.
    /// This is the comparison-count saving of Fig. 4.
    ///
    /// # Panics
    /// Panics if the trees have different layer structures (an architecture
    /// change is not a parameter update).
    pub fn diff(&self, other: &MerkleTree) -> MerkleDiff {
        assert_eq!(self.paths, other.paths, "merkle diff requires identical layer structure");
        let mut comparisons = 0u64;
        let mut changed = Vec::new();
        let top = self.levels.len() - 1;
        // Recursive walk over (level, index).
        fn walk(
            a: &MerkleTree,
            b: &MerkleTree,
            level: usize,
            index: usize,
            comparisons: &mut u64,
            changed: &mut Vec<String>,
        ) {
            *comparisons += 1;
            if a.levels[level][index] == b.levels[level][index] {
                return;
            }
            if level == 0 {
                changed.push(a.paths[index].clone());
                return;
            }
            let child_level = level - 1;
            let left = index * 2;
            let right = left + 1;
            if right < a.levels[child_level].len() {
                walk(a, b, child_level, left, comparisons, changed);
                walk(a, b, child_level, right, comparisons, changed);
            } else {
                // Odd carried node: the parent IS the child; descend without
                // an extra comparison (the hash is literally the same value).
                *comparisons -= 1; // the recursive call below re-counts it
                walk(a, b, child_level, left, comparisons, changed);
            }
        }
        walk(self, other, top, 0, &mut comparisons, &mut changed);
        MerkleDiff { changed, comparisons }
    }

    /// The naive layer-by-layer diff used as the ablation baseline: always
    /// performs exactly `leaf_count` comparisons.
    pub fn diff_naive(&self, other: &MerkleTree) -> MerkleDiff {
        assert_eq!(self.paths, other.paths, "diff requires identical layer structure");
        let mut changed = Vec::new();
        for (i, path) in self.paths.iter().enumerate() {
            if self.levels[0][i] != other.levels[0][i] {
                changed.push(path.clone());
            }
        }
        MerkleDiff { changed, comparisons: self.paths.len() as u64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_tensor::hash::sha256;

    fn leaves(n: usize) -> Vec<(String, Digest)> {
        (0..n).map(|i| (format!("layer{i}"), sha256(format!("v{i}").as_bytes()))).collect()
    }

    fn with_changed(n: usize, changed: &[usize]) -> Vec<(String, Digest)> {
        (0..n)
            .map(|i| {
                let content = if changed.contains(&i) {
                    format!("changed{i}")
                } else {
                    format!("v{i}")
                };
                (format!("layer{i}"), sha256(content.as_bytes()))
            })
            .collect()
    }

    #[test]
    fn equal_trees_have_equal_roots_and_one_comparison() {
        let a = MerkleTree::from_leaves(leaves(8));
        let b = MerkleTree::from_leaves(leaves(8));
        assert_eq!(a.root(), b.root());
        let diff = a.diff(&b);
        assert!(diff.changed.is_empty());
        assert_eq!(diff.comparisons, 1, "equal models need only the root comparison");
    }

    #[test]
    fn paper_figure4_eight_layers_last_two_changed_needs_seven() {
        let a = MerkleTree::from_leaves(leaves(8));
        let b = MerkleTree::from_leaves(with_changed(8, &[6, 7]));
        let diff = a.diff(&b);
        assert_eq!(diff.changed, vec!["layer6", "layer7"]);
        assert_eq!(diff.comparisons, 7, "paper Fig. 4: 7 instead of 8 comparisons");
    }

    #[test]
    fn paper_sixty_four_layers_needs_thirteen() {
        let a = MerkleTree::from_leaves(leaves(64));
        let b = MerkleTree::from_leaves(with_changed(64, &[62, 63]));
        let diff = a.diff(&b);
        assert_eq!(diff.comparisons, 13, "paper §3.2: 64 layers → 13 comparisons");
        assert_eq!(diff.changed.len(), 2);
    }

    #[test]
    fn paper_one_hundred_twenty_eight_layers_needs_fifteen() {
        let a = MerkleTree::from_leaves(leaves(128));
        let b = MerkleTree::from_leaves(with_changed(128, &[126, 127]));
        let diff = a.diff(&b);
        assert_eq!(diff.comparisons, 15, "paper §3.2: 128 layers → 15 comparisons");
    }

    #[test]
    fn naive_diff_always_compares_all_leaves() {
        let a = MerkleTree::from_leaves(leaves(64));
        let b = MerkleTree::from_leaves(with_changed(64, &[62, 63]));
        let diff = a.diff_naive(&b);
        assert_eq!(diff.comparisons, 64);
        assert_eq!(diff.changed, a.diff(&b).changed);
    }

    #[test]
    fn odd_leaf_counts_work() {
        for n in [1usize, 3, 5, 7, 41, 127] {
            let a = MerkleTree::from_leaves(leaves(n));
            let b = MerkleTree::from_leaves(with_changed(n, &[n - 1]));
            let diff = a.diff(&b);
            assert_eq!(diff.changed, vec![format!("layer{}", n - 1)], "n={n}");
            assert_ne!(a.root(), b.root());
            // And self-diff stays clean.
            assert!(a.diff(&a.clone()).changed.is_empty());
        }
    }

    #[test]
    fn all_layers_changed_finds_all() {
        let n = 16;
        let a = MerkleTree::from_leaves(leaves(n));
        let b = MerkleTree::from_leaves(with_changed(n, &(0..n).collect::<Vec<_>>()));
        let diff = a.diff(&b);
        assert_eq!(diff.changed.len(), n);
        // Full walk: every node compared once = 2n-1 for a perfect tree.
        assert_eq!(diff.comparisons, (2 * n - 1) as u64);
    }

    #[test]
    #[should_panic(expected = "identical layer structure")]
    fn structure_mismatch_panics() {
        let a = MerkleTree::from_leaves(leaves(4));
        let b = MerkleTree::from_leaves(leaves(5));
        a.diff(&b);
    }

    #[test]
    fn model_layer_hashes_group_entries() {
        let model = mmlib_model::Model::new_initialized(mmlib_model::ArchId::ResNet18, 0);
        let hashes = model_layer_hashes(&model);
        let layers = model.layers();
        assert_eq!(hashes.len(), layers.len());
        for ((hp, _), l) in hashes.iter().zip(&layers) {
            assert_eq!(hp, &l.path);
        }
    }

    #[test]
    fn update_leaves_equals_rebuild() {
        for n in [1usize, 2, 3, 8, 9, 41] {
            let base = MerkleTree::from_leaves(leaves(n));
            let changed: Vec<usize> = (0..n).filter(|i| i % 3 == 0).collect();
            let updates: Vec<(String, Digest)> = changed
                .iter()
                .map(|&i| (format!("layer{i}"), sha256(format!("changed{i}").as_bytes())))
                .collect();
            let spliced = base.update_leaves(&updates).unwrap();
            let rebuilt = MerkleTree::from_leaves(with_changed(n, &changed));
            assert_eq!(spliced, rebuilt, "n={n}");
        }
    }

    #[test]
    fn update_leaves_rejects_unknown_paths() {
        let base = MerkleTree::from_leaves(leaves(4));
        let bogus = vec![("not_a_layer".to_string(), sha256(b"x"))];
        assert!(base.update_leaves(&bogus).is_none());
        // Empty update set is the identity.
        assert_eq!(base.update_leaves(&[]).unwrap(), base);
    }

    #[test]
    fn layer_hashes_from_entries_matches_layer_digest() {
        let model = mmlib_model::Model::new_initialized(mmlib_model::ArchId::TinyCnn, 0);
        let (paths, digests) = model_entry_digests(&model);
        let grouped = layer_hashes_from_entries(&paths, &digests);
        assert_eq!(grouped, model_layer_hashes(&model));
    }

    #[test]
    fn serde_round_trip() {
        let t = MerkleTree::from_leaves(leaves(9));
        let json = serde_json::to_string(&t).unwrap();
        let back: MerkleTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
