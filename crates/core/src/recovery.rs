//! The save/recover service: shared plumbing and the recursive recovery
//! dispatcher.
//!
//! One [`SaveService`] exposes all three approaches (the approach used is
//! recorded per model document, so a store may mix them) and one
//! [`SaveService::recover`] entry point that resolves base-model chains
//! recursively — the paper's recursive recovery of §3.2/§3.3.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mmlib_model::{ArchId, Model};
use mmlib_obs::Recorder;
use mmlib_store::{BatchId, DocId, FileId, ModelStorage, StoreError};

use crate::env::EnvironmentInfo;
use crate::error::{to_json_value, CoreError};
use crate::hash_cache::HashCache;
use crate::merkle::MerkleTree;
use crate::meta::{kinds, ApproachKind, ModelInfoDoc, SavedModelId};

/// Unpacks a [`BatchId`] expected to identify a document.
pub(crate) fn batch_doc_id(id: Option<BatchId>) -> Result<DocId, CoreError> {
    match id {
        Some(BatchId::Doc(d)) => Ok(d),
        other => Err(CoreError::Store(StoreError::Malformed(format!(
            "batch returned {other:?} where a document id was expected"
        )))),
    }
}

/// Options controlling a recovery.
#[derive(Debug, Clone, Copy)]
pub struct RecoverOptions {
    /// Verify the current environment against the saved one (the paper's
    /// >1 s "check env" step; §4.4 disables it in one experiment).
    pub check_env: bool,
    /// Verify the recovered parameters against the stored Merkle root.
    pub verify: bool,
    /// Maximum base-chain depth (cycle/corruption guard).
    pub max_chain_depth: usize,
}

impl Default for RecoverOptions {
    fn default() -> Self {
        RecoverOptions { check_env: true, verify: true, max_chain_depth: 1024 }
    }
}

impl RecoverOptions {
    /// The defaults: environment check on, verification on, depth 1024.
    pub fn new() -> RecoverOptions {
        RecoverOptions::default()
    }

    /// Enables/disables the environment check.
    pub fn check_env(mut self, on: bool) -> RecoverOptions {
        self.check_env = on;
        self
    }

    /// Enables/disables Merkle-root verification of the result.
    pub fn verify(mut self, on: bool) -> RecoverOptions {
        self.verify = on;
        self
    }

    /// Sets the maximum base-chain depth.
    pub fn max_chain_depth(mut self, depth: usize) -> RecoverOptions {
        self.max_chain_depth = depth;
        self
    }
}

/// Wall-time breakdown of one recovery (paper Fig. 12's categories).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoverBreakdown {
    /// Reading documents and files.
    pub load: Duration,
    /// Building the model object and applying state / updates / replayed
    /// training.
    pub recover: Duration,
    /// Environment verification.
    pub check_env: Duration,
    /// Parameter verification against the stored Merkle root.
    pub verify: Duration,
    /// Number of base models recovered along the chain (0 for a snapshot).
    pub recovered_bases: u32,
}

impl RecoverBreakdown {
    /// Total recovery wall time.
    pub fn total(&self) -> Duration {
        self.load + self.recover + self.check_env + self.verify
    }
}

/// A recovered model plus its recovery-time breakdown.
pub struct RecoveredModel {
    /// The recovered model (bit-exact to the saved one when `verify` is on).
    pub model: Model,
    /// How the recovery time was spent.
    pub breakdown: RecoverBreakdown,
}

impl std::fmt::Debug for RecoveredModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveredModel")
            .field("arch", &self.model.arch)
            .field("breakdown", &self.breakdown)
            .finish_non_exhaustive()
    }
}

/// The model management service: save with any approach, recover uniformly.
pub struct SaveService {
    storage: ModelStorage,
    environment: EnvironmentInfo,
    obs: Option<Arc<Recorder>>,
    hash_cache: HashCache,
}

impl SaveService {
    /// Creates a service over a storage backend, capturing the current
    /// environment once. Metrics go to the process-wide
    /// [`mmlib_obs::recorder`] unless overridden with
    /// [`SaveService::with_recorder`].
    pub fn new(storage: ModelStorage) -> SaveService {
        SaveService {
            storage,
            environment: EnvironmentInfo::capture(),
            obs: None,
            hash_cache: HashCache::new(),
        }
    }

    /// Routes this service's metrics to `recorder` instead of the global
    /// one (isolated accounting for tests and benches).
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> SaveService {
        self.obs = Some(recorder);
        self
    }

    /// The recorder this service reports to.
    pub(crate) fn obs(&self) -> &Recorder {
        self.obs.as_deref().unwrap_or_else(|| mmlib_obs::recorder())
    }

    /// The recorder this service reports to (the global one unless
    /// overridden with [`SaveService::with_recorder`]). Layers built on top
    /// of the service — `mmlib-lineage` — report through the same recorder
    /// so one exposition covers the whole stack.
    pub fn recorder(&self) -> &Recorder {
        self.obs()
    }

    /// The underlying storage (metrics: `bytes_written`).
    pub fn storage(&self) -> &ModelStorage {
        &self.storage
    }

    /// The save-path hash cache (fingerprint-gated incremental Merkle).
    pub fn hash_cache(&self) -> &HashCache {
        &self.hash_cache
    }

    /// Merkle tree of `model`'s current parameters via the service's hash
    /// cache — byte-identical to [`MerkleTree::from_model`], incremental
    /// when the previous save of this service had the same entry structure.
    pub(crate) fn save_tree(&self, model: &Model) -> MerkleTree {
        self.hash_cache.tree_for_model(model, self.obs())
    }

    /// The environment captured at service construction.
    pub fn environment(&self) -> &EnvironmentInfo {
        &self.environment
    }

    // ---- shared save plumbing -------------------------------------------

    /// The environment document as a batch item (see
    /// [`mmlib_store::BatchItem`]).
    pub(crate) fn environment_item(&self) -> Result<mmlib_store::BatchItem, CoreError> {
        Ok(mmlib_store::BatchItem::Doc {
            kind: kinds::ENVIRONMENT.to_string(),
            body: to_json_value("EnvironmentInfo", &self.environment)?,
        })
    }

    /// A layer-hash (Merkle) document as a batch item.
    pub(crate) fn layer_hashes_item(
        &self,
        tree: &MerkleTree,
    ) -> Result<mmlib_store::BatchItem, CoreError> {
        Ok(mmlib_store::BatchItem::Doc {
            kind: kinds::LAYER_HASHES.to_string(),
            body: to_json_value("MerkleTree", tree)?,
        })
    }

    /// The model-info document as a batch item. `info`'s referent fields
    /// hold [`mmlib_store::batch_ref`] placeholders for ids generated by the
    /// same batch; keeping model-info in the batch (ordered after its
    /// referents) preserves the sequential path's crash ordering while the
    /// whole save pays a single durability tail.
    pub(crate) fn model_info_item(
        &self,
        info: &ModelInfoDoc,
    ) -> Result<mmlib_store::BatchItem, CoreError> {
        Ok(mmlib_store::BatchItem::Doc {
            kind: kinds::MODEL_INFO.to_string(),
            body: to_json_value("ModelInfoDoc", info)?,
        })
    }

    /// The lineage record as a batch item: the derivation edge the lineage
    /// DAG (`mmlib-lineage`) is built from, one per save. `model_ref` is the
    /// intra-batch reference to the model-info item, so ordering the record
    /// last keeps the old semantics — a lineage record always describes a
    /// model that exists, and a crash in between leaves a model without a
    /// record, which every lineage reader treats as a root-less legacy
    /// node.
    pub(crate) fn lineage_item(
        &self,
        info: &ModelInfoDoc,
        model_ref: String,
        changed_layers: Option<usize>,
    ) -> Result<mmlib_store::BatchItem, CoreError> {
        let record = crate::meta::LineageRecordDoc {
            model: model_ref,
            parent: info.base_model.clone(),
            approach: info.approach,
            relation: info.relation,
            root_hash: info.root_hash.clone(),
            changed_layers,
            tags: Vec::new(),
            rebased_from: None,
        };
        Ok(mmlib_store::BatchItem::Doc {
            kind: kinds::LINEAGE.to_string(),
            body: to_json_value("LineageRecordDoc", &record)?,
        })
    }

    /// Loads and decodes a model-info document.
    pub fn load_model_info(&self, id: &SavedModelId) -> Result<ModelInfoDoc, CoreError> {
        let doc = self.storage.get_doc(id.doc_id())?;
        if doc.kind != kinds::MODEL_INFO {
            return Err(CoreError::BadModelDocument {
                id: id.clone(),
                reason: format!("document kind is {:?}, expected model_info", doc.kind),
            });
        }
        serde_json::from_value(doc.body).map_err(|e| CoreError::BadModelDocument {
            id: id.clone(),
            reason: format!("undecodable body: {e}"),
        })
    }

    /// Loads the stored Merkle tree of a saved model.
    pub(crate) fn load_layer_hashes(&self, info: &ModelInfoDoc, id: &SavedModelId) -> Result<MerkleTree, CoreError> {
        let doc = self.storage.get_doc(&DocId::from_string(info.layer_hash_doc.clone()))?;
        serde_json::from_value(doc.body).map_err(|e| CoreError::BadModelDocument {
            id: id.clone(),
            reason: format!("undecodable layer-hash doc: {e}"),
        })
    }

    /// Decodes the architecture recorded in a model document.
    pub(crate) fn arch_of(&self, info: &ModelInfoDoc, id: &SavedModelId) -> Result<ArchId, CoreError> {
        ArchId::from_name(&info.arch).ok_or_else(|| CoreError::BadModelDocument {
            id: id.clone(),
            reason: format!("unknown architecture {:?}", info.arch),
        })
    }

    /// Reads a stored file by its string id.
    pub(crate) fn read_file(&self, id: &str) -> Result<Vec<u8>, CoreError> {
        Ok(self.storage.get_file(&FileId::from_string(id.to_string()))?)
    }

    // ---- environment check ----------------------------------------------

    /// Checks the environment document of a saved model against the current
    /// environment, mirroring the paper's recover-time "check env" step.
    pub(crate) fn check_environment(&self, info: &ModelInfoDoc) -> Result<(), CoreError> {
        let doc = self.storage.get_doc(&DocId::from_string(info.environment_doc.clone()))?;
        let saved: EnvironmentInfo = serde_json::from_value(doc.body)
            .map_err(|e| CoreError::Store(e.into()))?;
        let mismatches = saved.mismatches_against(&self.environment);
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(CoreError::EnvironmentMismatch { mismatches })
        }
    }

    // ---- recovery dispatch ------------------------------------------------

    /// Recovers a saved model, resolving its base chain recursively.
    ///
    /// Returns the model together with a wall-time breakdown accumulated
    /// over the whole chain. Verification (when enabled) runs once, on the
    /// final model, against the stored Merkle root of the *requested* id —
    /// intermediate chain steps only feed parameters forward.
    ///
    /// Thin wrapper over [`SaveService::recover_report`], which adds phase
    /// and verification reporting.
    pub fn recover(&self, id: &SavedModelId, opts: RecoverOptions) -> Result<RecoveredModel, CoreError> {
        let report = self.recover_report(id, opts)?;
        Ok(RecoveredModel { model: report.model, breakdown: report.breakdown })
    }

    pub(crate) fn recover_inner(
        &self,
        id: &SavedModelId,
        opts: &RecoverOptions,
        depth: usize,
        breakdown: &mut RecoverBreakdown,
    ) -> Result<Model, CoreError> {
        if depth > opts.max_chain_depth {
            return Err(CoreError::BaseChainTooDeep { id: id.clone(), limit: opts.max_chain_depth });
        }
        let start = Instant::now();
        let info = self.load_model_info(id)?;
        breakdown.load += start.elapsed();
        if depth > 0 {
            breakdown.recovered_bases += 1;
        }

        if opts.check_env {
            let start = Instant::now();
            self.check_environment(&info)?;
            breakdown.check_env += start.elapsed();
        }

        match info.approach {
            ApproachKind::Baseline => self.recover_full(&info, id, breakdown),
            ApproachKind::ParamUpdate => self.recover_update(&info, id, opts, depth, breakdown),
            ApproachKind::Provenance => self.recover_provenance(&info, id, opts, depth, breakdown),
        }
    }

    /// Recovers exactly one saved model given its recovery base already in
    /// memory, without walking the base chain: snapshots ignore `base`,
    /// parameter updates and provenance saves apply themselves onto it.
    ///
    /// This is the single-step building block behind the batch family
    /// recovery in `mmlib-lineage`, which memoizes shared ancestors so each
    /// chain node is fetched and rebuilt exactly once. The caller is
    /// responsible for passing the model the document's `base_model` refers
    /// to; the result is **not** verified — verify against the stored root
    /// with [`SaveService::verify_recovered`] when bit-exactness matters.
    pub fn recover_onto(
        &self,
        id: &SavedModelId,
        base: Option<Model>,
        breakdown: &mut RecoverBreakdown,
    ) -> Result<Model, CoreError> {
        let start = Instant::now();
        let info = self.load_model_info(id)?;
        breakdown.load += start.elapsed();
        let need_base = |base: Option<Model>| {
            base.ok_or_else(|| CoreError::BadModelDocument {
                id: id.clone(),
                reason: "recover_onto needs the recovered base model for a derived save".into(),
            })
        };
        match info.approach {
            ApproachKind::Baseline => self.recover_full(&info, id, breakdown),
            ApproachKind::ParamUpdate => {
                self.apply_update_onto(&info, id, need_base(base)?, breakdown)
            }
            ApproachKind::Provenance => self.replay_onto(&info, id, need_base(base)?, breakdown),
        }
    }

    /// Verifies a recovered model against the stored Merkle root of `id`.
    pub fn verify_recovered(&self, model: &Model, id: &SavedModelId) -> Result<(), CoreError> {
        let info = self.load_model_info(id)?;
        crate::verify::verify_against_root(model, &info.root_hash, id)
    }
}
