//! Wrapper objects for restorable training components (paper §3.3, Fig. 5).
//!
//! "To save and recover a parametrized object we wrap it in a *wrapper
//! object* ... a wrapper object holds: a reference to it; its class name;
//! the code or the import command; the initialization arguments; arguments
//! read from a configuration file; and arguments that are references to
//! other objects", plus a state file for stateful objects.
//!
//! Rust has no runtime class loading, so the "code or import command" is
//! recorded verbatim for provenance fidelity while re-instantiation goes
//! through a closed registry of known classes — the same classes the
//! paper's `ImageNetTrainService` example wires together: the dataloader
//! (stateless), the optimizer (stateful), and the train service itself.

use std::collections::BTreeMap;

use mmlib_data::loader::LoaderConfig;
use mmlib_data::{DataLoader, Dataset};
use mmlib_store::{DocId, FileId, ModelStorage};
use mmlib_train::{AnyOptimizer, ImageNetTrainService, OptimizerConfig, TrainConfig};
use serde::{Deserialize, Serialize};

use crate::error::{to_json_value, CoreError};
use crate::meta::kinds;

/// A serialized wrapper object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WrapperDoc {
    /// Class name of the wrapped object.
    pub class_name: String,
    /// The defining code or the import command for library classes.
    pub import_or_code: String,
    /// Constructor arguments (JSON).
    pub init_args: serde_json::Value,
    /// Arguments sourced from configuration files (JSON).
    pub config_args: serde_json::Value,
    /// Named references to other wrapped objects (document ids).
    pub ref_args: BTreeMap<String, String>,
    /// State file for stateful objects (file id).
    pub state_file: Option<String>,
}

/// Wrapper class names known to the registry.
pub mod classes {
    /// The deterministic batch loader (stateless parametrized object).
    pub const DATA_LOADER: &str = "DataLoader";
    /// SGD with momentum (stateful parametrized object).
    pub const SGD: &str = "Sgd";
    /// Adam (stateful parametrized object with two moments + step counter).
    pub const ADAM: &str = "Adam";
    /// The image-classification train service (training logic).
    pub const TRAIN_SERVICE: &str = "ImageNetTrainService";
}

/// Saves a dataloader wrapper document.
pub fn save_loader_wrapper(
    storage: &ModelStorage,
    config: &LoaderConfig,
) -> Result<DocId, CoreError> {
    let doc = WrapperDoc {
        class_name: classes::DATA_LOADER.into(),
        import_or_code: "use mmlib_data::DataLoader;".into(),
        init_args: to_json_value("LoaderConfig", config)?,
        config_args: serde_json::Value::Null,
        ref_args: BTreeMap::new(),
        state_file: None,
    };
    Ok(storage.insert_doc(kinds::WRAPPER, to_json_value("WrapperDoc", &doc)?)?)
}

/// Saves an optimizer wrapper document, including its state file.
pub fn save_optimizer_wrapper(
    storage: &ModelStorage,
    config: &OptimizerConfig,
    state_before_training: &[u8],
) -> Result<DocId, CoreError> {
    let state_file = storage.put_file(state_before_training)?;
    let doc = WrapperDoc {
        class_name: config.class_name().into(),
        import_or_code: format!("use mmlib_train::{};", config.class_name()),
        init_args: to_json_value("OptimizerConfig", config)?,
        config_args: serde_json::Value::Null,
        ref_args: BTreeMap::new(),
        state_file: Some(state_file.as_str().to_string()),
    };
    Ok(storage.insert_doc(kinds::WRAPPER, to_json_value("WrapperDoc", &doc)?)?)
}

/// Saves the train-service wrapper referencing its dataloader and optimizer.
pub fn save_train_service_wrapper(
    storage: &ModelStorage,
    train_config: &TrainConfig,
    loader_doc: &DocId,
    sgd_doc: &DocId,
) -> Result<DocId, CoreError> {
    let mut refs = BTreeMap::new();
    refs.insert("dataloader".to_string(), loader_doc.as_str().to_string());
    refs.insert("optimizer".to_string(), sgd_doc.as_str().to_string());
    let doc = WrapperDoc {
        class_name: classes::TRAIN_SERVICE.into(),
        import_or_code: "use mmlib_train::ImageNetTrainService;".into(),
        init_args: to_json_value("TrainConfig", train_config)?,
        config_args: serde_json::Value::Null,
        ref_args: refs,
        state_file: None,
    };
    Ok(storage.insert_doc(kinds::WRAPPER, to_json_value("WrapperDoc", &doc)?)?)
}

/// Loads and decodes a wrapper document.
pub fn load_wrapper(storage: &ModelStorage, id: &DocId) -> Result<WrapperDoc, CoreError> {
    let doc = storage.get_doc(id)?;
    serde_json::from_value(doc.body).map_err(|e| CoreError::Store(e.into()))
}

/// Re-instantiates a full train service from its wrapper document tree.
///
/// `dataset` is supplied by the caller because the dataset reference lives
/// in the model-info document (the loader wrapper holds only the loader's
/// own constructor arguments, mirroring the paper's Fig. 5 layout).
pub fn reconstruct_train_service(
    storage: &ModelStorage,
    train_service_doc: &DocId,
    dataset: Dataset,
) -> Result<ImageNetTrainService, CoreError> {
    let svc_doc = load_wrapper(storage, train_service_doc)?;
    if svc_doc.class_name != classes::TRAIN_SERVICE {
        return Err(CoreError::UnknownWrapperClass(svc_doc.class_name));
    }
    let train_config: TrainConfig = serde_json::from_value(svc_doc.init_args)
        .map_err(|e| CoreError::Store(e.into()))?;

    let loader_id = svc_doc
        .ref_args
        .get("dataloader")
        .ok_or_else(|| CoreError::UnknownWrapperClass("missing dataloader ref".into()))?;
    let loader_doc = load_wrapper(storage, &DocId::from_string(loader_id.clone()))?;
    if loader_doc.class_name != classes::DATA_LOADER {
        return Err(CoreError::UnknownWrapperClass(loader_doc.class_name));
    }
    let loader_config: LoaderConfig = serde_json::from_value(loader_doc.init_args)
        .map_err(|e| CoreError::Store(e.into()))?;
    let loader = DataLoader::new(dataset, loader_config);

    let opt_id = svc_doc
        .ref_args
        .get("optimizer")
        .ok_or_else(|| CoreError::UnknownWrapperClass("missing optimizer ref".into()))?;
    let opt_doc = load_wrapper(storage, &DocId::from_string(opt_id.clone()))?;
    if opt_doc.class_name != classes::SGD && opt_doc.class_name != classes::ADAM {
        return Err(CoreError::UnknownWrapperClass(opt_doc.class_name));
    }
    let opt_config: OptimizerConfig =
        serde_json::from_value(opt_doc.init_args).map_err(|e| CoreError::Store(e.into()))?;
    if opt_config.class_name() != opt_doc.class_name {
        return Err(CoreError::UnknownWrapperClass(format!(
            "wrapper class {} does not match its init args",
            opt_doc.class_name
        )));
    }
    let mut optimizer: AnyOptimizer = opt_config.build();
    if let Some(state_id) = &opt_doc.state_file {
        let bytes = storage.get_file(&FileId::from_string(state_id.clone()))?;
        optimizer.load_state(&bytes)?;
    }

    Ok(ImageNetTrainService::new(loader, optimizer, train_config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_data::DatasetId;
    use mmlib_train::{Sgd, SgdConfig};

    #[test]
    fn wrapper_tree_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();

        let loader_config = LoaderConfig { batch_size: 4, resolution: 16, seed: 7, ..Default::default() };
        let sgd_config = SgdConfig { lr: 0.02, momentum: 0.8, weight_decay: 0.0, max_grad_norm: None };
        let train_config = TrainConfig { epochs: 3, ..Default::default() };

        let sgd = Sgd::new(sgd_config);
        let state = sgd.state_bytes();

        let loader_doc = save_loader_wrapper(&storage, &loader_config).unwrap();
        let sgd_doc = save_optimizer_wrapper(&storage, &sgd_config.into(), &state).unwrap();
        let svc_doc = save_train_service_wrapper(&storage, &train_config, &loader_doc, &sgd_doc).unwrap();

        let dataset = Dataset::new(DatasetId::CocoFood512, 0.0002);
        let svc = reconstruct_train_service(&storage, &svc_doc, dataset).unwrap();
        assert_eq!(svc.config(), &train_config);
        assert_eq!(svc.loader().config(), &loader_config);
        assert_eq!(svc.optimizer().config(), OptimizerConfig::Sgd(sgd_config));
    }

    #[test]
    fn wrong_class_is_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();
        let loader_doc = save_loader_wrapper(&storage, &LoaderConfig::default()).unwrap();
        let dataset = Dataset::new(DatasetId::CocoFood512, 0.0002);
        // A loader wrapper is not a train service.
        match reconstruct_train_service(&storage, &loader_doc, dataset) {
            Err(CoreError::UnknownWrapperClass(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("wrong class accepted"),
        }
    }

    #[test]
    fn stateful_wrapper_restores_optimizer_state() {
        let dir = tempfile::tempdir().unwrap();
        let storage = ModelStorage::open(dir.path()).unwrap();

        // Build an optimizer with non-trivial momentum state.
        let mut model = mmlib_model::Model::new_initialized(mmlib_model::ArchId::ResNet18, 1);
        model.set_classifier_only_trainable();
        let mut sgd = Sgd::new(SgdConfig::default());
        // Fake a gradient by zeroing grads then stepping (no-op) — instead
        // drive one real backward pass.
        let mut rng = mmlib_tensor::Pcg32::seeded(2);
        let x = mmlib_tensor::Tensor::rand_normal([1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let mut trng = mmlib_tensor::Pcg32::seeded(3);
        let mut ctx = mmlib_model::Ctx::train(&mut trng, mmlib_tensor::ExecMode::Deterministic);
        let y = model.forward(x, &mut ctx);
        let (_, g) = mmlib_train::cross_entropy(&y, &[0]);
        model.zero_grad();
        model.backward(g, &mut ctx);
        sgd.step(&mut model);
        assert!(sgd.tracked_params() > 0);

        let cfg = *sgd.config();
        let doc = save_optimizer_wrapper(&storage, &cfg.into(), &sgd.state_bytes()).unwrap();
        let loaded = load_wrapper(&storage, &doc).unwrap();
        assert_eq!(loaded.class_name, classes::SGD);
        let state_file = loaded.state_file.unwrap();
        let bytes = storage.get_file(&FileId::from_string(state_file)).unwrap();
        let mut restored = Sgd::new(cfg);
        restored.load_state(&bytes).unwrap();
        assert_eq!(restored.tracked_params(), sgd.tracked_params());
    }
}
