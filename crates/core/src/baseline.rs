//! Baseline approach (BA, paper §3.1): complete independent snapshots.
//!
//! Save: environment doc + layer-hash doc + model-info doc; architecture
//! code and the full serialized state dict as files. Recovery loads
//! everything back, rebuilds the architecture (running its initialization
//! routine — the step that makes GoogLeNet's recovery anomalously slow,
//! Fig. 12), overwrites the parameters, and verifies.

use std::time::Instant;

use mmlib_model::Model;
use mmlib_obs::PhaseClock;
use mmlib_tensor::ser::{state_from_bytes, state_to_bytes};

use crate::error::CoreError;
use crate::meta::{ModelInfoDoc, ModelRelation, SavedModelId};
use crate::recovery::{RecoverBreakdown, SaveService};
use crate::report::SaveRequest;

impl SaveService {
    /// Saves a complete snapshot of `model` (the baseline approach).
    ///
    /// `base` is recorded as metadata only — the baseline "explicitly
    /// excludes loading documents holding base model information" at
    /// recovery. `relation` documents how this model relates to its base.
    ///
    /// Thin wrapper over [`SaveService::save`] with a
    /// [`SaveRequest::full`] request.
    pub fn save_full(
        &self,
        model: &Model,
        base: Option<&SavedModelId>,
        relation: &str,
    ) -> Result<SavedModelId, CoreError> {
        let mut req = SaveRequest::full(model).relation(relation);
        if let Some(base) = base {
            req = req.base(base);
        }
        Ok(self.save(req)?.id)
    }

    pub(crate) fn save_full_phased(
        &self,
        model: &Model,
        base: Option<&SavedModelId>,
        relation: &str,
        clock: &mut PhaseClock<'_>,
    ) -> Result<SavedModelId, CoreError> {
        let relation = parse_relation(relation, base)?;

        // Full state dict file.
        let entries = model.state_entries();
        let bytes = clock.time("serialize", || {
            state_to_bytes(entries.iter().map(|(p, t, _, _)| (p.as_str(), *t)).collect::<Vec<_>>())
                .to_vec()
        });

        // Layer hashes: the baseline's optional recovery checksums —
        // mmlib always stores them, as the paper's PUA interop requires a
        // base's hashes to be loadable without recovering it.
        let tree = clock.time("hash", || self.save_tree(model));

        // The whole save is one batch commit: artifacts first, then the
        // model-info document referencing them by intra-batch `$batch:N`
        // placeholders, then the lineage record referencing model-info.
        // Item order is visibility order, so the old write-after-write
        // crash semantics hold while the save pays one durability tail
        // (one staged fdatasync per item + one directory fsync per store)
        // instead of a tmp+fsync+rename+dir-fsync round per artifact.
        let info = ModelInfoDoc {
            approach: crate::meta::ApproachKind::Baseline,
            arch: model.arch.name().to_string(),
            relation,
            base_model: base.map(|b| b.doc_id().as_str().to_string()),
            environment_doc: mmlib_store::batch_ref(0),
            code_file: Some(mmlib_store::batch_ref(1)),
            weights_file: Some(mmlib_store::batch_ref(2)),
            update_encoding: None,
            layer_hash_doc: mmlib_store::batch_ref(3),
            root_hash: tree.root().to_hex(),
            train_doc: None,
            dataset: None,
        };
        let batch = vec![
            self.environment_item()?,
            mmlib_store::BatchItem::File { bytes: model.arch.source_code().into_bytes() },
            mmlib_store::BatchItem::File { bytes },
            self.layer_hashes_item(&tree)?,
            self.model_info_item(&info)?,
            self.lineage_item(&info, mmlib_store::batch_ref(4), None)?,
        ];
        let ids = clock.time("write", || self.storage().commit_batch(batch))?;
        Ok(SavedModelId(crate::recovery::batch_doc_id(ids.into_iter().nth(4))?))
    }

    /// Rewrites an already-saved model in place as a full snapshot.
    ///
    /// `model` must be the recovered parameters of `id` (callers recover it
    /// once; delta-chain compaction in `mmlib-lineage` recovers a whole
    /// chain in one forward pass). The parameters are verified against the
    /// stored Merkle root first, then the full state dict is written as a
    /// new weights file and the model-info document is updated: approach
    /// becomes [`ApproachKind::Baseline`](crate::meta::ApproachKind), the
    /// recovery base is cleared, and a parameter update's old delta file is
    /// removed. Content identity — the id, root hash, and layer-hash
    /// document — is untouched, so recovery stays byte-identical while its
    /// chain depth drops to zero. Returns the file id the old weights file
    /// had, when one was replaced.
    ///
    /// Crash ordering: new file → document update → old-file removal, so an
    /// interruption leaves either the old committed state or the new one,
    /// plus at most an unreferenced file for `fsck --repair` to quarantine.
    pub fn promote_to_snapshot(
        &self,
        id: &SavedModelId,
        model: &Model,
    ) -> Result<Option<String>, CoreError> {
        let mut info = self.load_model_info(id)?;
        crate::verify::verify_against_root(model, &info.root_hash, id)?;
        if info.approach == crate::meta::ApproachKind::Baseline {
            return Ok(None); // already a snapshot — idempotent
        }

        let entries = model.state_entries();
        let bytes =
            state_to_bytes(entries.iter().map(|(p, t, _, _)| (p.as_str(), *t)).collect::<Vec<_>>());
        let weights_file = self.storage().put_file(&bytes)?;

        let old_weights = info.weights_file.take();
        info.approach = crate::meta::ApproachKind::Baseline;
        info.base_model = None;
        info.weights_file = Some(weights_file.as_str().to_string());
        info.update_encoding = None;
        self.storage()
            .docs()
            .update(id.doc_id(), crate::error::to_json_value("ModelInfoDoc", &info)?)?;

        if let Some(old) = &old_weights {
            self.storage().files().remove(&mmlib_store::FileId::from_string(old.clone()))?;
        }
        Ok(old_weights)
    }

    /// Recovers a baseline snapshot (no recursion).
    pub(crate) fn recover_full(
        &self,
        info: &ModelInfoDoc,
        id: &SavedModelId,
        breakdown: &mut RecoverBreakdown,
    ) -> Result<Model, CoreError> {
        let arch = self.arch_of(info, id)?;
        let weights_id = info.weights_file.as_ref().ok_or_else(|| CoreError::BadModelDocument {
            id: id.clone(),
            reason: "baseline document lacks a weights file".into(),
        })?;

        let start = Instant::now();
        let bytes = self.read_file(weights_id)?;
        // The code file is loaded too (it is part of the exact
        // representation), although the Rust build resolves the
        // architecture from its identifier.
        if let Some(code_id) = &info.code_file {
            let _ = self.read_file(code_id)?;
        }
        breakdown.load += start.elapsed();

        let start = Instant::now();
        // Rebuild the architecture object. This runs the architecture's
        // init routine before the parameters are overwritten — exactly what
        // `torchvision.models.X()` + `load_state_dict` does, and the origin
        // of the GoogLeNet recovery anomaly (paper Fig. 12).
        let mut model = Model::new_initialized(arch, 0);
        let entries = state_from_bytes(&bytes)?;
        model.load_state_dict(&entries)?;
        breakdown.recover += start.elapsed();
        Ok(model)
    }
}

pub(crate) fn parse_relation(
    relation: &str,
    base: Option<&SavedModelId>,
) -> Result<ModelRelation, CoreError> {
    let parsed = match relation {
        "initial" => ModelRelation::Initial,
        "fully_updated" => ModelRelation::FullyUpdated,
        "partially_updated" => ModelRelation::PartiallyUpdated,
        other => {
            return Err(CoreError::BadModelDocument {
                id: SavedModelId(mmlib_store::DocId::from_string("unsaved".into())),
                reason: format!("unknown relation {other:?}"),
            })
        }
    };
    if parsed == ModelRelation::Initial && base.is_some() {
        return Err(CoreError::BadModelDocument {
            id: SavedModelId(mmlib_store::DocId::from_string("unsaved".into())),
            reason: "initial models cannot have a base".into(),
        });
    }
    if parsed != ModelRelation::Initial && base.is_none() {
        return Err(CoreError::BadModelDocument {
            id: SavedModelId(mmlib_store::DocId::from_string("unsaved".into())),
            reason: format!("{relation} requires a base model"),
        });
    }
    Ok(parsed)
}
