//! Store maintenance: dependency graphs, deletion, and garbage collection.
//!
//! The paper's setting accumulates hundreds of derived models ("for now, we
//! save all models created"); any production deployment eventually needs to
//! *unsave* some. Deletion under mmlib's approaches is non-trivial, because
//! parameter-update and provenance models are only recoverable through their
//! base chain: deleting a base silently breaks every descendant. This
//! module makes the dependency structure explicit:
//!
//! * [`dependency_graph`] — scans the store and builds the base/derived
//!   graph over all saved models.
//! * [`delete_model`] — deletes one model's documents and files, refusing
//!   while other saved models still depend on it.
//! * [`collect_garbage`] — mark-and-sweep: given a set of *live* roots,
//!   removes every model (and its documents/files) that no live model's
//!   recovery chain can reach.

use std::collections::{BTreeMap, BTreeSet};

use mmlib_store::{DocId, FileId};

use crate::error::CoreError;
use crate::meta::{kinds, ModelInfoDoc, SavedModelId};
use crate::recovery::SaveService;

/// The base/derived dependency graph over a store's saved models.
#[derive(Debug, Clone, Default)]
pub struct DependencyGraph {
    /// Model id → its decoded info document.
    pub models: BTreeMap<SavedModelId, ModelInfoDoc>,
    /// Model id → ids of models directly derived from it.
    pub dependents: BTreeMap<SavedModelId, Vec<SavedModelId>>,
}

impl DependencyGraph {
    /// Models no other model derives from (safe deletion candidates).
    pub fn leaves(&self) -> Vec<SavedModelId> {
        self.models
            .keys()
            .filter(|id| self.dependents.get(id).is_none_or(|d| d.is_empty()))
            .cloned()
            .collect()
    }

    /// The recovery chain of `id`, from the model itself down to its root.
    pub fn chain_of(&self, id: &SavedModelId) -> Vec<SavedModelId> {
        let mut out = Vec::new();
        let mut cur = Some(id.clone());
        while let Some(c) = cur {
            let next = self.models.get(&c).and_then(|info| {
                // Baseline models are self-contained: the chain ends even if
                // a base is recorded as lineage metadata.
                if info.approach == crate::meta::ApproachKind::Baseline {
                    None
                } else {
                    info.base_model
                        .as_ref()
                        .map(|b| SavedModelId(DocId::from_string(b.clone())))
                }
            });
            out.push(c);
            cur = next;
        }
        out
    }

    /// Every model reachable from `id` over `base_model` references,
    /// including `id` itself — the *lineage* closure, as opposed to the
    /// *recovery* chain of [`DependencyGraph::chain_of`].
    ///
    /// The two differ for snapshots saved with a base: the baseline
    /// approach records its base as lineage metadata that recovery never
    /// loads, but tools that walk ancestry (`mmlib lineage`, fsck's
    /// semantic pass) still resolve the reference, so GC must keep it.
    pub fn base_closure_of(&self, id: &SavedModelId) -> Vec<SavedModelId> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        let mut cur = Some(id.clone());
        while let Some(c) = cur {
            if !seen.insert(c.clone()) {
                break; // corrupt cyclic reference; keep what we saw
            }
            let next = self
                .models
                .get(&c)
                .and_then(|info| info.base_model.as_ref())
                .map(|b| SavedModelId(DocId::from_string(b.clone())));
            out.push(c);
            cur = next;
        }
        out
    }
}

/// Scans the store and builds the dependency graph.
pub fn dependency_graph(svc: &SaveService) -> Result<DependencyGraph, CoreError> {
    let mut graph = DependencyGraph::default();
    for doc_id in svc.storage().docs().ids()? {
        let doc = svc.storage().get_doc(&doc_id)?;
        if doc.kind != kinds::MODEL_INFO {
            continue;
        }
        let id = SavedModelId(doc_id);
        let info: ModelInfoDoc =
            serde_json::from_value(doc.body).map_err(|e| CoreError::BadModelDocument {
                id: id.clone(),
                reason: format!("undecodable body: {e}"),
            })?;
        if let Some(base) = &info.base_model {
            graph
                .dependents
                .entry(SavedModelId(DocId::from_string(base.clone())))
                .or_default()
                .push(id.clone());
        }
        graph.models.insert(id, info);
    }
    Ok(graph)
}

/// Summary of a deletion or garbage collection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Model ids removed.
    pub removed_models: Vec<SavedModelId>,
    /// Documents removed (model docs + owned docs).
    pub removed_docs: usize,
    /// Files removed.
    pub removed_files: usize,
    /// Bytes reclaimed (file bytes; documents are small).
    pub reclaimed_bytes: u64,
}

/// Deletes one saved model. Fails with [`CoreError::BadModelDocument`] if
/// any other saved model still derives from it (deleting it would orphan
/// their recovery chains).
pub fn delete_model(svc: &SaveService, id: &SavedModelId) -> Result<GcReport, CoreError> {
    let graph = dependency_graph(svc)?;
    if let Some(deps) = graph.dependents.get(id) {
        if !deps.is_empty() {
            return Err(CoreError::BadModelDocument {
                id: id.clone(),
                reason: format!(
                    "{} model(s) still derive from it (e.g. {}); delete or rebase them first",
                    deps.len(),
                    deps[0]
                ),
            });
        }
    }
    let info = graph.models.get(id).ok_or_else(|| CoreError::BadModelDocument {
        id: id.clone(),
        reason: "not a saved model".into(),
    })?;
    let lineage = lineage_index(svc)?;
    remove_model(svc, id, info, lineage.get(id.doc_id().as_str()).map_or(&[], |v| v))
}

/// Maps each model id to the lineage documents describing it (normally one,
/// written by `SaveService::save`; zero for stores predating lineage).
fn lineage_index(svc: &SaveService) -> Result<BTreeMap<String, Vec<DocId>>, CoreError> {
    let mut index: BTreeMap<String, Vec<DocId>> = BTreeMap::new();
    for doc_id in svc.storage().docs().ids()? {
        let doc = svc.storage().get_doc(&doc_id)?;
        if doc.kind != kinds::LINEAGE {
            continue;
        }
        if let Some(model) = doc.body["model"].as_str() {
            index.entry(model.to_string()).or_default().push(doc_id);
        }
    }
    Ok(index)
}

fn remove_model(
    svc: &SaveService,
    id: &SavedModelId,
    info: &ModelInfoDoc,
    lineage_docs: &[DocId],
) -> Result<GcReport, CoreError> {
    let mut report = GcReport::default();
    let (docs, files) = artifacts_of(info);
    for f in files {
        if svc.storage().files().contains(&f) {
            report.reclaimed_bytes += svc.storage().files().size(&f)?;
            svc.storage().files().remove(&f)?;
            report.removed_files += 1;
        }
    }
    for d in docs {
        if svc.storage().docs().contains(&d) {
            svc.storage().docs().remove(&d)?;
            report.removed_docs += 1;
        }
    }
    // The model's lineage record(s) go with it.
    for d in lineage_docs {
        if svc.storage().docs().contains(d) {
            svc.storage().docs().remove(d)?;
            report.removed_docs += 1;
        }
    }
    svc.storage().docs().remove(id.doc_id())?;
    report.removed_docs += 1;
    report.removed_models.push(id.clone());
    Ok(report)
}

/// Documents and files owned by one saved model (including the wrapper tree
/// of a provenance save).
fn artifacts_of(info: &ModelInfoDoc) -> (Vec<DocId>, Vec<FileId>) {
    let mut docs = vec![
        DocId::from_string(info.environment_doc.clone()),
        DocId::from_string(info.layer_hash_doc.clone()),
    ];
    let mut files = Vec::new();
    if let Some(f) = &info.code_file {
        files.push(FileId::from_string(f.clone()));
    }
    if let Some(f) = &info.weights_file {
        files.push(FileId::from_string(f.clone()));
    }
    if let Some(t) = &info.train_doc {
        docs.push(DocId::from_string(t.clone()));
    }
    if let Some(d) = &info.dataset {
        if let Some(f) = &d.container_file {
            files.push(FileId::from_string(f.clone()));
        }
    }
    (docs, files)
}

/// Mark-and-sweep garbage collection: keeps `live` models and everything
/// their recovery chains reach; removes all other saved models and their
/// artifacts. Wrapper documents of removed provenance models are swept by
/// a final orphan pass.
pub fn collect_garbage(
    svc: &SaveService,
    live: &[SavedModelId],
) -> Result<GcReport, CoreError> {
    let graph = dependency_graph(svc)?;
    // Mark.
    let mut marked: BTreeSet<SavedModelId> = BTreeSet::new();
    for root in live {
        if !graph.models.contains_key(root) {
            return Err(CoreError::BadModelDocument {
                id: root.clone(),
                reason: "live root is not a saved model".into(),
            });
        }
        // Mark the full base closure, not just the recovery chain: a
        // snapshot's base is recovery-irrelevant but still referenced as
        // lineage, and collecting it would leave live models with dangling
        // ancestry (fsck reports exactly that as a missing base-model doc).
        for link in graph.base_closure_of(root) {
            marked.insert(link);
        }
    }
    // Sweep models in reverse-dependency order (leaves first) so the
    // "dependents" safety check never trips on another garbage model.
    let mut report = GcReport::default();
    let lineage = lineage_index(svc)?;
    let mut garbage: Vec<&SavedModelId> =
        graph.models.keys().filter(|id| !marked.contains(id)).collect();
    // Leaves first: sort by descending closure length.
    garbage.sort_by_key(|id| std::cmp::Reverse(graph.base_closure_of(id).len()));
    for id in garbage {
        let info = &graph.models[id];
        let sub =
            remove_model(svc, id, info, lineage.get(id.doc_id().as_str()).map_or(&[], |v| v))?;
        report.removed_models.extend(sub.removed_models);
        report.removed_docs += sub.removed_docs;
        report.removed_files += sub.removed_files;
        report.reclaimed_bytes += sub.reclaimed_bytes;
    }
    // Orphan pass: wrapper documents referenced only by removed models.
    let kept_wrapper_docs: BTreeSet<String> = marked
        .iter()
        .filter_map(|id| graph.models.get(id))
        .flat_map(|info| info.train_doc.iter().cloned())
        .collect();
    for doc_id in svc.storage().docs().ids()? {
        let doc = svc.storage().get_doc(&doc_id)?;
        if doc.kind == kinds::WRAPPER && !kept_wrapper_docs.contains(doc_id.as_str()) {
            // A wrapper is live only if some kept train-service doc
            // references it (directly or as its ref_args target).
            let referenced = kept_wrapper_docs.iter().any(|w| {
                svc.storage()
                    .get_doc(&DocId::from_string(w.clone()))
                    .ok()
                    .map(|d| {
                        d.body["ref_args"]
                            .as_object()
                            .is_some_and(|o| o.values().any(|v| v.as_str() == Some(doc_id.as_str())))
                    })
                    .unwrap_or(false)
            });
            if !referenced {
                svc.storage().docs().remove(&doc_id)?;
                report.removed_docs += 1;
            }
        }
        // Lineage records whose model no longer exists (crash remnants of
        // interrupted saves, or records of models removed above whose doc
        // id never made it into the index) are garbage too.
        if doc.kind == kinds::LINEAGE {
            let model_alive = doc.body["model"]
                .as_str()
                .is_some_and(|m| marked.contains(&SavedModelId(DocId::from_string(m.into()))));
            if !model_alive && svc.storage().docs().contains(&doc_id) {
                svc.storage().docs().remove(&doc_id)?;
                report.removed_docs += 1;
            }
        }
    }
    Ok(report)
}
