//! Model provenance approach (MPA, paper §3.3): save *how* the model was
//! made, not the model.
//!
//! A derived model is represented by (1) the training process — a
//! [`crate::wrapper`] tree of the train service, dataloader, and stateful
//! optimizer; (2) the training environment; (3) the training dataset,
//! packed into a single container file (or an external reference when a
//! dedicated dataset manager owns it); and (4) the base-model reference.
//! Recovery recovers the base recursively and *replays the training*
//! deterministically, then verifies the replayed model against the stored
//! Merkle root.

use std::time::Instant;

use mmlib_data::loader::LoaderConfig;
use mmlib_data::{container, Dataset, DatasetId};
use mmlib_model::Model;
use mmlib_obs::PhaseClock;
use mmlib_train::{ImageNetTrainService, OptimizerConfig, TrainConfig, TrainService};

use crate::error::CoreError;
use crate::meta::{ApproachKind, DatasetRef, ModelInfoDoc, ModelRelation, SavedModelId};
use crate::recovery::{RecoverBreakdown, RecoverOptions, SaveService};
use crate::report::SaveRequest;
use crate::wrapper;

/// Everything the provenance approach must capture about one training run.
///
/// Build this *before* training (the optimizer state must be the
/// pre-training state so the replay starts from the same point), train, and
/// then call [`SaveService::save_provenance`] with the trained model.
#[derive(Debug, Clone)]
pub struct TrainProvenance {
    /// Which Table 1 dataset was trained on.
    pub dataset_id: DatasetId,
    /// The byte-size scale the dataset was materialized with.
    pub dataset_scale: f64,
    /// `true` when a dedicated external system manages the dataset; mmlib
    /// then stores only the reference, not the container (paper §3.3,
    /// "Managing Data sets" — and the §4.7 scenario where this makes the
    /// MPA's storage shrink to the training information).
    pub dataset_external: bool,
    /// The dataloader's constructor arguments.
    pub loader_config: LoaderConfig,
    /// The optimizer's class and constructor arguments.
    pub optimizer: OptimizerConfig,
    /// The optimizer's serialized internal state *before* training.
    pub optimizer_state_before: Vec<u8>,
    /// The training hyper-parameters.
    pub train_config: TrainConfig,
    /// Relation of the produced model to its base.
    pub relation: ModelRelation,
}

impl SaveService {
    /// Saves `model_after_training` by provenance against `base`.
    ///
    /// The model's parameters are **not** stored — only its Merkle root (to
    /// verify the replay) and the provenance needed to reproduce it.
    ///
    /// Thin wrapper over [`SaveService::save`] with a
    /// [`SaveRequest::provenance`] request.
    pub fn save_provenance(
        &self,
        model_after_training: &Model,
        base: &SavedModelId,
        prov: &TrainProvenance,
    ) -> Result<SavedModelId, CoreError> {
        Ok(self.save(SaveRequest::provenance(model_after_training, base, prov))?.id)
    }

    pub(crate) fn save_provenance_phased(
        &self,
        model_after_training: &Model,
        base: &SavedModelId,
        prov: &TrainProvenance,
        clock: &mut PhaseClock<'_>,
    ) -> Result<SavedModelId, CoreError> {
        if prov.relation == ModelRelation::Initial {
            return Err(CoreError::BadModelDocument {
                id: base.clone(),
                reason: "provenance saves describe derived models, not initial ones".into(),
            });
        }
        if prov.train_config.mode != mmlib_tensor::ExecMode::Deterministic {
            return Err(CoreError::BadModelDocument {
                id: base.clone(),
                reason: "provenance saves require deterministic training (paper §4.5)".into(),
            });
        }

        // (3) Dataset: pack to a single file unless managed externally.
        let dataset = Dataset::new(prov.dataset_id, prov.dataset_scale);
        let container_file = if prov.dataset_external {
            None
        } else {
            let packed = clock.time("pack", || container::pack(&dataset));
            Some(clock.time("write", || self.storage().put_file(&packed))?.as_str().to_string())
        };
        let dataset_ref = DatasetRef {
            name: prov.dataset_id.short_name().to_string(),
            scale: prov.dataset_scale,
            container_file,
            content_digest: dataset.content_digest().to_hex(),
        };

        // (1) Training process: wrapper documents.
        let loader_doc =
            clock.time("write", || wrapper::save_loader_wrapper(self.storage(), &prov.loader_config))?;
        let sgd_doc = clock.time("write", || {
            wrapper::save_optimizer_wrapper(
                self.storage(),
                &prov.optimizer,
                &prov.optimizer_state_before,
            )
        })?;
        let train_doc = clock.time("write", || {
            wrapper::save_train_service_wrapper(
                self.storage(),
                &prov.train_config,
                &loader_doc,
                &sgd_doc,
            )
        })?;

        // (2) Environment and verification data (the resulting model's
        // layer hashes), plus (4) the model-info document tying in the base
        // reference and the wrapper tree, plus the lineage record — all one
        // batch commit, with model-info referencing the in-batch items via
        // `$batch:N` and the external wrapper/train docs by their real ids.
        let tree = clock.time("hash", || self.save_tree(model_after_training));
        let info = ModelInfoDoc {
            approach: ApproachKind::Provenance,
            arch: model_after_training.arch.name().to_string(),
            relation: prov.relation,
            base_model: Some(base.doc_id().as_str().to_string()),
            environment_doc: mmlib_store::batch_ref(0),
            code_file: None,
            weights_file: None,
            update_encoding: None,
            layer_hash_doc: mmlib_store::batch_ref(1),
            root_hash: tree.root().to_hex(),
            train_doc: Some(train_doc.as_str().to_string()),
            dataset: Some(dataset_ref),
        };
        let batch = vec![
            self.environment_item()?,
            self.layer_hashes_item(&tree)?,
            self.model_info_item(&info)?,
            self.lineage_item(&info, mmlib_store::batch_ref(2), None)?,
        ];
        let ids = clock.time("write", || self.storage().commit_batch(batch))?;
        Ok(SavedModelId(crate::recovery::batch_doc_id(ids.into_iter().nth(2))?))
    }

    /// Recovers a provenance model: recover the base, replay the training.
    pub(crate) fn recover_provenance(
        &self,
        info: &ModelInfoDoc,
        id: &SavedModelId,
        opts: &RecoverOptions,
        depth: usize,
        breakdown: &mut RecoverBreakdown,
    ) -> Result<Model, CoreError> {
        let base_id = info.base_model.as_ref().ok_or_else(|| CoreError::BadModelDocument {
            id: id.clone(),
            reason: "provenance document lacks a base model".into(),
        })?;
        let base_id = SavedModelId(mmlib_store::DocId::from_string(base_id.clone()));
        let model = self.recover_inner(&base_id, opts, depth + 1, breakdown)?;
        self.replay_onto(info, id, model, breakdown)
    }

    /// Replays a provenance document's training onto its already-recovered
    /// base (the non-recursive half of
    /// [`SaveService::recover_provenance`]).
    pub(crate) fn replay_onto(
        &self,
        info: &ModelInfoDoc,
        id: &SavedModelId,
        mut model: Model,
        breakdown: &mut RecoverBreakdown,
    ) -> Result<Model, CoreError> {
        // Load provenance pieces.
        let dataset_ref = info.dataset.as_ref().ok_or_else(|| CoreError::BadModelDocument {
            id: id.clone(),
            reason: "provenance document lacks a dataset reference".into(),
        })?;
        let train_doc = info.train_doc.as_ref().ok_or_else(|| CoreError::BadModelDocument {
            id: id.clone(),
            reason: "provenance document lacks a train-service reference".into(),
        })?;

        let start = Instant::now();
        let dataset_id = DatasetId::from_short_name(&dataset_ref.name).ok_or_else(|| {
            CoreError::BadModelDocument {
                id: id.clone(),
                reason: format!("unknown dataset {:?}", dataset_ref.name),
            }
        })?;
        let dataset = Dataset::new(dataset_id, dataset_ref.scale);
        // Verify the stored container (when present) round-trips and matches
        // the declared content digest.
        if let Some(file_id) = &dataset_ref.container_file {
            let packed = self.read_file(file_id)?;
            let unpacked = container::unpack(&packed)?;
            if unpacked.id != dataset_id || unpacked.blobs.len() as u64 != dataset.len() {
                return Err(CoreError::VerificationFailed {
                    id: id.clone(),
                    reason: "dataset container does not match its reference".into(),
                });
            }
        }
        if dataset.content_digest().to_hex() != dataset_ref.content_digest {
            return Err(CoreError::VerificationFailed {
                id: id.clone(),
                reason: "dataset content digest mismatch".into(),
            });
        }
        let mut svc: ImageNetTrainService = wrapper::reconstruct_train_service(
            self.storage(),
            &mmlib_store::DocId::from_string(train_doc.clone()),
            dataset,
        )?;
        breakdown.load += start.elapsed();

        // Replay the training (the dominant recover cost, §4.4).
        let start = Instant::now();
        info.relation.apply_trainability(&mut model);
        svc.train(&mut model);
        breakdown.recover += start.elapsed();
        Ok(model)
    }
}
