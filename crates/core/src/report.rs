//! The unified save/recover API surface: [`SaveRequest`] in,
//! [`SaveReport`]/[`RecoverReport`] out.
//!
//! The five historical entry points (`save_full`, `save_update`,
//! `save_update_compressed`, `save_provenance`, `save_with_policy`) remain
//! as thin delegates, but they all funnel into [`SaveService::save`], which
//! times every phase through `mmlib-obs` and returns a uniform report: the
//! saved id, the approach actually used, the bytes it cost, and where the
//! time went. Recovery mirrors this with [`SaveService::recover_report`].

use std::time::{Duration, Instant};

use mmlib_model::Model;
use mmlib_obs::{PhaseBreakdown, PhaseClock, Recorder, DURATION_BUCKETS};

use crate::error::CoreError;
use crate::merkle::MerkleDiff;
use crate::meta::{ApproachKind, SavedModelId};
use crate::policy::ChainPolicy;
use crate::provenance::TrainProvenance;
use crate::recovery::{RecoverBreakdown, RecoverOptions, SaveService};

/// Histogram of per-phase save wall time, labeled `phase="..."`.
pub(crate) const SAVE_PHASE: &str = "mmlib_save_phase_seconds";
/// Histogram of whole-save wall time, labeled `approach="BA|PUA|MPA"`.
pub(crate) const SAVE_SECONDS: &str = "mmlib_save_seconds";
/// Counter of bytes written per save, labeled `approach="BA|PUA|MPA"`.
pub(crate) const SAVE_BYTES: &str = "mmlib_save_bytes_total";
/// Histogram of per-phase recover wall time, labeled `phase="..."`.
pub(crate) const RECOVER_PHASE: &str = "mmlib_recover_phase_seconds";
/// Histogram of whole-recovery wall time.
pub(crate) const RECOVER_SECONDS: &str = "mmlib_recover_seconds";

/// The save phase taxonomy (see DESIGN.md): every second of a save is
/// charged to exactly one of these labels.
pub const SAVE_PHASES: [&str; 7] =
    ["plan", "hash", "diff", "serialize", "compress", "pack", "write"];

/// The recover phase taxonomy, derived from [`RecoverBreakdown`].
pub const RECOVER_PHASES: [&str; 4] = ["fetch", "rebuild", "check_env", "verify"];

/// Pre-registers every core metric on `recorder`, so expositions list the
/// full phase taxonomy (with zero counts) before any save/recover runs.
pub fn register_metrics(recorder: &Recorder) {
    for phase in SAVE_PHASES {
        recorder.histogram(SAVE_PHASE, Some(("phase", phase)), &DURATION_BUCKETS);
    }
    for phase in RECOVER_PHASES {
        recorder.histogram(RECOVER_PHASE, Some(("phase", phase)), &DURATION_BUCKETS);
    }
    for approach in [ApproachKind::Baseline, ApproachKind::ParamUpdate, ApproachKind::Provenance] {
        recorder.histogram(SAVE_SECONDS, Some(("approach", approach.abbrev())), &DURATION_BUCKETS);
        recorder.counter(SAVE_BYTES, Some(("approach", approach.abbrev())));
    }
    recorder.histogram(RECOVER_SECONDS, None, &DURATION_BUCKETS);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestKind {
    Full,
    Update,
    CompressedUpdate,
    Provenance,
    Policy,
}

/// One save, described declaratively: which model, against which base, with
/// which approach. Build with the constructors
/// ([`SaveRequest::full`], [`SaveRequest::update`],
/// [`SaveRequest::compressed_update`], [`SaveRequest::provenance`],
/// [`SaveRequest::with_policy`]) and refine with the builder methods, then
/// pass to [`SaveService::save`].
#[derive(Clone)]
pub struct SaveRequest<'a> {
    kind: RequestKind,
    model: &'a Model,
    base: Option<&'a SavedModelId>,
    base_model: Option<&'a Model>,
    relation: Option<&'a str>,
    provenance: Option<&'a TrainProvenance>,
    policy: Option<ChainPolicy>,
}

impl<'a> SaveRequest<'a> {
    fn new(kind: RequestKind, model: &'a Model) -> SaveRequest<'a> {
        SaveRequest {
            kind,
            model,
            base: None,
            base_model: None,
            relation: None,
            provenance: None,
            policy: None,
        }
    }

    /// A full snapshot (the baseline approach).
    pub fn full(model: &'a Model) -> SaveRequest<'a> {
        SaveRequest::new(RequestKind::Full, model)
    }

    /// A parameter update against `base`.
    pub fn update(model: &'a Model, base: &'a SavedModelId) -> SaveRequest<'a> {
        SaveRequest::new(RequestKind::Update, model).base(base)
    }

    /// A delta-compressed parameter update; needs the base's parameters in
    /// memory (`base_model`) to form deltas.
    pub fn compressed_update(
        model: &'a Model,
        base_model: &'a Model,
        base: &'a SavedModelId,
    ) -> SaveRequest<'a> {
        let mut req = SaveRequest::new(RequestKind::CompressedUpdate, model).base(base);
        req.base_model = Some(base_model);
        req
    }

    /// A provenance save: store how `model` was trained from `base`.
    pub fn provenance(
        model: &'a Model,
        base: &'a SavedModelId,
        prov: &'a TrainProvenance,
    ) -> SaveRequest<'a> {
        SaveRequest::new(RequestKind::Provenance, model)
            .base(base)
            .provenance_data(prov)
    }

    /// A chain-policy save: cheap while the base chain is short, promoted
    /// to a snapshot at the policy's depth bound.
    pub fn with_policy(
        model: &'a Model,
        base: &'a SavedModelId,
        policy: ChainPolicy,
    ) -> SaveRequest<'a> {
        let mut req = SaveRequest::new(RequestKind::Policy, model).base(base);
        req.policy = Some(policy);
        req
    }

    /// Sets the base model id (recorded as lineage; required by every kind
    /// except [`SaveRequest::full`]).
    pub fn base(mut self, base: &'a SavedModelId) -> SaveRequest<'a> {
        self.base = Some(base);
        self
    }

    /// Sets the model's relation to its base (`"initial"`,
    /// `"fully_updated"`, `"partially_updated"`). Defaults to `"initial"`
    /// without a base and `"partially_updated"` with one.
    pub fn relation(mut self, relation: &'a str) -> SaveRequest<'a> {
        self.relation = Some(relation);
        self
    }

    /// Attaches training provenance (required for provenance saves and for
    /// policies whose cheap approach is provenance).
    pub fn provenance_data(mut self, prov: &'a TrainProvenance) -> SaveRequest<'a> {
        self.provenance = Some(prov);
        self
    }

    fn resolved_relation(&self) -> &str {
        self.relation
            .unwrap_or(if self.base.is_none() { "initial" } else { "partially_updated" })
    }

    fn require_base(&self) -> Result<&'a SavedModelId, CoreError> {
        self.base.ok_or_else(|| missing_field("this save kind requires a base model"))
    }
}

pub(crate) fn missing_field(reason: &str) -> CoreError {
    CoreError::BadModelDocument {
        id: SavedModelId(mmlib_store::DocId::from_string("unsaved".into())),
        reason: reason.into(),
    }
}

/// What one save did and what it cost — the uniform return of
/// [`SaveService::save`].
#[derive(Debug)]
pub struct SaveReport {
    /// The saved model id.
    pub id: SavedModelId,
    /// The approach actually used (a policy may promote to baseline).
    pub approach: ApproachKind,
    /// Bytes written to storage by this save (the paper's storage-
    /// consumption metric).
    pub storage_bytes: u64,
    /// Total time-to-save wall time.
    pub tts: Duration,
    /// Where the save time went, by phase (see [`SAVE_PHASES`]).
    pub phases: PhaseBreakdown,
    /// The resulting recovery-chain depth, for policy saves.
    pub chain_depth: Option<usize>,
    /// The Merkle diff, when a parameter update was saved.
    pub diff: Option<MerkleDiff>,
    /// The compressed encoding's statistics, for compressed updates.
    pub encoded: Option<mmlib_compress::EncodedUpdate>,
}

/// Whether a recovery's bit-exactness was checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The recovered parameters matched the stored Merkle root.
    Verified,
    /// Verification was disabled in [`RecoverOptions`].
    Skipped,
}

/// A recovered model with its full cost accounting — the uniform return of
/// [`SaveService::recover_report`].
pub struct RecoverReport {
    /// The recovered model.
    pub model: Model,
    /// The recovery-time breakdown accumulated over the whole base chain.
    pub breakdown: RecoverBreakdown,
    /// The breakdown re-expressed in the phase taxonomy
    /// ([`RECOVER_PHASES`]).
    pub phases: PhaseBreakdown,
    /// Whether the result was verified against the stored Merkle root.
    pub verification: VerifyOutcome,
    /// Total time-to-recover wall time.
    pub ttr: Duration,
}

impl std::fmt::Debug for RecoverReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoverReport")
            .field("arch", &self.model.arch)
            .field("breakdown", &self.breakdown)
            .field("verification", &self.verification)
            .field("ttr", &self.ttr)
            .finish_non_exhaustive()
    }
}

impl SaveService {
    /// Saves a model as described by `req`, timing every phase.
    ///
    /// This is the single entry point behind `save_full`, `save_update`,
    /// `save_update_compressed`, `save_provenance`, and `save_with_policy`;
    /// the report carries everything those methods used to return, plus
    /// byte and phase accounting.
    pub fn save(&self, req: SaveRequest<'_>) -> Result<SaveReport, CoreError> {
        let obs = self.obs();
        let bytes_before = self.storage().bytes_written();
        let start = Instant::now();
        let mut clock = PhaseClock::new(obs, SAVE_PHASE, "phase");
        let relation = req.resolved_relation();

        let (id, approach, chain_depth, diff, encoded) = match req.kind {
            RequestKind::Full => {
                let id = self.save_full_phased(req.model, req.base, relation, &mut clock)?;
                (id, ApproachKind::Baseline, None, None, None)
            }
            RequestKind::Update => {
                let base = req.require_base()?;
                let (id, diff) = self.save_update_phased(req.model, base, relation, &mut clock)?;
                (id, ApproachKind::ParamUpdate, None, Some(diff), None)
            }
            RequestKind::CompressedUpdate => {
                let base = req.require_base()?;
                let base_model = req
                    .base_model
                    .ok_or_else(|| missing_field("compressed updates need the base model"))?;
                let (id, diff, encoded) = self.save_update_compressed_phased(
                    req.model, base_model, base, relation, &mut clock,
                )?;
                (id, ApproachKind::ParamUpdate, None, Some(diff), Some(encoded))
            }
            RequestKind::Provenance => {
                let base = req.require_base()?;
                let prov = req
                    .provenance
                    .ok_or_else(|| missing_field("provenance saves need TrainProvenance"))?;
                let id = self.save_provenance_phased(req.model, base, prov, &mut clock)?;
                (id, ApproachKind::Provenance, None, None, None)
            }
            RequestKind::Policy => {
                let base = req.require_base()?;
                let policy =
                    req.policy.ok_or_else(|| missing_field("policy requests carry a policy"))?;
                let base_depth = clock.time("plan", || self.chain_depth(base))?;
                let would_be = base_depth + 1;
                if would_be > policy.max_depth || policy.cheap == ApproachKind::Baseline {
                    let id = self.save_full_phased(req.model, Some(base), relation, &mut clock)?;
                    (id, ApproachKind::Baseline, Some(0), None, None)
                } else {
                    match policy.cheap {
                        // Handled by the promotion branch above; saving a
                        // baseline here keeps the arm panic-free and correct
                        // even if that branch's condition drifts.
                        ApproachKind::Baseline => {
                            let id = self.save_full_phased(
                                req.model,
                                Some(base),
                                relation,
                                &mut clock,
                            )?;
                            (id, ApproachKind::Baseline, Some(0), None, None)
                        }
                        ApproachKind::ParamUpdate => {
                            let (id, diff) =
                                self.save_update_phased(req.model, base, relation, &mut clock)?;
                            (id, ApproachKind::ParamUpdate, Some(would_be), Some(diff), None)
                        }
                        ApproachKind::Provenance => {
                            let prov = req.provenance.ok_or_else(|| {
                                missing_field("provenance chain policy requires TrainProvenance")
                            })?;
                            let id =
                                self.save_provenance_phased(req.model, base, prov, &mut clock)?;
                            (id, ApproachKind::Provenance, Some(would_be), None, None)
                        }
                    }
                }
            }
        };

        // The lineage record — one per save, the derivation edge the
        // lineage DAG (`mmlib-lineage`) is built from — is committed by the
        // per-approach save batch itself (ordered after model-info), so no
        // separate write happens here.
        let tts = start.elapsed();
        let storage_bytes = self.storage().bytes_written().saturating_sub(bytes_before);
        obs.observe_duration(SAVE_SECONDS, ("approach", approach.abbrev()), tts);
        obs.inc_labeled(SAVE_BYTES, ("approach", approach.abbrev()), storage_bytes);
        Ok(SaveReport {
            id,
            approach,
            storage_bytes,
            tts,
            phases: clock.finish(),
            chain_depth,
            diff,
            encoded,
        })
    }

    /// Recovers a saved model like [`SaveService::recover`], but returns
    /// the full report: phase breakdown in the shared taxonomy, the
    /// verification outcome, and the total TTR.
    pub fn recover_report(
        &self,
        id: &SavedModelId,
        opts: RecoverOptions,
    ) -> Result<RecoverReport, CoreError> {
        let obs = self.obs();
        let start = Instant::now();
        let mut breakdown = RecoverBreakdown::default();
        let model = self.recover_inner(id, &opts, 0, &mut breakdown)?;

        // Verification of the final model, against the *requested* id's
        // stored Merkle root (intermediate chain steps only feed parameters
        // forward).
        let verification = if opts.verify {
            let vstart = Instant::now();
            let info = self.load_model_info(id)?;
            crate::verify::verify_against_root(&model, &info.root_hash, id)?;
            breakdown.verify += vstart.elapsed();
            VerifyOutcome::Verified
        } else {
            VerifyOutcome::Skipped
        };
        let ttr = start.elapsed();

        let mut phases = PhaseBreakdown::new();
        for (phase, d) in [
            ("fetch", breakdown.load),
            ("rebuild", breakdown.recover),
            ("check_env", breakdown.check_env),
            ("verify", breakdown.verify),
        ] {
            phases.add(phase, d);
            obs.observe_duration(RECOVER_PHASE, ("phase", phase), d);
        }
        obs.observe(RECOVER_SECONDS, ttr.as_secs_f64());
        Ok(RecoverReport { model, breakdown, phases, verification, ttr })
    }
}
