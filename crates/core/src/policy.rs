//! Chain policies: bounding the recovery staircase.
//!
//! The paper's §4.7 frames the central trade-off: PUA/MPA save storage but
//! their recursive recovery cost grows with every derived model (the
//! Fig. 11/15 staircases), while the baseline caps recovery at one load by
//! paying full storage every time. A *chain policy* interpolates: save
//! cheaply (update or provenance) while the base chain is short, and
//! *promote* to a full snapshot whenever the chain would exceed a depth
//! bound. Storage stays near the cheap approach's, and TTR is bounded by
//! `max_depth` links — a knob directly on the paper's storage-retraining
//! trade-off ("how much TTR (and resources) we want to invest to save
//! storage").

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::merkle::MerkleDiff;
use crate::meta::{ApproachKind, SavedModelId};
use crate::provenance::TrainProvenance;
use crate::report::missing_field;
use crate::recovery::SaveService;

/// A depth-bounded save policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainPolicy {
    /// The approach used while the chain is short.
    pub cheap: ApproachKind,
    /// Maximum recovery-chain depth: saving a model whose chain would
    /// become deeper than this promotes it to a full snapshot instead.
    /// `0` degenerates to the baseline; large values degenerate to the
    /// cheap approach.
    pub max_depth: usize,
}

impl ChainPolicy {
    /// Parameter updates with at most `max_depth` chain links.
    pub fn updates(max_depth: usize) -> ChainPolicy {
        ChainPolicy { cheap: ApproachKind::ParamUpdate, max_depth }
    }

    /// Provenance saves with at most `max_depth` replay links.
    pub fn provenance(max_depth: usize) -> ChainPolicy {
        ChainPolicy { cheap: ApproachKind::Provenance, max_depth }
    }
}

/// What a policy-driven save did.
#[derive(Debug, Clone)]
pub struct PolicySaveOutcome {
    /// The saved model id.
    pub id: SavedModelId,
    /// The approach that was actually used.
    pub used: ApproachKind,
    /// The new model's recovery-chain depth (0 for a snapshot).
    pub chain_depth: usize,
    /// The Merkle diff, when a parameter update was saved.
    pub diff: Option<MerkleDiff>,
}

impl SaveService {
    /// Walks the stored base chain of `id` and returns its recovery depth
    /// (0 for a baseline snapshot). Only documents are read — never
    /// parameters — so this is cheap even for deep chains.
    pub fn chain_depth(&self, id: &SavedModelId) -> Result<usize, CoreError> {
        let mut depth = 0usize;
        let mut cur = id.clone();
        loop {
            let info = self.load_model_info(&cur)?;
            if info.approach == ApproachKind::Baseline {
                return Ok(depth);
            }
            match info.base_model {
                Some(base) => {
                    depth += 1;
                    if depth > 4096 {
                        return Err(CoreError::BaseChainTooDeep { id: id.clone(), limit: 4096 });
                    }
                    cur = SavedModelId(mmlib_store::DocId::from_string(base));
                }
                None => return Ok(depth),
            }
        }
    }

    /// Saves `model` under a [`ChainPolicy`]: with the policy's cheap
    /// approach while the resulting chain stays within `max_depth`,
    /// otherwise as a full snapshot (resetting the chain).
    ///
    /// `provenance` must be supplied when the cheap approach is
    /// [`ApproachKind::Provenance`].
    ///
    /// Thin wrapper over [`SaveService::save`] with a
    /// [`crate::report::SaveRequest::with_policy`] request.
    pub fn save_with_policy(
        &self,
        model: &mmlib_model::Model,
        base: &SavedModelId,
        relation: &str,
        policy: ChainPolicy,
        provenance: Option<&TrainProvenance>,
    ) -> Result<PolicySaveOutcome, CoreError> {
        let mut req = crate::report::SaveRequest::with_policy(model, base, policy).relation(relation);
        if let Some(prov) = provenance {
            req = req.provenance_data(prov);
        }
        let report = self.save(req)?;
        Ok(PolicySaveOutcome {
            id: report.id,
            used: report.approach,
            chain_depth: report
                .chain_depth
                .ok_or_else(|| missing_field("policy saves report a chain depth"))?,
            diff: report.diff,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_model::{ArchId, Model};
    use mmlib_store::ModelStorage;
    use crate::recovery::RecoverOptions;

    fn bump_classifier(model: &mut Model, salt: f32) {
        let prefix = model.arch.classifier_prefix();
        model.visit_trainable_mut(&mut |path, param, _| {
            if path.starts_with(prefix) {
                param.data_mut()[0] += salt;
            }
        });
    }

    #[test]
    fn chain_depth_counts_links() {
        let dir = tempfile::tempdir().unwrap();
        let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
        let mut model = Model::new_initialized(ArchId::TinyCnn, 1);
        model.set_fully_trainable();
        let mut id = svc.save_full(&model, None, "initial").unwrap();
        assert_eq!(svc.chain_depth(&id).unwrap(), 0);
        for expected in 1..=3usize {
            bump_classifier(&mut model, expected as f32);
            let (next, _) = svc.save_update(&model, &id, "partially_updated").unwrap();
            assert_eq!(svc.chain_depth(&next).unwrap(), expected);
            id = next;
        }
    }

    #[test]
    fn policy_promotes_at_the_bound_and_resets_the_staircase() {
        let dir = tempfile::tempdir().unwrap();
        let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
        let mut model = Model::new_initialized(ArchId::TinyCnn, 2);
        model.set_fully_trainable();
        let mut base = svc.save_full(&model, None, "initial").unwrap();
        let policy = ChainPolicy::updates(2);

        let mut used = Vec::new();
        for i in 0..7 {
            bump_classifier(&mut model, (i + 1) as f32);
            let outcome = svc
                .save_with_policy(&model, &base, "partially_updated", policy, None)
                .unwrap();
            // Recover every saved model exactly.
            let rec = svc.recover(&outcome.id, RecoverOptions::default()).unwrap();
            assert!(rec.model.models_equal(&model), "save {i}");
            assert!(outcome.chain_depth <= 2);
            used.push(outcome.used);
            base = outcome.id;
        }
        // Pattern: two cheap saves, then a promotion, repeating.
        assert_eq!(
            used,
            [
                ApproachKind::ParamUpdate,
                ApproachKind::ParamUpdate,
                ApproachKind::Baseline,
                ApproachKind::ParamUpdate,
                ApproachKind::ParamUpdate,
                ApproachKind::Baseline,
                ApproachKind::ParamUpdate,
            ]
        );
    }

    #[test]
    fn zero_depth_policy_degenerates_to_baseline() {
        let dir = tempfile::tempdir().unwrap();
        let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
        let mut model = Model::new_initialized(ArchId::TinyCnn, 3);
        model.set_fully_trainable();
        let base = svc.save_full(&model, None, "initial").unwrap();
        bump_classifier(&mut model, 1.0);
        let outcome = svc
            .save_with_policy(&model, &base, "partially_updated", ChainPolicy::updates(0), None)
            .unwrap();
        assert_eq!(outcome.used, ApproachKind::Baseline);
        assert_eq!(outcome.chain_depth, 0);
    }

    #[test]
    fn provenance_policy_requires_provenance_data() {
        let dir = tempfile::tempdir().unwrap();
        let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
        let mut model = Model::new_initialized(ArchId::TinyCnn, 4);
        model.set_fully_trainable();
        let base = svc.save_full(&model, None, "initial").unwrap();
        bump_classifier(&mut model, 1.0);
        let err = svc
            .save_with_policy(&model, &base, "partially_updated", ChainPolicy::provenance(3), None)
            .unwrap_err();
        assert!(matches!(err, CoreError::BadModelDocument { .. }));
    }
}
