//! Parameter-update approach (PUA, paper §3.2): save only what changed.
//!
//! Saving a derived model `M` (`B → M`) compares M's per-layer hashes to
//! B's *stored* hashes — loading only B's Merkle document, never its
//! parameters ("we can identify the changed layers by only recovering and
//! comparing the direct base model's hash values instead of recursively
//! recovering it fully"). Only the changed layers' tensors are serialized.
//!
//! Recovery is recursive: recover B (which may itself be an update), then
//! merge M's parameter update with M's values winning conflicts.

use std::time::Instant;

use mmlib_model::Model;
use mmlib_obs::PhaseClock;
use mmlib_tensor::ser::{state_from_bytes, state_to_bytes};

use crate::error::CoreError;
use crate::merkle::MerkleDiff;
use crate::meta::{ApproachKind, ModelInfoDoc, SavedModelId};
use crate::recovery::{RecoverBreakdown, RecoverOptions, SaveService};
use crate::report::{missing_field, SaveRequest};

impl SaveService {
    /// Saves `model` as a parameter update against `base`.
    ///
    /// Returns the saved id and the Merkle diff that determined the update
    /// (exposed for the Fig. 4 comparison-count experiments).
    ///
    /// Thin wrapper over [`SaveService::save`] with a
    /// [`SaveRequest::update`] request.
    pub fn save_update(
        &self,
        model: &Model,
        base: &SavedModelId,
        relation: &str,
    ) -> Result<(SavedModelId, MerkleDiff), CoreError> {
        let report = self.save(SaveRequest::update(model, base).relation(relation))?;
        let diff = report
            .diff
            .ok_or_else(|| missing_field("update reports carry a diff"))?;
        Ok((report.id, diff))
    }

    pub(crate) fn save_update_phased(
        &self,
        model: &Model,
        base: &SavedModelId,
        relation: &str,
        clock: &mut PhaseClock<'_>,
    ) -> Result<(SavedModelId, MerkleDiff), CoreError> {
        let relation = crate::baseline::parse_relation(relation, Some(base))?;

        // Load only the base's hash document — not its parameters.
        let base_info = clock.time("diff", || self.load_model_info(base))?;
        if base_info.arch != model.arch.name() {
            return Err(CoreError::BadModelDocument {
                id: base.clone(),
                reason: format!(
                    "parameter update requires matching architectures (base {}, model {})",
                    base_info.arch,
                    model.arch.name()
                ),
            });
        }
        let base_tree = clock.time("diff", || self.load_layer_hashes(&base_info, base))?;
        let tree = clock.time("hash", || self.save_tree(model));
        let diff = clock.time("diff", || base_tree.diff(&tree));

        // Serialize only the changed layers' state entries (parameters and
        // buffers — both are part of the exact representation).
        let changed: std::collections::BTreeSet<&str> =
            diff.changed.iter().map(|s| s.as_str()).collect();
        let entries = model.state_entries();
        let bytes = clock.time("serialize", || {
            let update: Vec<(&str, &mmlib_tensor::Tensor)> = entries
                .iter()
                .filter(|(path, _, _, _)| {
                    let layer = path.rsplit_once('.').map_or("", |(l, _)| l);
                    changed.contains(layer)
                })
                .map(|(p, t, _, _)| (p.as_str(), *t))
                .collect();
            state_to_bytes(update)
        });

        // One batch commits the whole save: artifacts, then model-info
        // referencing them via `$batch:N`, then the lineage record — item
        // order is visibility order, so crash windows match the old
        // sequential writes at a fraction of the sync cost.
        let info = ModelInfoDoc {
            approach: ApproachKind::ParamUpdate,
            arch: model.arch.name().to_string(),
            relation,
            base_model: Some(base.doc_id().as_str().to_string()),
            environment_doc: mmlib_store::batch_ref(1),
            code_file: None, // derived models share the base's code
            weights_file: Some(mmlib_store::batch_ref(0)),
            update_encoding: None,
            layer_hash_doc: mmlib_store::batch_ref(2),
            root_hash: tree.root().to_hex(),
            train_doc: None,
            dataset: None,
        };
        let batch = vec![
            mmlib_store::BatchItem::File { bytes: bytes.to_vec() },
            self.environment_item()?,
            self.layer_hashes_item(&tree)?,
            self.model_info_item(&info)?,
            self.lineage_item(&info, mmlib_store::batch_ref(3), Some(diff.changed.len()))?,
        ];
        let ids = clock.time("write", || self.storage().commit_batch(batch))?;
        let id = SavedModelId(crate::recovery::batch_doc_id(ids.into_iter().nth(3))?);
        Ok((id, diff))
    }

    /// Saves `model` as a **delta-compressed** parameter update against
    /// `base` — the storage extension of the §4.7 trade-off discussion.
    ///
    /// Unlike [`SaveService::save_update`], this needs the base model's
    /// parameters *in memory* (`base_model`) to form XOR deltas. That is the
    /// common U3 situation: the node just derived `model` from `base_model`
    /// and still holds both. The base's integrity is checked against the
    /// stored root hash before any delta is formed.
    /// Thin wrapper over [`SaveService::save`] with a
    /// [`SaveRequest::compressed_update`] request.
    pub fn save_update_compressed(
        &self,
        model: &Model,
        base_model: &Model,
        base: &SavedModelId,
        relation: &str,
    ) -> Result<(SavedModelId, MerkleDiff, mmlib_compress::EncodedUpdate), CoreError> {
        let report =
            self.save(SaveRequest::compressed_update(model, base_model, base).relation(relation))?;
        let diff = report
            .diff
            .ok_or_else(|| missing_field("compressed-update reports carry a diff"))?;
        let encoded = report
            .encoded
            .ok_or_else(|| missing_field("compressed-update reports carry the encoding"))?;
        Ok((report.id, diff, encoded))
    }

    pub(crate) fn save_update_compressed_phased(
        &self,
        model: &Model,
        base_model: &Model,
        base: &SavedModelId,
        relation: &str,
        clock: &mut PhaseClock<'_>,
    ) -> Result<(SavedModelId, MerkleDiff, mmlib_compress::EncodedUpdate), CoreError> {
        let relation = crate::baseline::parse_relation(relation, Some(base))?;
        let base_info = clock.time("diff", || self.load_model_info(base))?;
        if base_info.arch != model.arch.name() || base_model.arch != model.arch {
            return Err(CoreError::BadModelDocument {
                id: base.clone(),
                reason: "delta update requires matching architectures".into(),
            });
        }
        // The in-memory base must be the stored base, or deltas would
        // decode against the wrong parameters. (Charged to "hash": this is
        // a Merkle pass over the base's parameters.)
        clock.time("hash", || {
            crate::verify::verify_against_root(base_model, &base_info.root_hash, base)
        })?;

        let base_tree = clock.time("diff", || self.load_layer_hashes(&base_info, base))?;
        let tree = clock.time("hash", || self.save_tree(model));
        let diff = clock.time("diff", || base_tree.diff(&tree));
        let changed: std::collections::BTreeSet<&str> =
            diff.changed.iter().map(|s| s.as_str()).collect();

        let entries = model.state_entries();
        let update: Vec<(&str, &mmlib_tensor::Tensor)> = entries
            .iter()
            .filter(|(path, _, _, _)| {
                let layer = path.rsplit_once('.').map_or("", |(l, _)| l);
                changed.contains(layer)
            })
            .map(|(p, t, _, _)| (p.as_str(), *t))
            .collect();

        let base_entries = base_model.state_entries();
        let base_map: std::collections::BTreeMap<&str, &mmlib_tensor::Tensor> =
            base_entries.iter().map(|(p, t, _, _)| (p.as_str(), *t)).collect();
        let base_fn = |name: &str| base_map.get(name).copied();
        let encoded = clock.time("compress", || mmlib_compress::encode_update(&update, &base_fn));

        // Same single-batch layout as the uncompressed path above.
        let info = ModelInfoDoc {
            approach: ApproachKind::ParamUpdate,
            arch: model.arch.name().to_string(),
            relation,
            base_model: Some(base.doc_id().as_str().to_string()),
            environment_doc: mmlib_store::batch_ref(1),
            code_file: None,
            weights_file: Some(mmlib_store::batch_ref(0)),
            update_encoding: Some("delta_v1".to_string()),
            layer_hash_doc: mmlib_store::batch_ref(2),
            root_hash: tree.root().to_hex(),
            train_doc: None,
            dataset: None,
        };
        let batch = vec![
            mmlib_store::BatchItem::File { bytes: encoded.bytes.clone() },
            self.environment_item()?,
            self.layer_hashes_item(&tree)?,
            self.model_info_item(&info)?,
            self.lineage_item(&info, mmlib_store::batch_ref(3), Some(diff.changed.len()))?,
        ];
        let ids = clock.time("write", || self.storage().commit_batch(batch))?;
        let id = SavedModelId(crate::recovery::batch_doc_id(ids.into_iter().nth(3))?);
        Ok((id, diff, encoded))
    }

    /// Recovers a parameter-update model: recover the base, merge the update.
    pub(crate) fn recover_update(
        &self,
        info: &ModelInfoDoc,
        id: &SavedModelId,
        opts: &RecoverOptions,
        depth: usize,
        breakdown: &mut RecoverBreakdown,
    ) -> Result<Model, CoreError> {
        let base_id = info.base_model.as_ref().ok_or_else(|| CoreError::BadModelDocument {
            id: id.clone(),
            reason: "parameter-update document lacks a base model".into(),
        })?;
        let base_id = SavedModelId(mmlib_store::DocId::from_string(base_id.clone()));
        let model = self.recover_inner(&base_id, opts, depth + 1, breakdown)?;
        self.apply_update_onto(info, id, model, breakdown)
    }

    /// Applies a parameter-update document onto its already-recovered base
    /// (the non-recursive half of [`SaveService::recover_update`]).
    pub(crate) fn apply_update_onto(
        &self,
        info: &ModelInfoDoc,
        id: &SavedModelId,
        mut model: Model,
        breakdown: &mut RecoverBreakdown,
    ) -> Result<Model, CoreError> {
        let weights_id = info.weights_file.as_ref().ok_or_else(|| CoreError::BadModelDocument {
            id: id.clone(),
            reason: "parameter-update document lacks an update file".into(),
        })?;
        let start = Instant::now();
        let bytes = self.read_file(weights_id)?;
        breakdown.load += start.elapsed();

        let start = Instant::now();
        let entries = match info.update_encoding.as_deref() {
            None | Some("state_dict") => state_from_bytes(&bytes)?,
            Some("delta_v1") => {
                // Decode XOR deltas against the just-recovered base.
                let base_entries = model.state_entries();
                let base_map: std::collections::BTreeMap<&str, &mmlib_tensor::Tensor> =
                    base_entries.iter().map(|(p, t, _, _)| (p.as_str(), *t)).collect();
                let base_fn = |name: &str| base_map.get(name).copied();
                let decoded = mmlib_compress::decode_update(&bytes, &base_fn).map_err(|e| {
                    CoreError::BadModelDocument {
                        id: id.clone(),
                        reason: format!("undecodable delta update: {e}"),
                    }
                })?;
                drop(base_map);
                drop(base_entries);
                decoded
            }
            Some(other) => {
                return Err(CoreError::BadModelDocument {
                    id: id.clone(),
                    reason: format!("unknown update encoding {other:?}"),
                })
            }
        };
        // Merge policy (§3.2): prioritize M's information on conflicts.
        model.apply_update(&entries)?;
        breakdown.recover += start.elapsed();
        Ok(model)
    }
}
