//! Unified error type for mmlib-core.

use mmlib_data::container::ContainerError;
use mmlib_model::model::ModelError;
use mmlib_store::StoreError;
use mmlib_tensor::TensorError;

use crate::meta::SavedModelId;

/// Errors from saving, recovering, or verifying models.
#[derive(Debug)]
pub enum CoreError {
    /// Storage layer failure.
    Store(StoreError),
    /// Tensor (de)serialization failure.
    Tensor(TensorError),
    /// State-dict application failure.
    Model(ModelError),
    /// Dataset container failure.
    Container(ContainerError),
    /// A saved-model document is missing or malformed.
    BadModelDocument {
        /// The offending model id.
        id: SavedModelId,
        /// What was wrong.
        reason: String,
    },
    /// The recovered model failed its integrity verification.
    VerificationFailed {
        /// The model whose recovery failed verification.
        id: SavedModelId,
        /// Diagnostic detail (which hash mismatched).
        reason: String,
    },
    /// The current environment does not match the saved environment.
    EnvironmentMismatch {
        /// Human-readable list of mismatching fields.
        mismatches: Vec<String>,
    },
    /// A base-model chain exceeded the configured depth limit (cycle guard).
    BaseChainTooDeep {
        /// The model whose chain overflowed.
        id: SavedModelId,
        /// The limit that was hit.
        limit: usize,
    },
    /// A provenance wrapper references an unknown class.
    UnknownWrapperClass(String),
    /// An internal invariant did not hold (a report missing the field its
    /// approach promises, an in-memory value failing to serialize). These
    /// were panics before the panic-freedom pass; they now surface as
    /// errors the caller can log and survive.
    Internal(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Store(e) => write!(f, "store error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Container(e) => write!(f, "dataset container error: {e}"),
            CoreError::BadModelDocument { id, reason } => {
                write!(f, "bad model document {id}: {reason}")
            }
            CoreError::VerificationFailed { id, reason } => {
                write!(f, "verification failed for {id}: {reason}")
            }
            CoreError::EnvironmentMismatch { mismatches } => {
                write!(f, "environment mismatch: {}", mismatches.join("; "))
            }
            CoreError::BaseChainTooDeep { id, limit } => {
                write!(f, "base-model chain of {id} exceeds depth limit {limit}")
            }
            CoreError::UnknownWrapperClass(c) => write!(f, "unknown wrapper class {c}"),
            CoreError::Internal(reason) => write!(f, "internal invariant violated: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Serializes an in-memory value to a JSON document body, mapping failure
/// to [`CoreError::Internal`] — these types only fail to serialize on an
/// internal bug, which callers log and survive instead of aborting on.
pub(crate) fn to_json_value<T: serde::Serialize>(
    what: &str,
    value: T,
) -> Result<serde_json::Value, CoreError> {
    serde_json::to_value(value)
        .map_err(|e| CoreError::Internal(format!("{what} failed to serialize: {e}")))
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<ContainerError> for CoreError {
    fn from(e: ContainerError) -> Self {
        CoreError::Container(e)
    }
}
