//! Recovery verification.
//!
//! Every save records the Merkle root over the model's layer hashes;
//! recovery recomputes the root over the recovered parameters and compares
//! (paper §3.1 "optionally checksums to verify that a model was correctly
//! recovered" / §3.2 "beneficial to check if a model was correctly
//! recovered").

use mmlib_model::Model;

use crate::error::CoreError;
use crate::merkle::MerkleTree;
use crate::meta::SavedModelId;

/// Verifies a recovered model against a stored Merkle root (hex).
pub fn verify_against_root(model: &Model, root_hex: &str, id: &SavedModelId) -> Result<(), CoreError> {
    let tree = MerkleTree::from_model(model);
    let actual = tree.root().to_hex();
    if actual == root_hex {
        Ok(())
    } else {
        Err(CoreError::VerificationFailed {
            id: id.clone(),
            reason: format!("merkle root mismatch: stored {root_hex}, recovered {actual}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_model::ArchId;
    use mmlib_store::DocId;

    #[test]
    fn matching_root_verifies() {
        let model = Model::new_initialized(ArchId::ResNet18, 1);
        let root = MerkleTree::from_model(&model).root().to_hex();
        let id = SavedModelId(DocId::from_string("t-1".into()));
        assert!(verify_against_root(&model, &root, &id).is_ok());
    }

    #[test]
    fn single_bit_flip_fails_verification() {
        let mut model = Model::new_initialized(ArchId::ResNet18, 1);
        let root = MerkleTree::from_model(&model).root().to_hex();
        // Flip one bit of one parameter.
        model.visit_trainable_mut(&mut |path, param, _| {
            if path == "fc.bias" {
                let d = param.data_mut();
                d[0] = f32::from_bits(d[0].to_bits() ^ 1);
            }
        });
        let id = SavedModelId(DocId::from_string("t-2".into()));
        let err = verify_against_root(&model, &root, &id).unwrap_err();
        assert!(matches!(err, CoreError::VerificationFailed { .. }));
    }
}
