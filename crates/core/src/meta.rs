//! Document schemas for saved models.
//!
//! Paper §3.1: metadata lives in JSON documents organized hierarchically —
//! a model-info document references an environment document, a layer-hash
//! document, stored files, its base model, and (for the provenance
//! approach) the wrapped training objects.

use mmlib_store::DocId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a saved model — the id of its model-info document.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SavedModelId(pub DocId);

impl SavedModelId {
    /// The underlying document id.
    pub fn doc_id(&self) -> &DocId {
        &self.0
    }
}

impl fmt::Display for SavedModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Which save approach produced a model document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ApproachKind {
    /// Baseline: complete independent snapshot (§3.1).
    Baseline,
    /// Parameter update: base reference + changed layers (§3.2).
    ParamUpdate,
    /// Model provenance: base reference + training provenance (§3.3).
    Provenance,
}

impl ApproachKind {
    /// All approaches in paper order.
    pub fn all() -> [ApproachKind; 3] {
        [ApproachKind::Baseline, ApproachKind::ParamUpdate, ApproachKind::Provenance]
    }

    /// The paper's abbreviation (BA / PUA / MPA).
    pub fn abbrev(self) -> &'static str {
        match self {
            ApproachKind::Baseline => "BA",
            ApproachKind::ParamUpdate => "PUA",
            ApproachKind::Provenance => "MPA",
        }
    }
}

impl fmt::Display for ApproachKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// How a model relates to its base (paper §2.1 / Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ModelRelation {
    /// No base model (the U1 initial model).
    Initial,
    /// Same architecture, all parameters retrained.
    FullyUpdated,
    /// Same architecture, only a trainable subset (the classifier) retrained.
    PartiallyUpdated,
}

impl ModelRelation {
    /// Applies the relation's trainability to a model (the paper trains all
    /// parameters for fully updated versions and "only the last fully
    /// connected layers" for partially updated ones).
    pub fn apply_trainability(self, model: &mut mmlib_model::Model) {
        match self {
            ModelRelation::Initial | ModelRelation::FullyUpdated => model.set_fully_trainable(),
            ModelRelation::PartiallyUpdated => model.set_classifier_only_trainable(),
        }
    }
}

/// Reference to a training dataset inside a provenance document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRef {
    /// Table 1 short name (`"CF-512"` ...).
    pub name: String,
    /// Byte-size scale factor the dataset was materialized with.
    pub scale: f64,
    /// The stored single-file container, or `None` when the dataset is
    /// managed externally (paper §3.3, "Managing Data sets": then only the
    /// reference is saved).
    pub container_file: Option<String>,
    /// SHA-256 over the dataset content (identity + all blobs).
    pub content_digest: String,
}

/// The body of a `model_info` document — one per saved model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfoDoc {
    /// The approach that saved this model.
    pub approach: ApproachKind,
    /// Architecture name ([`mmlib_model::ArchId::name`]).
    pub arch: String,
    /// Relation to the base model.
    pub relation: ModelRelation,
    /// Base model-info document id, absent for initial models.
    pub base_model: Option<String>,
    /// Environment document id.
    pub environment_doc: String,
    /// Architecture-code file id (full snapshots only; derived models
    /// reference the base's code through the chain).
    pub code_file: Option<String>,
    /// Serialized parameters: the full state dict (baseline) or the pruned
    /// parameter update (param-update). Absent for provenance saves.
    pub weights_file: Option<String>,
    /// Encoding of the weights file: `None`/`"state_dict"` for the plain
    /// binary state dict, `"delta_v1"` for the XOR-delta compressed update
    /// (the storage-extension codec in `mmlib-compress`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub update_encoding: Option<String>,
    /// Layer-hash (Merkle) document id.
    pub layer_hash_doc: String,
    /// Merkle root over the model's layer hashes (hex) — the recovery
    /// checksum of §3.1.
    pub root_hash: String,
    /// Train-service wrapper document id (provenance saves only).
    pub train_doc: Option<String>,
    /// Training dataset reference (provenance saves only).
    pub dataset: Option<DatasetRef>,
}

/// The body of a `lineage` document — one per saved model, written by
/// [`SaveService::save`](crate::SaveService::save) in the same save. It
/// records the *derivation* edge (which model this version was trained
/// from) independently of the *recovery* edge in the model-info document:
/// compaction re-bases recovery onto a snapshot without losing where a
/// version historically came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageRecordDoc {
    /// The model-info document id this record describes.
    pub model: String,
    /// Parent model-info id for recovery purposes; `None` for roots and for
    /// versions re-based onto their own snapshot by compaction.
    pub parent: Option<String>,
    /// The approach that saved this version.
    pub approach: ApproachKind,
    /// Relation to the parent.
    pub relation: ModelRelation,
    /// Merkle root of this version (hex) — joins the lineage node to the
    /// model's content identity.
    pub root_hash: String,
    /// Number of layers that differed from the parent at save time
    /// (param-update saves only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub changed_layers: Option<usize>,
    /// Free-form labels attached via `mmlib lineage tag`.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub tags: Vec<String>,
    /// The original parent id, kept for provenance after compaction cut the
    /// recovery edge (`parent` was cleared or redirected).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rebased_from: Option<String>,
}

/// Document kinds used by mmlib.
pub mod kinds {
    /// Model-info documents.
    pub const MODEL_INFO: &str = "model_info";
    /// Environment captures.
    pub const ENVIRONMENT: &str = "environment";
    /// Layer-hash (Merkle) documents.
    pub const LAYER_HASHES: &str = "layer_hashes";
    /// Wrapper objects (train service, dataloader, optimizer).
    pub const WRAPPER: &str = "wrapper";
    /// Lineage records (one per saved model, see [`super::LineageRecordDoc`]).
    pub const LINEAGE: &str = "lineage";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approach_abbrevs_match_paper() {
        assert_eq!(ApproachKind::Baseline.abbrev(), "BA");
        assert_eq!(ApproachKind::ParamUpdate.abbrev(), "PUA");
        assert_eq!(ApproachKind::Provenance.abbrev(), "MPA");
    }

    #[test]
    fn model_info_doc_serde_round_trip() {
        let doc = ModelInfoDoc {
            approach: ApproachKind::ParamUpdate,
            arch: "resnet152".into(),
            relation: ModelRelation::PartiallyUpdated,
            base_model: Some("abc-1".into()),
            environment_doc: "abc-2".into(),
            code_file: None,
            weights_file: Some("f-1".into()),
            update_encoding: None,
            layer_hash_doc: "abc-3".into(),
            root_hash: "00".repeat(32),
            train_doc: None,
            dataset: None,
        };
        let json = serde_json::to_value(&doc).unwrap();
        assert_eq!(json["approach"], "param_update");
        assert_eq!(json["relation"], "partially_updated");
        let back: ModelInfoDoc = serde_json::from_value(json).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn lineage_record_doc_serde_round_trip() {
        let doc = LineageRecordDoc {
            model: "m-2".into(),
            parent: Some("m-1".into()),
            approach: ApproachKind::ParamUpdate,
            relation: ModelRelation::PartiallyUpdated,
            root_hash: "ab".repeat(32),
            changed_layers: Some(3),
            tags: vec!["v2".into()],
            rebased_from: None,
        };
        let json = serde_json::to_value(&doc).unwrap();
        assert_eq!(json["parent"], "m-1");
        assert!(json.get("rebased_from").is_none(), "None fields stay absent");
        let back: LineageRecordDoc = serde_json::from_value(json).unwrap();
        assert_eq!(doc, back);

        // Optional fields default when absent (old stores have no tags).
        let minimal: LineageRecordDoc = serde_json::from_value(serde_json::json!({
            "model": "m-1", "parent": null, "approach": "baseline",
            "relation": "initial", "root_hash": "00",
        }))
        .unwrap();
        assert!(minimal.tags.is_empty());
        assert!(minimal.changed_layers.is_none());
    }

    #[test]
    fn relation_trainability_application() {
        let mut m = mmlib_model::Model::new_initialized(mmlib_model::ArchId::ResNet18, 0);
        ModelRelation::PartiallyUpdated.apply_trainability(&mut m);
        assert_eq!(m.trainable_param_count(), 513_000);
        ModelRelation::FullyUpdated.apply_trainability(&mut m);
        assert_eq!(m.trainable_param_count(), m.param_count());
    }
}
