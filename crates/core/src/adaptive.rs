//! Adaptive approach selection (paper §4.7, "Adaptive Approach").
//!
//! The paper closes by proposing "a heuristic that decides which is the
//! most suitable approach (BA, PUA, or the MPA) for every model", based on
//! the observation that BA/PUA costs scale with the *model parameters*
//! while MPA costs scale with the *training dataset*. This module
//! implements that heuristic, following the decision discussion of §4.7:
//!
//! * If recovery time has the highest priority → **baseline**.
//! * Otherwise estimate per-approach storage —
//!   BA ≈ full parameter bytes, PUA ≈ trainable-parameter bytes (the
//!   expected update), MPA ≈ dataset bytes (or ≈ 0 when the dataset is
//!   managed externally) — and pick the cheapest, honoring an optional hard
//!   storage cap and an optional recovery-time budget (MPA's replay time
//!   estimate must fit).

use mmlib_model::Model;
use serde::{Deserialize, Serialize};
use std::time::Duration;

use crate::meta::ApproachKind;

/// Inputs to the selection heuristic for one save decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaveScenario {
    /// Full model state size in bytes (BA's cost).
    pub model_bytes: u64,
    /// Expected parameter-update size in bytes (PUA's cost): the trainable
    /// subset for partial updates, the full state for full updates.
    pub update_bytes: u64,
    /// Training-dataset size in bytes (MPA's dominant cost).
    pub dataset_bytes: u64,
    /// True when a dedicated system manages the dataset, so MPA stores only
    /// a reference (§4.7's "scenario in which the MPA could be preferred").
    pub dataset_external: bool,
    /// Estimated wall time to replay the training once (MPA's recover cost
    /// per chain link).
    pub estimated_train_time: Duration,
    /// How deep the base chain already is (recursive recovery multiplies
    /// replay/merge costs).
    pub chain_depth: u32,
}

/// Selection policy knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[derive(Default)]
pub struct Policy {
    /// Recovery time beats storage: always choose the baseline (§4.7,
    /// "if ... the TTR has the highest priority, the BA is the preferred
    /// choice").
    pub prioritize_recovery: bool,
    /// Optional hard cap on bytes per save.
    pub max_storage_bytes: Option<u64>,
    /// Optional budget for a single recovery of this model.
    pub max_recover_time: Option<Duration>,
}


/// A scored decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The chosen approach.
    pub approach: ApproachKind,
    /// Estimated storage for the chosen approach.
    pub estimated_bytes: u64,
    /// Human-readable rationale.
    pub rationale: String,
}

impl SaveScenario {
    /// Builds a scenario from a model (sizes derive from its current
    /// trainability) and dataset facts.
    pub fn from_model(
        model: &Model,
        dataset_bytes: u64,
        dataset_external: bool,
        estimated_train_time: Duration,
        chain_depth: u32,
    ) -> SaveScenario {
        SaveScenario {
            model_bytes: model.state_nbytes(),
            update_bytes: model.trainable_param_count() * 4,
            dataset_bytes,
            dataset_external,
            estimated_train_time,
            chain_depth,
        }
    }

    /// Estimated storage consumption per approach.
    pub fn estimated_bytes(&self, approach: ApproachKind) -> u64 {
        match approach {
            ApproachKind::Baseline => self.model_bytes,
            ApproachKind::ParamUpdate => self.update_bytes,
            ApproachKind::Provenance => {
                if self.dataset_external {
                    // Wrappers + metadata only; small and model-independent.
                    64 * 1024
                } else {
                    self.dataset_bytes
                }
            }
        }
    }

    /// Estimated single-recovery wall time per approach, relative to one
    /// training replay (BA/PUA loads are folded into a small constant).
    pub fn estimated_recover_time(&self, approach: ApproachKind) -> Duration {
        match approach {
            ApproachKind::Baseline => Duration::from_millis(100),
            ApproachKind::ParamUpdate => {
                Duration::from_millis(100) * (self.chain_depth + 1)
            }
            ApproachKind::Provenance => {
                self.estimated_train_time * (self.chain_depth + 1)
            }
        }
    }
}

/// Chooses the approach for one save under a policy.
pub fn choose_approach(scenario: &SaveScenario, policy: &Policy) -> Decision {
    if policy.prioritize_recovery {
        return Decision {
            approach: ApproachKind::Baseline,
            estimated_bytes: scenario.estimated_bytes(ApproachKind::Baseline),
            rationale: "recovery time prioritized: baseline avoids chain resolution".into(),
        };
    }
    let mut candidates: Vec<ApproachKind> = ApproachKind::all().to_vec();
    if let Some(budget) = policy.max_recover_time {
        candidates.retain(|a| scenario.estimated_recover_time(*a) <= budget);
    }
    if let Some(cap) = policy.max_storage_bytes {
        let capped: Vec<ApproachKind> = candidates
            .iter()
            .copied()
            .filter(|a| scenario.estimated_bytes(*a) <= cap)
            .collect();
        if !capped.is_empty() {
            candidates = capped;
        }
    }
    // An empty candidate set means the budgets were unsatisfiable; the
    // lossless fallback is the baseline.
    let Some(best) = candidates.into_iter().min_by_key(|a| scenario.estimated_bytes(*a)) else {
        return Decision {
            approach: ApproachKind::Baseline,
            estimated_bytes: scenario.estimated_bytes(ApproachKind::Baseline),
            rationale: "no approach met the configured budgets; falling back to baseline".into(),
        };
    };
    Decision {
        approach: best,
        estimated_bytes: scenario.estimated_bytes(best),
        rationale: format!(
            "cheapest storage among feasible approaches \
             (BA {} B, PUA {} B, MPA {} B)",
            scenario.estimated_bytes(ApproachKind::Baseline),
            scenario.estimated_bytes(ApproachKind::ParamUpdate),
            scenario.estimated_bytes(ApproachKind::Provenance),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(model_mb: u64, update_mb: u64, dataset_mb: u64) -> SaveScenario {
        SaveScenario {
            model_bytes: model_mb * 1_000_000,
            update_bytes: update_mb * 1_000_000,
            dataset_bytes: dataset_mb * 1_000_000,
            dataset_external: false,
            estimated_train_time: Duration::from_secs(10),
            chain_depth: 2,
        }
    }

    #[test]
    fn recovery_priority_always_picks_baseline() {
        let s = scenario(242, 8, 94);
        let d = choose_approach(&s, &Policy { prioritize_recovery: true, ..Default::default() });
        assert_eq!(d.approach, ApproachKind::Baseline);
    }

    #[test]
    fn partial_resnet152_prefers_param_update() {
        // Paper Fig. 7(d): partial ResNet-152 update (8 MB) beats the
        // snapshot (242 MB) and the CF-512 dataset (94 MB).
        let s = scenario(242, 8, 94);
        let d = choose_approach(&s, &Policy::default());
        assert_eq!(d.approach, ApproachKind::ParamUpdate);
    }

    #[test]
    fn full_resnet152_small_dataset_prefers_provenance() {
        // Paper Fig. 7(c): fully updated ResNet-152 — the 94 MB dataset
        // beats both parameter-bound costs (242 MB).
        let s = scenario(242, 242, 94);
        let d = choose_approach(&s, &Policy::default());
        assert_eq!(d.approach, ApproachKind::Provenance);
    }

    #[test]
    fn full_mobilenet_large_dataset_avoids_provenance() {
        // Paper Fig. 7(a): fully updated MobileNetV2 (14 MB) vs CF-512
        // (94 MB): MPA loses; BA and PUA tie, PUA wins on metadata sharing.
        let s = scenario(14, 14, 94);
        let d = choose_approach(&s, &Policy::default());
        assert_ne!(d.approach, ApproachKind::Provenance);
    }

    #[test]
    fn external_dataset_flips_to_provenance() {
        // §4.7: when the training data is centrally stored anyway, MPA's
        // storage reduces to the training information.
        let mut s = scenario(14, 14, 94);
        s.dataset_external = true;
        let d = choose_approach(&s, &Policy::default());
        assert_eq!(d.approach, ApproachKind::Provenance);
    }

    #[test]
    fn recover_budget_excludes_provenance() {
        let s = scenario(242, 242, 10); // MPA cheapest on storage
        let d = choose_approach(
            &s,
            &Policy { max_recover_time: Some(Duration::from_secs(5)), ..Default::default() },
        );
        // 3 chain links x 10 s replay exceeds the 5 s budget.
        assert_ne!(d.approach, ApproachKind::Provenance);
    }

    #[test]
    fn impossible_budgets_fall_back_to_baseline() {
        let s = scenario(242, 242, 242);
        let d = choose_approach(
            &s,
            &Policy {
                max_storage_bytes: Some(1),
                max_recover_time: Some(Duration::from_nanos(1)),
                ..Default::default()
            },
        );
        assert_eq!(d.approach, ApproachKind::Baseline);
        assert!(d.rationale.contains("falling back"));
    }

    #[test]
    fn storage_cap_prefers_fitting_approach() {
        let s = scenario(242, 8, 94);
        let d = choose_approach(
            &s,
            &Policy { max_storage_bytes: Some(10_000_000), ..Default::default() },
        );
        assert_eq!(d.approach, ApproachKind::ParamUpdate);
    }
}
