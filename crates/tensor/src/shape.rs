//! Tensor shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a dense, row-major tensor.
///
/// A scalar has an empty dims list; a vector has one dim; a conv weight has
/// four (`[out_channels, in_channels/groups, k, k]`). Shapes are value types
/// and compare structurally.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dims list.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    /// Panics if `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Row-major strides for this shape (innermost stride is 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index, or `None` if out of bounds.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.0.len() {
            return None;
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for d in (0..self.0.len()).rev() {
            if index[d] >= self.0[d] {
                return None;
            }
            off += index[d] * stride;
            stride *= self.0[d];
        }
        Some(off)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
    }

    #[test]
    fn numel_is_product_of_dims() {
        assert_eq!(Shape::from([2, 3, 4]).numel(), 24);
        assert_eq!(Shape::from([7]).numel(), 7);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
    }

    #[test]
    fn offset_maps_multi_index() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), Some(0));
        assert_eq!(s.offset(&[1, 2, 3]), Some(23));
        assert_eq!(s.offset(&[0, 1, 2]), Some(6));
    }

    #[test]
    fn offset_rejects_out_of_bounds_and_wrong_rank() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0, 3]), None);
        assert_eq!(s.offset(&[0]), None);
        assert_eq!(s.offset(&[0, 0, 0]), None);
    }

    #[test]
    fn display_renders_dims() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
