//! Weight initializers.
//!
//! Each initializer consumes randomness from an explicit [`Pcg32`], so that
//! §2.3's "set the seed" discipline makes model construction bit-reproducible.
//! The set mirrors what torchvision's five evaluation models actually use:
//! Kaiming (He) init for conv layers, uniform fan-in init for linear layers,
//! constants for batch-norm, and — only in GoogLeNet — an expensive truncated
//! normal, whose cost the paper's Fig. 12 highlights.

use crate::prng::Pcg32;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Which initialization rule to apply to a parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Init {
    /// All zeros (biases, BN running means).
    Zeros,
    /// All ones (BN scale, BN running vars).
    Ones,
    /// A constant fill.
    Constant(f32),
    /// Uniform in `[-bound, bound]` with `bound = sqrt(6 / ((1+a²)·fan_in))`
    /// — Kaiming/He uniform as used by PyTorch conv defaults (`a = √5`).
    KaimingUniform {
        /// Negative-slope parameter of the assumed leaky ReLU.
        a: f32,
    },
    /// Normal with `std = sqrt(2 / fan_out)` — He normal (ResNet conv init).
    KaimingNormalFanOut,
    /// Uniform in `[-1/sqrt(fan_in), 1/sqrt(fan_in)]` (PyTorch linear/bias).
    UniformFanIn,
    /// Xavier/Glorot uniform: `bound = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Truncated normal on `[-2σ, 2σ]` via rejection sampling (GoogLeNet).
    ///
    /// Deliberately implemented with the same rejection scheme as
    /// scipy.stats.truncnorm-backed torchvision code; its cost is what makes
    /// GoogLeNet's recovery disproportionately slow in the paper's Fig. 12.
    TruncatedNormal {
        /// Standard deviation of the underlying normal.
        std: f32,
    },
    /// Truncated normal on `[-2σ, 2σ]` via the inverse-CDF (ppf) method.
    ///
    /// This reproduces the *cost profile* of torchvision's original
    /// GoogLeNet initializer, which sampled through
    /// `scipy.stats.truncnorm.ppf`: one high-precision inverse-error-function
    /// evaluation per parameter (here: Newton iterations on an `erf` series
    /// in `f64`). The paper's Fig. 12 attributes GoogLeNet's ~7× slower
    /// initialization — and thus its recovery-time anomaly — to exactly this
    /// routine, so we keep the expensive method rather than the cheap
    /// rejection sampler used by [`Init::TruncatedNormal`].
    TruncatedNormalPpf {
        /// Standard deviation of the underlying normal.
        std: f32,
    },
}

/// Error function via its Maclaurin series (converges for the |x| ≤ 2 range
/// the truncated-normal sampler needs). Deliberately the straightforward,
/// high-iteration implementation — see [`Init::TruncatedNormalPpf`].
fn erf_series(x: f64) -> f64 {
    let mut term = x;
    let mut sum = x;
    let x2 = x * x;
    for n in 1..64 {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < sum.abs() * 1e-17 {
            break;
        }
    }
    sum * std::f64::consts::FRAC_2_SQRT_PI
}

/// Inverse error function via Newton iterations on [`erf_series`].
fn erfinv_newton(y: f64) -> f64 {
    debug_assert!((-1.0..=1.0).contains(&y));
    // Initial guess from the Winitzki approximation; Newton polish to f64
    // precision. Each iteration re-evaluates the erf series — the expense is
    // the point (see `Init::TruncatedNormalPpf`).
    let a = 0.147f64;
    let ln1my2 = (1.0 - y * y).max(f64::MIN_POSITIVE).ln();
    let term = 2.0 / (std::f64::consts::PI * a) + ln1my2 / 2.0;
    let mut x = y.signum() * ((term * term - ln1my2 / a).sqrt() - term).max(0.0).sqrt();
    for _ in 0..4 {
        let err = erf_series(x) - y;
        // d/dx erf(x) = 2/sqrt(pi) · exp(-x²)
        let deriv = std::f64::consts::FRAC_2_SQRT_PI * (-x * x).exp();
        if deriv.abs() < 1e-300 || err.abs() < 1e-12 {
            break;
        }
        x -= err / deriv;
    }
    x
}

/// Standard-normal CDF via the erf series.
fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf_series(x / std::f64::consts::SQRT_2))
}

/// One truncated-normal sample on `[cdf_lo, cdf_hi]` (precomputed CDF
/// bounds) via the inverse CDF.
fn truncnorm_ppf_sample(rng: &mut Pcg32, cdf_lo: f64, cdf_hi: f64) -> f64 {
    let u = cdf_lo + (cdf_hi - cdf_lo) * rng.next_f64();
    std::f64::consts::SQRT_2 * erfinv_newton(2.0 * u - 1.0)
}

/// Fan-in / fan-out of a parameter tensor, PyTorch conventions:
/// linear `[out, in]`, conv `[out, in/groups, k, k]`.
pub fn fan_in_out(shape: &Shape) -> (usize, usize) {
    let dims = shape.dims();
    match dims.len() {
        0 => (1, 1),
        1 => (dims[0], dims[0]),
        2 => (dims[1], dims[0]),
        _ => {
            let receptive: usize = dims[2..].iter().product();
            (dims[1] * receptive, dims[0] * receptive)
        }
    }
}

impl Init {
    /// Materializes a tensor of `shape` using this rule and `rng`.
    pub fn materialize(self, shape: impl Into<Shape>, rng: &mut Pcg32) -> Tensor {
        let shape = shape.into();
        let (fan_in, fan_out) = fan_in_out(&shape);
        match self {
            Init::Zeros => Tensor::zeros(shape),
            Init::Ones => Tensor::ones(shape),
            Init::Constant(c) => Tensor::full(shape, c),
            Init::KaimingUniform { a } => {
                let gain = (2.0 / (1.0 + a * a)).sqrt();
                let bound = gain * (3.0 / fan_in.max(1) as f32).sqrt();
                Tensor::rand_uniform(shape, -bound, bound, rng)
            }
            Init::KaimingNormalFanOut => {
                let std = (2.0 / fan_out.max(1) as f32).sqrt();
                Tensor::rand_normal(shape, 0.0, std, rng)
            }
            Init::UniformFanIn => {
                let bound = 1.0 / (fan_in.max(1) as f32).sqrt();
                Tensor::rand_uniform(shape, -bound, bound, rng)
            }
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::rand_uniform(shape, -bound, bound, rng)
            }
            Init::TruncatedNormal { std } => {
                let n = shape.numel();
                let data = (0..n)
                    .map(|_| rng.truncated_normal(0.0, std, -2.0, 2.0))
                    .collect();
                // mmlib-lint: allow(P1, data has exactly shape.numel() elements by construction)
                Tensor::from_vec(shape, data).expect("length matches by construction")
            }
            Init::TruncatedNormalPpf { std } => {
                let n = shape.numel();
                let (cdf_lo, cdf_hi) = (norm_cdf(-2.0), norm_cdf(2.0));
                let data = (0..n)
                    .map(|_| (std as f64 * truncnorm_ppf_sample(rng, cdf_lo, cdf_hi)) as f32)
                    .collect();
                // mmlib-lint: allow(P1, data has exactly shape.numel() elements by construction)
                Tensor::from_vec(shape, data).expect("length matches by construction")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_in_out_conventions() {
        assert_eq!(fan_in_out(&Shape::from([1000, 512])), (512, 1000));
        assert_eq!(fan_in_out(&Shape::from([64, 3, 7, 7])), (3 * 49, 64 * 49));
        assert_eq!(fan_in_out(&Shape::from([64])), (64, 64));
        assert_eq!(fan_in_out(&Shape::scalar()), (1, 1));
    }

    #[test]
    fn constant_inits() {
        let mut rng = Pcg32::seeded(0);
        assert!(Init::Zeros.materialize([4], &mut rng).data().iter().all(|&v| v == 0.0));
        assert!(Init::Ones.materialize([4], &mut rng).data().iter().all(|&v| v == 1.0));
        assert!(Init::Constant(0.5).materialize([4], &mut rng).data().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn kaiming_uniform_respects_bound() {
        let mut rng = Pcg32::seeded(1);
        let t = Init::KaimingUniform { a: 5f32.sqrt() }.materialize([64, 16, 3, 3], &mut rng);
        let bound = (2.0f32 / 6.0).sqrt() * (3.0f32 / (16.0 * 9.0)).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound * 1.0001));
    }

    #[test]
    fn truncated_normal_stays_within_two_sigma() {
        let mut rng = Pcg32::seeded(2);
        let t = Init::TruncatedNormal { std: 0.01 }.materialize([2048], &mut rng);
        assert!(t.data().iter().all(|v| v.abs() <= 0.02 * 1.0001));
    }

    #[test]
    fn erf_series_matches_known_values() {
        // erf(1) = 0.8427007929497149, erf(2) = 0.9953222650189527
        assert!((erf_series(1.0) - 0.8427007929497149).abs() < 1e-12);
        assert!((erf_series(2.0) - 0.9953222650189527).abs() < 1e-12);
        assert!((erf_series(-1.0) + 0.8427007929497149).abs() < 1e-12);
        assert!(erf_series(0.0).abs() < 1e-15);
    }

    #[test]
    fn erfinv_inverts_erf() {
        for &x in &[0.0, 0.3, -0.7, 1.2, -1.9, 1.99] {
            let y = erf_series(x);
            let back = erfinv_newton(y);
            assert!((back - x).abs() < 1e-9, "x={x} back={back}");
        }
    }

    #[test]
    fn ppf_truncnorm_within_bounds_and_deterministic() {
        let mut rng = Pcg32::seeded(5);
        let t = Init::TruncatedNormalPpf { std: 0.01 }.materialize([4096], &mut rng);
        assert!(t.data().iter().all(|v| v.abs() <= 0.02 * 1.001));
        let mut rng2 = Pcg32::seeded(5);
        let t2 = Init::TruncatedNormalPpf { std: 0.01 }.materialize([4096], &mut rng2);
        assert!(t.bit_eq(&t2));
        // Distribution sanity: roughly centered.
        let mean: f32 = t.data().iter().sum::<f32>() / t.numel() as f32;
        assert!(mean.abs() < 1e-3);
    }

    #[test]
    fn init_is_seed_deterministic() {
        let a = Init::XavierUniform.materialize([128, 64], &mut Pcg32::seeded(3));
        let b = Init::XavierUniform.materialize([128, 64], &mut Pcg32::seeded(3));
        assert!(a.bit_eq(&b));
        let c = Init::XavierUniform.materialize([128, 64], &mut Pcg32::seeded(4));
        assert!(!a.bit_eq(&c));
    }
}
