//! Error type for tensor operations.

use std::fmt;

/// Errors produced by tensor construction, kernels, and (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors (or a tensor and an expectation) disagree on shape.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape (as dims) of the left/expected operand.
        expected: Vec<usize>,
        /// Shape (as dims) of the right/actual operand.
        actual: Vec<usize>,
    },
    /// The number of elements implied by a shape does not match the buffer.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending flat index.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
    /// The serialized byte stream is malformed or truncated.
    Corrupt(String),
    /// The serialized byte stream uses an unknown format version.
    UnsupportedVersion(u16),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, expected, actual } => {
                write!(f, "shape mismatch in {op}: expected {expected:?}, got {actual:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: shape implies {expected} elements, got {actual}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for tensor of {len} elements")
            }
            TensorError::Corrupt(msg) => write!(f, "corrupt tensor bytes: {msg}"),
            TensorError::UnsupportedVersion(v) => {
                write!(f, "unsupported tensor format version {v}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
