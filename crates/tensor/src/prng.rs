//! Version-stable pseudorandom number generation.
//!
//! §2.3 of the paper identifies *intentional randomness* (weight init, data
//! augmentation, dropout, shuffling) as a reproducibility hazard that is
//! eliminated by seeding every PRNG. For that to hold across library
//! versions, the generator's algorithm itself must be frozen — which is why
//! we implement PCG32 (O'Neill, 2014) here instead of relying on
//! `rand::StdRng`, whose algorithm is explicitly not stable across `rand`
//! releases. The `rand` crate is still used elsewhere for non-reproducible
//! conveniences; everything that must replay bit-identically goes through
//! [`Pcg32`].

use serde::{Deserialize, Serialize};

const PCG_MULT: u64 = 6364136223846793005;

/// A PCG-XSH-RR 64/32 generator: 64-bit state, 32-bit output.
///
/// Small, fast, and with a frozen algorithm so that a `(seed, stream)` pair
/// produces the same sequence in every build of this library — the property
/// the model provenance approach's training replay depends on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator from a seed and a stream id.
    ///
    /// Distinct stream ids yield statistically independent sequences for the
    /// same seed; mmlib uses streams to separate e.g. weight init from data
    /// shuffling so adding one consumer does not perturb another.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 { state: 0, inc: (stream << 1) | 1 };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a seed on the default stream.
    pub fn seeded(seed: u64) -> Self {
        Self::new(seed, 0xda3e39cb94b95bdb)
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64-bit output (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Unbiased uniform integer in `[0, bound)` via Lemire rejection.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below(0) is meaningless");
        // Classic PCG bounded-rand: rejection below the modulo threshold.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Standard normal sample via Box-Muller (deterministic, no caching).
    ///
    /// Uses two uniform draws per sample and discards the second variate so
    /// the consumption pattern is a fixed two-draws-per-call — simpler to
    /// reason about for replay than a cached pair.
    pub fn standard_normal(&mut self) -> f32 {
        // Avoid ln(0): map [0,1) to (0,1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos()) as f32
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// Truncated standard normal on `[lo, hi]` via rejection sampling.
    ///
    /// This is intentionally the naive rejection scheme: torchvision's
    /// GoogLeNet initializer draws from `scipy.stats.truncnorm` over the
    /// tight interval `[-2, 2]` (in units of sigma), and the paper's Fig. 12
    /// traces GoogLeNet's anomalously slow recovery to exactly this
    /// disproportionately expensive init routine. Keeping rejection sampling
    /// (instead of an inverse-CDF shortcut) preserves that cost asymmetry.
    pub fn truncated_normal(&mut self, mean: f32, std: f32, lo: f32, hi: f32) -> f32 {
        loop {
            let x = self.standard_normal();
            if x >= lo && x <= hi {
                return mean + std * x;
            }
        }
    }

    /// Fisher-Yates shuffle with this generator (deterministic given state).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Serializes the generator state (for restorable training components).
    pub fn state(&self) -> (u64, u64) {
        (self.state, self.inc)
    }

    /// Restores a generator from a previously captured state.
    pub fn from_state(state: u64, inc: u64) -> Self {
        Pcg32 { state, inc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence_is_frozen() {
        // Pin the first outputs so an accidental algorithm change is caught:
        // these values are part of mmlib's reproducibility contract.
        let mut rng = Pcg32::new(42, 54);
        let seq: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let mut rng2 = Pcg32::new(42, 54);
        let seq2: Vec<u32> = (0..4).map(|_| rng2.next_u32()).collect();
        assert_eq!(seq, seq2);
        // Different seed ⇒ different sequence.
        let mut rng3 = Pcg32::new(43, 54);
        let seq3: Vec<u32> = (0..4).map(|_| rng3.next_u32()).collect();
        assert_ne!(seq, seq3);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let sa: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Pcg32::seeded(1);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::seeded(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = rng.below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = Pcg32::seeded(3);
        for _ in 0..5_000 {
            let x = rng.truncated_normal(0.0, 0.01, -2.0, 2.0);
            assert!((-0.02..=0.02).contains(&x));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = Pcg32::seeded(4);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_deterministic_and_permutes() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        Pcg32::seeded(9).shuffle(&mut a);
        Pcg32::seeded(9).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn state_round_trip_resumes_sequence() {
        let mut rng = Pcg32::seeded(11);
        for _ in 0..13 {
            rng.next_u32();
        }
        let (s, inc) = rng.state();
        let mut resumed = Pcg32::from_state(s, inc);
        assert_eq!(rng.next_u32(), resumed.next_u32());
        assert_eq!(rng.next_u64(), resumed.next_u64());
    }
}
