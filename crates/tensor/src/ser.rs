//! Binary wire format for tensors and named tensor maps.
//!
//! The baseline approach serializes "the model's internal data structure that
//! maps each layer to its parameters" (§3.1); the parameter-update approach
//! serializes the pruned subset. This module defines that format:
//!
//! ```text
//! tensor   := MAGIC(u32 'MMTS') version(u16) rank(u16) dims(u64 × rank) data(f32-le × numel)
//! state    := MAGIC(u32 'MMSD') version(u16) count(u32)
//!             entry := name_len(u32) name(utf8) tensor
//! ```
//!
//! Everything is little-endian. The format is versioned so stores written by
//! one release stay readable by the next (the paper's environment-tracking
//! requirement applied to ourselves).

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const TENSOR_MAGIC: u32 = 0x4d4d5453; // "MMTS"
const STATE_MAGIC: u32 = 0x4d4d5344; // "MMSD"
const VERSION: u16 = 1;

/// Serializes one tensor into `out`.
pub fn write_tensor(t: &Tensor, out: &mut BytesMut) {
    out.put_u32_le(TENSOR_MAGIC);
    out.put_u16_le(VERSION);
    out.put_u16_le(t.shape().rank() as u16);
    for &d in t.shape().dims() {
        out.put_u64_le(d as u64);
    }
    out.reserve(t.numel() * 4);
    // Bulk-convert through a stack buffer: per-element `put_f32_le` calls
    // are measurably slower for multi-hundred-MB state dicts.
    let mut buf = [0u8; 4096];
    for chunk in t.data().chunks(1024) {
        for (i, v) in chunk.iter().enumerate() {
            buf[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
        }
        out.put_slice(&buf[..chunk.len() * 4]);
    }
}

/// Exact serialized size of one tensor.
fn tensor_wire_size(t: &Tensor) -> usize {
    8 + t.shape().rank() * 8 + t.numel() * 4
}

/// Serializes one tensor to an owned buffer.
pub fn tensor_to_bytes(t: &Tensor) -> Bytes {
    let mut out = BytesMut::with_capacity(tensor_wire_size(t));
    write_tensor(t, &mut out);
    out.freeze()
}

/// Deserializes one tensor from the front of `buf`, advancing it.
pub fn read_tensor(buf: &mut Bytes) -> Result<Tensor, TensorError> {
    if buf.remaining() < 8 {
        return Err(TensorError::Corrupt("truncated tensor header".into()));
    }
    let magic = buf.get_u32_le();
    if magic != TENSOR_MAGIC {
        return Err(TensorError::Corrupt(format!("bad tensor magic {magic:#x}")));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(TensorError::UnsupportedVersion(version));
    }
    let rank = buf.get_u16_le() as usize;
    if buf.remaining() < rank * 8 {
        return Err(TensorError::Corrupt("truncated dims".into()));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let d = buf.get_u64_le();
        if d > usize::MAX as u64 {
            return Err(TensorError::Corrupt("dim overflows usize".into()));
        }
        dims.push(d as usize);
    }
    let shape = Shape::new(dims);
    let numel = shape.numel();
    if numel > (1 << 33) {
        // Defensive cap (~8G elements): a corrupt header must not trigger an
        // allocation-of-doom before the length check below can fire.
        return Err(TensorError::Corrupt(format!("implausible element count {numel}")));
    }
    if buf.remaining() < numel * 4 {
        return Err(TensorError::Corrupt(format!(
            "truncated data: need {} bytes, have {}",
            numel * 4,
            buf.remaining()
        )));
    }
    let mut data = vec![0.0f32; numel];
    // Bulk-read: `copy_to_slice` into a byte view of the f32 buffer would
    // need unsafe; chunked conversion gets within noise of memcpy.
    let mut raw = [0u8; 4096];
    for chunk in data.chunks_mut(1024) {
        let nbytes = chunk.len() * 4;
        buf.copy_to_slice(&mut raw[..nbytes]);
        for (i, v) in chunk.iter_mut().enumerate() {
            *v = f32::from_le_bytes([raw[i * 4], raw[i * 4 + 1], raw[i * 4 + 2], raw[i * 4 + 3]]);
        }
    }
    Tensor::from_vec(shape, data)
}

/// Deserializes one tensor from a full buffer, requiring full consumption.
pub fn tensor_from_bytes(bytes: &[u8]) -> Result<Tensor, TensorError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let t = read_tensor(&mut buf)?;
    if buf.has_remaining() {
        return Err(TensorError::Corrupt(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(t)
}

/// Serializes an ordered list of `(name, tensor)` pairs — a state dict.
///
/// Order is preserved (and significant): mmlib's layer-wise diffing walks
/// both state dicts in the model's canonical layer order.
pub fn state_to_bytes<'a, I>(entries: I) -> Bytes
where
    I: IntoIterator<Item = (&'a str, &'a Tensor)>,
    I::IntoIter: ExactSizeIterator,
{
    let entries: Vec<(&'a str, &'a Tensor)> = entries.into_iter().collect();
    // Reserve the exact size: growth-by-doubling reallocs of multi-hundred-MB
    // buffers are very costly on page-fault-expensive hosts.
    let total: usize = 10
        + entries
            .iter()
            .map(|(n, t)| 4 + n.len() + tensor_wire_size(t))
            .sum::<usize>();
    let iter = entries.into_iter();
    let mut out = BytesMut::with_capacity(total);
    out.put_u32_le(STATE_MAGIC);
    out.put_u16_le(VERSION);
    out.put_u32_le(iter.len() as u32);
    for (name, tensor) in iter {
        out.put_u32_le(name.len() as u32);
        out.put_slice(name.as_bytes());
        write_tensor(tensor, &mut out);
    }
    out.freeze()
}

/// Deserializes a state dict written by [`state_to_bytes`].
pub fn state_from_bytes(bytes: &[u8]) -> Result<Vec<(String, Tensor)>, TensorError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 10 {
        return Err(TensorError::Corrupt("truncated state header".into()));
    }
    let magic = buf.get_u32_le();
    if magic != STATE_MAGIC {
        return Err(TensorError::Corrupt(format!("bad state magic {magic:#x}")));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(TensorError::UnsupportedVersion(version));
    }
    let count = buf.get_u32_le() as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if buf.remaining() < 4 {
            return Err(TensorError::Corrupt("truncated entry name length".into()));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(TensorError::Corrupt("truncated entry name".into()));
        }
        let name_bytes = buf.split_to(name_len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| TensorError::Corrupt("entry name is not utf-8".into()))?
            .to_string();
        let tensor = read_tensor(&mut buf)?;
        entries.push((name, tensor));
    }
    if buf.has_remaining() {
        return Err(TensorError::Corrupt(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Pcg32;

    #[test]
    fn tensor_round_trip_bit_exact() {
        let mut rng = Pcg32::seeded(1);
        let t = Tensor::rand_normal([3, 5, 2], 0.0, 1.0, &mut rng);
        let bytes = tensor_to_bytes(&t);
        let back = tensor_from_bytes(&bytes).unwrap();
        assert!(t.bit_eq(&back));
    }

    #[test]
    fn scalar_round_trip() {
        let t = Tensor::scalar(-0.0);
        let back = tensor_from_bytes(&tensor_to_bytes(&t)).unwrap();
        assert!(t.bit_eq(&back));
    }

    #[test]
    fn nan_and_inf_round_trip() {
        let t = Tensor::from_vec([3], vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY]).unwrap();
        let back = tensor_from_bytes(&tensor_to_bytes(&t)).unwrap();
        assert!(t.bit_eq(&back));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = tensor_to_bytes(&Tensor::zeros([2])).to_vec();
        bytes[0] ^= 0xff;
        assert!(matches!(tensor_from_bytes(&bytes), Err(TensorError::Corrupt(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = tensor_to_bytes(&Tensor::zeros([2])).to_vec();
        bytes[4] = 99;
        assert!(matches!(
            tensor_from_bytes(&bytes),
            Err(TensorError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_at_every_point() {
        let bytes = tensor_to_bytes(&Tensor::zeros([4, 4])).to_vec();
        for cut in 0..bytes.len() {
            assert!(tensor_from_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = tensor_to_bytes(&Tensor::zeros([2])).to_vec();
        bytes.push(0);
        assert!(tensor_from_bytes(&bytes).is_err());
    }

    #[test]
    fn state_dict_round_trip_preserves_order() {
        let mut rng = Pcg32::seeded(2);
        let entries = [("conv1.weight".to_string(), Tensor::rand_normal([4, 3, 3, 3], 0.0, 1.0, &mut rng)),
            ("bn1.weight".to_string(), Tensor::ones([4])),
            ("fc.bias".to_string(), Tensor::zeros([10]))];
        let bytes = state_to_bytes(entries.iter().map(|(n, t)| (n.as_str(), t)));
        let back = state_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        for ((n1, t1), (n2, t2)) in entries.iter().zip(&back) {
            assert_eq!(n1, n2);
            assert!(t1.bit_eq(t2));
        }
    }

    #[test]
    fn empty_state_dict_round_trips() {
        let bytes = state_to_bytes(std::iter::empty::<(&str, &Tensor)>().collect::<Vec<_>>());
        assert!(state_from_bytes(&bytes).unwrap().is_empty());
    }

    #[test]
    fn state_rejects_non_utf8_name() {
        let entries = [("x".to_string(), Tensor::zeros([1]))];
        let mut bytes = state_to_bytes(entries.iter().map(|(n, t)| (n.as_str(), t))).to_vec();
        // name length is at offset 10..14; the name byte itself at 14.
        bytes[14] = 0xff;
        assert!(state_from_bytes(&bytes).is_err());
    }
}
