//! Numeric kernels in deterministic and non-deterministic execution modes.
//!
//! §2.3 / Fig. 2 of the paper: floating-point addition is not associative, so
//! the *order* of a reduction changes the result. Frameworks choose between a
//! slower, order-fixed ("deterministic") kernel and a faster parallel kernel
//! whose combine order depends on thread scheduling. We reproduce both:
//!
//! * [`ExecMode::Deterministic`] — strict serial left-to-right accumulation.
//! * [`ExecMode::Parallel`] — the input is split into chunks, chunks are
//!   reduced on worker threads, and partial sums are combined **in the order
//!   the threads finish**, which varies run to run. This is the same
//!   mechanism by which GPU atomics make cuDNN kernels non-deterministic.

use crate::tensor::Tensor;
use crate::TensorError;

/// How a floating-point reduction is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ExecMode {
    /// Serial, left-to-right accumulation. Bit-reproducible, slower.
    Deterministic,
    /// Multi-threaded chunked reduction combined in completion order.
    /// Faster, but results vary in the low-order bits across runs.
    Parallel,
}

impl ExecMode {
    /// True if this mode guarantees bit-reproducible results.
    pub fn is_deterministic(self) -> bool {
        matches!(self, ExecMode::Deterministic)
    }
}

/// Number of chunks used by the parallel reduction kernels.
const PAR_CHUNKS: usize = 8;

/// Dot product with strict serial left-to-right `f32` accumulation.
///
/// This is the "serial method" of the paper's Fig. 2. Accumulation is done in
/// `f32` (not `f64`) on purpose: the figure's point is visible rounding
/// divergence between orders, which a wider accumulator would mask.
pub fn dot_serial(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Dot product via pairwise (tree) reduction with a fixed chunking.
///
/// This is the "parallel method" of Fig. 2 executed deterministically: the
/// combine *tree* differs from the serial order, so the result differs from
/// [`dot_serial`], but the tree itself is fixed, so repeated calls agree.
pub fn dot_pairwise(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let mut partials: Vec<f32> = a
        .chunks(a.len().div_ceil(PAR_CHUNKS).max(1))
        .zip(b.chunks(a.len().div_ceil(PAR_CHUNKS).max(1)))
        .map(|(ca, cb)| dot_serial(ca, cb))
        .collect();
    // Pairwise combine.
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        for pair in partials.chunks(2) {
            next.push(pair.iter().copied().sum());
        }
        partials = next;
    }
    partials[0]
}

/// Dot product on worker threads, combining partials in completion order.
///
/// The combine order depends on OS scheduling, so results may differ in the
/// low-order bits between runs — this is the non-determinism the probing tool
/// (paper §2.4) exists to detect.
pub fn dot_parallel(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < 4 * PAR_CHUNKS {
        // Too small to parallelize; fall back to the fixed tree.
        return dot_pairwise(a, b);
    }
    let chunk = a.len().div_ceil(PAR_CHUNKS);
    let (tx, rx) = std::sync::mpsc::channel::<f32>();
    crossbeam::scope(|s| {
        for (ca, cb) in a.chunks(chunk).zip(b.chunks(chunk)) {
            let tx = tx.clone();
            s.spawn(move |_| {
                // Ignore a closed channel: the receiver outlives the scope.
                let _ = tx.send(dot_serial(ca, cb));
            });
        }
        drop(tx);
        // Combine in whatever order the workers finish.
        let mut acc = 0.0f32;
        for partial in rx.iter() {
            acc += partial;
        }
        acc
    })
    // Workers are pure arithmetic and cannot panic; if one somehow does,
    // recompute serially instead of propagating the abort.
    .unwrap_or_else(|_| dot_pairwise(a, b))
}

/// Dot product under the given execution mode.
pub fn dot(a: &[f32], b: &[f32], mode: ExecMode) -> f32 {
    match mode {
        ExecMode::Deterministic => dot_serial(a, b),
        ExecMode::Parallel => dot_parallel(a, b),
    }
}

/// Sum reduction under the given execution mode.
pub fn sum(a: &[f32], mode: ExecMode) -> f32 {
    match mode {
        ExecMode::Deterministic => {
            let mut acc = 0.0f32;
            for x in a {
                acc += x;
            }
            acc
        }
        ExecMode::Parallel => {
            // Reuse the nondeterministic dot against an implicit ones vector
            // without materializing it.
            if a.len() < 4 * PAR_CHUNKS {
                let mut acc = 0.0f32;
                for x in a {
                    acc += x;
                }
                return acc;
            }
            let chunk = a.len().div_ceil(PAR_CHUNKS);
            let (tx, rx) = std::sync::mpsc::channel::<f32>();
            crossbeam::scope(|s| {
                for ca in a.chunks(chunk) {
                    let tx = tx.clone();
                    s.spawn(move |_| {
                        let mut acc = 0.0f32;
                        for x in ca {
                            acc += x;
                        }
                        let _ = tx.send(acc);
                    });
                }
                drop(tx);
                let mut acc = 0.0f32;
                for partial in rx.iter() {
                    acc += partial;
                }
                acc
            })
            // Same recovery as dot_parallel: a panicking worker (pure
            // arithmetic, cannot happen) degrades to the serial sum.
            .unwrap_or_else(|_| a.iter().sum())
        }
    }
}

/// Matrix-vector product `y = W x` where `w` is `[rows, cols]` row-major.
///
/// Each output row is an independent dot product executed under `mode`.
pub fn matvec(w: &Tensor, x: &[f32], mode: ExecMode) -> Result<Vec<f32>, TensorError> {
    let dims = w.shape().dims();
    if dims.len() != 2 || dims[1] != x.len() {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            expected: vec![dims.first().copied().unwrap_or(0), x.len()],
            actual: dims.to_vec(),
        });
    }
    let (rows, cols) = (dims[0], dims[1]);
    let data = w.data();
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        out.push(match mode {
            ExecMode::Deterministic => dot_serial(row, x),
            // Per-row parallel dispatch would thrash; use the pairwise tree
            // which already differs from the serial order.
            ExecMode::Parallel => dot_pairwise(row, x),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Pcg32;

    fn random_vecs(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Pcg32::seeded(seed);
        let a = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        (a, b)
    }

    #[test]
    fn serial_and_pairwise_agree_approximately() {
        let (a, b) = random_vecs(10_000, 1);
        let s = dot_serial(&a, &b);
        let p = dot_pairwise(&a, &b);
        assert!((s - p).abs() < 1e-2, "serial={s} pairwise={p}");
    }

    #[test]
    fn serial_and_pairwise_typically_differ_in_bits() {
        // Figure 2 of the paper: different reduction orders give close but
        // not identical f32 results. With 100k random terms a bit-identical
        // outcome is astronomically unlikely.
        let (a, b) = random_vecs(100_000, 2);
        let s = dot_serial(&a, &b);
        let p = dot_pairwise(&a, &b);
        assert_ne!(s.to_bits(), p.to_bits(), "orders unexpectedly agreed bit-for-bit");
    }

    #[test]
    fn parallel_is_close_to_serial() {
        let (a, b) = random_vecs(50_000, 3);
        let s = dot_serial(&a, &b);
        for _ in 0..4 {
            let p = dot_parallel(&a, &b);
            assert!((s - p).abs() < 1e-2);
        }
    }

    #[test]
    fn deterministic_mode_is_bit_stable() {
        let (a, b) = random_vecs(30_000, 4);
        let r1 = dot(&a, &b, ExecMode::Deterministic);
        let r2 = dot(&a, &b, ExecMode::Deterministic);
        assert_eq!(r1.to_bits(), r2.to_bits());
    }

    #[test]
    fn sum_modes_agree_approximately() {
        let (a, _) = random_vecs(50_000, 5);
        let d = sum(&a, ExecMode::Deterministic);
        let p = sum(&a, ExecMode::Parallel);
        assert!((d - p).abs() < 1e-2);
    }

    #[test]
    fn matvec_matches_manual() {
        let w = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let x = vec![1.0, 0.5, 2.0];
        let y = matvec(&w, &x, ExecMode::Deterministic).unwrap();
        assert_eq!(y, vec![8.0, 18.5]);
    }

    #[test]
    fn matvec_rejects_bad_shapes() {
        let w = Tensor::zeros([2, 3]);
        assert!(matvec(&w, &[1.0, 2.0], ExecMode::Deterministic).is_err());
        let w1 = Tensor::zeros([6]);
        assert!(matvec(&w1, &[1.0; 6], ExecMode::Deterministic).is_err());
    }

    #[test]
    fn empty_dot_is_zero() {
        assert_eq!(dot_serial(&[], &[]), 0.0);
        assert_eq!(dot_pairwise(&[], &[]), 0.0);
    }
}
