//! Dense `f32` tensors.

use crate::error::TensorError;
use crate::prng::Pcg32;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` tensor.
///
/// This is the unit of everything mmlib stores: a model parameter is a named
/// `Tensor`, a parameter update is a set of named `Tensor`s, and the probing
/// tool compares intermediate `Tensor`s layer by layer. Equality is exact
/// (bit-wise on the underlying `f32`s), because the paper's recoverability
/// definition demands the *exact* model, not an approximation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and a data buffer.
    ///
    /// Fails with [`TensorError::LengthMismatch`] if the buffer length does
    /// not equal `shape.numel()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::LengthMismatch { expected: shape.numel(), actual: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with a constant.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// A tensor with i.i.d. uniform entries in `[lo, hi)` drawn from `rng`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Pcg32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// A tensor with i.i.d. normal entries drawn from `rng`.
    pub fn rand_normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut Pcg32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let data = (0..n).map(|_| rng.normal(mean, std)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size in bytes of the raw parameter data (4 bytes per element).
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Immutable view of the flat data buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a flat index.
    pub fn get(&self, index: usize) -> Result<f32, TensorError> {
        self.data
            .get(index)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds { index, len: self.data.len() })
    }

    /// Element at a multi-index.
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        let off = self
            .shape
            .offset(index)
            .ok_or(TensorError::IndexOutOfBounds { index: usize::MAX, len: self.data.len() })?;
        Ok(self.data[off])
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch { expected: shape.numel(), actual: self.data.len() });
        }
        self.shape = shape;
        Ok(self)
    }

    /// `self += other`, element-wise.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.zip_assign("add_assign", other, |a, b| a + b)
    }

    /// `self -= other`, element-wise.
    pub fn sub_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.zip_assign("sub_assign", other, |a, b| a - b)
    }

    /// `self += alpha * other` (axpy), element-wise.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        self.zip_assign("axpy", other, |a, b| a + alpha * b)
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Sum of all elements, accumulated serially left-to-right in `f64`.
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Maximum absolute element-wise difference to another tensor.
    ///
    /// Returns `None` on shape mismatch. `Some(0.0)` means the tensors hold
    /// numerically equal values (note: bit-exact equality additionally
    /// distinguishes `-0.0`/`0.0` and NaN payloads — use [`Tensor::bit_eq`]).
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max),
        )
    }

    /// Bit-exact equality: same shape and identical `f32` bit patterns.
    ///
    /// This is the equality the paper's "exact model representation" demands:
    /// a recovered model must reproduce the saved model bit for bit.
    pub fn bit_eq(&self, other: &Tensor) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    fn zip_assign(
        &mut self,
        op: &'static str,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                expected: self.shape.dims().to_vec(),
                actual: other.shape.dims().to_vec(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, *b);
        }
        Ok(())
    }
}

impl PartialEq for Tensor {
    /// Structural equality on shape and *bit patterns* of the data.
    ///
    /// Delegates to [`Tensor::bit_eq`] so that `==` matches the recovery
    /// invariant (and stays reflexive even in the presence of NaNs).
    fn eq(&self, other: &Self) -> bool {
        self.bit_eq(other)
    }
}

impl Eq for Tensor {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec([2, 2], vec![1.0; 3]),
            Err(TensorError::LengthMismatch { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn constructors_fill_correctly() {
        assert!(Tensor::zeros([3]).data().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones([3]).data().iter().all(|&v| v == 1.0));
        assert!(Tensor::full([3], 2.5).data().iter().all(|&v| v == 2.5));
        assert_eq!(Tensor::scalar(7.0).numel(), 1);
    }

    #[test]
    fn elementwise_ops_work() {
        let mut a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![10.0, 20.0, 30.0]).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[11.0, 22.0, 33.0]);
        a.sub_assign(&b).unwrap();
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.data(), &[21.0, 42.0, 63.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[10.5, 21.0, 31.5]);
    }

    #[test]
    fn ops_reject_shape_mismatch() {
        let mut a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(a.add_assign(&b).is_err());
        assert!(a.axpy(1.0, &b).is_err());
    }

    #[test]
    fn bit_eq_distinguishes_negative_zero() {
        let a = Tensor::from_vec([1], vec![0.0]).unwrap();
        let b = Tensor::from_vec([1], vec![-0.0]).unwrap();
        assert!(!a.bit_eq(&b));
        assert_eq!(a.max_abs_diff(&b), Some(0.0));
    }

    #[test]
    fn bit_eq_is_reflexive_with_nan() {
        let a = Tensor::from_vec([1], vec![f32::NAN]).unwrap();
        assert!(a.bit_eq(&a.clone()));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect::<Vec<_>>()).unwrap();
        let r = t.clone().reshape([3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([4]).is_err());
    }

    #[test]
    fn at_indexes_row_major() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect::<Vec<_>>()).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 5.0);
        assert_eq!(t.at(&[0, 1]).unwrap(), 1.0);
        assert!(t.at(&[2, 0]).is_err());
    }

    #[test]
    fn rand_tensors_are_seeded() {
        let mut r1 = Pcg32::seeded(5);
        let mut r2 = Pcg32::seeded(5);
        let a = Tensor::rand_uniform([16], -1.0, 1.0, &mut r1);
        let b = Tensor::rand_uniform([16], -1.0, 1.0, &mut r2);
        assert!(a.bit_eq(&b));
    }
}
