//! Parallel digest computation over the crossbeam worker pool.
//!
//! The save hot path hashes every state entry of a model (~200 tensors for
//! MobileNetV2), and BENCH_PR4.json shows that cost as a flat ~0.68s/10
//! saves floor under *every* approach. Each entry digest is independent, so
//! the map is embarrassingly parallel — and unlike the float reductions in
//! [`crate::ops`], SHA-256 has no combine order: the parallel path is
//! **byte-identical** to the serial one by construction, with results placed
//! back in input order.
//!
//! Determinism contract: worker count never affects any digest, only wall
//! time. The count comes from [`hash_workers`] (the `MMLIB_HASH_THREADS`
//! override, else detected cores) so benches pin it; a panicking worker
//! degrades to the serial map. No wall-clock reads happen here (D1): timing
//! attribution lives in `mmlib-core`'s phase clocks, this module only counts
//! work via monotone counters.

use crate::hash::{hash_tensor, Digest};
use crate::tensor::Tensor;

/// Environment override for the hashing worker count.
pub const HASH_THREADS_ENV: &str = "MMLIB_HASH_THREADS";

/// Upper bound on workers; protects against absurd override values.
pub const MAX_HASH_WORKERS: usize = 64;

/// Minimum number of jobs before spawning threads is worth the overhead.
const MIN_PARALLEL_JOBS: usize = 4;

/// Resolved hashing worker count: `MMLIB_HASH_THREADS` if set to a positive
/// integer, else the detected core count, clamped to `1..=64`.
///
/// Read on every call (not cached) so tests and benches can pin it without
/// process-global state; the var is consulted a handful of times per save.
pub fn hash_workers() -> usize {
    std::env::var(HASH_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(detected_workers)
        .min(MAX_HASH_WORKERS)
}

fn detected_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `hash` over `jobs` on up to `workers` threads, returning digests in
/// input order — byte-identical to the serial `jobs.iter().map(hash)`.
///
/// Jobs are split into one contiguous chunk per worker. Every handle is
/// joined explicitly: under the std-scope crossbeam shim an unjoined
/// panicked worker re-panics the scope, so collecting per-handle results is
/// what makes the serial fallback reachable. If any worker panics the whole
/// map is recomputed serially on the calling thread (the closure runs on the
/// caller there, which the proptests use to force the fallback).
pub fn digest_map_with<T, F>(jobs: &[T], workers: usize, hash: F) -> Vec<Digest>
where
    T: Sync,
    F: Fn(&T) -> Digest + Sync,
{
    let workers = workers.clamp(1, MAX_HASH_WORKERS).min(jobs.len());
    if workers <= 1 || jobs.len() < MIN_PARALLEL_JOBS {
        return jobs.iter().map(&hash).collect();
    }
    let obs = mmlib_obs::recorder();
    let chunk = jobs.len().div_ceil(workers);
    let parallel = crossbeam::scope(|s| {
        let hash = &hash;
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|part| s.spawn(move |_| part.iter().map(hash).collect::<Vec<Digest>>()))
            .collect();
        // Join *every* handle before deciding the outcome — bailing on the
        // first Err would leave later panicked threads unjoined and the
        // scope itself would re-panic instead of letting us fall back.
        let mut out = Vec::with_capacity(jobs.len());
        let mut panicked = false;
        for handle in handles {
            match handle.join() {
                Ok(part) if !panicked => out.extend(part),
                Ok(_) => {}
                Err(_) => panicked = true,
            }
        }
        if panicked {
            None
        } else {
            Some(out)
        }
    });
    match parallel {
        Ok(Some(digests)) => {
            obs.inc("mmlib_tensor_hash_parallel_ops_total", digests.len() as u64);
            digests
        }
        // A worker panicked (or the scope shim reported one): recompute the
        // whole map serially. Digests are pure functions of the input, so
        // the result is identical to a clean parallel run.
        _ => {
            obs.inc("mmlib_tensor_hash_parallel_fallback_total", 1);
            jobs.iter().map(&hash).collect()
        }
    }
}

/// Hashes each tensor with [`hash_tensor`] across the worker pool resolved
/// by [`hash_workers`], preserving input order.
pub fn hash_tensors(tensors: &[&Tensor]) -> Vec<Digest> {
    hash_tensors_with(tensors, hash_workers())
}

/// [`hash_tensors`] with an explicit worker count (tests pin this instead of
/// mutating the process environment).
pub fn hash_tensors_with(tensors: &[&Tensor], workers: usize) -> Vec<Digest> {
    digest_map_with(tensors, workers, |t| hash_tensor(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;
    use crate::prng::Pcg32;
    use crate::shape::Shape;

    fn tensors(n: usize) -> Vec<Tensor> {
        let mut rng = Pcg32::seeded(7);
        (0..n)
            .map(|i| {
                Tensor::rand_normal(Shape::new(vec![1 + i % 5, 3]), 0.0, 1.0, &mut rng)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_for_various_worker_counts() {
        let owned = tensors(23);
        let refs: Vec<&Tensor> = owned.iter().collect();
        let serial: Vec<Digest> = refs.iter().map(|t| hash_tensor(t)).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(hash_tensors_with(&refs, workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let refs: Vec<&Tensor> = Vec::new();
        assert!(hash_tensors_with(&refs, 4).is_empty());
        let owned = tensors(1);
        let refs: Vec<&Tensor> = owned.iter().collect();
        assert_eq!(hash_tensors_with(&refs, 4), vec![hash_tensor(&owned[0])]);
    }

    #[test]
    fn worker_panic_falls_back_to_serial() {
        let jobs: Vec<u32> = (0..32).collect();
        let main = std::thread::current().id();
        // Panics on every spawned worker; succeeds on the calling thread,
        // so only the serial fallback can produce a result.
        let digests = digest_map_with(&jobs, 8, |j| {
            assert_eq!(std::thread::current().id(), main, "forced worker panic");
            sha256(&j.to_le_bytes())
        });
        let expect: Vec<Digest> = jobs.iter().map(|j| sha256(&j.to_le_bytes())).collect();
        assert_eq!(digests, expect);
    }

    #[test]
    fn hash_workers_env_override() {
        // Sibling tests never read the var, so the temporary mutation is
        // safe; digests are worker-count independent anyway.
        std::env::set_var(HASH_THREADS_ENV, "3");
        assert_eq!(hash_workers(), 3);
        std::env::set_var(HASH_THREADS_ENV, "0");
        assert!(hash_workers() >= 1);
        std::env::set_var(HASH_THREADS_ENV, "9999");
        assert_eq!(hash_workers(), 64);
        std::env::remove_var(HASH_THREADS_ENV);
        assert!(hash_workers() >= 1);
    }
}
