//! SHA-256 and tensor digests.
//!
//! The paper's baseline generates checksums "by hashing the tensor objects"
//! (§3.1) and the parameter-update approach organizes per-layer hashes into a
//! Merkle tree (§3.2). Both need a collision-resistant hash with a stable
//! definition. SHA-256 (FIPS 180-4) is implemented here from scratch because
//! the offline crate set contains no crypto crate; the implementation is
//! validated against the official NIST test vectors in the unit tests.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::tensor::Tensor;

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lowercase hex rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            use std::fmt::Write;
            // Writing into a String cannot fail; ignore the fmt Result.
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Parses a 64-char lowercase/uppercase hex string.
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl Serialize for Digest {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.to_hex())
    }
}

impl Deserialize for Digest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        let s = String::from_value(v)?;
        Digest::from_hex(&s).ok_or_else(|| serde::de::Error::custom("invalid digest hex"))
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// Feed bytes with [`Sha256::update`] and finish with [`Sha256::finalize`].
/// For one-shot hashing use [`sha256`].
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buffer: [0u8; 64], buffer_len: 0, total_len: 0 }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        // Aligned blocks compress straight out of the input slice; the
        // `try_into` cannot fail for a `chunks_exact(64)` chunk, and the
        // match keeps the hot loop free of any panic path.
        let blocks = input.chunks_exact(64);
        let tail = blocks.remainder();
        for block in blocks {
            if let Ok(block) = block.try_into() {
                self.compress(block);
            }
        }
        if !tail.is_empty() {
            self.buffer[..tail.len()].copy_from_slice(tail);
            self.buffer_len = tail.len();
        }
    }

    /// Completes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(0x80);
        while self.buffer_len != 56 {
            self.update_padding(0x00);
        }
        let len_bytes = bit_len.to_be_bytes();
        self.buffer[56..64].copy_from_slice(&len_bytes);
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn update_padding(&mut self, byte: u8) {
        self.buffer[self.buffer_len] = byte;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        #[inline(always)]
        fn ssig0(x: u32) -> u32 {
            x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
        }
        #[inline(always)]
        fn ssig1(x: u32) -> u32 {
            x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
        }
        #[inline(always)]
        fn bsig0(x: u32) -> u32 {
            x.rotate_right(2) ^ x.rotate_right(13) ^ x.rotate_right(22)
        }
        #[inline(always)]
        fn bsig1(x: u32) -> u32 {
            x.rotate_right(6) ^ x.rotate_right(11) ^ x.rotate_right(25)
        }
        // One FIPS 180-4 round. The working variables are passed in rotated
        // role order instead of being shuffled `h = g; g = f; ...` after each
        // round: the shuffle is pure register pressure that the 64-iteration
        // loop form forces the compiler to materialize, and removing it (plus
        // the rolling 16-word schedule below) is where the save-path hash
        // throughput comes from.
        macro_rules! rnd {
            ($a:expr, $b:expr, $c:expr, $d:expr, $e:expr, $f:expr, $g:expr, $h:expr, $kw:expr) => {
                let t1 = $h
                    .wrapping_add(bsig1($e))
                    .wrapping_add(($e & $f) ^ (!$e & $g))
                    .wrapping_add($kw);
                let t2 = bsig0($a).wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(t2);
            };
        }
        let mut w = [0u32; 16];
        for (wi, be) in w.iter_mut().zip(block.chunks_exact(4)) {
            *wi = u32::from_be_bytes([be[0], be[1], be[2], be[3]]);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for quarter in 0..4 {
            if quarter > 0 {
                // Rolling message schedule: w[j] currently holds w[16(q-1)+j]
                // and becomes w[16q+j]. Indices (j+1)&15 and (j+9)&15 pick up
                // already-updated slots exactly when FIPS 180-4 needs the
                // newer word.
                for j in 0..16 {
                    w[j] = w[j]
                        .wrapping_add(ssig0(w[(j + 1) & 15]))
                        .wrapping_add(w[(j + 9) & 15])
                        .wrapping_add(ssig1(w[(j + 14) & 15]));
                }
            }
            let k = &K[quarter * 16..quarter * 16 + 16];
            rnd!(a, b, c, d, e, f, g, h, k[0].wrapping_add(w[0]));
            rnd!(h, a, b, c, d, e, f, g, k[1].wrapping_add(w[1]));
            rnd!(g, h, a, b, c, d, e, f, k[2].wrapping_add(w[2]));
            rnd!(f, g, h, a, b, c, d, e, k[3].wrapping_add(w[3]));
            rnd!(e, f, g, h, a, b, c, d, k[4].wrapping_add(w[4]));
            rnd!(d, e, f, g, h, a, b, c, k[5].wrapping_add(w[5]));
            rnd!(c, d, e, f, g, h, a, b, k[6].wrapping_add(w[6]));
            rnd!(b, c, d, e, f, g, h, a, k[7].wrapping_add(w[7]));
            rnd!(a, b, c, d, e, f, g, h, k[8].wrapping_add(w[8]));
            rnd!(h, a, b, c, d, e, f, g, k[9].wrapping_add(w[9]));
            rnd!(g, h, a, b, c, d, e, f, k[10].wrapping_add(w[10]));
            rnd!(f, g, h, a, b, c, d, e, k[11].wrapping_add(w[11]));
            rnd!(e, f, g, h, a, b, c, d, k[12].wrapping_add(w[12]));
            rnd!(d, e, f, g, h, a, b, c, k[13].wrapping_add(w[13]));
            rnd!(c, d, e, f, g, h, a, b, k[14].wrapping_add(w[14]));
            rnd!(b, c, d, e, f, g, h, a, k[15].wrapping_add(w[15]));
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Digest of a tensor: shape dims (as little-endian u64s) followed by the
/// raw little-endian `f32` data.
///
/// Including the shape means two tensors with identical bytes but different
/// shapes hash differently, which the Merkle layer relies on.
pub fn hash_tensor(t: &Tensor) -> Digest {
    let obs = mmlib_obs::recorder();
    obs.inc("mmlib_tensor_hash_ops_total", 1);
    obs.inc("mmlib_tensor_hash_bytes_total", t.data().len() as u64 * 4);
    let mut h = Sha256::new();
    h.update(&(t.shape().rank() as u64).to_le_bytes());
    for &d in t.shape().dims() {
        h.update(&(d as u64).to_le_bytes());
    }
    // Hash in 1024-element strides to avoid a full byte-buffer copy while
    // amortizing the per-`update` bookkeeping over 64 compression blocks.
    let mut chunk_bytes = [0u8; 4096];
    for chunk in t.data().chunks(1024) {
        for (i, v) in chunk.iter().enumerate() {
            chunk_bytes[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
        }
        h.update(&chunk_bytes[..chunk.len() * 4]);
    }
    h.finalize()
}

/// Combines two digests into a parent digest (Merkle interior node).
pub fn hash_pair(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&left.0);
    h.update(&right.0);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 test vectors.
    #[test]
    fn nist_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_448_bits() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let oneshot = sha256(&data);
        for split in [0, 1, 63, 64, 65, 100, 3999] {
            let mut h = Sha256::new();
            h.update(&data[..split.min(data.len())]);
            h.update(&data[split.min(data.len())..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"0".repeat(63)), None);
    }

    #[test]
    fn tensor_hash_includes_shape() {
        let a = Tensor::from_vec([2, 3], vec![1.0; 6]).unwrap();
        let b = Tensor::from_vec([3, 2], vec![1.0; 6]).unwrap();
        assert_ne!(hash_tensor(&a), hash_tensor(&b));
    }

    #[test]
    fn tensor_hash_sensitive_to_single_bit() {
        let a = Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut b = a.clone();
        b.data_mut()[2] = f32::from_bits(3.0f32.to_bits() ^ 1);
        assert_ne!(hash_tensor(&a), hash_tensor(&b));
    }

    #[test]
    fn hash_pair_is_order_sensitive() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_ne!(hash_pair(&a, &b), hash_pair(&b, &a));
    }

    #[test]
    fn digest_serde_round_trip() {
        let d = sha256(b"serde");
        let json = serde_json::to_string(&d).unwrap();
        let back: Digest = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
