//! Property-based tests for the tensor substrate's core invariants.

use mmlib_tensor::hash::{hash_pair, hash_tensor, sha256};
use mmlib_tensor::hash_par;
use mmlib_tensor::ops::{self, ExecMode};
use mmlib_tensor::ser::{state_from_bytes, state_to_bytes, tensor_from_bytes, tensor_to_bytes};
use mmlib_tensor::{Pcg32, Shape, Tensor};
use proptest::prelude::*;

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    (prop::collection::vec(1usize..6, 0..4), any::<u64>()).prop_map(|(dims, seed)| {
        let shape = Shape::new(dims);
        let mut rng = Pcg32::seeded(seed);
        Tensor::rand_normal(shape, 0.0, 1.0, &mut rng)
    })
}

proptest! {
    #[test]
    fn ser_round_trip_is_bit_exact(t in arb_tensor()) {
        let bytes = tensor_to_bytes(&t);
        let back = tensor_from_bytes(&bytes).unwrap();
        prop_assert!(t.bit_eq(&back));
    }

    #[test]
    fn hash_is_stable_and_injective_on_bitflips(t in arb_tensor(), idx in any::<prop::sample::Index>()) {
        let h1 = hash_tensor(&t);
        let h2 = hash_tensor(&t);
        prop_assert_eq!(h1, h2);
        if t.numel() > 0 {
            let mut t2 = t.clone();
            let i = idx.index(t2.numel());
            let d = t2.data_mut();
            d[i] = f32::from_bits(d[i].to_bits() ^ 1);
            prop_assert_ne!(hash_tensor(&t), hash_tensor(&t2));
        }
    }

    #[test]
    fn state_dict_round_trip(entries in prop::collection::vec(("[a-z]{1,12}(\\.[a-z]{1,8}){0,2}", arb_tensor()), 0..8)) {
        let bytes = state_to_bytes(entries.iter().map(|(n, t)| (n.as_str(), t)));
        let back = state_from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), entries.len());
        for ((n1, t1), (n2, t2)) in entries.iter().zip(&back) {
            prop_assert_eq!(n1, n2);
            prop_assert!(t1.bit_eq(t2));
        }
    }

    #[test]
    fn truncating_serialized_tensor_never_panics_and_errors(t in arb_tensor(), cut_frac in 0.0f64..1.0) {
        let bytes = tensor_to_bytes(&t);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(tensor_from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn dot_orders_agree_within_tolerance(seed in any::<u64>(), n in 1usize..4096) {
        let mut rng = Pcg32::seeded(seed);
        let a: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let s = ops::dot(&a, &b, ExecMode::Deterministic);
        let p = ops::dot(&a, &b, ExecMode::Parallel);
        let scale = 1.0f32.max(s.abs());
        prop_assert!((s - p).abs() / scale < 1e-3, "s={} p={}", s, p);
    }

    #[test]
    fn deterministic_dot_is_pure(seed in any::<u64>(), n in 1usize..2048) {
        let mut rng = Pcg32::seeded(seed);
        let a: Vec<f32> = (0..n).map(|_| rng.uniform(-10.0, 10.0)).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.uniform(-10.0, 10.0)).collect();
        prop_assert_eq!(
            ops::dot(&a, &b, ExecMode::Deterministic).to_bits(),
            ops::dot(&a, &b, ExecMode::Deterministic).to_bits()
        );
    }

    #[test]
    fn sha256_incremental_any_split(data in prop::collection::vec(any::<u8>(), 0..512), split_frac in 0.0f64..1.0) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut h = mmlib_tensor::hash::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hash_pair_distinct_from_leaves(a in prop::collection::vec(any::<u8>(), 0..64), b in prop::collection::vec(any::<u8>(), 0..64)) {
        let ha = sha256(&a);
        let hb = sha256(&b);
        let parent = hash_pair(&ha, &hb);
        prop_assert_ne!(parent, ha);
        prop_assert_ne!(parent, hb);
    }

    #[test]
    fn axpy_matches_reference(seed in any::<u64>(), n in 1usize..256, alpha in -4.0f32..4.0) {
        let mut rng = Pcg32::seeded(seed);
        let mut x = Tensor::rand_uniform([n], -1.0, 1.0, &mut rng);
        let y = Tensor::rand_uniform([n], -1.0, 1.0, &mut rng);
        let reference: Vec<f32> = x.data().iter().zip(y.data()).map(|(a, b)| a + alpha * b).collect();
        x.axpy(alpha, &y).unwrap();
        prop_assert_eq!(x.data(), &reference[..]);
    }

    #[test]
    fn shuffle_same_seed_same_result(seed in any::<u64>(), n in 0usize..128) {
        let mut a: Vec<usize> = (0..n).collect();
        let mut b: Vec<usize> = (0..n).collect();
        Pcg32::seeded(seed).shuffle(&mut a);
        Pcg32::seeded(seed).shuffle(&mut b);
        prop_assert_eq!(a, b);
    }

    /// The parallel chunked hashing path must be byte-identical to the
    /// serial fallback for *any* job list and *any* worker count — worker
    /// counts below, at, and far beyond the job count all land on the same
    /// digests, and `workers = 1` degenerates to the serial path exactly.
    #[test]
    fn parallel_hashing_matches_serial_for_any_shape_and_worker_count(
        tensors in prop::collection::vec(arb_tensor(), 0..12),
        workers in 1usize..16,
    ) {
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let serial: Vec<_> = refs.iter().map(|t| hash_tensor(t)).collect();
        prop_assert_eq!(&hash_par::hash_tensors_with(&refs, workers), &serial);
        prop_assert_eq!(&hash_par::hash_tensors_with(&refs, 1), &serial, "workers=1 is the serial path");
        prop_assert_eq!(&hash_par::hash_tensors_with(&refs, hash_par::MAX_HASH_WORKERS), &serial);
    }

    /// Chunk boundaries: job counts straddling the per-worker chunk size
    /// (len % workers from 0 to workers-1) never drop, duplicate, or
    /// reorder a digest.
    #[test]
    fn parallel_hashing_preserves_order_across_chunk_boundaries(
        n in 0usize..40,
        workers in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = Pcg32::seeded(seed);
        let tensors: Vec<Tensor> = (0..n)
            .map(|i| Tensor::rand_normal(Shape::new(vec![1 + i % 5]), 0.0, 1.0, &mut rng))
            .collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let serial: Vec<_> = refs.iter().map(|t| hash_tensor(t)).collect();
        prop_assert_eq!(hash_par::hash_tensors_with(&refs, workers), serial);
    }

    /// A panicking worker must not lose results or poison the output: the
    /// map falls back to serial recomputation and still returns digests
    /// identical to the serial path.
    #[test]
    fn worker_panic_falls_back_to_byte_identical_serial(
        tensors in prop::collection::vec(arb_tensor(), 4..10),
        workers in 2usize..6,
    ) {
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let serial: Vec<_> = refs.iter().map(|t| hash_tensor(t)).collect();
        let main_thread = std::thread::current().id();
        let digests = hash_par::digest_map_with(&refs, workers, |t| {
            // Workers run on spawned threads; panic there, but succeed on
            // the main thread (the serial fallback).
            assert!(std::thread::current().id() == main_thread, "injected worker panic");
            hash_tensor(t)
        });
        prop_assert_eq!(digests, serial);
    }
}
