//! Concurrent-recording stress test: N threads hammering M metrics must
//! lose nothing — counter totals and histogram counts/sums stay exact.

use std::sync::Arc;
use std::thread;

use mmlib_obs::Recorder;

const THREADS: usize = 8;
const METRICS: usize = 5;
const ITERS: u64 = 10_000;

#[test]
fn concurrent_totals_are_exact() {
    let r = Arc::new(Recorder::new());
    let ops = ["get", "put", "del", "list", "scan"];

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                for i in 0..ITERS {
                    let op = ops[(t + i as usize) % METRICS];
                    r.inc_labeled("stress_ops_total", ("op", op), 1);
                    r.inc("stress_bytes_total", 3);
                    r.observe_labeled("stress_seconds", ("op", op), 0.25);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total: u64 = ops
        .iter()
        .map(|op| r.counter_value("stress_ops_total", Some(("op", op))))
        .sum();
    assert_eq!(total, THREADS as u64 * ITERS);
    assert_eq!(r.counter_value("stress_bytes_total", None), THREADS as u64 * ITERS * 3);

    let mut observed = 0u64;
    let mut sum = 0.0f64;
    for op in ops {
        observed += r.histogram_count("stress_seconds", Some(("op", op)));
        sum += r.histogram_sum("stress_seconds", Some(("op", op)));
    }
    assert_eq!(observed, THREADS as u64 * ITERS);
    // 0.25 is exactly representable, so the CAS-maintained sum is exact too.
    assert_eq!(sum, THREADS as f64 * ITERS as f64 * 0.25);
}

#[test]
fn concurrent_registration_yields_one_metric() {
    // All threads race to create the same counter; everyone must land on
    // the same underlying cell.
    let r = Arc::new(Recorder::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                for _ in 0..1_000 {
                    r.counter("race_total", Some(("k", "v"))).add(1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(r.counter_value("race_total", Some(("k", "v"))), THREADS as u64 * 1_000);
    assert_eq!(r.snapshot().len(), 1);
}
