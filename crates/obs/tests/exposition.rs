//! Golden test for the Prometheus text exposition format.
//!
//! The output must be byte-for-byte deterministic: metrics render in
//! BTreeMap (name, label) order, with one `# TYPE` header per base name.

use mmlib_obs::Recorder;

#[test]
fn exposition_matches_golden() {
    let r = Recorder::new();

    r.inc_labeled("mmlib_net_requests_total", ("opcode", "file_get"), 7);
    r.inc_labeled("mmlib_net_requests_total", ("opcode", "ping"), 2);
    r.inc("mmlib_store_bytes_written_total", 4096);
    r.gauge_set("mmlib_net_active_connections", 3.0);
    let h = r.histogram("mmlib_save_phase_seconds", Some(("phase", "hash")), &[0.001, 0.01, 0.1]);
    h.observe(0.0005);
    h.observe(0.02);
    h.observe(5.0);

    let golden = "\
# TYPE mmlib_net_active_connections gauge
mmlib_net_active_connections 3
# TYPE mmlib_net_requests_total counter
mmlib_net_requests_total{opcode=\"file_get\"} 7
mmlib_net_requests_total{opcode=\"ping\"} 2
# TYPE mmlib_save_phase_seconds histogram
mmlib_save_phase_seconds_bucket{phase=\"hash\",le=\"0.001\"} 1
mmlib_save_phase_seconds_bucket{phase=\"hash\",le=\"0.01\"} 1
mmlib_save_phase_seconds_bucket{phase=\"hash\",le=\"0.1\"} 2
mmlib_save_phase_seconds_bucket{phase=\"hash\",le=\"+Inf\"} 3
mmlib_save_phase_seconds_sum{phase=\"hash\"} 5.0205
mmlib_save_phase_seconds_count{phase=\"hash\"} 3
# TYPE mmlib_store_bytes_written_total counter
mmlib_store_bytes_written_total 4096
";
    assert_eq!(r.render_text(), golden);
}

#[test]
fn type_header_emitted_once_per_base_name() {
    let r = Recorder::new();
    r.inc_labeled("ops_total", ("op", "a"), 1);
    r.inc_labeled("ops_total", ("op", "b"), 1);
    r.inc_labeled("ops_total", ("op", "c"), 1);
    let text = r.render_text();
    assert_eq!(text.matches("# TYPE ops_total counter").count(), 1);
    assert_eq!(text.lines().count(), 4);
}

#[test]
fn registered_but_unrecorded_metrics_render_as_zero() {
    // Pre-registration keeps dashboards stable before any traffic arrives.
    let r = Recorder::new();
    r.counter("mmlib_net_bytes_in_total", None);
    r.histogram("mmlib_recover_phase_seconds", Some(("phase", "fetch")), &[0.1, 1.0]);
    let text = r.render_text();
    assert!(text.contains("mmlib_net_bytes_in_total 0\n"), "{text}");
    assert!(text.contains("mmlib_recover_phase_seconds_count{phase=\"fetch\"} 0\n"), "{text}");
}

#[test]
fn snapshot_is_sorted_and_complete() {
    let r = Recorder::new();
    r.inc("b_total", 2);
    r.inc("a_total", 1);
    r.gauge_set("c_level", 9.5);
    let snaps = r.snapshot();
    let names: Vec<&str> = snaps.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["a_total", "b_total", "c_level"]);
}
