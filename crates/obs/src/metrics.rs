//! The metric primitives: atomic counters, gauges, and fixed-bucket
//! histograms.
//!
//! All three are lock-free after creation: recording is `fetch_add` (or a
//! CAS loop for the float-valued histogram sum), so concurrent recorders on
//! many threads lose nothing — totals are exact, which the fault-injection
//! tests rely on when they assert byte counts down to the last truncated
//! frame.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default histogram buckets for wall-time observations in seconds:
/// exponential from 1 µs to 5 minutes. Save/recover phases span from
/// microseconds (a TinyCnn hash) to minutes (a full-scale provenance
/// replay), so the decades are spread evenly across that range.
pub const DURATION_BUCKETS: [f64; 12] = [
    1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
];

/// Default buckets for byte-size observations: exponential from 64 B to
/// 1 GiB (a ResNet-152 snapshot is ~242 MB; dataset containers are larger).
pub const SIZE_BUCKETS: [f64; 12] = [
    64.0,
    1024.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    8388608.0,
    33554432.0,
    134217728.0,
    268435456.0,
    536870912.0,
    1073741824.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge holding one instantaneous `f64` value (stored as bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) atomically.
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.set(0.0);
    }
}

/// A fixed-bucket histogram: cumulative-style bucket counts are derived at
/// snapshot time from per-bucket atomics, plus an exact total count and a
/// CAS-maintained `f64` sum.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds (inclusive, `le`) of each finite bucket, ascending.
    bounds: Vec<f64>,
    /// One slot per finite bound plus the +Inf overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending finite bucket bounds.
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let slot = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative counts per bound (Prometheus `le` semantics), excluding
    /// the +Inf bucket (whose cumulative count is [`Histogram::count`]).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.buckets[..self.bounds.len()]
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.add(3);
        c.add(4);
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::default();
        g.set(2.5);
        g.add(1.0);
        g.add(-0.5);
        assert_eq!(g.value(), 3.0);
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let h = Histogram::new(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.1, 0.5, 2.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 102.65);
        // le=0.1 → 2 (0.05, 0.1 inclusive), le=1 → 3, le=10 → 4; +Inf → 5.
        assert_eq!(h.cumulative(), vec![2, 3, 4]);
    }
}
