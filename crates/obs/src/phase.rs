//! Phase tracing: wall-time spans recorded into named histograms.
//!
//! Two flavors:
//!
//! - [`PhaseClock`] — accumulates a [`PhaseBreakdown`] (an ordered list of
//!   named durations) for returning in a report, *and* records each phase
//!   into the recorder's phase histogram. This is what `SaveReport` /
//!   `RecoverReport` are built from.
//! - [`SpanGuard`] / [`span!`] — a fire-and-forget guard that observes its
//!   lifetime into a histogram on drop, for call sites that don't need the
//!   duration back.

use std::time::{Duration, Instant};

use crate::recorder::Recorder;

/// An ordered list of `(phase, duration)` pairs. Repeated phases (e.g.
/// "write" hit once per base in a recursive recovery) are summed in place.
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    entries: Vec<(&'static str, Duration)>,
}

impl PhaseBreakdown {
    /// An empty breakdown.
    pub fn new() -> PhaseBreakdown {
        PhaseBreakdown::default()
    }

    /// Adds `d` to `phase`, creating the entry on first sight (insertion
    /// order is preserved, so breakdowns read in execution order).
    pub fn add(&mut self, phase: &'static str, d: Duration) {
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == phase) {
            e.1 += d;
        } else {
            self.entries.push((phase, d));
        }
    }

    /// Duration recorded for `phase` (zero when absent).
    pub fn get(&self, phase: &str) -> Duration {
        self.entries
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, d)| *d)
            .unwrap_or(Duration::ZERO)
    }

    /// The `(phase, duration)` pairs in execution order.
    pub fn entries(&self) -> &[(&'static str, Duration)] {
        &self.entries
    }

    /// Sum of all phase durations.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// True when no phase has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another breakdown into this one (phase-wise sums).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for (phase, d) in &other.entries {
            self.add(phase, *d);
        }
    }
}

/// Times named phases of one operation: each [`PhaseClock::time`] call both
/// feeds the breakdown and observes the duration into the recorder histogram
/// `metric{label_key="<phase>"}`.
pub struct PhaseClock<'r> {
    recorder: &'r Recorder,
    metric: &'static str,
    label_key: &'static str,
    breakdown: PhaseBreakdown,
    started: Instant,
}

impl<'r> PhaseClock<'r> {
    /// Starts a clock recording phases into `metric{label_key=...}` on
    /// `recorder`.
    pub fn new(recorder: &'r Recorder, metric: &'static str, label_key: &'static str) -> Self {
        PhaseClock { recorder, metric, label_key, breakdown: PhaseBreakdown::new(), started: Instant::now() }
    }

    /// Runs `f`, charging its wall time to `phase`.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(phase, start.elapsed());
        out
    }

    /// Charges an externally measured duration to `phase`.
    pub fn record(&mut self, phase: &'static str, d: Duration) {
        self.breakdown.add(phase, d);
        self.recorder
            .observe_duration(self.metric, (self.label_key, phase), d);
    }

    /// Wall time since the clock was created (the operation's total,
    /// including anything between timed phases).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Finishes the clock, returning the accumulated breakdown.
    pub fn finish(self) -> PhaseBreakdown {
        self.breakdown
    }

    /// The breakdown accumulated so far.
    pub fn breakdown(&self) -> &PhaseBreakdown {
        &self.breakdown
    }
}

/// Observes its own lifetime into a labeled histogram when dropped.
pub struct SpanGuard<'r> {
    recorder: &'r Recorder,
    metric: &'static str,
    label: (&'static str, &'static str),
    started: Instant,
}

impl<'r> SpanGuard<'r> {
    /// Starts a span; the duration lands in `metric{label.0=label.1}` on
    /// drop.
    pub fn new(
        recorder: &'r Recorder,
        metric: &'static str,
        label: (&'static str, &'static str),
    ) -> Self {
        SpanGuard { recorder, metric, label, started: Instant::now() }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder
            .observe_duration(self.metric, self.label, self.started.elapsed());
    }
}

/// Opens a [`SpanGuard`] on the global recorder (or an explicit one) that
/// records its lifetime into a phase histogram:
///
/// ```
/// use mmlib_obs::span;
/// {
///     let _span = span!("mmlib_save_phase_seconds", "merkle_hash");
///     // ... hash work ...
/// } // duration observed here
/// assert!(mmlib_obs::recorder()
///     .histogram_count("mmlib_save_phase_seconds", Some(("phase", "merkle_hash"))) >= 1);
/// ```
#[macro_export]
macro_rules! span {
    ($metric:expr, $phase:expr) => {
        $crate::SpanGuard::new($crate::recorder(), $metric, ("phase", $phase))
    };
    ($recorder:expr, $metric:expr, $phase:expr) => {
        $crate::SpanGuard::new($recorder, $metric, ("phase", $phase))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_repeated_phases_in_order() {
        let mut b = PhaseBreakdown::new();
        b.add("fetch", Duration::from_millis(2));
        b.add("rebuild", Duration::from_millis(5));
        b.add("fetch", Duration::from_millis(3));
        assert_eq!(b.get("fetch"), Duration::from_millis(5));
        assert_eq!(b.entries()[0].0, "fetch");
        assert_eq!(b.entries()[1].0, "rebuild");
        assert_eq!(b.total(), Duration::from_millis(10));
    }

    #[test]
    fn clock_feeds_breakdown_and_recorder() {
        let r = Recorder::new();
        let mut clock = PhaseClock::new(&r, "op_phase_seconds", "phase");
        let out = clock.time("hash", || 41 + 1);
        assert_eq!(out, 42);
        clock.record("write", Duration::from_millis(7));
        let b = clock.finish();
        assert_eq!(b.get("write"), Duration::from_millis(7));
        assert_eq!(r.histogram_count("op_phase_seconds", Some(("phase", "hash"))), 1);
        assert_eq!(r.histogram_count("op_phase_seconds", Some(("phase", "write"))), 1);
        let sum = r.histogram_sum("op_phase_seconds", Some(("phase", "write")));
        assert!((sum - 0.007).abs() < 1e-9, "{sum}");
    }

    #[test]
    fn span_guard_records_on_drop() {
        let r = Recorder::new();
        {
            let _g = SpanGuard::new(&r, "span_seconds", ("phase", "verify"));
        }
        assert_eq!(r.histogram_count("span_seconds", Some(("phase", "verify"))), 1);
    }

    #[test]
    fn disabled_recorder_spans_are_noops() {
        let r = Recorder::disabled();
        let mut clock = PhaseClock::new(&r, "op_phase_seconds", "phase");
        clock.time("hash", || ());
        // Breakdown still works (reports stay usable even with recording
        // off); only the shared histogram stays empty.
        assert_eq!(clock.breakdown().entries().len(), 1);
        assert_eq!(r.histogram_count("op_phase_seconds", Some(("phase", "hash"))), 0);
    }
}
