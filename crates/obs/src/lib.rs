//! mmlib-obs: the observability substrate for mmlib.
//!
//! Zero-dependency (std only) metrics registry plus phase tracer. The rest
//! of the workspace records into a [`Recorder`] — counters for bytes/ops,
//! histograms for latencies, labeled phase histograms for save/recover
//! breakdowns — and anything with a terminal or a socket can read it back
//! as a deterministic snapshot or a Prometheus text exposition
//! ([`Recorder::render_text`]).
//!
//! Design rules:
//!
//! - **Record unconditionally.** Library code never asks "is observability
//!   on?" — it calls the recorder, and a disabled recorder returns after a
//!   single atomic load.
//! - **Global but overridable.** [`recorder()`] is the process default;
//!   anything needing isolated counts (a server under test, a bench run)
//!   constructs its own [`Recorder`] and threads it through.
//! - **Exact totals.** All primitives are atomic; concurrent recording
//!   loses nothing. Fault-injection tests assert byte counters down to the
//!   last truncated frame.
//!
//! ```
//! use mmlib_obs::Recorder;
//!
//! let r = Recorder::new();
//! r.inc_labeled("mmlib_store_ops_total", ("op", "doc_insert"), 1);
//! r.observe_labeled("mmlib_save_phase_seconds", ("phase", "hash"), 0.012);
//! assert_eq!(r.counter_value("mmlib_store_ops_total", Some(("op", "doc_insert"))), 1);
//! assert!(r.render_text().contains("# TYPE mmlib_save_phase_seconds histogram"));
//! ```

#![forbid(unsafe_code)]

mod metrics;
mod phase;
mod recorder;
pub mod taxonomy;

pub use metrics::{Counter, Gauge, Histogram, DURATION_BUCKETS, SIZE_BUCKETS};
pub use phase::{PhaseBreakdown, PhaseClock, SpanGuard};
pub use recorder::{recorder, MetricSnapshot, Recorder, SnapshotValue};
