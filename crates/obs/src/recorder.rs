//! The [`Recorder`]: a named-metric registry behind one on/off switch.
//!
//! Libraries record unconditionally — every instrumented call site goes
//! through a `Recorder` method, and when recording is disabled each call
//! costs exactly one atomic load before returning. There is one process
//! [`recorder()`] that instrumented crates use by default, but the handle is
//! overridable: anything that needs isolated counts (a registry server under
//! test, a bench run) constructs its own `Recorder` and threads it through.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram, DURATION_BUCKETS};

/// Counter bumped when a metric name is re-registered with a different
/// kind (see [`Recorder::counter`] and friends): the caller gets a
/// detached handle instead of a panic, and the conflict shows up here.
pub(crate) const REGISTRATION_CONFLICTS: &str = "mmlib_obs_registration_conflicts_total";

/// A metric's identity: base name plus an optional single `key="value"`
/// label pair. `BTreeMap` ordering makes exposition output deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    label: Option<(String, String)>,
}

impl Key {
    fn new(name: &str, label: Option<(&str, &str)>) -> Key {
        Key {
            name: name.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
        }
    }
}

#[derive(Debug, Clone)]
enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric's point-in-time value, for building JSON snapshots elsewhere
/// (this crate stays dependency-free, so it exposes plain data instead).
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric base name (e.g. `mmlib_net_requests_total`).
    pub name: String,
    /// Optional `(key, value)` label pair.
    pub label: Option<(String, String)>,
    /// The value.
    pub value: SnapshotValue,
}

/// A snapshot value per metric kind.
#[derive(Debug, Clone)]
pub enum SnapshotValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(f64),
    /// Histogram: finite bucket bounds, cumulative counts per bound, total
    /// count, and sum.
    Histogram {
        /// Finite `le` bounds.
        bounds: Vec<f64>,
        /// Cumulative counts aligned with `bounds`.
        cumulative: Vec<u64>,
        /// Total observations (the `+Inf` cumulative count).
        count: u64,
        /// Sum of observations.
        sum: f64,
    },
}

/// A metrics registry with a single enable switch.
#[derive(Debug, Default)]
pub struct Recorder {
    enabled: AtomicBool,
    metrics: RwLock<BTreeMap<Key, Entry>>,
}

impl Recorder {
    /// A fresh, enabled recorder.
    pub fn new() -> Recorder {
        let r = Recorder::default();
        r.enabled.store(true, Ordering::Relaxed);
        r
    }

    /// A fresh recorder with recording off (metrics can still be
    /// registered; recording calls return after one atomic load).
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// Whether recording is on. Every recording method checks this first,
    /// so a disabled recorder costs one atomic load per call site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    // ---- recording ------------------------------------------------------

    /// Adds `n` to the counter `name` (creating it on first use).
    #[inline]
    pub fn inc(&self, name: &str, n: u64) {
        if !self.enabled() {
            return;
        }
        self.counter(name, None).add(n);
    }

    /// Adds `n` to the counter `name{key="value"}`.
    #[inline]
    pub fn inc_labeled(&self, name: &str, label: (&str, &str), n: u64) {
        if !self.enabled() {
            return;
        }
        self.counter(name, Some(label)).add(n);
    }

    /// Sets the gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if !self.enabled() {
            return;
        }
        self.gauge(name, None).set(v);
    }

    /// Adds `delta` to the gauge `name`.
    #[inline]
    pub fn gauge_add(&self, name: &str, delta: f64) {
        if !self.enabled() {
            return;
        }
        self.gauge(name, None).add(delta);
    }

    /// Observes `v` in the histogram `name` (default duration buckets on
    /// first use).
    #[inline]
    pub fn observe(&self, name: &str, v: f64) {
        if !self.enabled() {
            return;
        }
        self.histogram(name, None, &DURATION_BUCKETS).observe(v);
    }

    /// Observes `v` in the histogram `name{key="value"}`.
    #[inline]
    pub fn observe_labeled(&self, name: &str, label: (&str, &str), v: f64) {
        if !self.enabled() {
            return;
        }
        self.histogram(name, Some(label), &DURATION_BUCKETS).observe(v);
    }

    /// Observes a wall-time duration, in seconds, under `name{key="value"}`.
    #[inline]
    pub fn observe_duration(&self, name: &str, label: (&str, &str), d: std::time::Duration) {
        self.observe_labeled(name, label, d.as_secs_f64());
    }

    // ---- registration / handle lookup -----------------------------------

    /// Returns (creating if needed) the counter `name{label}`. Registration
    /// works even while disabled, so expositions can show zero-valued
    /// metrics before any traffic.
    ///
    /// If `name` is already registered as a different kind, the conflict is
    /// counted under [`REGISTRATION_CONFLICTS`] and the caller receives a
    /// detached handle (its updates are invisible to expositions) — a
    /// telemetry bug must not abort an instrumented caller.
    pub fn counter(&self, name: &str, label: Option<(&str, &str)>) -> Arc<Counter> {
        if let Some(Entry::Counter(c)) = self.lookup(name, label) {
            return c;
        }
        self.insert_if_absent(name, label, || Entry::Counter(Arc::new(Counter::default())), |e| {
            match e {
                Entry::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            }
        })
        .unwrap_or_else(|| {
            self.note_conflict();
            Arc::new(Counter::default())
        })
    }

    /// Returns (creating if needed) the gauge `name{label}`. Kind conflicts
    /// behave as in [`Recorder::counter`].
    pub fn gauge(&self, name: &str, label: Option<(&str, &str)>) -> Arc<Gauge> {
        if let Some(Entry::Gauge(g)) = self.lookup(name, label) {
            return g;
        }
        self.insert_if_absent(name, label, || Entry::Gauge(Arc::new(Gauge::default())), |e| {
            match e {
                Entry::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            }
        })
        .unwrap_or_else(|| {
            self.note_conflict();
            Arc::new(Gauge::default())
        })
    }

    /// Returns (creating if needed) the histogram `name{label}` with the
    /// given bucket bounds (bounds apply only at creation). Kind conflicts
    /// behave as in [`Recorder::counter`].
    pub fn histogram(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        bounds: &[f64],
    ) -> Arc<Histogram> {
        if let Some(Entry::Histogram(h)) = self.lookup(name, label) {
            return h;
        }
        self.insert_if_absent(name, label, || Entry::Histogram(Arc::new(Histogram::new(bounds))), |e| {
            match e {
                Entry::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            }
        })
        .unwrap_or_else(|| {
            self.note_conflict();
            Arc::new(Histogram::new(bounds))
        })
    }

    fn lookup(&self, name: &str, label: Option<(&str, &str)>) -> Option<Entry> {
        let key = Key::new(name, label);
        self.read_map().get(&key).cloned()
    }

    /// Inserts the entry if the key is vacant and casts whatever occupies
    /// the slot to the requested handle type; `None` means the slot holds a
    /// different metric kind.
    fn insert_if_absent<T>(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        make: impl FnOnce() -> Entry,
        cast: impl Fn(&Entry) -> Option<T>,
    ) -> Option<T> {
        let key = Key::new(name, label);
        let mut map = self.write_map();
        let entry = map.entry(key).or_insert_with(make);
        cast(entry)
    }

    /// Records a kind-conflicting registration so the miswiring is visible
    /// in every exposition.
    fn note_conflict(&self) {
        let key = Key::new(REGISTRATION_CONFLICTS, None);
        let mut map = self.write_map();
        if let Entry::Counter(c) =
            map.entry(key).or_insert_with(|| Entry::Counter(Arc::new(Counter::default())))
        {
            c.add(1);
        }
    }

    /// Metrics are plain atomics, so a panic under the registry lock cannot
    /// leave them inconsistent — recover the poisoned guard instead of
    /// cascading the panic into every later instrumented call.
    fn read_map(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<Key, Entry>> {
        self.metrics.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_map(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<Key, Entry>> {
        self.metrics.write().unwrap_or_else(|e| e.into_inner())
    }

    // ---- reading --------------------------------------------------------

    /// Current value of a counter (0 when absent).
    pub fn counter_value(&self, name: &str, label: Option<(&str, &str)>) -> u64 {
        match self.lookup(name, label) {
            Some(Entry::Counter(c)) => c.value(),
            _ => 0,
        }
    }

    /// Current value of a gauge (0 when absent).
    pub fn gauge_value(&self, name: &str, label: Option<(&str, &str)>) -> f64 {
        match self.lookup(name, label) {
            Some(Entry::Gauge(g)) => g.value(),
            _ => 0.0,
        }
    }

    /// Observation count of a histogram (0 when absent).
    pub fn histogram_count(&self, name: &str, label: Option<(&str, &str)>) -> u64 {
        match self.lookup(name, label) {
            Some(Entry::Histogram(h)) => h.count(),
            _ => 0,
        }
    }

    /// Observation sum of a histogram (0 when absent).
    pub fn histogram_sum(&self, name: &str, label: Option<(&str, &str)>) -> f64 {
        match self.lookup(name, label) {
            Some(Entry::Histogram(h)) => h.sum(),
            _ => 0.0,
        }
    }

    /// Point-in-time values of every registered metric, in deterministic
    /// (name, label) order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.read_map();
        map.iter()
            .map(|(key, entry)| MetricSnapshot {
                name: key.name.clone(),
                label: key.label.clone(),
                value: match entry {
                    Entry::Counter(c) => SnapshotValue::Counter(c.value()),
                    Entry::Gauge(g) => SnapshotValue::Gauge(g.value()),
                    Entry::Histogram(h) => SnapshotValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        cumulative: h.cumulative(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                },
            })
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` headers, `_bucket`/`_sum`/`_count`
    /// histogram series with cumulative `le` labels.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<String> = None;
        for snap in self.snapshot() {
            if last_name.as_deref() != Some(snap.name.as_str()) {
                let kind = match snap.value {
                    SnapshotValue::Counter(_) => "counter",
                    SnapshotValue::Gauge(_) => "gauge",
                    SnapshotValue::Histogram { .. } => "histogram",
                };
                // Writing into a String cannot fail; ignore the fmt Result.
                let _ = writeln!(out, "# TYPE {} {kind}", snap.name);
                last_name = Some(snap.name.clone());
            }
            let labels = |extra: Option<(&str, String)>| -> String {
                let mut pairs = Vec::new();
                if let Some((k, v)) = &snap.label {
                    pairs.push(format!("{k}=\"{v}\""));
                }
                if let Some((k, v)) = extra {
                    pairs.push(format!("{k}=\"{v}\""));
                }
                if pairs.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", pairs.join(","))
                }
            };
            match &snap.value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", snap.name, labels(None));
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", snap.name, labels(None), fmt_f64(*v));
                }
                SnapshotValue::Histogram { bounds, cumulative, count, sum } => {
                    for (bound, cum) in bounds.iter().zip(cumulative) {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            snap.name,
                            labels(Some(("le", fmt_f64(*bound))))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {count}",
                        snap.name,
                        labels(Some(("le", "+Inf".to_string())))
                    );
                    let _ = writeln!(out, "{}_sum{} {}", snap.name, labels(None), fmt_f64(*sum));
                    let _ = writeln!(out, "{}_count{} {count}", snap.name, labels(None));
                }
            }
        }
        out
    }

    /// Zeroes every registered metric (names and buckets stay registered).
    /// Bench/test plumbing — not meant for production paths.
    pub fn reset(&self) {
        let map = self.read_map();
        for entry in map.values() {
            match entry {
                Entry::Counter(c) => c.reset(),
                Entry::Gauge(g) => g.reset(),
                Entry::Histogram(h) => h.reset(),
            }
        }
    }
}

/// Formats an `f64` the way Prometheus expositions expect: Rust's `{}`
/// Display is the shortest round-trip form and never uses an exponent for
/// integral values, so it is already conformant.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// The process-wide default recorder, used by instrumented library code
/// unless a caller threads its own [`Recorder`] through. Enabled from the
/// start; set `MMLIB_OBS=0` in the environment to boot with recording off.
pub fn recorder() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let r = Recorder::new();
        if std::env::var("MMLIB_OBS").is_ok_and(|v| v == "0") {
            r.set_enabled(false);
        }
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        r.inc("x_total", 5);
        r.observe("y_seconds", 0.5);
        assert_eq!(r.counter_value("x_total", None), 0);
        assert_eq!(r.histogram_count("y_seconds", None), 0);
        r.set_enabled(true);
        r.inc("x_total", 5);
        assert_eq!(r.counter_value("x_total", None), 5);
    }

    #[test]
    fn labeled_counters_are_distinct() {
        let r = Recorder::new();
        r.inc_labeled("ops_total", ("op", "get"), 2);
        r.inc_labeled("ops_total", ("op", "put"), 3);
        assert_eq!(r.counter_value("ops_total", Some(("op", "get"))), 2);
        assert_eq!(r.counter_value("ops_total", Some(("op", "put"))), 3);
    }

    #[test]
    fn kind_collision_detaches_and_counts() {
        let r = Recorder::new();
        r.inc("m", 1);
        // Same name, different kind: the observation lands on a detached
        // histogram, the original counter is untouched, and the conflict
        // counter records the miswiring.
        r.observe("m", 1.0);
        assert_eq!(r.counter_value("m", None), 1);
        assert_eq!(r.histogram_count("m", None), 0);
        assert_eq!(r.counter_value(REGISTRATION_CONFLICTS, None), 1);
        r.observe("m", 2.0);
        assert_eq!(r.counter_value(REGISTRATION_CONFLICTS, None), 2);
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let r = Recorder::new();
        r.inc("a_total", 9);
        r.observe("b_seconds", 0.1);
        r.reset();
        assert_eq!(r.counter_value("a_total", None), 0);
        assert_eq!(r.histogram_count("b_seconds", None), 0);
        // Still present in the exposition.
        let text = r.render_text();
        assert!(text.contains("a_total 0"));
        assert!(text.contains("b_seconds_count 0"));
    }
}
