//! The metric taxonomy: the complete dictionary of every metric name this
//! workspace can expose.
//!
//! Instrumented crates keep their own `const` for each name they register;
//! this table is the central cross-reference. `mmlib-lint` rule **M1**
//! enforces the contract in both directions: a `mmlib_*` metric registered
//! anywhere must be declared here (exactly once, snake_case), and every
//! entry here must be registered by live library code. A scrape of any
//! mmlib deployment therefore never shows a name this file cannot explain.
//!
//! Naming follows Prometheus conventions: `mmlib_` prefix, snake_case,
//! and a unit suffix — `_total` (counters), `_seconds` (histograms),
//! `_bytes` (sizes folded into `_bytes_total` counters).

/// Metric kind, mirroring the Prometheus exposition `# TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic `u64` counter.
    Counter,
    /// Instantaneous `f64` level.
    Gauge,
    /// Bucketed `f64` observations.
    Histogram,
}

/// One taxonomy entry: a metric's name, kind, and help text.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Full metric name as registered (e.g. `mmlib_save_seconds`).
    pub name: &'static str,
    /// Exposition kind.
    pub kind: MetricKind,
    /// Human-readable description, suitable for a `# HELP` line.
    pub help: &'static str,
}

/// Every metric the workspace registers, sorted by name.
pub const TAXONOMY: &[MetricDef] = &[
    MetricDef {
        name: "mmlib_lineage_compactions_total",
        kind: MetricKind::Counter,
        help: "Delta-chain compaction runs completed.",
    },
    MetricDef {
        name: "mmlib_lineage_family_models_total",
        kind: MetricKind::Counter,
        help: "Models returned by batch family recoveries.",
    },
    MetricDef {
        name: "mmlib_lineage_family_recover_seconds",
        kind: MetricKind::Histogram,
        help: "Wall time of whole batch family recoveries.",
    },
    MetricDef {
        name: "mmlib_lineage_family_recovers_total",
        kind: MetricKind::Counter,
        help: "Batch family recovery calls.",
    },
    MetricDef {
        name: "mmlib_lineage_promoted_total",
        kind: MetricKind::Counter,
        help: "Chain nodes promoted to full snapshots by compaction.",
    },
    MetricDef {
        name: "mmlib_lineage_queries_total",
        kind: MetricKind::Counter,
        help: "Lineage queries served, labeled by query kind.",
    },
    MetricDef {
        name: "mmlib_lint_analysis_seconds",
        kind: MetricKind::Histogram,
        help: "Wall-clock duration of one full mmlib-lint workspace analysis.",
    },
    MetricDef {
        name: "mmlib_lint_findings_total",
        kind: MetricKind::Counter,
        help: "mmlib-lint findings per rule (active violations plus pragma-allowed).",
    },
    MetricDef {
        name: "mmlib_net_bytes_in_total",
        kind: MetricKind::Counter,
        help: "Raw socket bytes received by the registry server.",
    },
    MetricDef {
        name: "mmlib_net_bytes_out_total",
        kind: MetricKind::Counter,
        help: "Raw socket bytes written to the wire by the registry server.",
    },
    MetricDef {
        name: "mmlib_net_connections_total",
        kind: MetricKind::Counter,
        help: "Connections accepted and adopted by a registry I/O thread.",
    },
    MetricDef {
        name: "mmlib_net_inflight_requests",
        kind: MetricKind::Gauge,
        help: "Requests admitted by the registry server and not yet answered.",
    },
    MetricDef {
        name: "mmlib_net_load_shed_total",
        kind: MetricKind::Counter,
        help: "Requests the registry server answered with Busy under admission control.",
    },
    MetricDef {
        name: "mmlib_net_pool_connections",
        kind: MetricKind::Gauge,
        help: "Pooled client connections currently open to registry servers.",
    },
    MetricDef {
        name: "mmlib_net_request_seconds",
        kind: MetricKind::Histogram,
        help: "Registry request service time, labeled by opcode name.",
    },
    MetricDef {
        name: "mmlib_net_requests_total",
        kind: MetricKind::Counter,
        help: "Registry requests served, labeled by opcode name.",
    },
    MetricDef {
        name: "mmlib_obs_registration_conflicts_total",
        kind: MetricKind::Counter,
        help: "Metric registrations rejected because the name already carries a \
               different kind; the caller got a detached handle.",
    },
    MetricDef {
        name: "mmlib_recover_phase_seconds",
        kind: MetricKind::Histogram,
        help: "Recover time per phase (load, decode, verify), labeled by phase.",
    },
    MetricDef {
        name: "mmlib_recover_seconds",
        kind: MetricKind::Histogram,
        help: "End-to-end model recover latency, labeled by approach.",
    },
    MetricDef {
        name: "mmlib_save_bytes_total",
        kind: MetricKind::Counter,
        help: "Bytes persisted by model saves, labeled by approach.",
    },
    MetricDef {
        name: "mmlib_save_phase_seconds",
        kind: MetricKind::Histogram,
        help: "Save time per phase (hash, diff, encode, persist), labeled by phase.",
    },
    MetricDef {
        name: "mmlib_save_seconds",
        kind: MetricKind::Histogram,
        help: "End-to-end model save latency, labeled by approach.",
    },
    MetricDef {
        name: "mmlib_simnet_bytes_total",
        kind: MetricKind::Counter,
        help: "Bytes pushed through the simulated network model.",
    },
    MetricDef {
        name: "mmlib_simnet_nanos_total",
        kind: MetricKind::Counter,
        help: "Simulated transfer time accumulated by the network model, in nanoseconds.",
    },
    MetricDef {
        name: "mmlib_store_bytes_read_total",
        kind: MetricKind::Counter,
        help: "Bytes read from the model store's backing storage.",
    },
    MetricDef {
        name: "mmlib_store_bytes_written_total",
        kind: MetricKind::Counter,
        help: "Bytes written to the model store's backing storage.",
    },
    MetricDef {
        name: "mmlib_store_ops_total",
        kind: MetricKind::Counter,
        help: "Model store operations, labeled by op (insert, get, remove, ...).",
    },
    MetricDef {
        name: "mmlib_store_sync_ops_total",
        kind: MetricKind::Counter,
        help: "Durability sync operations (payload fdatasync / directory fsync) issued by the store.",
    },
    MetricDef {
        name: "mmlib_tensor_hash_bytes_total",
        kind: MetricKind::Counter,
        help: "Tensor bytes hashed while building content addresses.",
    },
    MetricDef {
        name: "mmlib_tensor_hash_ops_total",
        kind: MetricKind::Counter,
        help: "Tensor hash operations performed.",
    },
    MetricDef {
        name: "mmlib_tensor_hash_parallel_fallback_total",
        kind: MetricKind::Counter,
        help: "Parallel digest maps recomputed serially after a worker panic.",
    },
    MetricDef {
        name: "mmlib_tensor_hash_parallel_ops_total",
        kind: MetricKind::Counter,
        help: "Tensor digests computed on the parallel hashing path.",
    },
];

/// Looks a metric name up in the taxonomy.
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    TAXONOMY.iter().find(|d| d.name == name)
}

/// The `# HELP` line for a metric, when its name is in the taxonomy.
pub fn help_line(name: &str) -> Option<String> {
    lookup(name).map(|d| format!("# HELP {} {}", d.name, d.help))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_sorted_and_unique() {
        for pair in TAXONOMY.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "taxonomy must stay sorted and duplicate-free: {} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn names_follow_the_convention() {
        for def in TAXONOMY {
            assert!(def.name.starts_with("mmlib_"), "{} lacks the mmlib_ prefix", def.name);
            let suffix_ok = match def.kind {
                MetricKind::Counter => def.name.ends_with("_total"),
                MetricKind::Histogram => def.name.ends_with("_seconds"),
                MetricKind::Gauge => true,
            };
            assert!(suffix_ok, "{} has the wrong unit suffix for {:?}", def.name, def.kind);
            assert!(!def.help.is_empty(), "{} has no help text", def.name);
        }
    }

    #[test]
    fn lookup_finds_declared_names() {
        assert!(lookup("mmlib_save_seconds").is_some());
        assert!(lookup("mmlib_not_a_metric_total").is_none());
        let help = help_line("mmlib_store_ops_total").unwrap();
        assert!(help.starts_with("# HELP mmlib_store_ops_total "));
    }
}
