//! The [`Model`] type: architecture id + module tree + state-dict API.

use std::collections::BTreeMap;
use std::fmt;

use mmlib_tensor::{Pcg32, Tensor};

use crate::arch::ArchId;
use crate::module::{Ctx, EntryKind, Module};

/// Errors produced by state-dict loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The state dict lacks an entry the model expects.
    MissingEntry(String),
    /// The state dict contains an entry the model does not have.
    UnexpectedEntry(String),
    /// An entry exists but its shape does not match the model's tensor.
    ShapeMismatch {
        /// Entry path.
        path: String,
        /// Shape dims the model expects.
        expected: Vec<usize>,
        /// Shape dims the state dict provides.
        actual: Vec<usize>,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingEntry(p) => write!(f, "state dict missing entry {p}"),
            ModelError::UnexpectedEntry(p) => write!(f, "state dict has unexpected entry {p}"),
            ModelError::ShapeMismatch { path, expected, actual } => {
                write!(f, "shape mismatch at {path}: expected {expected:?}, got {actual:?}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Description of one mmlib layer (a parameterized leaf module).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerDesc {
    /// Canonical layer path (e.g. `"layer1.0.body.conv1"`).
    pub path: String,
    /// Whether the layer is currently trainable.
    pub trainable: bool,
}

/// A deep-learning model: `M = (M_a, M_p)` in the paper's notation — an
/// architecture plus its parameters. This is the unit mmlib saves and
/// recovers, and the recovery invariant is `recover(save(m)) == m`
/// bit-for-bit over the full state dict (parameters *and* buffers).
pub struct Model {
    /// The architecture id (`M_a` is this id plus [`ArchId::source_code`]
    /// plus the captured environment).
    pub arch: ArchId,
    root: Module,
}

impl Model {
    /// Builds and initializes a model with the architecture's torchvision
    /// init routine. The same `(arch, seed)` always yields a bit-identical
    /// model (§2.3's seeded-randomness requirement).
    pub fn new_initialized(arch: ArchId, seed: u64) -> Model {
        let mut rng = Pcg32::new(seed, 0x6d6d6c69622d6d6f); // "mmlib-mo"
        Model { arch, root: arch.build(&mut rng) }
    }

    /// Wraps an existing module tree (used in tests).
    pub fn from_module(arch: ArchId, root: Module) -> Model {
        Model { arch, root }
    }

    /// Immutable access to the module tree.
    pub fn root(&self) -> &Module {
        &self.root
    }

    /// Mutable access to the module tree.
    pub fn root_mut(&mut self) -> &mut Module {
        &mut self.root
    }

    /// Forward pass on `[N, 3, H, W]` input.
    pub fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        self.root.forward(x, ctx)
    }

    /// Backward pass from the loss gradient.
    pub fn backward(&mut self, grad: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        self.root.backward(grad, ctx)
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.root.zero_grad();
    }

    /// The full state dict (parameters + buffers) in canonical order, cloned.
    pub fn state_dict(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        self.root.visit_state("", &mut |path, t, _, _| out.push((path, t.clone())));
        out
    }

    /// Borrowed state-dict view `(path, tensor, kind, layer_trainable)` in
    /// canonical order — allocation-free for hashing and serialization.
    pub fn state_entries(&self) -> Vec<(String, &Tensor, EntryKind, bool)> {
        let mut out = Vec::new();
        self.root
            .visit_state("", &mut |path, t, kind, trainable| out.push((path, t, kind, trainable)));
        out
    }

    /// Loads a full state dict. Every model entry must be present, every
    /// provided entry must exist in the model, and shapes must match.
    pub fn load_state_dict(&mut self, entries: &[(String, Tensor)]) -> Result<(), ModelError> {
        let mut provided: BTreeMap<&str, &Tensor> =
            entries.iter().map(|(p, t)| (p.as_str(), t)).collect();
        let mut error: Option<ModelError> = None;
        self.root.visit_state_mut("", &mut |path, dst, _| {
            if error.is_some() {
                return;
            }
            match provided.remove(path.as_str()) {
                Some(src) => {
                    if src.shape() != dst.shape() {
                        error = Some(ModelError::ShapeMismatch {
                            path,
                            expected: dst.shape().dims().to_vec(),
                            actual: src.shape().dims().to_vec(),
                        });
                    } else {
                        // Copy in place: reusing the existing allocation
                        // matters on systems where page faults are expensive.
                        dst.data_mut().copy_from_slice(src.data());
                    }
                }
                None => error = Some(ModelError::MissingEntry(path)),
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        if let Some((path, _)) = provided.pop_first() {
            return Err(ModelError::UnexpectedEntry(path.to_string()));
        }
        Ok(())
    }

    /// Applies a *partial* state dict: provided entries overwrite matching
    /// model entries; everything else is left untouched. This is the merge
    /// the parameter-update approach performs at recovery ("prioritizing
    /// M's parameter information in case of merge conflicts", §3.2).
    pub fn apply_update(&mut self, entries: &[(String, Tensor)]) -> Result<(), ModelError> {
        let mut provided: BTreeMap<&str, &Tensor> =
            entries.iter().map(|(p, t)| (p.as_str(), t)).collect();
        let mut error: Option<ModelError> = None;
        self.root.visit_state_mut("", &mut |path, dst, _| {
            if error.is_some() {
                return;
            }
            if let Some(src) = provided.remove(path.as_str()) {
                if src.shape() != dst.shape() {
                    error = Some(ModelError::ShapeMismatch {
                        path,
                        expected: dst.shape().dims().to_vec(),
                        actual: src.shape().dims().to_vec(),
                    });
                } else {
                    dst.data_mut().copy_from_slice(src.data());
                }
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        if let Some((path, _)) = provided.pop_first() {
            return Err(ModelError::UnexpectedEntry(path.to_string()));
        }
        Ok(())
    }

    /// Total count of *parameter* elements (buffers excluded), regardless of
    /// trainability — the paper's "#Params" column.
    pub fn param_count(&self) -> u64 {
        let mut n = 0u64;
        self.root.visit_state("", &mut |_, t, kind, _| {
            if kind == EntryKind::Parameter {
                n += t.numel() as u64;
            }
        });
        n
    }

    /// Count of parameter elements in currently-trainable layers — the
    /// paper's "part. updated" column when only the classifier is trainable.
    pub fn trainable_param_count(&self) -> u64 {
        let mut n = 0u64;
        self.root.visit_state("", &mut |_, t, kind, trainable| {
            if kind == EntryKind::Parameter && trainable {
                n += t.numel() as u64;
            }
        });
        n
    }

    /// Raw byte size of the full state dict (parameters + buffers).
    pub fn state_nbytes(&self) -> u64 {
        let mut n = 0u64;
        self.root.visit_state("", &mut |_, t, _, _| n += t.nbytes() as u64);
        n
    }

    /// Enumerates the mmlib layers (parameterized leaf modules) in order.
    pub fn layers(&self) -> Vec<LayerDesc> {
        let mut out = Vec::new();
        self.root.layer_paths("", &mut out);
        out.into_iter().map(|(path, trainable)| LayerDesc { path, trainable }).collect()
    }

    /// Marks every layer trainable (fully-updated model relation).
    pub fn set_fully_trainable(&mut self) {
        self.root.set_trainable("", &|_| true);
    }

    /// Freezes everything except the classifier (partially-updated relation:
    /// "only the last fully connected layers", paper §4.1).
    pub fn set_classifier_only_trainable(&mut self) {
        let prefix = self.arch.classifier_prefix();
        self.root.set_trainable("", &move |path| path.starts_with(prefix));
    }

    /// Visits `(path, param, grad)` for trainable parameters (optimizer hook).
    pub fn visit_trainable_mut(&mut self, f: &mut dyn FnMut(String, &mut Tensor, &mut Tensor)) {
        self.root.visit_trainable_mut("", f);
    }

    /// Copies another model's full state into this one, in place (no
    /// intermediate clones — important on page-fault-expensive hosts).
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn copy_state_from(&mut self, other: &Model) {
        assert_eq!(self.arch, other.arch, "copy_state_from requires equal architectures");
        let src: Vec<(String, &Tensor)> = {
            let mut v = Vec::new();
            other.root().visit_state("", &mut |p, t, _, _| v.push((p, t)));
            v
        };
        let mut i = 0usize;
        self.root.visit_state_mut("", &mut |path, dst, _| {
            let (sp, st) = &src[i];
            assert_eq!(&path, sp, "state traversal order must match");
            dst.data_mut().copy_from_slice(st.data());
            i += 1;
        });
        assert_eq!(i, src.len());
    }

    /// Creates an independent copy of this model (architecture + exact
    /// state). `Model` is deliberately not `Clone` so copies stay explicit.
    pub fn duplicate(&self) -> Model {
        let mut copy = Model::new_initialized(self.arch, 0);
        copy.copy_state_from(self);
        copy
    }

    /// Bit-exact model equality: same architecture and identical state dict
    /// (paper §2.1's `M_a = M'_a ∧ M_p = M'_p`).
    pub fn models_equal(&self, other: &Model) -> bool {
        if self.arch != other.arch {
            return false;
        }
        let a = self.state_entries();
        let b = other.state_entries();
        a.len() == b.len()
            && a.iter()
                .zip(&b)
                .all(|((pa, ta, _, _), (pb, tb, _, _))| pa == pb && ta.bit_eq(tb))
    }
}
