//! The five evaluation architectures (paper Table 2).
//!
//! Each builder reproduces the torchvision layer layout closely enough that
//! the *trainable parameter counts match the paper exactly*:
//!
//! | Architecture | #Params    | Partially updated |
//! |--------------|-----------:|------------------:|
//! | MobileNetV2  |  3,504,872 |         1,281,000 |
//! | GoogLeNet    |  6,624,904 |         1,025,000 |
//! | ResNet-18    | 11,689,512 |           513,000 |
//! | ResNet-50    | 25,557,032 |         2,049,000 |
//! | ResNet-152   | 60,192,808 |         2,049,000 |
//!
//! "Partially updated" is the paper's partial-update model relation: only the
//! final fully-connected classifier is trainable. These counts are asserted
//! in this module's tests.
//!
//! Two faithful quirks are kept on purpose:
//! * GoogLeNet's "5×5" inception branch actually uses a 3×3 kernel —
//!   torchvision's famous kernel-size bug, preserved there for weight
//!   compatibility. The paper's counts are torchvision counts, so we keep it.
//! * GoogLeNet initializes every conv/linear weight with the expensive
//!   inverse-CDF truncated normal ([`Init::TruncatedNormalPpf`]), which makes
//!   its initialization disproportionately slow — the cause of the
//!   recovery-time anomaly in the paper's Fig. 12.

use mmlib_tensor::{Init, Pcg32};
use serde::{Deserialize, Serialize};

use crate::common::{Dropout, Flatten, GlobalAvgPool, MaxPool2d, ReLU, ReLU6};
use crate::layers::{BatchNorm2d, Conv2d, Linear};
use crate::module::{Module, Residual, Sequential};

/// Identifier of one of the five evaluation architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchId {
    /// MobileNetV2 (Sandler et al., 2018).
    MobileNetV2,
    /// GoogLeNet (Szegedy et al., 2015), torchvision variant without aux heads.
    GoogLeNet,
    /// ResNet-18 (He et al., 2016).
    ResNet18,
    /// ResNet-50.
    ResNet50,
    /// ResNet-152.
    ResNet152,
    /// A ~18k-parameter CNN that is **not** part of the paper's Table 2.
    /// It exists so tests and property suites can exercise whole save/
    /// recover chains in milliseconds; excluded from [`ArchId::all`].
    TinyCnn,
}

impl ArchId {
    /// All architectures in the paper's Table 2 order (excludes the
    /// test-only [`ArchId::TinyCnn`]).
    pub fn all() -> [ArchId; 5] {
        [ArchId::MobileNetV2, ArchId::GoogLeNet, ArchId::ResNet18, ArchId::ResNet50, ArchId::ResNet152]
    }

    /// Canonical lowercase name (used in documents and file names).
    pub fn name(self) -> &'static str {
        match self {
            ArchId::MobileNetV2 => "mobilenetv2",
            ArchId::GoogLeNet => "googlenet",
            ArchId::ResNet18 => "resnet18",
            ArchId::ResNet50 => "resnet50",
            ArchId::ResNet152 => "resnet152",
            ArchId::TinyCnn => "tinycnn",
        }
    }

    /// Parses a canonical name back into an id.
    pub fn from_name(name: &str) -> Option<ArchId> {
        if name == ArchId::TinyCnn.name() {
            return Some(ArchId::TinyCnn);
        }
        ArchId::all().into_iter().find(|a| a.name() == name)
    }

    /// The paper's Table 2 trainable-parameter count for this architecture.
    pub fn paper_param_count(self) -> u64 {
        match self {
            ArchId::MobileNetV2 => 3_504_872,
            ArchId::GoogLeNet => 6_624_904,
            ArchId::ResNet18 => 11_689_512,
            ArchId::ResNet50 => 25_557_032,
            ArchId::ResNet152 => 60_192_808,
            ArchId::TinyCnn => 18_416,
        }
    }

    /// The paper's Table 2 partially-updated (classifier-only) count.
    pub fn paper_partial_param_count(self) -> u64 {
        match self {
            ArchId::MobileNetV2 => 1_281_000,
            ArchId::GoogLeNet => 1_025_000,
            ArchId::ResNet18 => 513_000,
            ArchId::ResNet50 => 2_049_000,
            ArchId::ResNet152 => 2_049_000,
            ArchId::TinyCnn => 17_000,
        }
    }

    /// Path prefix of the final classifier layer — the "last fully connected
    /// layers" the paper leaves trainable for partially updated versions.
    pub fn classifier_prefix(self) -> &'static str {
        match self {
            ArchId::MobileNetV2 => "classifier",
            _ => "fc",
        }
    }

    /// Smallest square input resolution the module tree supports (the
    /// stride/pooling pyramid must not collapse below 1×1).
    pub fn min_resolution(self) -> usize {
        match self {
            ArchId::TinyCnn => 8,
            _ => 32,
        }
    }

    /// Builds the architecture with its torchvision-style initialization,
    /// consuming randomness from `rng`.
    pub fn build(self, rng: &mut Pcg32) -> Module {
        match self {
            ArchId::MobileNetV2 => mobilenet_v2(rng),
            ArchId::GoogLeNet => googlenet(rng),
            ArchId::ResNet18 => resnet(&[2, 2, 2, 2], Block::Basic, rng),
            ArchId::ResNet50 => resnet(&[3, 4, 6, 3], Block::Bottleneck, rng),
            ArchId::ResNet152 => resnet(&[3, 8, 36, 3], Block::Bottleneck, rng),
            ArchId::TinyCnn => tiny_cnn(rng),
        }
    }

    /// A canonical textual representation of the architecture definition —
    /// the "model code" artifact the baseline approach stores alongside the
    /// parameters (paper §3.1).
    pub fn source_code(self) -> String {
        format!(
            "// mmlib architecture definition v1\n\
             // Rust re-implementation of torchvision {name}\n\
             arch = {name}\n\
             classes = 1000\n\
             params = {params}\n\
             classifier = {clf}\n",
            name = self.name(),
            params = self.paper_param_count(),
            clf = self.classifier_prefix(),
        )
    }
}

const NUM_CLASSES: usize = 1000;

enum Block {
    Basic,
    Bottleneck,
}

fn named(children: Vec<(String, Module)>) -> Module {
    Module::Sequential(Sequential::new(children))
}

// ---------------------------------------------------------------------------
// ResNet
// ---------------------------------------------------------------------------

fn resnet_conv(
    cin: usize,
    cout: usize,
    k: usize,
    stride: usize,
    pad: usize,
    rng: &mut Pcg32,
) -> Module {
    Module::Conv2d(
        Conv2d::new(cin, cout, k, stride, pad, 1, false).init(Init::KaimingNormalFanOut, rng),
    )
}

fn basic_block(cin: usize, cout: usize, stride: usize, rng: &mut Pcg32) -> Module {
    let body = named(vec![
        ("conv1".into(), resnet_conv(cin, cout, 3, stride, 1, rng)),
        ("bn1".into(), Module::BatchNorm2d(BatchNorm2d::new(cout))),
        ("relu1".into(), Module::ReLU(ReLU::new())),
        ("conv2".into(), resnet_conv(cout, cout, 3, 1, 1, rng)),
        ("bn2".into(), Module::BatchNorm2d(BatchNorm2d::new(cout))),
    ]);
    let downsample = (stride != 1 || cin != cout).then(|| {
        named(vec![
            ("0".into(), resnet_conv(cin, cout, 1, stride, 0, rng)),
            ("1".into(), Module::BatchNorm2d(BatchNorm2d::new(cout))),
        ])
    });
    Module::Residual(Residual::new(body, downsample, true))
}

fn bottleneck_block(cin: usize, width: usize, stride: usize, rng: &mut Pcg32) -> Module {
    let cout = width * 4;
    let body = named(vec![
        ("conv1".into(), resnet_conv(cin, width, 1, 1, 0, rng)),
        ("bn1".into(), Module::BatchNorm2d(BatchNorm2d::new(width))),
        ("relu1".into(), Module::ReLU(ReLU::new())),
        ("conv2".into(), resnet_conv(width, width, 3, stride, 1, rng)),
        ("bn2".into(), Module::BatchNorm2d(BatchNorm2d::new(width))),
        ("relu2".into(), Module::ReLU(ReLU::new())),
        ("conv3".into(), resnet_conv(width, cout, 1, 1, 0, rng)),
        ("bn3".into(), Module::BatchNorm2d(BatchNorm2d::new(cout))),
    ]);
    let downsample = (stride != 1 || cin != cout).then(|| {
        named(vec![
            ("0".into(), resnet_conv(cin, cout, 1, stride, 0, rng)),
            ("1".into(), Module::BatchNorm2d(BatchNorm2d::new(cout))),
        ])
    });
    Module::Residual(Residual::new(body, downsample, true))
}

fn resnet(layers: &[usize; 4], block: Block, rng: &mut Pcg32) -> Module {
    let widths = [64usize, 128, 256, 512];
    let expansion = match block {
        Block::Basic => 1,
        Block::Bottleneck => 4,
    };
    let mut children: Vec<(String, Module)> = vec![
        ("conv1".into(), resnet_conv(3, 64, 7, 2, 3, rng)),
        ("bn1".into(), Module::BatchNorm2d(BatchNorm2d::new(64))),
        ("relu".into(), Module::ReLU(ReLU::new())),
        ("maxpool".into(), Module::MaxPool2d(MaxPool2d::new(3, 2, 1))),
    ];
    let mut cin = 64usize;
    for (i, (&n, &width)) in layers.iter().zip(&widths).enumerate() {
        let stage_stride = if i == 0 { 1 } else { 2 };
        let mut blocks = Vec::with_capacity(n);
        for j in 0..n {
            let stride = if j == 0 { stage_stride } else { 1 };
            let b = match block {
                Block::Basic => basic_block(cin, width, stride, rng),
                Block::Bottleneck => bottleneck_block(cin, width, stride, rng),
            };
            cin = width * expansion;
            blocks.push((j.to_string(), b));
        }
        children.push((format!("layer{}", i + 1), named(blocks)));
    }
    children.push(("avgpool".into(), Module::GlobalAvgPool(GlobalAvgPool::new())));
    children.push((
        "fc".into(),
        Module::Linear(Linear::new(cin, NUM_CLASSES).init(Init::UniformFanIn, Init::UniformFanIn, rng)),
    ));
    named(children)
}

// ---------------------------------------------------------------------------
// MobileNetV2
// ---------------------------------------------------------------------------

fn mnv2_conv_bn_relu(
    cin: usize,
    cout: usize,
    k: usize,
    stride: usize,
    groups: usize,
    rng: &mut Pcg32,
) -> Vec<(String, Module)> {
    let pad = (k - 1) / 2;
    vec![
        (
            "0".into(),
            Module::Conv2d(
                Conv2d::new(cin, cout, k, stride, pad, groups, false)
                    .init(Init::KaimingNormalFanOut, rng),
            ),
        ),
        ("1".into(), Module::BatchNorm2d(BatchNorm2d::new(cout))),
        ("2".into(), Module::ReLU6(ReLU6::new())),
    ]
}

fn inverted_residual(cin: usize, cout: usize, stride: usize, expand: usize, rng: &mut Pcg32) -> Module {
    let hidden = cin * expand;
    let mut seq: Vec<(String, Module)> = Vec::new();
    let mut idx = 0usize;
    let mut push = |seq: &mut Vec<(String, Module)>, m: Module| {
        seq.push((idx.to_string(), m));
        idx += 1;
    };
    if expand != 1 {
        // Pointwise expansion.
        push(&mut seq, Module::Conv2d(Conv2d::new(cin, hidden, 1, 1, 0, 1, false).init(Init::KaimingNormalFanOut, rng)));
        push(&mut seq, Module::BatchNorm2d(BatchNorm2d::new(hidden)));
        push(&mut seq, Module::ReLU6(ReLU6::new()));
    }
    // Depthwise.
    push(&mut seq, Module::Conv2d(Conv2d::new(hidden, hidden, 3, stride, 1, hidden, false).init(Init::KaimingNormalFanOut, rng)));
    push(&mut seq, Module::BatchNorm2d(BatchNorm2d::new(hidden)));
    push(&mut seq, Module::ReLU6(ReLU6::new()));
    // Linear projection.
    push(&mut seq, Module::Conv2d(Conv2d::new(hidden, cout, 1, 1, 0, 1, false).init(Init::KaimingNormalFanOut, rng)));
    push(&mut seq, Module::BatchNorm2d(BatchNorm2d::new(cout)));
    let body = named(seq);
    if stride == 1 && cin == cout {
        Module::Residual(Residual::new(body, None, false))
    } else {
        named(vec![("conv".into(), body)])
    }
}

fn mobilenet_v2(rng: &mut Pcg32) -> Module {
    // (expand, out_channels, repeats, first_stride) — Table 2 of the paper's
    // reference [30] (Sandler et al.).
    const CFG: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut features: Vec<(String, Module)> = Vec::new();
    features.push(("0".into(), named(mnv2_conv_bn_relu(3, 32, 3, 2, 1, rng))));
    let mut cin = 32usize;
    let mut fi = 1usize;
    for (t, c, n, s) in CFG {
        for j in 0..n {
            let stride = if j == 0 { s } else { 1 };
            features.push((fi.to_string(), inverted_residual(cin, c, stride, t, rng)));
            cin = c;
            fi += 1;
        }
    }
    features.push((fi.to_string(), named(mnv2_conv_bn_relu(cin, 1280, 1, 1, 1, rng))));
    named(vec![
        ("features".into(), named(features)),
        ("avgpool".into(), Module::GlobalAvgPool(GlobalAvgPool::new())),
        (
            "classifier".into(),
            named(vec![
                ("0".into(), Module::Dropout(Dropout::new(0.2))),
                (
                    "1".into(),
                    Module::Linear(
                        Linear::new(1280, NUM_CLASSES)
                            .init(Init::KaimingNormalFanOut, Init::Zeros, rng),
                    ),
                ),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------------
// GoogLeNet
// ---------------------------------------------------------------------------

fn basic_conv(cin: usize, cout: usize, k: usize, stride: usize, pad: usize, rng: &mut Pcg32) -> Module {
    named(vec![
        (
            "conv".into(),
            Module::Conv2d(
                Conv2d::new(cin, cout, k, stride, pad, 1, false)
                    .init(Init::TruncatedNormalPpf { std: 0.01 }, rng),
            ),
        ),
        ("bn".into(), Module::BatchNorm2d(BatchNorm2d::new(cout))),
        ("relu".into(), Module::ReLU(ReLU::new())),
    ])
}

#[allow(clippy::too_many_arguments)]
fn inception(
    cin: usize,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    pool_proj: usize,
    rng: &mut Pcg32,
) -> Module {
    Module::Branches(crate::module::Branches::new(vec![
        ("branch1".into(), basic_conv(cin, c1, 1, 1, 0, rng)),
        (
            "branch2".into(),
            named(vec![
                ("0".into(), basic_conv(cin, c3r, 1, 1, 0, rng)),
                ("1".into(), basic_conv(c3r, c3, 3, 1, 1, rng)),
            ]),
        ),
        (
            "branch3".into(),
            named(vec![
                ("0".into(), basic_conv(cin, c5r, 1, 1, 0, rng)),
                // torchvision's famous bug: the "5x5" branch uses kernel 3.
                ("1".into(), basic_conv(c5r, c5, 3, 1, 1, rng)),
            ]),
        ),
        (
            "branch4".into(),
            named(vec![
                ("0".into(), Module::MaxPool2d(MaxPool2d::new(3, 1, 1))),
                ("1".into(), basic_conv(cin, pool_proj, 1, 1, 0, rng)),
            ]),
        ),
    ]))
}

fn googlenet(rng: &mut Pcg32) -> Module {
    named(vec![
        ("conv1".into(), basic_conv(3, 64, 7, 2, 3, rng)),
        ("maxpool1".into(), Module::MaxPool2d(MaxPool2d::new(3, 2, 1))),
        ("conv2".into(), basic_conv(64, 64, 1, 1, 0, rng)),
        ("conv3".into(), basic_conv(64, 192, 3, 1, 1, rng)),
        ("maxpool2".into(), Module::MaxPool2d(MaxPool2d::new(3, 2, 1))),
        ("inception3a".into(), inception(192, 64, 96, 128, 16, 32, 32, rng)),
        ("inception3b".into(), inception(256, 128, 128, 192, 32, 96, 64, rng)),
        ("maxpool3".into(), Module::MaxPool2d(MaxPool2d::new(3, 2, 1))),
        ("inception4a".into(), inception(480, 192, 96, 208, 16, 48, 64, rng)),
        ("inception4b".into(), inception(512, 160, 112, 224, 24, 64, 64, rng)),
        ("inception4c".into(), inception(512, 128, 128, 256, 24, 64, 64, rng)),
        ("inception4d".into(), inception(512, 112, 144, 288, 32, 64, 64, rng)),
        ("inception4e".into(), inception(528, 256, 160, 320, 32, 128, 128, rng)),
        ("maxpool4".into(), Module::MaxPool2d(MaxPool2d::new(2, 2, 0))),
        ("inception5a".into(), inception(832, 256, 160, 320, 32, 128, 128, rng)),
        ("inception5b".into(), inception(832, 384, 192, 384, 48, 128, 128, rng)),
        ("avgpool".into(), Module::GlobalAvgPool(GlobalAvgPool::new())),
        ("dropout".into(), Module::Dropout(Dropout::new(0.2))),
        (
            "fc".into(),
            Module::Linear(
                Linear::new(1024, NUM_CLASSES).init(Init::TruncatedNormalPpf { std: 0.01 }, Init::Zeros, rng),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// TinyCnn (test-only; not part of the paper's Table 2)
// ---------------------------------------------------------------------------

fn tiny_cnn(rng: &mut Pcg32) -> Module {
    named(vec![
        (
            "conv1".into(),
            Module::Conv2d(Conv2d::new(3, 8, 3, 2, 1, 1, false).init(Init::KaimingNormalFanOut, rng)),
        ),
        ("bn1".into(), Module::BatchNorm2d(BatchNorm2d::new(8))),
        ("relu1".into(), Module::ReLU(ReLU::new())),
        (
            "conv2".into(),
            Module::Conv2d(Conv2d::new(8, 16, 3, 2, 1, 1, false).init(Init::KaimingNormalFanOut, rng)),
        ),
        ("bn2".into(), Module::BatchNorm2d(BatchNorm2d::new(16))),
        ("relu2".into(), Module::ReLU(ReLU::new())),
        ("avgpool".into(), Module::GlobalAvgPool(GlobalAvgPool::new())),
        (
            "fc".into(),
            Module::Linear(Linear::new(16, NUM_CLASSES).init(Init::UniformFanIn, Init::UniformFanIn, rng)),
        ),
    ])
}

// Flatten is currently unused by the builders (GlobalAvgPool already emits
// [N, C]) but is part of the public layer set; reference it so the import is
// intentional rather than stray.
#[allow(unused)]
fn _uses_flatten() -> Flatten {
    Flatten::new()
}
