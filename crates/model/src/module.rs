//! The module tree: composition, forward/backward, and state visitors.

use mmlib_tensor::{ExecMode, Pcg32, Tensor};

use crate::common::{Dropout, Flatten, GlobalAvgPool, MaxPool2d, ReLU, ReLU6};
use crate::layers::{BatchNorm2d, Conv2d, Linear};

/// A tap receiving every leaf module's forward output, with its path —
/// the hook the probing tool (paper §2.4) uses to compare intermediate
/// tensors layer-wise across executions.
pub struct ForwardTap<'t> {
    path: Vec<String>,
    sink: &'t mut dyn FnMut(&str, &Tensor),
}

impl<'t> ForwardTap<'t> {
    /// Creates a tap that feeds `(layer_path, output)` pairs into `sink`.
    pub fn new(sink: &'t mut dyn FnMut(&str, &Tensor)) -> Self {
        ForwardTap { path: Vec::new(), sink }
    }

    fn record(&mut self, leaf: &str, tensor: &Tensor) {
        let mut full = self.path.join(".");
        if !full.is_empty() && !leaf.is_empty() {
            full.push('.');
        }
        full.push_str(leaf);
        (self.sink)(&full, tensor);
    }
}

/// Execution context threaded through forward/backward.
pub struct Ctx<'a> {
    /// Deterministic (serial) or parallel (reduction-order-varying) kernels.
    pub mode: ExecMode,
    /// Training mode: batch-norm uses batch statistics, dropout is active.
    pub training: bool,
    /// PRNG for intentional randomness (dropout masks). Always seeded by the
    /// caller; §2.3 of the paper requires all randomness to be seedable.
    pub rng: &'a mut Pcg32,
    /// Optional probe tap receiving every leaf's forward output.
    pub tap: Option<ForwardTap<'a>>,
}

impl<'a> Ctx<'a> {
    /// A context for reproducible training.
    pub fn train(rng: &'a mut Pcg32, mode: ExecMode) -> Self {
        Ctx { mode, training: true, rng, tap: None }
    }

    /// A context for inference.
    pub fn eval(rng: &'a mut Pcg32, mode: ExecMode) -> Self {
        Ctx { mode, training: false, rng, tap: None }
    }

    /// Attaches a forward tap (see [`ForwardTap`]).
    pub fn with_tap(mut self, tap: ForwardTap<'a>) -> Self {
        self.tap = Some(tap);
        self
    }

    fn tap_record(&mut self, leaf: &str, tensor: &Tensor) {
        if let Some(tap) = &mut self.tap {
            tap.record(leaf, tensor);
        }
    }

    fn tap_push(&mut self, segment: &str) {
        if let Some(tap) = &mut self.tap {
            tap.path.push(segment.to_string());
        }
    }

    fn tap_pop(&mut self) {
        if let Some(tap) = &mut self.tap {
            tap.path.pop();
        }
    }
}

/// One entry of a model's state dict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A learned parameter (participates in gradient descent).
    Parameter,
    /// A buffer (batch-norm running statistics): part of the exact model
    /// state that must be recovered, but not a gradient-descent parameter.
    Buffer,
}

/// A composable network module.
///
/// Leaf variants own parameters and caches; composite variants define the
/// dataflow (sequence, residual sum, channel-concatenated branches). The
/// tree is walked with string paths (`"layer1.0.conv1"`) matching the
/// torchvision naming style, which become mmlib's layer identifiers.
pub enum Module {
    /// 2-D convolution (optionally grouped / depthwise).
    Conv2d(Conv2d),
    /// 2-D batch normalization.
    BatchNorm2d(BatchNorm2d),
    /// Fully-connected layer.
    Linear(Linear),
    /// Rectified linear unit.
    ReLU(ReLU),
    /// ReLU clipped at 6 (MobileNetV2).
    ReLU6(ReLU6),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Global average pooling to `[N, C]`.
    GlobalAvgPool(GlobalAvgPool),
    /// Dropout (active only in training mode).
    Dropout(Dropout),
    /// Flatten `[N, C, H, W]` to `[N, C·H·W]`.
    Flatten(Flatten),
    /// Named children applied in order.
    Sequential(Sequential),
    /// `activation(body(x) + shortcut(x))` — ResNet blocks, MobileNet
    /// inverted residuals (without the activation).
    Residual(Residual),
    /// Parallel branches concatenated along the channel axis (Inception).
    Branches(Branches),
}

/// Named children applied in order.
pub struct Sequential {
    /// Child modules with their path segments.
    pub children: Vec<(String, Module)>,
}

/// A residual connection: `post(body(x) + shortcut(x))`.
pub struct Residual {
    /// Main path.
    pub body: Box<Module>,
    /// Optional projection shortcut (`downsample` in torchvision); identity
    /// when `None`.
    pub downsample: Option<Box<Module>>,
    /// Apply a ReLU after the sum (ResNet yes, MobileNetV2 no).
    pub post_relu: bool,
    relu_mask: Option<Vec<bool>>,
}

/// Channel-concatenated parallel branches.
pub struct Branches {
    /// Branch modules with their path segments.
    pub children: Vec<(String, Module)>,
    out_channels: Vec<usize>,
}

impl Sequential {
    /// Builds a sequential from `(name, module)` pairs.
    pub fn new(children: Vec<(String, Module)>) -> Self {
        Sequential { children }
    }
}

impl Residual {
    /// Builds a residual block.
    pub fn new(body: Module, downsample: Option<Module>, post_relu: bool) -> Self {
        Residual {
            body: Box::new(body),
            downsample: downsample.map(Box::new),
            post_relu,
            relu_mask: None,
        }
    }
}

impl Branches {
    /// Builds a branch set from `(name, module)` pairs.
    pub fn new(children: Vec<(String, Module)>) -> Self {
        Branches { children, out_channels: Vec::new() }
    }
}

/// Helper: extract `[N, C, H, W]` dims.
pub(crate) fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    let d = t.shape().dims();
    assert_eq!(d.len(), 4, "expected NCHW tensor, got {:?}", d);
    (d[0], d[1], d[2], d[3])
}

impl Module {
    /// Convenience constructor for a sequential module.
    pub fn seq(children: Vec<(&str, Module)>) -> Module {
        Module::Sequential(Sequential::new(
            children.into_iter().map(|(n, m)| (n.to_string(), m)).collect(),
        ))
    }

    /// Forward pass. Caches whatever the backward pass needs. When a
    /// [`ForwardTap`] is attached to the context, every parameterized
    /// leaf's output is reported with its layer path.
    pub fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        match self {
            Module::Conv2d(l) => {
                let y = l.forward(x, ctx);
                ctx.tap_record("", &y);
                y
            }
            Module::BatchNorm2d(l) => {
                let y = l.forward(x, ctx);
                ctx.tap_record("", &y);
                y
            }
            Module::Linear(l) => {
                let y = l.forward(x, ctx);
                ctx.tap_record("", &y);
                y
            }
            Module::ReLU(l) => l.forward(x),
            Module::ReLU6(l) => l.forward(x),
            Module::MaxPool2d(l) => l.forward(x),
            Module::GlobalAvgPool(l) => l.forward(x),
            Module::Dropout(l) => l.forward(x, ctx),
            Module::Flatten(l) => l.forward(x),
            Module::Sequential(s) => {
                let mut cur = x;
                for (name, child) in &mut s.children {
                    ctx.tap_push(name);
                    cur = child.forward(cur, ctx);
                    ctx.tap_pop();
                }
                cur
            }
            Module::Residual(r) => {
                let shortcut = match &mut r.downsample {
                    Some(ds) => {
                        ctx.tap_push("downsample");
                        let y = ds.forward(x.clone(), ctx);
                        ctx.tap_pop();
                        y
                    }
                    None => x.clone(),
                };
                ctx.tap_push("body");
                let mut out = r.body.forward(x, ctx);
                ctx.tap_pop();
                out.add_assign(&shortcut).expect("residual shapes must match");
                if r.post_relu {
                    let mask: Vec<bool> = out.data().iter().map(|&v| v > 0.0).collect();
                    for (v, &m) in out.data_mut().iter_mut().zip(&mask) {
                        if !m {
                            *v = 0.0;
                        }
                    }
                    r.relu_mask = Some(mask);
                }
                out
            }
            Module::Branches(b) => {
                let (n, _, h, w) = dims4(&x);
                let mut outputs = Vec::with_capacity(b.children.len());
                b.out_channels.clear();
                for (name, child) in &mut b.children {
                    ctx.tap_push(name);
                    let y = child.forward(x.clone(), ctx);
                    ctx.tap_pop();
                    let (_, c, yh, yw) = dims4(&y);
                    assert_eq!((yh, yw), (h, w), "branch outputs must share spatial dims");
                    b.out_channels.push(c);
                    outputs.push(y);
                }
                let total_c: usize = b.out_channels.iter().sum();
                let mut out = Tensor::zeros([n, total_c, h, w]);
                let plane = h * w;
                let od = out.data_mut();
                let mut c_off = 0usize;
                for (y, &c) in outputs.iter().zip(&b.out_channels) {
                    let yd = y.data();
                    for ni in 0..n {
                        let src = &yd[ni * c * plane..(ni + 1) * c * plane];
                        let dst_start = ni * total_c * plane + c_off * plane;
                        od[dst_start..dst_start + c * plane].copy_from_slice(src);
                    }
                    c_off += c;
                }
                out
            }
        }
    }

    /// Backward pass: consumes the output gradient, accumulates parameter
    /// gradients in the leaf layers, and returns the input gradient.
    pub fn backward(&mut self, grad: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        match self {
            Module::Conv2d(l) => l.backward(grad, ctx),
            Module::BatchNorm2d(l) => l.backward(grad, ctx),
            Module::Linear(l) => l.backward(grad, ctx),
            Module::ReLU(l) => l.backward(grad),
            Module::ReLU6(l) => l.backward(grad),
            Module::MaxPool2d(l) => l.backward(grad),
            Module::GlobalAvgPool(l) => l.backward(grad),
            Module::Dropout(l) => l.backward(grad),
            Module::Flatten(l) => l.backward(grad),
            Module::Sequential(s) => {
                let mut cur = grad;
                for (_, child) in s.children.iter_mut().rev() {
                    cur = child.backward(cur, ctx);
                }
                cur
            }
            Module::Residual(r) => {
                let mut g = grad;
                if r.post_relu {
                    let mask = r.relu_mask.take().expect("backward before forward");
                    for (v, m) in g.data_mut().iter_mut().zip(mask) {
                        if !m {
                            *v = 0.0;
                        }
                    }
                }
                let mut gin = r.body.backward(g.clone(), ctx);
                let gshort = match &mut r.downsample {
                    Some(ds) => ds.backward(g, ctx),
                    None => g,
                };
                gin.add_assign(&gshort).expect("residual grads must match");
                gin
            }
            Module::Branches(b) => {
                let (n, total_c, h, w) = dims4(&grad);
                assert_eq!(total_c, b.out_channels.iter().sum::<usize>());
                let plane = h * w;
                let gd = grad.data();
                let mut gin: Option<Tensor> = None;
                let mut c_off = 0usize;
                for ((_, child), &c) in b.children.iter_mut().zip(&b.out_channels) {
                    let mut gy = Tensor::zeros([n, c, h, w]);
                    {
                        let gyd = gy.data_mut();
                        for ni in 0..n {
                            let src_start = ni * total_c * plane + c_off * plane;
                            gyd[ni * c * plane..(ni + 1) * c * plane]
                                .copy_from_slice(&gd[src_start..src_start + c * plane]);
                        }
                    }
                    let gchild = child.backward(gy, ctx);
                    match &mut gin {
                        Some(acc) => acc.add_assign(&gchild).expect("branch grads must match"),
                        None => gin = Some(gchild),
                    }
                    c_off += c;
                }
                gin.expect("branches must be non-empty")
            }
        }
    }

    /// Visits every state entry `(path, tensor, kind, layer_trainable)` in
    /// canonical (definition) order.
    pub fn visit_state<'s>(
        &'s self,
        prefix: &str,
        f: &mut dyn FnMut(String, &'s Tensor, EntryKind, bool),
    ) {
        let join = |name: &str| {
            if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            }
        };
        match self {
            Module::Conv2d(l) => l.visit_state(prefix, f),
            Module::BatchNorm2d(l) => l.visit_state(prefix, f),
            Module::Linear(l) => l.visit_state(prefix, f),
            Module::Sequential(s) => {
                for (name, child) in &s.children {
                    child.visit_state(&join(name), f);
                }
            }
            Module::Residual(r) => {
                r.body.visit_state(&join("body"), f);
                if let Some(ds) = &r.downsample {
                    ds.visit_state(&join("downsample"), f);
                }
            }
            Module::Branches(b) => {
                for (name, child) in &b.children {
                    child.visit_state(&join(name), f);
                }
            }
            _ => {}
        }
    }

    /// Mutable variant of [`Module::visit_state`] (no kind filtering).
    pub fn visit_state_mut(
        &mut self,
        prefix: &str,
        f: &mut dyn FnMut(String, &mut Tensor, EntryKind),
    ) {
        let join = |name: &str, prefix: &str| {
            if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            }
        };
        match self {
            Module::Conv2d(l) => l.visit_state_mut(prefix, f),
            Module::BatchNorm2d(l) => l.visit_state_mut(prefix, f),
            Module::Linear(l) => l.visit_state_mut(prefix, f),
            Module::Sequential(s) => {
                for (name, child) in &mut s.children {
                    child.visit_state_mut(&join(name, prefix), f);
                }
            }
            Module::Residual(r) => {
                let p = join("body", prefix);
                r.body.visit_state_mut(&p, f);
                if let Some(ds) = &mut r.downsample {
                    let p = join("downsample", prefix);
                    ds.visit_state_mut(&p, f);
                }
            }
            Module::Branches(b) => {
                for (name, child) in &mut b.children {
                    child.visit_state_mut(&join(name, prefix), f);
                }
            }
            _ => {}
        }
    }

    /// Visits `(path, param, grad)` for every trainable parameter.
    pub fn visit_trainable_mut(
        &mut self,
        prefix: &str,
        f: &mut dyn FnMut(String, &mut Tensor, &mut Tensor),
    ) {
        let join = |name: &str, prefix: &str| {
            if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            }
        };
        match self {
            Module::Conv2d(l) => l.visit_trainable_mut(prefix, f),
            Module::BatchNorm2d(l) => l.visit_trainable_mut(prefix, f),
            Module::Linear(l) => l.visit_trainable_mut(prefix, f),
            Module::Sequential(s) => {
                for (name, child) in &mut s.children {
                    child.visit_trainable_mut(&join(name, prefix), f);
                }
            }
            Module::Residual(r) => {
                let p = join("body", prefix);
                r.body.visit_trainable_mut(&p, f);
                if let Some(ds) = &mut r.downsample {
                    let p = join("downsample", prefix);
                    ds.visit_trainable_mut(&p, f);
                }
            }
            Module::Branches(b) => {
                for (name, child) in &mut b.children {
                    child.visit_trainable_mut(&join(name, prefix), f);
                }
            }
            _ => {}
        }
    }

    /// Marks layers trainable/frozen by path predicate. A leaf layer is
    /// trainable iff `pred(layer_path)` returns true.
    pub fn set_trainable(&mut self, prefix: &str, pred: &dyn Fn(&str) -> bool) {
        let join = |name: &str, prefix: &str| {
            if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            }
        };
        match self {
            Module::Conv2d(l) => l.trainable = pred(prefix),
            Module::BatchNorm2d(l) => l.trainable = pred(prefix),
            Module::Linear(l) => l.trainable = pred(prefix),
            Module::Sequential(s) => {
                for (name, child) in &mut s.children {
                    child.set_trainable(&join(name, prefix), pred);
                }
            }
            Module::Residual(r) => {
                let p = join("body", prefix);
                r.body.set_trainable(&p, pred);
                if let Some(ds) = &mut r.downsample {
                    let p = join("downsample", prefix);
                    ds.set_trainable(&p, pred);
                }
            }
            Module::Branches(b) => {
                for (name, child) in &mut b.children {
                    child.set_trainable(&join(name, prefix), pred);
                }
            }
            _ => {}
        }
    }

    /// Zeroes all accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        match self {
            Module::Conv2d(l) => l.zero_grad(),
            Module::BatchNorm2d(l) => l.zero_grad(),
            Module::Linear(l) => l.zero_grad(),
            Module::Sequential(s) => {
                for (_, child) in &mut s.children {
                    child.zero_grad();
                }
            }
            Module::Residual(r) => {
                r.body.zero_grad();
                if let Some(ds) = &mut r.downsample {
                    ds.zero_grad();
                }
            }
            Module::Branches(b) => {
                for (_, child) in &mut b.children {
                    child.zero_grad();
                }
            }
            _ => {}
        }
    }

    /// Enumerates `(layer_path, trainable)` for every parameterized leaf
    /// layer in canonical order — mmlib's layer granularity.
    pub fn layer_paths(&self, prefix: &str, out: &mut Vec<(String, bool)>) {
        let join = |name: &str| {
            if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            }
        };
        match self {
            Module::Conv2d(l) => out.push((prefix.to_string(), l.trainable)),
            Module::BatchNorm2d(l) => out.push((prefix.to_string(), l.trainable)),
            Module::Linear(l) => out.push((prefix.to_string(), l.trainable)),
            Module::Sequential(s) => {
                for (name, child) in &s.children {
                    child.layer_paths(&join(name), out);
                }
            }
            Module::Residual(r) => {
                r.body.layer_paths(&join("body"), out);
                if let Some(ds) = &r.downsample {
                    ds.layer_paths(&join("downsample"), out);
                }
            }
            Module::Branches(b) => {
                for (name, child) in &b.children {
                    child.layer_paths(&join(name), out);
                }
            }
            _ => {}
        }
    }
}
