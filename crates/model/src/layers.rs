//! Parameterized layers: convolution, batch normalization, linear.
//!
//! Every layer implements a real forward and backward pass. Reductions run
//! in one of two modes (see `mmlib_tensor::ops`):
//!
//! * **Deterministic** — single-threaded, fixed serial accumulation order;
//!   bit-reproducible across runs. Slower.
//! * **Parallel** — work is split over threads; reductions whose partial
//!   results are combined across threads (batch-norm statistics, weight and
//!   bias gradients) combine **in completion order**, so the low-order bits
//!   vary run to run. This mirrors how non-deterministic cuDNN kernels
//!   behave and is what the paper's deterministic-training study (Fig. 13)
//!   toggles.

// Kernels index by (image, channel, position) throughout; iterator-chain
// rewrites obscure the arithmetic without changing the codegen.
#![allow(clippy::needless_range_loop)]

use mmlib_tensor::{ExecMode, Init, Tensor};

use crate::module::{dims4, Ctx, EntryKind};

pub use mmlib_tensor::init::Init as LayerInit;

/// Minimum per-call work (in output elements) before the parallel mode
/// actually spawns threads; below this the fixed pairwise order is used.
const PAR_MIN_WORK: usize = 4096;
/// Worker count for parallel kernels.
const PAR_THREADS: usize = 8;

fn conv_out(h: usize, k: usize, stride: usize, pad: usize) -> usize {
    assert!(h + 2 * pad >= k, "spatial dim {h} too small for kernel {k} with pad {pad}");
    (h + 2 * pad - k) / stride + 1
}

/// Combines per-chunk partial tensors into `acc` in completion order when in
/// parallel mode (non-deterministic), or in index order when deterministic.
fn reduce_partials(acc: &mut [f32], partials: Vec<Vec<f32>>, mode: ExecMode) {
    match mode {
        ExecMode::Deterministic => {
            for p in partials {
                for (a, v) in acc.iter_mut().zip(p) {
                    *a += v;
                }
            }
        }
        ExecMode::Parallel => {
            // Emulate completion-order combining: the caller already received
            // the partials in completion order (see `parallel_partials`).
            for p in partials {
                for (a, v) in acc.iter_mut().zip(p) {
                    *a += v;
                }
            }
        }
    }
}

/// Runs `work(chunk_index) -> Vec<f32>` for `chunks` chunks on worker
/// threads and returns the partial buffers **in completion order**.
fn parallel_partials<F>(chunks: usize, work: F) -> Vec<Vec<f32>>
where
    F: Fn(usize) -> Vec<f32> + Sync,
{
    let (tx, rx) = std::sync::mpsc::channel::<Vec<f32>>();
    crossbeam::scope(|s| {
        for i in 0..chunks {
            let tx = tx.clone();
            let work = &work;
            s.spawn(move |_| {
                let _ = tx.send(work(i));
            });
        }
        drop(tx);
        rx.iter().collect::<Vec<_>>()
    })
    .expect("layer worker panicked")
}

/// Splits `0..n` into at most `PAR_THREADS` contiguous ranges.
fn ranges(n: usize) -> Vec<std::ops::Range<usize>> {
    let chunk = n.div_ceil(PAR_THREADS).max(1);
    (0..n).step_by(chunk).map(|s| s..(s + chunk).min(n)).collect()
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution over NCHW tensors, with optional grouping (depthwise when
/// `groups == in_channels`). Bias-free by default, as all five evaluation
/// architectures use conv+batch-norm pairs.
pub struct Conv2d {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
    /// Channel groups.
    pub groups: usize,
    /// Weight `[out, in/groups, k, k]`.
    pub weight: Tensor,
    /// Optional bias `[out]`.
    pub bias: Option<Tensor>,
    /// Whether this layer participates in training (mmlib layer granularity).
    pub trainable: bool,
    grad_weight: Tensor,
    grad_bias: Option<Tensor>,
    cache_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a conv layer with zeroed parameters (call an `Init` after, or
    /// load a state dict).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        bias: bool,
    ) -> Self {
        assert!(in_channels.is_multiple_of(groups) && out_channels.is_multiple_of(groups));
        let wshape = [out_channels, in_channels / groups, kernel, kernel];
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            groups,
            weight: Tensor::zeros(wshape),
            bias: bias.then(|| Tensor::zeros([out_channels])),
            trainable: true,
            grad_weight: Tensor::zeros(wshape),
            grad_bias: bias.then(|| Tensor::zeros([out_channels])),
            cache_input: None,
        }
    }

    /// Initializes the weight (and zeroes the bias) with `init` and `rng`.
    pub fn init(mut self, init: Init, rng: &mut mmlib_tensor::Pcg32) -> Self {
        self.weight = init.materialize(self.weight.shape().clone(), rng);
        self
    }

    /// Forward pass; caches the input for backward.
    pub fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let (n, cin, h, w) = dims4(&x);
        assert_eq!(cin, self.in_channels, "conv input channels");
        let (k, s, p, g) = (self.kernel, self.stride, self.pad, self.groups);
        let (ho, wo) = (conv_out(h, k, s, p), conv_out(w, k, s, p));
        let cout = self.out_channels;
        let (cin_g, cout_g) = (cin / g, cout / g);
        let mut out = Tensor::zeros([n, cout, ho, wo]);

        let xd = x.data();
        let wd = self.weight.data();
        let work_per_image = cout * ho * wo * cin_g * k * k;

        // One output element is produced by exactly one accumulation loop,
        // so the forward result is identical across modes; parallel mode
        // only distributes images over threads.
        let compute_image = |ni: usize, od: &mut [f32]| {
            for co in 0..cout {
                let grp = co / cout_g;
                let b = self.bias.as_ref().map_or(0.0, |b| b.data()[co]);
                for oh in 0..ho {
                    for ow in 0..wo {
                        let mut acc = 0.0f32;
                        for ci in 0..cin_g {
                            let ci_g = grp * cin_g + ci;
                            let xbase = ni * cin * h * w + ci_g * h * w;
                            let wbase = co * cin_g * k * k + ci * k * k;
                            for kh in 0..k {
                                let ih = oh * s + kh;
                                if ih < p || ih - p >= h {
                                    continue;
                                }
                                let ih = ih - p;
                                for kw in 0..k {
                                    let iw = ow * s + kw;
                                    if iw < p || iw - p >= w {
                                        continue;
                                    }
                                    let iw = iw - p;
                                    acc += xd[xbase + ih * w + iw] * wd[wbase + kh * k + kw];
                                }
                            }
                        }
                        od[co * ho * wo + oh * wo + ow] = acc + b;
                    }
                }
            }
        };

        if ctx.mode == ExecMode::Parallel && n > 1 && work_per_image * n >= PAR_MIN_WORK {
            let image_len = cout * ho * wo;
            let od = out.data_mut();
            let slices: Vec<&mut [f32]> = od.chunks_mut(image_len).collect();
            crossbeam::scope(|sc| {
                for (ni, slice) in slices.into_iter().enumerate() {
                    let compute_image = &compute_image;
                    sc.spawn(move |_| compute_image(ni, slice));
                }
            })
            .expect("conv forward worker panicked");
        } else {
            let image_len = cout * ho * wo;
            let od = out.data_mut();
            for ni in 0..n {
                compute_image(ni, &mut od[ni * image_len..(ni + 1) * image_len]);
            }
        }

        self.cache_input = Some(x);
        out
    }

    /// Backward pass: accumulates weight/bias grads, returns input grad.
    pub fn backward(&mut self, gout: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let x = self.cache_input.take().expect("conv backward before forward");
        let (n, cin, h, w) = dims4(&x);
        let (_, cout, ho, wo) = dims4(&gout);
        let (k, s, p, g) = (self.kernel, self.stride, self.pad, self.groups);
        let (cin_g, cout_g) = (cin / g, cout / g);
        let xd = x.data();
        let gd = gout.data();
        let wd = self.weight.data();

        // --- weight gradient: reduction over images; parallel mode combines
        // per-image-chunk partials in completion order (non-deterministic).
        let wlen = self.grad_weight.numel();
        let chunk_grad_into = |range: std::ops::Range<usize>, gw: &mut [f32]| {
            for ni in range {
                for co in 0..cout {
                    let grp = co / cout_g;
                    for ci in 0..cin_g {
                        let ci_g = grp * cin_g + ci;
                        let xbase = ni * cin * h * w + ci_g * h * w;
                        let wbase = co * cin_g * k * k + ci * k * k;
                        for kh in 0..k {
                            for kw in 0..k {
                                let mut acc = 0.0f32;
                                for oh in 0..ho {
                                    let ih = oh * s + kh;
                                    if ih < p || ih - p >= h {
                                        continue;
                                    }
                                    let ih = ih - p;
                                    for ow in 0..wo {
                                        let iw = ow * s + kw;
                                        if iw < p || iw - p >= w {
                                            continue;
                                        }
                                        let iw = iw - p;
                                        acc += xd[xbase + ih * w + iw]
                                            * gd[ni * cout * ho * wo + co * ho * wo + oh * wo + ow];
                                    }
                                }
                                gw[wbase + kh * k + kw] += acc;
                            }
                        }
                    }
                }
            }
        };

        let work = n * cout * cin_g * k * k * ho * wo;
        if ctx.mode == ExecMode::Parallel && n > 1 && work >= PAR_MIN_WORK {
            let rs = ranges(n);
            let partials = parallel_partials(rs.len(), |i| {
                let mut gw = vec![0.0f32; wlen];
                chunk_grad_into(rs[i].clone(), &mut gw);
                gw
            });
            reduce_partials(self.grad_weight.data_mut(), partials, ctx.mode);
        } else {
            // Deterministic path: accumulate straight into the gradient
            // buffer — no partial allocations (page faults are expensive on
            // some hosts, and a ResNet-152 backward would otherwise allocate
            // a weight-sized scratch buffer per conv layer).
            chunk_grad_into(0..n, self.grad_weight.data_mut());
        }

        // --- bias gradient
        if let Some(gb) = &mut self.grad_bias {
            let gbd = gb.data_mut();
            for ni in 0..n {
                for co in 0..cout {
                    let base = ni * cout * ho * wo + co * ho * wo;
                    let mut acc = 0.0f32;
                    for i in 0..ho * wo {
                        acc += gd[base + i];
                    }
                    gbd[co] += acc;
                }
            }
        }

        // --- input gradient: each input element owned by one loop; parallel
        // mode distributes images.
        let mut gin = Tensor::zeros([n, cin, h, w]);
        let compute_gin = |ni: usize, gi: &mut [f32]| {
            for co in 0..cout {
                let grp = co / cout_g;
                for oh in 0..ho {
                    for ow in 0..wo {
                        let gval = gd[ni * cout * ho * wo + co * ho * wo + oh * wo + ow];
                        if gval == 0.0 {
                            continue;
                        }
                        for ci in 0..cin_g {
                            let ci_g = grp * cin_g + ci;
                            let wbase = co * cin_g * k * k + ci * k * k;
                            for kh in 0..k {
                                let ih = oh * s + kh;
                                if ih < p || ih - p >= h {
                                    continue;
                                }
                                let ih = ih - p;
                                for kw in 0..k {
                                    let iw = ow * s + kw;
                                    if iw < p || iw - p >= w {
                                        continue;
                                    }
                                    let iw = iw - p;
                                    gi[ci_g * h * w + ih * w + iw] += gval * wd[wbase + kh * k + kw];
                                }
                            }
                        }
                    }
                }
            }
        };
        let image_len = cin * h * w;
        if ctx.mode == ExecMode::Parallel && n > 1 && work >= PAR_MIN_WORK {
            let gid = gin.data_mut();
            let slices: Vec<&mut [f32]> = gid.chunks_mut(image_len).collect();
            crossbeam::scope(|sc| {
                for (ni, slice) in slices.into_iter().enumerate() {
                    let compute_gin = &compute_gin;
                    sc.spawn(move |_| compute_gin(ni, slice));
                }
            })
            .expect("conv backward worker panicked");
        } else {
            let gid = gin.data_mut();
            for ni in 0..n {
                compute_gin(ni, &mut gid[ni * image_len..(ni + 1) * image_len]);
            }
        }
        gin
    }

    pub(crate) fn visit_state<'s>(
        &'s self,
        prefix: &str,
        f: &mut dyn FnMut(String, &'s Tensor, EntryKind, bool),
    ) {
        f(format!("{prefix}.weight"), &self.weight, EntryKind::Parameter, self.trainable);
        if let Some(b) = &self.bias {
            f(format!("{prefix}.bias"), b, EntryKind::Parameter, self.trainable);
        }
    }

    pub(crate) fn visit_state_mut(
        &mut self,
        prefix: &str,
        f: &mut dyn FnMut(String, &mut Tensor, EntryKind),
    ) {
        f(format!("{prefix}.weight"), &mut self.weight, EntryKind::Parameter);
        if let Some(b) = &mut self.bias {
            f(format!("{prefix}.bias"), b, EntryKind::Parameter);
        }
    }

    pub(crate) fn visit_trainable_mut(
        &mut self,
        prefix: &str,
        f: &mut dyn FnMut(String, &mut Tensor, &mut Tensor),
    ) {
        if !self.trainable {
            return;
        }
        f(format!("{prefix}.weight"), &mut self.weight, &mut self.grad_weight);
        if let (Some(b), Some(gb)) = (&mut self.bias, &mut self.grad_bias) {
            f(format!("{prefix}.bias"), b, gb);
        }
    }

    pub(crate) fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        if let Some(gb) = &mut self.grad_bias {
            gb.fill(0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

/// 2-D batch normalization with running statistics.
///
/// In training mode the per-channel mean/variance are *reductions over the
/// batch*: in parallel execution their partials combine in completion order,
/// making training non-deterministic — the dominant divergence source the
/// probing tool observes.
pub struct BatchNorm2d {
    /// Channel count.
    pub channels: usize,
    /// Scale γ.
    pub weight: Tensor,
    /// Shift β.
    pub bias: Tensor,
    /// Running mean (buffer).
    pub running_mean: Tensor,
    /// Running variance (buffer).
    pub running_var: Tensor,
    /// Exponential-average momentum (PyTorch default 0.1).
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Whether this layer participates in training.
    pub trainable: bool,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cache: Option<BnCache>,
}

struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    /// True when the forward used batch statistics (trainable layer in
    /// training mode); selects the backward formula.
    batch_stats: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with γ=1, β=0, running stats (0, 1).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            weight: Tensor::ones([channels]),
            bias: Tensor::zeros([channels]),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            momentum: 0.1,
            eps: 1e-5,
            trainable: true,
            grad_weight: Tensor::zeros([channels]),
            grad_bias: Tensor::zeros([channels]),
            cache: None,
        }
    }

    /// Forward pass (batch stats + running update in training mode).
    pub fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let (n, c, h, w) = dims4(&x);
        assert_eq!(c, self.channels, "bn channels");
        let count = (n * h * w) as f32;
        let xd = x.data();
        let plane = h * w;

        // A frozen batch-norm layer keeps using its running statistics and
        // does not update them, even in training mode. This matches the
        // partial-update model relation in the paper: when only the
        // classifier is trainable, *no other layer's state changes*, which is
        // what makes the parameter update a single layer.
        let use_batch_stats = ctx.training && self.trainable;
        let (mean, var) = if use_batch_stats {
            // Per-channel sums reduced over images.
            let chunk_sums = |range: std::ops::Range<usize>| -> Vec<f32> {
                let mut sums = vec![0.0f32; c];
                for ni in range {
                    for ci in 0..c {
                        let base = ni * c * plane + ci * plane;
                        let mut acc = 0.0f32;
                        for i in 0..plane {
                            acc += xd[base + i];
                        }
                        sums[ci] += acc;
                    }
                }
                sums
            };
            let parallel = ctx.mode == ExecMode::Parallel && n > 1 && n * c * plane >= PAR_MIN_WORK;
            let mut sums = vec![0.0f32; c];
            let partials = if parallel {
                let rs = ranges(n);
                parallel_partials(rs.len(), |i| chunk_sums(rs[i].clone()))
            } else {
                vec![chunk_sums(0..n)]
            };
            reduce_partials(&mut sums, partials, ctx.mode);
            let mean: Vec<f32> = sums.iter().map(|s| s / count).collect();

            let mean_ref = &mean;
            let chunk_sq = |range: std::ops::Range<usize>| -> Vec<f32> {
                let mut sums = vec![0.0f32; c];
                for ni in range {
                    for ci in 0..c {
                        let base = ni * c * plane + ci * plane;
                        let m = mean_ref[ci];
                        let mut acc = 0.0f32;
                        for i in 0..plane {
                            let d = xd[base + i] - m;
                            acc += d * d;
                        }
                        sums[ci] += acc;
                    }
                }
                sums
            };
            let mut sq = vec![0.0f32; c];
            let partials = if parallel {
                let rs = ranges(n);
                parallel_partials(rs.len(), |i| chunk_sq(rs[i].clone()))
            } else {
                vec![chunk_sq(0..n)]
            };
            reduce_partials(&mut sq, partials, ctx.mode);
            let var: Vec<f32> = sq.iter().map(|s| s / count).collect();

            // Update running stats (unbiased variance, PyTorch convention).
            let unbias = count / (count - 1.0).max(1.0);
            let rm = self.running_mean.data_mut();
            for (r, m) in rm.iter_mut().zip(&mean) {
                *r = (1.0 - self.momentum) * *r + self.momentum * m;
            }
            let rv = self.running_var.data_mut();
            for (r, v) in rv.iter_mut().zip(&var) {
                *r = (1.0 - self.momentum) * *r + self.momentum * (v * unbias);
            }
            (mean, var)
        } else {
            (self.running_mean.data().to_vec(), self.running_var.data().to_vec())
        };

        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = Tensor::zeros([n, c, h, w]);
        let mut out = Tensor::zeros([n, c, h, w]);
        {
            let xh = xhat.data_mut();
            let od = out.data_mut();
            let g = self.weight.data();
            let b = self.bias.data();
            for ni in 0..n {
                for ci in 0..c {
                    let base = ni * c * plane + ci * plane;
                    let (m, is) = (mean[ci], inv_std[ci]);
                    for i in 0..plane {
                        let v = (xd[base + i] - m) * is;
                        xh[base + i] = v;
                        od[base + i] = g[ci] * v + b[ci];
                    }
                }
            }
        }
        if ctx.training {
            self.cache = Some(BnCache { xhat, inv_std, batch_stats: use_batch_stats });
        }
        out
    }

    /// Backward pass (training-mode batch-norm gradient).
    pub fn backward(&mut self, gout: Tensor, _ctx: &mut Ctx<'_>) -> Tensor {
        let cache = self.cache.take().expect("bn backward before forward (training)");
        let (n, c, h, w) = dims4(&gout);
        let plane = h * w;
        let count = (n * plane) as f32;
        let gd = gout.data();
        let xh = cache.xhat.data();

        // dgamma, dbeta
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = ni * c * plane + ci * plane;
                let mut dg = 0.0f32;
                let mut db = 0.0f32;
                for i in 0..plane {
                    dg += gd[base + i] * xh[base + i];
                    db += gd[base + i];
                }
                dgamma[ci] += dg;
                dbeta[ci] += db;
            }
        }
        for (a, v) in self.grad_weight.data_mut().iter_mut().zip(&dgamma) {
            *a += v;
        }
        for (a, v) in self.grad_bias.data_mut().iter_mut().zip(&dbeta) {
            *a += v;
        }

        // Batch-stats path: dx = (γ·inv_std)·(g − dbeta/count − xhat·dgamma/count).
        // Running-stats path (frozen layer): stats are constants, so
        // dx = (γ·inv_std)·g.
        let gw = self.weight.data();
        let mut gin = Tensor::zeros([n, c, plane / w, w]);
        {
            let gi = gin.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let base = ni * c * plane + ci * plane;
                    let coef = gw[ci] * cache.inv_std[ci];
                    if cache.batch_stats {
                        let mdb = dbeta[ci] / count;
                        let mdg = dgamma[ci] / count;
                        for i in 0..plane {
                            gi[base + i] = coef * (gd[base + i] - mdb - xh[base + i] * mdg);
                        }
                    } else {
                        for i in 0..plane {
                            gi[base + i] = coef * gd[base + i];
                        }
                    }
                }
            }
        }
        gin
    }

    pub(crate) fn visit_state<'s>(
        &'s self,
        prefix: &str,
        f: &mut dyn FnMut(String, &'s Tensor, EntryKind, bool),
    ) {
        f(format!("{prefix}.weight"), &self.weight, EntryKind::Parameter, self.trainable);
        f(format!("{prefix}.bias"), &self.bias, EntryKind::Parameter, self.trainable);
        f(format!("{prefix}.running_mean"), &self.running_mean, EntryKind::Buffer, self.trainable);
        f(format!("{prefix}.running_var"), &self.running_var, EntryKind::Buffer, self.trainable);
    }

    pub(crate) fn visit_state_mut(
        &mut self,
        prefix: &str,
        f: &mut dyn FnMut(String, &mut Tensor, EntryKind),
    ) {
        f(format!("{prefix}.weight"), &mut self.weight, EntryKind::Parameter);
        f(format!("{prefix}.bias"), &mut self.bias, EntryKind::Parameter);
        f(format!("{prefix}.running_mean"), &mut self.running_mean, EntryKind::Buffer);
        f(format!("{prefix}.running_var"), &mut self.running_var, EntryKind::Buffer);
    }

    pub(crate) fn visit_trainable_mut(
        &mut self,
        prefix: &str,
        f: &mut dyn FnMut(String, &mut Tensor, &mut Tensor),
    ) {
        if !self.trainable {
            return;
        }
        f(format!("{prefix}.weight"), &mut self.weight, &mut self.grad_weight);
        f(format!("{prefix}.bias"), &mut self.bias, &mut self.grad_bias);
    }

    pub(crate) fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully-connected layer: `y = W x + b` over `[N, in]` inputs.
pub struct Linear {
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Weight `[out, in]`.
    pub weight: Tensor,
    /// Bias `[out]`.
    pub bias: Tensor,
    /// Whether this layer participates in training.
    pub trainable: bool,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cache_input: Option<Tensor>,
}

impl Linear {
    /// Creates a zero-initialized linear layer.
    pub fn new(in_features: usize, out_features: usize) -> Self {
        Linear {
            in_features,
            out_features,
            weight: Tensor::zeros([out_features, in_features]),
            bias: Tensor::zeros([out_features]),
            trainable: true,
            grad_weight: Tensor::zeros([out_features, in_features]),
            grad_bias: Tensor::zeros([out_features]),
            cache_input: None,
        }
    }

    /// Initializes weight and bias with the given rules.
    pub fn init(mut self, w: Init, b: Init, rng: &mut mmlib_tensor::Pcg32) -> Self {
        self.weight = w.materialize([self.out_features, self.in_features], rng);
        self.bias = b.materialize([self.out_features], rng);
        self
    }

    /// Forward pass over `[N, in]`.
    pub fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let d = x.shape().dims();
        assert_eq!(d.len(), 2, "linear expects [N, F]");
        let (n, fin) = (d[0], d[1]);
        assert_eq!(fin, self.in_features);
        let mut out = Tensor::zeros([n, self.out_features]);
        {
            let od = out.data_mut();
            let xd = x.data();
            let bd = self.bias.data();
            for ni in 0..n {
                let row_in = &xd[ni * fin..(ni + 1) * fin];
                let row_out = mmlib_tensor::ops::matvec(&self.weight, row_in, ctx.mode)
                    .expect("linear shapes checked above");
                for (o, (y, b)) in row_out.iter().zip(bd).enumerate() {
                    od[ni * self.out_features + o] = y + b;
                }
            }
        }
        self.cache_input = Some(x);
        out
    }

    /// Backward pass.
    pub fn backward(&mut self, gout: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let x = self.cache_input.take().expect("linear backward before forward");
        let n = x.shape().dim(0);
        let (fin, fout) = (self.in_features, self.out_features);
        let xd = x.data();
        let gd = gout.data();

        // Weight grad: reduce over images, completion-order in parallel mode.
        let chunk_grad_into = |range: std::ops::Range<usize>, gw: &mut [f32]| {
            for ni in range {
                for o in 0..fout {
                    let gval = gd[ni * fout + o];
                    if gval == 0.0 {
                        continue;
                    }
                    let base = o * fin;
                    let xrow = &xd[ni * fin..(ni + 1) * fin];
                    for (dst, xv) in gw[base..base + fin].iter_mut().zip(xrow) {
                        *dst += gval * xv;
                    }
                }
            }
        };
        if ctx.mode == ExecMode::Parallel && n > 1 && n * fout * fin >= PAR_MIN_WORK {
            let rs = ranges(n);
            let partials = parallel_partials(rs.len(), |i| {
                let mut gw = vec![0.0f32; fout * fin];
                chunk_grad_into(rs[i].clone(), &mut gw);
                gw
            });
            reduce_partials(self.grad_weight.data_mut(), partials, ctx.mode);
        } else {
            chunk_grad_into(0..n, self.grad_weight.data_mut());
        }

        // Bias grad.
        {
            let gb = self.grad_bias.data_mut();
            for ni in 0..n {
                for o in 0..fout {
                    gb[o] += gd[ni * fout + o];
                }
            }
        }

        // Input grad: gin[n, f] = Σ_o g[n, o]·W[o, f].
        let mut gin = Tensor::zeros([n, fin]);
        {
            let gi = gin.data_mut();
            let wd = self.weight.data();
            for ni in 0..n {
                for o in 0..fout {
                    let gval = gd[ni * fout + o];
                    if gval == 0.0 {
                        continue;
                    }
                    let wrow = &wd[o * fin..(o + 1) * fin];
                    for (dst, wv) in gi[ni * fin..(ni + 1) * fin].iter_mut().zip(wrow) {
                        *dst += gval * wv;
                    }
                }
            }
        }
        gin
    }

    pub(crate) fn visit_state<'s>(
        &'s self,
        prefix: &str,
        f: &mut dyn FnMut(String, &'s Tensor, EntryKind, bool),
    ) {
        f(format!("{prefix}.weight"), &self.weight, EntryKind::Parameter, self.trainable);
        f(format!("{prefix}.bias"), &self.bias, EntryKind::Parameter, self.trainable);
    }

    pub(crate) fn visit_state_mut(
        &mut self,
        prefix: &str,
        f: &mut dyn FnMut(String, &mut Tensor, EntryKind),
    ) {
        f(format!("{prefix}.weight"), &mut self.weight, EntryKind::Parameter);
        f(format!("{prefix}.bias"), &mut self.bias, EntryKind::Parameter);
    }

    pub(crate) fn visit_trainable_mut(
        &mut self,
        prefix: &str,
        f: &mut dyn FnMut(String, &mut Tensor, &mut Tensor),
    ) {
        if !self.trainable {
            return;
        }
        f(format!("{prefix}.weight"), &mut self.weight, &mut self.grad_weight);
        f(format!("{prefix}.bias"), &mut self.bias, &mut self.grad_bias);
    }

    pub(crate) fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }
}
