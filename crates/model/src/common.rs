//! Parameter-free layers: activations, pooling, dropout, flatten.

use mmlib_tensor::Tensor;

use crate::module::{dims4, Ctx};

/// Rectified linear unit.
#[derive(Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// A fresh ReLU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward: `max(x, 0)`; caches the activation mask.
    pub fn forward(&mut self, mut x: Tensor) -> Tensor {
        let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0).collect();
        for (v, &m) in x.data_mut().iter_mut().zip(&mask) {
            if !m {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        x
    }

    /// Backward: gradient passes only where the input was positive.
    pub fn backward(&mut self, mut g: Tensor) -> Tensor {
        let mask = self.mask.take().expect("relu backward before forward");
        for (v, m) in g.data_mut().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }
}

/// ReLU clipped at 6 (`min(max(x, 0), 6)`) — used by MobileNetV2.
#[derive(Default)]
pub struct ReLU6 {
    mask: Option<Vec<bool>>,
}

impl ReLU6 {
    /// A fresh ReLU6.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward: clamp to `[0, 6]`; caches the pass-through mask.
    pub fn forward(&mut self, mut x: Tensor) -> Tensor {
        let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0 && v < 6.0).collect();
        for v in x.data_mut().iter_mut() {
            *v = v.clamp(0.0, 6.0);
        }
        self.mask = Some(mask);
        x
    }

    /// Backward: gradient passes only inside the linear region.
    pub fn backward(&mut self, mut g: Tensor) -> Tensor {
        let mask = self.mask.take().expect("relu6 backward before forward");
        for (v, m) in g.data_mut().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }
}

/// Square max pooling.
pub struct MaxPool2d {
    /// Kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding (padded positions are treated as `-inf`).
    pub pad: usize,
    argmax: Option<(Vec<usize>, Vec<usize>)>, // (flat input idx per output, input dims)
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        MaxPool2d { kernel, stride, pad, argmax: None }
    }

    /// Forward pass; caches argmax positions for backward routing.
    pub fn forward(&mut self, x: Tensor) -> Tensor {
        let (n, c, h, w) = dims4(&x);
        let (k, s, p) = (self.kernel, self.stride, self.pad);
        assert!(h + 2 * p >= k && w + 2 * p >= k, "pool window larger than input");
        let ho = (h + 2 * p - k) / s + 1;
        let wo = (w + 2 * p - k) / s + 1;
        let xd = x.data();
        let mut out = Tensor::zeros([n, c, ho, wo]);
        let mut arg = vec![0usize; n * c * ho * wo];
        {
            let od = out.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let ibase = ni * c * h * w + ci * h * w;
                    let obase = ni * c * ho * wo + ci * ho * wo;
                    for oh in 0..ho {
                        for ow in 0..wo {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_idx = 0usize;
                            for kh in 0..k {
                                let ih = oh * s + kh;
                                if ih < p || ih - p >= h {
                                    continue;
                                }
                                let ih = ih - p;
                                for kw in 0..k {
                                    let iw = ow * s + kw;
                                    if iw < p || iw - p >= w {
                                        continue;
                                    }
                                    let iw = iw - p;
                                    let v = xd[ibase + ih * w + iw];
                                    if v > best {
                                        best = v;
                                        best_idx = ibase + ih * w + iw;
                                    }
                                }
                            }
                            od[obase + oh * wo + ow] = best;
                            arg[obase + oh * wo + ow] = best_idx;
                        }
                    }
                }
            }
        }
        self.argmax = Some((arg, vec![n, c, h, w]));
        out
    }

    /// Backward: routes each output gradient to its argmax input position.
    pub fn backward(&mut self, g: Tensor) -> Tensor {
        let (arg, in_dims) = self.argmax.take().expect("pool backward before forward");
        let mut gin = Tensor::zeros(in_dims);
        {
            let gi = gin.data_mut();
            for (gv, &idx) in g.data().iter().zip(&arg) {
                gi[idx] += gv;
            }
        }
        gin
    }
}

/// Global average pooling `[N, C, H, W] → [N, C]` (torchvision's
/// `AdaptiveAvgPool2d(1)` + flatten, fused).
#[derive(Default)]
pub struct GlobalAvgPool {
    in_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// A fresh pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward: per-channel spatial mean.
    pub fn forward(&mut self, x: Tensor) -> Tensor {
        let (n, c, h, w) = dims4(&x);
        let plane = (h * w) as f32;
        let xd = x.data();
        let mut out = Tensor::zeros([n, c]);
        {
            let od = out.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let base = ni * c * h * w + ci * h * w;
                    let mut acc = 0.0f32;
                    for i in 0..h * w {
                        acc += xd[base + i];
                    }
                    od[ni * c + ci] = acc / plane;
                }
            }
        }
        self.in_dims = Some(vec![n, c, h, w]);
        out
    }

    /// Backward: spreads each channel gradient uniformly over the plane.
    pub fn backward(&mut self, g: Tensor) -> Tensor {
        let dims = self.in_dims.take().expect("gap backward before forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = (h * w) as f32;
        let gd = g.data();
        let mut gin = Tensor::zeros([n, c, h, w]);
        {
            let gi = gin.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let v = gd[ni * c + ci] / plane;
                    let base = ni * c * h * w + ci * h * w;
                    for i in 0..h * w {
                        gi[base + i] = v;
                    }
                }
            }
        }
        gin
    }
}

/// Dropout: zeroes each element with probability `p` in training mode and
/// scales survivors by `1/(1-p)` (inverted dropout). The mask is drawn from
/// the context's seeded PRNG, so training replays reproduce it exactly.
pub struct Dropout {
    /// Drop probability.
    pub p: f32,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p));
        Dropout { p, mask: None }
    }

    /// Forward; identity in eval mode.
    pub fn forward(&mut self, mut x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.training || self.p == 0.0 {
            self.mask = None;
            return x;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = x
            .data()
            .iter()
            .map(|_| if ctx.rng.next_f32() < keep { scale } else { 0.0 })
            .collect();
        for (v, m) in x.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        x
    }

    /// Backward: applies the cached mask (identity if eval-mode forward).
    pub fn backward(&mut self, mut g: Tensor) -> Tensor {
        if let Some(mask) = self.mask.take() {
            for (v, m) in g.data_mut().iter_mut().zip(mask) {
                *v *= m;
            }
        }
        g
    }
}

/// Flatten `[N, C, H, W] → [N, C·H·W]`.
#[derive(Default)]
pub struct Flatten {
    in_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// A fresh flatten.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward reshape.
    pub fn forward(&mut self, x: Tensor) -> Tensor {
        let dims = x.shape().dims().to_vec();
        assert!(!dims.is_empty());
        let n = dims[0];
        let rest: usize = dims[1..].iter().product();
        self.in_dims = Some(dims);
        x.reshape([n, rest]).expect("flatten preserves element count")
    }

    /// Backward reshape.
    pub fn backward(&mut self, g: Tensor) -> Tensor {
        let dims = self.in_dims.take().expect("flatten backward before forward");
        g.reshape(dims).expect("flatten grad preserves element count")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_tensor::{ExecMode, Pcg32};

    #[test]
    fn relu_forward_backward() {
        let mut l = ReLU::new();
        let x = Tensor::from_vec([1, 1, 1, 4], vec![-1.0, 2.0, 0.0, 3.0]).unwrap();
        let y = l.forward(x);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 3.0]);
        let g = l.backward(Tensor::from_vec([1, 1, 1, 4], vec![1.0; 4]).unwrap());
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu6_clamps_and_gates() {
        let mut l = ReLU6::new();
        let x = Tensor::from_vec([1, 1, 1, 4], vec![-1.0, 3.0, 6.5, 6.0]).unwrap();
        let y = l.forward(x);
        assert_eq!(y.data(), &[0.0, 3.0, 6.0, 6.0]);
        let g = l.backward(Tensor::from_vec([1, 1, 1, 4], vec![1.0; 4]).unwrap());
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_picks_max_and_routes_grad() {
        let mut l = MaxPool2d::new(2, 2, 0);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]).unwrap();
        let y = l.forward(x);
        assert_eq!(y.data(), &[5.0]);
        let g = l.backward(Tensor::from_vec([1, 1, 1, 1], vec![2.0]).unwrap());
        assert_eq!(g.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn gap_means_and_spreads() {
        let mut l = GlobalAvgPool::new();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let y = l.forward(x);
        assert_eq!(y.data(), &[3.0]);
        let g = l.backward(Tensor::from_vec([1, 1], vec![4.0]).unwrap());
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn dropout_is_identity_in_eval_and_seeded_in_train() {
        let mut rng = Pcg32::seeded(1);
        let mut ctx = Ctx::eval(&mut rng, ExecMode::Deterministic);
        let mut l = Dropout::new(0.5);
        let x = Tensor::ones([1, 1, 2, 2]);
        let y = l.forward(x.clone(), &mut ctx);
        assert!(y.bit_eq(&x));

        let run = |seed: u64| {
            let mut rng = Pcg32::seeded(seed);
            let mut ctx = Ctx::train(&mut rng, ExecMode::Deterministic);
            let mut l = Dropout::new(0.5);
            l.forward(Tensor::ones([1, 1, 8, 8]), &mut ctx)
        };
        assert!(run(7).bit_eq(&run(7)));
    }

    #[test]
    fn flatten_round_trip() {
        let mut l = Flatten::new();
        let x = Tensor::from_vec([2, 3, 1, 1], (0..6).map(|i| i as f32).collect::<Vec<_>>()).unwrap();
        let y = l.forward(x.clone());
        assert_eq!(y.shape().dims(), &[2, 3]);
        let g = l.backward(y);
        assert_eq!(g.shape().dims(), &[2, 3, 1, 1]);
        assert_eq!(g.data(), x.data());
    }
}
