//! Model substrate for the mmlib reproduction.
//!
//! The paper evaluates its three save/recover approaches on five torchvision
//! computer-vision architectures (Table 2): MobileNetV2, GoogLeNet,
//! ResNet-18, ResNet-50 and ResNet-152. This crate re-implements those
//! architectures from scratch on top of `mmlib-tensor`:
//!
//! * [`layers`] — parameterized layers (conv, batch-norm, linear) with real
//!   forward **and** backward passes, in deterministic or parallel execution
//!   mode (the latter exhibits run-to-run floating-point divergence in its
//!   reductions, which the probing tool must detect).
//! * [`common`] — parameter-free layers: activations, pooling, dropout,
//!   flatten.
//! * [`module`] — the [`module::Module`] tree (sequential / residual /
//!   branched composition) with state-dict visitors, gradient plumbing, and
//!   per-layer trainability used by the parameter-update approach.
//! * [`arch`] — builders for the five evaluation architectures. Trainable
//!   parameter counts match the paper's Table 2 **exactly** and are asserted
//!   in tests (e.g. ResNet-152: 60,192,808 total / 2,049,000 when only the
//!   classifier is trainable).
//! * [`model`] — [`model::Model`]: an architecture id plus a module tree;
//!   the unit that mmlib saves and recovers.
//!
//! # A "layer" in mmlib terms
//!
//! The parameter-update approach diffs models *layer-wise* (paper §3.2). A
//! layer here is a leaf module that owns parameters (one conv, one
//! batch-norm, one linear); its state is the ordered set of its parameter
//! and buffer tensors. [`module::Module::layer_paths`] enumerates them in
//! canonical order — the order the Merkle tree in `mmlib-core` is built over.

#![forbid(unsafe_code)]

pub mod arch;
pub mod common;
pub mod layers;
pub mod model;
pub mod module;

pub use arch::ArchId;
pub use model::Model;
pub use module::{Ctx, Module};
