//! Asserts that the re-implemented architectures reproduce the paper's
//! Table 2 parameter counts exactly, and exercises the state-dict API on
//! every architecture.

use mmlib_model::{ArchId, Model};

#[test]
fn table2_param_counts_exact() {
    for arch in ArchId::all() {
        let model = Model::new_initialized(arch, 0);
        assert_eq!(
            model.param_count(),
            arch.paper_param_count(),
            "{} total param count deviates from paper Table 2",
            arch.name()
        );
    }
}

#[test]
fn table2_partial_param_counts_exact() {
    for arch in ArchId::all() {
        let mut model = Model::new_initialized(arch, 0);
        model.set_classifier_only_trainable();
        assert_eq!(
            model.trainable_param_count(),
            arch.paper_partial_param_count(),
            "{} classifier-only param count deviates from paper Table 2",
            arch.name()
        );
    }
}

#[test]
fn fully_trainable_equals_total() {
    for arch in ArchId::all() {
        let mut model = Model::new_initialized(arch, 0);
        model.set_fully_trainable();
        assert_eq!(model.trainable_param_count(), model.param_count());
    }
}

#[test]
fn state_dict_round_trip_bit_exact() {
    for arch in ArchId::all() {
        let model = Model::new_initialized(arch, 7);
        let sd = model.state_dict();
        let mut other = Model::new_initialized(arch, 8);
        assert!(!model.models_equal(&other), "{}: different seeds should differ", arch.name());
        other.load_state_dict(&sd).unwrap();
        assert!(model.models_equal(&other), "{}: load_state_dict must restore exactly", arch.name());
    }
}

#[test]
fn same_seed_same_model() {
    for arch in ArchId::all() {
        let a = Model::new_initialized(arch, 42);
        let b = Model::new_initialized(arch, 42);
        assert!(a.models_equal(&b), "{}: init must be seed-deterministic", arch.name());
    }
}

#[test]
fn state_nbytes_exceeds_param_bytes() {
    // Buffers (BN running stats) are part of the state dict, so the exact
    // model state is strictly larger than 4 bytes x trainable params.
    for arch in ArchId::all() {
        let model = Model::new_initialized(arch, 0);
        assert!(model.state_nbytes() > model.param_count() * 4, "{}", arch.name());
    }
}

#[test]
fn layers_are_enumerated_in_stable_order() {
    let model = Model::new_initialized(ArchId::ResNet18, 0);
    let layers = model.layers();
    // conv1, bn1, 4 stages x 2 blocks x (2 conv + 2 bn [+ ds conv + ds bn]), fc
    assert_eq!(layers[0].path, "conv1");
    assert_eq!(layers[1].path, "bn1");
    assert_eq!(layers.last().unwrap().path, "fc");
    // ResNet-18: 2 + 8*(2+2) + 3*2 (downsamples in layers 2-4) + 1 = 41
    assert_eq!(layers.len(), 41);
    // Stable across rebuilds.
    let again = Model::new_initialized(ArchId::ResNet18, 1);
    assert_eq!(
        layers.iter().map(|l| &l.path).collect::<Vec<_>>(),
        again.layers().iter().map(|l| &l.path).collect::<Vec<_>>()
    );
}

#[test]
fn classifier_only_marks_expected_layers() {
    let mut model = Model::new_initialized(ArchId::MobileNetV2, 0);
    model.set_classifier_only_trainable();
    let layers = model.layers();
    let trainable: Vec<_> = layers.iter().filter(|l| l.trainable).collect();
    assert_eq!(trainable.len(), 1);
    assert!(trainable[0].path.starts_with("classifier"));
}

#[test]
fn load_rejects_missing_and_unexpected_and_mismatched() {
    let model = Model::new_initialized(ArchId::ResNet18, 0);
    let mut target = Model::new_initialized(ArchId::ResNet18, 1);

    let mut sd = model.state_dict();
    let removed = sd.pop().unwrap();
    assert!(target.load_state_dict(&sd).is_err(), "missing entry must fail");

    sd.push(removed);
    sd.push(("nonexistent.weight".to_string(), mmlib_tensor::Tensor::zeros([1])));
    assert!(target.load_state_dict(&sd).is_err(), "unexpected entry must fail");

    sd.pop();
    let (_name, t) = &mut sd[0];
    *t = mmlib_tensor::Tensor::zeros([1, 2, 3]);
    assert!(target.load_state_dict(&sd).is_err(), "shape mismatch must fail");
}

#[test]
fn apply_update_merges_partially() {
    let base = Model::new_initialized(ArchId::ResNet18, 0);
    let donor = Model::new_initialized(ArchId::ResNet18, 1);
    let mut merged = Model::new_initialized(ArchId::ResNet18, 0);

    // Take only the fc entries from the donor.
    let update: Vec<_> = donor
        .state_dict()
        .into_iter()
        .filter(|(p, _)| p.starts_with("fc"))
        .collect();
    assert_eq!(update.len(), 2);
    merged.apply_update(&update).unwrap();

    for ((pa, ta), (_pb, tb)) in merged.state_dict().iter().zip(base.state_dict().iter()) {
        if pa.starts_with("fc") {
            assert!(!ta.bit_eq(tb), "fc entries must change");
        } else {
            assert!(ta.bit_eq(tb), "{pa} must be untouched");
        }
    }
}
