//! Forward/backward correctness: numerical gradient checks on every
//! parameterized layer type, determinism of the deterministic mode, and
//! smoke tests of all five architectures end to end.

use mmlib_model::layers::{BatchNorm2d, Conv2d, Linear};
use mmlib_model::{ArchId, Ctx, Model, Module};
use mmlib_tensor::{ExecMode, Init, Pcg32, Tensor};

/// Scalar loss: sum of squares / 2 — gradient is the output itself.
fn loss_and_grad(y: &Tensor) -> (f64, Tensor) {
    let loss = y.data().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() / 2.0;
    (loss, y.clone())
}

/// Numerically checks d(loss)/d(param[i]) against the analytic gradient for
/// a few sampled parameter indices of the module.
fn grad_check(module: &mut Module, input: Tensor, samples: usize, tol: f32) {
    let mut rng = Pcg32::seeded(999);
    // Analytic gradients.
    module.zero_grad();
    let mut dropout_rng = Pcg32::seeded(0);
    let mut ctx = Ctx::train(&mut dropout_rng, ExecMode::Deterministic);
    let y = module.forward(input.clone(), &mut ctx);
    let (_, gy) = loss_and_grad(&y);
    module.backward(gy, &mut ctx);

    // Collect (path, index, analytic_grad).
    let mut targets: Vec<(String, usize, f32)> = Vec::new();
    module.visit_trainable_mut("", &mut |path, param, grad| {
        for _ in 0..samples {
            let i = rng.below(param.numel() as u32) as usize;
            targets.push((path.clone(), i, grad.data()[i]));
        }
    });
    assert!(!targets.is_empty());

    // Numerical gradients via central differences.
    for (path, i, analytic) in targets {
        let eps = 1e-3f32;
        let mut eval_at = |delta: f32| -> f64 {
            module.visit_trainable_mut("", &mut |p, param, _| {
                if p == path {
                    param.data_mut()[i] += delta;
                }
            });
            let mut dropout_rng = Pcg32::seeded(0);
            let mut ctx = Ctx::train(&mut dropout_rng, ExecMode::Deterministic);
            let y = module.forward(input.clone(), &mut ctx);
            // BN running stats drift across evals; harmless for the check.
            let (loss, g) = loss_and_grad(&y);
            module.backward(g, &mut ctx); // clear caches
            module.zero_grad();
            loss
        };
        let up = eval_at(eps);
        let down = eval_at(-2.0 * eps);
        eval_at(eps); // restore
        let numeric = ((up - down) / (2.0 * eps as f64)) as f32;
        let denom = 1.0f32.max(analytic.abs()).max(numeric.abs());
        assert!(
            (analytic - numeric).abs() / denom < tol,
            "{path}[{i}]: analytic={analytic} numeric={numeric}"
        );
    }
}

#[test]
fn conv2d_gradients_match_numerics() {
    let mut rng = Pcg32::seeded(1);
    let conv = Conv2d::new(3, 4, 3, 1, 1, 1, true).init(Init::XavierUniform, &mut rng);
    let mut m = Module::Conv2d(conv);
    let x = Tensor::rand_normal([2, 3, 5, 5], 0.0, 1.0, &mut rng);
    grad_check(&mut m, x, 4, 2e-2);
}

#[test]
fn strided_grouped_conv_gradients_match_numerics() {
    let mut rng = Pcg32::seeded(2);
    let conv = Conv2d::new(4, 4, 3, 2, 1, 4, false).init(Init::XavierUniform, &mut rng);
    let mut m = Module::Conv2d(conv);
    let x = Tensor::rand_normal([2, 4, 6, 6], 0.0, 1.0, &mut rng);
    grad_check(&mut m, x, 4, 2e-2);
}

#[test]
fn linear_gradients_match_numerics() {
    let mut rng = Pcg32::seeded(3);
    let lin = Linear::new(8, 5).init(Init::XavierUniform, Init::UniformFanIn, &mut rng);
    let mut m = Module::Linear(lin);
    // Linear expects [N, F]; wrap in a tiny harness via Module.
    let x = Tensor::rand_normal([3, 8], 0.0, 1.0, &mut rng);
    grad_check(&mut m, x, 6, 1e-2);
}

#[test]
fn batchnorm_gradients_match_numerics() {
    let mut rng = Pcg32::seeded(4);
    let mut m = Module::BatchNorm2d(BatchNorm2d::new(3));
    let x = Tensor::rand_normal([4, 3, 4, 4], 0.5, 2.0, &mut rng);
    grad_check(&mut m, x, 4, 3e-2);
}

#[test]
fn composite_block_gradients_match_numerics() {
    // conv -> bn -> conv with residual shortcut: exercises the module-tree
    // backward plumbing end to end. Kept ReLU-free so the loss surface is
    // smooth (ReLU kinks make central differences unreliable); the ReLU
    // gradient itself is unit-tested in `mmlib_model::common`.
    let mut rng = Pcg32::seeded(5);
    let body = Module::seq(vec![
        ("conv1", Module::Conv2d(Conv2d::new(3, 3, 3, 1, 1, 1, false).init(Init::XavierUniform, &mut rng))),
        ("bn1", Module::BatchNorm2d(BatchNorm2d::new(3))),
        ("conv2", Module::Conv2d(Conv2d::new(3, 3, 3, 1, 1, 1, false).init(Init::XavierUniform, &mut rng))),
    ]);
    let mut m = Module::Residual(mmlib_model::module::Residual::new(body, None, false));
    let x = Tensor::rand_normal([2, 3, 4, 4], 0.0, 1.0, &mut rng);
    grad_check(&mut m, x, 3, 5e-2);
}

fn smoke(arch: ArchId, res: usize) {
    let mut model = Model::new_initialized(arch, 11);
    let mut rng = Pcg32::seeded(12);
    let x = Tensor::rand_normal([2, 3, res, res], 0.0, 1.0, &mut rng);
    let mut train_rng = Pcg32::seeded(13);
    let mut ctx = Ctx::train(&mut train_rng, ExecMode::Deterministic);
    let y = model.forward(x.clone(), &mut ctx);
    assert_eq!(y.shape().dims(), &[2, 1000], "{}", arch.name());
    assert!(y.data().iter().all(|v| v.is_finite()), "{}: non-finite logits", arch.name());
    let g = model.backward(y.clone(), &mut ctx);
    assert_eq!(g.shape().dims(), x.shape().dims());

    // Eval mode works too.
    let mut eval_rng = Pcg32::seeded(14);
    let mut ectx = Ctx::eval(&mut eval_rng, ExecMode::Deterministic);
    let ye = model.forward(x, &mut ectx);
    assert_eq!(ye.shape().dims(), &[2, 1000]);
}

#[test]
fn mobilenetv2_forward_backward_smoke() {
    smoke(ArchId::MobileNetV2, 32);
}

#[test]
fn googlenet_forward_backward_smoke() {
    smoke(ArchId::GoogLeNet, 32);
}

#[test]
fn resnet18_forward_backward_smoke() {
    smoke(ArchId::ResNet18, 32);
}

#[test]
fn resnet50_forward_backward_smoke() {
    smoke(ArchId::ResNet50, 32);
}

#[test]
fn deterministic_mode_is_bit_reproducible_end_to_end() {
    let run = || {
        let mut model = Model::new_initialized(ArchId::ResNet18, 21);
        let mut rng = Pcg32::seeded(22);
        let x = Tensor::rand_normal([2, 3, 32, 32], 0.0, 1.0, &mut rng);
        let mut train_rng = Pcg32::seeded(23);
        let mut ctx = Ctx::train(&mut train_rng, ExecMode::Deterministic);
        let y = model.forward(x, &mut ctx);
        model.backward(y.clone(), &mut ctx);
        let mut grads = Vec::new();
        model.visit_trainable_mut(&mut |_, _, g| grads.push(g.clone()));
        (y, grads)
    };
    let (y1, g1) = run();
    let (y2, g2) = run();
    assert!(y1.bit_eq(&y2));
    assert_eq!(g1.len(), g2.len());
    for (a, b) in g1.iter().zip(&g2) {
        assert!(a.bit_eq(b));
    }
}

#[test]
fn parallel_mode_stays_numerically_close() {
    let mut model = Model::new_initialized(ArchId::ResNet18, 31);
    let mut rng = Pcg32::seeded(32);
    let x = Tensor::rand_normal([4, 3, 32, 32], 0.0, 1.0, &mut rng);

    let sd = model.state_dict();
    let mut r1 = Pcg32::seeded(33);
    let mut ctx = Ctx::train(&mut r1, ExecMode::Deterministic);
    let y_det = model.forward(x.clone(), &mut ctx);
    model.backward(y_det.clone(), &mut ctx);
    model.zero_grad();
    model.load_state_dict(&sd).unwrap();

    let mut r2 = Pcg32::seeded(33);
    let mut ctx = Ctx::train(&mut r2, ExecMode::Parallel);
    let y_par = model.forward(x, &mut ctx);
    model.backward(y_par.clone(), &mut ctx);

    let diff = y_det.max_abs_diff(&y_par).unwrap();
    let scale = y_det.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
    assert!(diff / scale < 1e-3, "relative divergence too large: {diff} vs scale {scale}");
}
