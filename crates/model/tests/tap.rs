//! Tests of the forward tap used by the probing tool.

use mmlib_model::module::ForwardTap;
use mmlib_model::{ArchId, Ctx, Model};
use mmlib_tensor::{ExecMode, Pcg32, Tensor};

#[test]
fn tap_reports_every_parameterized_leaf_in_order() {
    let mut model = Model::new_initialized(ArchId::TinyCnn, 1);
    let mut rng = Pcg32::seeded(2);
    let x = Tensor::rand_normal([1, 3, 8, 8], 0.0, 1.0, &mut rng);

    let mut taps: Vec<(String, Vec<usize>)> = Vec::new();
    let mut sink = |path: &str, t: &Tensor| {
        taps.push((path.to_string(), t.shape().dims().to_vec()));
    };
    let mut train_rng = Pcg32::seeded(3);
    let ctx = Ctx::eval(&mut train_rng, ExecMode::Deterministic);
    let mut ctx = ctx.with_tap(ForwardTap::new(&mut sink));
    model.forward(x, &mut ctx);
    drop(ctx);

    let paths: Vec<&str> = taps.iter().map(|(p, _)| p.as_str()).collect();
    assert_eq!(paths, ["conv1", "bn1", "conv2", "bn2", "fc"]);
    // The conv1 output is [1, 8, 4, 4] (stride 2 on 8x8).
    assert_eq!(taps[0].1, vec![1, 8, 4, 4]);
    // The fc output is [1, 1000].
    assert_eq!(taps[4].1, vec![1, 1000]);
}

#[test]
fn tap_paths_descend_into_blocks() {
    let mut model = Model::new_initialized(ArchId::ResNet18, 1);
    let mut rng = Pcg32::seeded(2);
    let x = Tensor::rand_normal([1, 3, 32, 32], 0.0, 1.0, &mut rng);

    let mut paths: Vec<String> = Vec::new();
    let mut sink = |path: &str, _t: &Tensor| paths.push(path.to_string());
    let mut train_rng = Pcg32::seeded(3);
    let ctx = Ctx::eval(&mut train_rng, ExecMode::Deterministic);
    let mut ctx = ctx.with_tap(ForwardTap::new(&mut sink));
    model.forward(x, &mut ctx);
    drop(ctx);

    assert_eq!(paths.len(), model.layers().len());
    assert!(paths.contains(&"layer1.0.body.conv1".to_string()));
    assert!(paths.contains(&"layer2.0.downsample.0".to_string()));
    // Tap order equals layer-path order except where dataflow reorders
    // (residual downsample runs before the body in our forward).
    let mut sorted_tap = paths.clone();
    sorted_tap.sort();
    let mut sorted_layers: Vec<String> = model.layers().into_iter().map(|l| l.path).collect();
    sorted_layers.sort();
    assert_eq!(sorted_tap, sorted_layers);
}

#[test]
fn untapped_forward_is_unaffected() {
    let mut model = Model::new_initialized(ArchId::TinyCnn, 4);
    let mut rng = Pcg32::seeded(5);
    let x = Tensor::rand_normal([1, 3, 8, 8], 0.0, 1.0, &mut rng);

    let mut r1 = Pcg32::seeded(6);
    let mut ctx = Ctx::eval(&mut r1, ExecMode::Deterministic);
    let y_plain = model.forward(x.clone(), &mut ctx);

    let mut sink = |_: &str, _: &Tensor| {};
    let mut r2 = Pcg32::seeded(6);
    let ctx = Ctx::eval(&mut r2, ExecMode::Deterministic);
    let mut ctx = ctx.with_tap(ForwardTap::new(&mut sink));
    let y_tapped = model.forward(x, &mut ctx);
    drop(ctx);

    assert!(y_plain.bit_eq(&y_tapped), "tap must not perturb the computation");
}
