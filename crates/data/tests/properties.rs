//! Property-based tests of the data substrate: container round trips under
//! arbitrary scales, loader determinism, and corruption detection.

use mmlib_data::loader::LoaderConfig;
use mmlib_data::{container, DataLoader, Dataset, DatasetId};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (0usize..4, 1u32..50).prop_map(|(idx, scale_thousandths)| {
        let id = DatasetId::all()[idx];
        // Keep tests tiny: up to 5% of mINet and far less of INet.
        let scale = scale_thousandths as f64 / 1000.0 * 100_000.0 / id.paper_bytes() as f64;
        Dataset::new(id, scale.clamp(1e-6, 1.0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn container_round_trip(dataset in arb_dataset()) {
        let packed = container::pack(&dataset);
        let unpacked = container::unpack(&packed).unwrap();
        prop_assert_eq!(unpacked.id, dataset.id());
        prop_assert_eq!(unpacked.blobs.len() as u64, dataset.len());
        let total: u64 = unpacked.blobs.iter().map(|b| b.len() as u64).sum();
        prop_assert_eq!(total, dataset.total_bytes());
    }

    #[test]
    fn container_detects_any_single_bitflip(dataset in arb_dataset(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut packed = container::pack(&dataset);
        let pos = ((packed.len() - 1) as f64 * pos_frac) as usize;
        packed[pos] ^= 1 << bit;
        prop_assert!(container::unpack(&packed).is_err(), "bitflip at {} undetected", pos);
    }

    #[test]
    fn loader_batches_partition_the_epoch(seed in any::<u64>(), batch_size in 1usize..9, max_images in 1u64..33) {
        let dataset = Dataset::new(DatasetId::CocoOutdoor512, 0.0001);
        let loader = DataLoader::new(dataset, LoaderConfig {
            batch_size,
            resolution: 4,
            shuffle: true,
            augment: false,
            seed,
            max_images: Some(max_images),
        });
        let total: usize = loader.epoch(0).map(|b| b.labels.len()).sum();
        prop_assert_eq!(total as u64, loader.epoch_images());
        prop_assert_eq!(loader.epoch(0).count() as u64, loader.batches_per_epoch());
    }

    #[test]
    fn loader_is_pure(seed in any::<u64>(), epoch in 0u64..4, batch in 0u64..3) {
        let dataset = Dataset::new(DatasetId::CocoFood512, 0.0001);
        let config = LoaderConfig { batch_size: 4, resolution: 8, seed, max_images: Some(16), ..Default::default() };
        let a = DataLoader::new(dataset.clone(), config).batch(epoch, batch);
        let b = DataLoader::new(dataset, config).batch(epoch, batch);
        match (a, b) {
            (Some(a), Some(b)) => {
                prop_assert!(a.images.bit_eq(&b.images));
                prop_assert_eq!(a.labels, b.labels);
            }
            (None, None) => {}
            _ => prop_assert!(false, "loaders disagreed on batch existence"),
        }
    }

    #[test]
    fn blob_sizes_always_sum_to_spec(dataset in arb_dataset()) {
        let spec = *dataset.spec();
        let sum: u64 = (0..spec.images).map(|i| spec.blob_bytes(i)).sum();
        prop_assert_eq!(sum, spec.total_bytes);
    }
}
