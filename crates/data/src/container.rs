//! Single-file dataset container.
//!
//! The provenance approach "compresses [the dataset] to a single file, saves
//! it, and references the file" (§3.3). The evaluation images are JPEGs —
//! already entropy-coded, so a container gains structure, not compression.
//! This container concatenates the blobs behind an index and seals the file
//! with a SHA-256 trailer:
//!
//! ```text
//! MAGIC "MMDC" | version u16 | name_len u16 | name | images u64 | total u64
//! | per-image: len u32 | blob bytes ...
//! | trailer: sha256 over everything above (32 bytes)
//! ```

use mmlib_tensor::hash::{Digest, Sha256};

use crate::catalog::DatasetId;
use crate::dataset::Dataset;

const MAGIC: &[u8; 4] = b"MMDC";
const VERSION: u16 = 1;

/// Errors from container encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Header, index, or payload is malformed or truncated.
    Corrupt(String),
    /// The SHA-256 trailer does not match the content.
    ChecksumMismatch {
        /// Digest recorded in the trailer.
        stored: Digest,
        /// Digest recomputed over the payload.
        computed: Digest,
    },
    /// The container names a dataset this build does not know.
    UnknownDataset(String),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::Corrupt(m) => write!(f, "corrupt dataset container: {m}"),
            ContainerError::ChecksumMismatch { stored, computed } => {
                write!(f, "container checksum mismatch: stored {stored}, computed {computed}")
            }
            ContainerError::UnknownDataset(n) => write!(f, "unknown dataset {n}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Packs a dataset into the single-file container format.
pub fn pack(dataset: &Dataset) -> Vec<u8> {
    let name = dataset.id().short_name();
    let mut out = Vec::with_capacity(dataset.total_bytes() as usize + 64);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&dataset.len().to_le_bytes());
    out.extend_from_slice(&dataset.total_bytes().to_le_bytes());
    for i in 0..dataset.len() {
        let blob = dataset.blob(i);
        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        out.extend_from_slice(&blob);
    }
    let mut h = Sha256::new();
    h.update(&out);
    out.extend_from_slice(&h.finalize().0);
    out
}

/// A decoded container: the named dataset and its blob payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Unpacked {
    /// The dataset the container claims to hold.
    pub id: DatasetId,
    /// Per-image blobs in index order.
    pub blobs: Vec<Vec<u8>>,
}

/// Unpacks and verifies a container produced by [`pack`].
pub fn unpack(bytes: &[u8]) -> Result<Unpacked, ContainerError> {
    if bytes.len() < 4 + 2 + 2 + 32 {
        return Err(ContainerError::Corrupt("too short".into()));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 32);
    let mut h = Sha256::new();
    h.update(payload);
    let computed = h.finalize();
    let stored = Digest({
        let mut d = [0u8; 32];
        d.copy_from_slice(trailer);
        d
    });
    if stored != computed {
        return Err(ContainerError::ChecksumMismatch { stored, computed });
    }

    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], ContainerError> {
        if *pos + n > payload.len() {
            return Err(ContainerError::Corrupt("truncated".into()));
        }
        let s = &payload[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };

    if take(&mut pos, 4)? != MAGIC {
        return Err(ContainerError::Corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
    if version != VERSION {
        return Err(ContainerError::Corrupt(format!("unsupported version {version}")));
    }
    let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
    let name = std::str::from_utf8(take(&mut pos, name_len)?)
        .map_err(|_| ContainerError::Corrupt("name not utf-8".into()))?
        .to_string();
    let id = DatasetId::from_short_name(&name).ok_or(ContainerError::UnknownDataset(name))?;
    let images = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
    let total = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
    let mut blobs = Vec::with_capacity(images.min(1 << 24) as usize);
    let mut seen = 0u64;
    for _ in 0..images {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        blobs.push(take(&mut pos, len)?.to_vec());
        seen += len as u64;
    }
    if pos != payload.len() {
        return Err(ContainerError::Corrupt("trailing bytes before checksum".into()));
    }
    if seen != total {
        return Err(ContainerError::Corrupt(format!(
            "index total {total} disagrees with payload {seen}"
        )));
    }
    Ok(Unpacked { id, blobs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(DatasetId::CocoFood512, 0.0002)
    }

    #[test]
    fn pack_unpack_round_trip() {
        let d = tiny();
        let packed = pack(&d);
        let un = unpack(&packed).unwrap();
        assert_eq!(un.id, d.id());
        assert_eq!(un.blobs.len() as u64, d.len());
        for (i, blob) in un.blobs.iter().enumerate() {
            assert_eq!(blob, &d.blob(i as u64));
        }
    }

    #[test]
    fn container_size_tracks_dataset_size() {
        let d = tiny();
        let packed = pack(&d);
        let overhead = packed.len() as u64 - d.total_bytes();
        // index: 4 bytes per image + header + trailer
        assert_eq!(overhead, 4 * d.len() + 4 + 2 + 2 + 6 + 8 + 8 + 32);
    }

    #[test]
    fn flipping_any_payload_bit_is_detected() {
        let d = tiny();
        let packed = pack(&d);
        for &pos in &[0usize, 10, 100, packed.len() / 2, packed.len() - 40] {
            let mut corrupt = packed.clone();
            corrupt[pos] ^= 0x01;
            match unpack(&corrupt) {
                Err(ContainerError::ChecksumMismatch { .. }) | Err(ContainerError::Corrupt(_)) => {}
                other => panic!("corruption at {pos} not detected: {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let packed = pack(&tiny());
        assert!(unpack(&packed[..packed.len() - 1]).is_err());
        assert!(unpack(&packed[..10]).is_err());
        assert!(unpack(&[]).is_err());
    }
}
