//! A deterministic, shuffling, augmenting batch loader.
//!
//! The paper tracks "how [the dataset] is provided by components such as the
//! preprocessor or the dataloader" (§2.3): the loader is part of the
//! provenance. This loader is a *parametrized object without internal state*
//! in the paper's taxonomy (§3.3) — its behaviour is fully determined by its
//! constructor arguments (dataset, batch size, seed, augmentation flags), so
//! the provenance approach can recover it by re-instantiating it.

use mmlib_tensor::{Pcg32, Tensor};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// One batch: stacked pixels and labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Pixels `[N, 3, res, res]`.
    pub images: Tensor,
    /// Class labels, one per image.
    pub labels: Vec<u32>,
}

/// Loader configuration — the constructor arguments that define it, and
/// exactly what the provenance approach serializes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoaderConfig {
    /// Images per batch.
    pub batch_size: usize,
    /// Square decode resolution.
    pub resolution: usize,
    /// Shuffle images each epoch (seeded).
    pub shuffle: bool,
    /// Apply random horizontal flips (seeded).
    pub augment: bool,
    /// Base seed for shuffling and augmentation.
    pub seed: u64,
    /// Cap on images used per epoch (`None` = whole dataset). The harness
    /// uses this to scale training cost; `None` reproduces the paper.
    pub max_images: Option<u64>,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        LoaderConfig {
            batch_size: 64,
            resolution: 32,
            shuffle: true,
            augment: true,
            seed: 0,
            max_images: None,
        }
    }
}

/// Deterministic batch loader over a [`Dataset`].
#[derive(Debug, Clone)]
pub struct DataLoader {
    dataset: Dataset,
    config: LoaderConfig,
}

impl DataLoader {
    /// Creates a loader.
    pub fn new(dataset: Dataset, config: LoaderConfig) -> DataLoader {
        assert!(config.batch_size > 0, "batch size must be positive");
        DataLoader { dataset, config }
    }

    /// The wrapped dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The loader's defining configuration.
    pub fn config(&self) -> &LoaderConfig {
        &self.config
    }

    /// Number of images per epoch after the `max_images` cap.
    pub fn epoch_images(&self) -> u64 {
        let n = self.dataset.len();
        self.config.max_images.map_or(n, |m| m.min(n))
    }

    /// Number of batches per epoch (last partial batch included).
    pub fn batches_per_epoch(&self) -> u64 {
        self.epoch_images().div_ceil(self.config.batch_size as u64)
    }

    /// The image index order for `epoch` (shuffled if configured).
    fn epoch_order(&self, epoch: u64) -> Vec<u64> {
        let mut order: Vec<u64> = (0..self.dataset.len()).collect();
        if self.config.shuffle {
            let mut rng = Pcg32::new(self.config.seed ^ epoch.wrapping_mul(0xa076_1d64_78bd_642f), 11);
            rng.shuffle(&mut order);
        }
        order.truncate(self.epoch_images() as usize);
        order
    }

    /// Materializes batch `batch_idx` of `epoch`.
    ///
    /// Returns `None` past the end of the epoch. Augmentation randomness is
    /// derived from `(seed, epoch, batch_idx)` only, so a replay that loads
    /// the same coordinates reproduces the batch bit-for-bit.
    pub fn batch(&self, epoch: u64, batch_idx: u64) -> Option<Batch> {
        let order = self.epoch_order(epoch);
        let start = (batch_idx as usize).checked_mul(self.config.batch_size)?;
        if start >= order.len() {
            return None;
        }
        let indices = &order[start..(start + self.config.batch_size).min(order.len())];
        let res = self.config.resolution;
        let n = indices.len();
        let mut aug_rng = Pcg32::new(
            self.config.seed ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ batch_idx,
            13,
        );
        let mut images = Tensor::zeros([n, 3, res, res]);
        let mut labels = Vec::with_capacity(n);
        {
            let out = images.data_mut();
            let img_len = 3 * res * res;
            for (bi, &idx) in indices.iter().enumerate() {
                let img = self.dataset.image_tensor(idx, res);
                let flip = self.config.augment && aug_rng.next_f32() < 0.5;
                let src = img.data();
                let dst = &mut out[bi * img_len..(bi + 1) * img_len];
                if flip {
                    // Horizontal flip: reverse each row per channel.
                    for c in 0..3 {
                        for y in 0..res {
                            for x in 0..res {
                                dst[c * res * res + y * res + x] =
                                    src[c * res * res + y * res + (res - 1 - x)];
                            }
                        }
                    }
                } else {
                    dst.copy_from_slice(src);
                }
                labels.push(self.dataset.label(idx));
            }
        }
        Some(Batch { images, labels })
    }

    /// Iterates all batches of an epoch.
    pub fn epoch(&self, epoch: u64) -> impl Iterator<Item = Batch> + '_ {
        (0..self.batches_per_epoch()).filter_map(move |b| self.batch(epoch, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DatasetId;

    fn loader(seed: u64, shuffle: bool) -> DataLoader {
        DataLoader::new(
            Dataset::new(DatasetId::CocoOutdoor512, 0.0002),
            LoaderConfig {
                batch_size: 16,
                resolution: 8,
                shuffle,
                augment: true,
                seed,
                max_images: Some(48),
            },
        )
    }

    #[test]
    fn epoch_geometry() {
        let l = loader(1, true);
        assert_eq!(l.epoch_images(), 48);
        assert_eq!(l.batches_per_epoch(), 3);
        assert!(l.batch(0, 3).is_none());
        let last = l.batch(0, 2).unwrap();
        assert_eq!(last.labels.len(), 16);
    }

    #[test]
    fn partial_last_batch() {
        let l = DataLoader::new(
            Dataset::new(DatasetId::CocoOutdoor512, 0.0002),
            LoaderConfig { batch_size: 20, max_images: Some(50), resolution: 4, ..Default::default() },
        );
        assert_eq!(l.batches_per_epoch(), 3);
        assert_eq!(l.batch(0, 2).unwrap().labels.len(), 10);
    }

    #[test]
    fn batches_are_reproducible() {
        let a = loader(7, true).batch(2, 1).unwrap();
        let b = loader(7, true).batch(2, 1).unwrap();
        assert!(a.images.bit_eq(&b.images));
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seed_different_order() {
        let a = loader(7, true).batch(0, 0).unwrap();
        let b = loader(8, true).batch(0, 0).unwrap();
        assert!(!a.images.bit_eq(&b.images));
    }

    #[test]
    fn different_epoch_different_order() {
        let l = loader(7, true);
        let a = l.batch(0, 0).unwrap();
        let b = l.batch(1, 0).unwrap();
        assert!(!a.images.bit_eq(&b.images));
    }

    #[test]
    fn unshuffled_order_is_sequential() {
        let l = loader(7, false);
        let batch = l.batch(0, 0).unwrap();
        let expected: Vec<u32> = (0..16).map(|i| l.dataset().label(i)).collect();
        assert_eq!(batch.labels, expected);
    }

    #[test]
    fn epoch_iterator_yields_all_batches() {
        let l = loader(3, true);
        assert_eq!(l.epoch(0).count() as u64, l.batches_per_epoch());
    }
}
