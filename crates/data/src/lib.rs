//! Data substrate for the mmlib reproduction.
//!
//! The paper's evaluation (Table 1) trains on four datasets: the ImageNet
//! 2012 validation set (`INet_val`, 50,000 images / 6.3 GB), a mini variant
//! (`mINet_val`, 1,400 images / 200 MB), and two 512-image COCO subsets
//! (`CF-512` 94.3 MB and `CO-512` 71.6 MB). None of these can ship with a
//! reproduction, and the approaches under study never look *inside* an
//! image — the baseline and parameter-update approaches ignore the dataset
//! entirely, and the provenance approach only (a) stores its bytes and
//! (b) feeds deterministic pixels into a training replay.
//!
//! We therefore synthesize datasets that preserve exactly the properties the
//! experiments depend on:
//!
//! * **image counts and byte sizes** match Table 1 (scaled by a configurable
//!   factor so the harness stays laptop-sized; ratios between datasets and
//!   between dataset and model sizes are preserved),
//! * **blob content is deterministic** — image `i` of a dataset is a
//!   seeded-PRNG byte string, so two machines materialize bit-identical
//!   datasets and the provenance approach's dataset checksum is meaningful,
//! * **pixels and labels derive deterministically** from the dataset seed
//!   and image index, so a training replay sees the same inputs.
//!
//! Modules:
//! * [`catalog`] — the Table 1 dataset inventory and [`catalog::DatasetId`].
//! * [`dataset`] — materialized [`dataset::Dataset`]s, blob access, decode.
//! * [`container`] — the single-file container the provenance approach
//!   stores ("we compress [the dataset] to a single file", §3.3).
//! * [`loader`] — a deterministic, shuffling, augmenting batch loader.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod container;
pub mod dataset;
pub mod loader;

pub use catalog::{DatasetId, DatasetSpec};
pub use dataset::Dataset;
pub use loader::{Batch, DataLoader};
