//! The paper's Table 1 dataset inventory.

use serde::{Deserialize, Serialize};

/// Identifier of one of the evaluation datasets (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// ImageNet 2012 validation set: 50,000 images, 6.3 GB. Used in U2.
    INetVal,
    /// Mini ImageNet validation subset: 1,400 images, 200 MB. Used in U2.
    MiniINetVal,
    /// Coco-food-512: 512 images, 94.3 MB. Used in U3.
    CocoFood512,
    /// Coco-outdoor-512: 512 images, 71.6 MB. Used in U3.
    CocoOutdoor512,
}

impl DatasetId {
    /// All datasets in Table 1 order.
    pub fn all() -> [DatasetId; 4] {
        [
            DatasetId::INetVal,
            DatasetId::MiniINetVal,
            DatasetId::CocoFood512,
            DatasetId::CocoOutdoor512,
        ]
    }

    /// The paper's short name.
    pub fn short_name(self) -> &'static str {
        match self {
            DatasetId::INetVal => "INet_val",
            DatasetId::MiniINetVal => "mINet_val",
            DatasetId::CocoFood512 => "CF-512",
            DatasetId::CocoOutdoor512 => "CO-512",
        }
    }

    /// Parses a short name.
    pub fn from_short_name(name: &str) -> Option<DatasetId> {
        DatasetId::all().into_iter().find(|d| d.short_name() == name)
    }

    /// Number of images (Table 1).
    pub fn paper_images(self) -> u64 {
        match self {
            DatasetId::INetVal => 50_000,
            DatasetId::MiniINetVal => 1_400,
            DatasetId::CocoFood512 | DatasetId::CocoOutdoor512 => 512,
        }
    }

    /// Total size in bytes (Table 1; decimal units as in the paper).
    pub fn paper_bytes(self) -> u64 {
        match self {
            DatasetId::INetVal => 6_300_000_000,
            DatasetId::MiniINetVal => 200_000_000,
            DatasetId::CocoFood512 => 94_300_000,
            DatasetId::CocoOutdoor512 => 71_600_000,
        }
    }

    /// The use case the paper employs the dataset in ("U2" / "U3").
    pub fn paper_use_case(self) -> &'static str {
        match self {
            DatasetId::INetVal | DatasetId::MiniINetVal => "U2",
            DatasetId::CocoFood512 | DatasetId::CocoOutdoor512 => "U3",
        }
    }

    /// A per-dataset seed: blob content and labels derive from it, so every
    /// machine materializes bit-identical data.
    pub fn seed(self) -> u64 {
        match self {
            DatasetId::INetVal => 0x494e4554,
            DatasetId::MiniINetVal => 0x6d494e45,
            DatasetId::CocoFood512 => 0x43462d35,
            DatasetId::CocoOutdoor512 => 0x434f2d35,
        }
    }

    /// The concrete spec at a byte-size scale factor (image count is never
    /// scaled: the training replay length must stay faithful).
    pub fn spec(self, scale: f64) -> DatasetSpec {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        DatasetSpec {
            id: self,
            images: self.paper_images(),
            total_bytes: ((self.paper_bytes() as f64) * scale).round() as u64,
            scale,
        }
    }
}

/// A concrete dataset specification (possibly size-scaled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which Table 1 dataset this is.
    pub id: DatasetId,
    /// Number of images.
    pub images: u64,
    /// Total blob bytes across all images.
    pub total_bytes: u64,
    /// The scale factor applied to the paper's byte size.
    pub scale: f64,
}

impl DatasetSpec {
    /// Size in bytes of image `i`'s blob. The total is distributed as evenly
    /// as integers allow (the first `total % images` images get one extra
    /// byte), so `Σ blob_bytes(i) == total_bytes` exactly.
    pub fn blob_bytes(&self, i: u64) -> u64 {
        assert!(i < self.images);
        let base = self.total_bytes / self.images;
        let extra = self.total_bytes % self.images;
        base + u64::from(i < extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_inventory_matches_paper() {
        assert_eq!(DatasetId::INetVal.paper_images(), 50_000);
        assert_eq!(DatasetId::INetVal.paper_bytes(), 6_300_000_000);
        assert_eq!(DatasetId::MiniINetVal.paper_images(), 1_400);
        assert_eq!(DatasetId::MiniINetVal.paper_bytes(), 200_000_000);
        assert_eq!(DatasetId::CocoFood512.paper_images(), 512);
        assert_eq!(DatasetId::CocoFood512.paper_bytes(), 94_300_000);
        assert_eq!(DatasetId::CocoOutdoor512.paper_images(), 512);
        assert_eq!(DatasetId::CocoOutdoor512.paper_bytes(), 71_600_000);
        assert_eq!(DatasetId::INetVal.paper_use_case(), "U2");
        assert_eq!(DatasetId::CocoFood512.paper_use_case(), "U3");
    }

    #[test]
    fn blob_sizes_sum_to_total() {
        for id in DatasetId::all() {
            let spec = id.spec(0.001);
            let sum: u64 = (0..spec.images).map(|i| spec.blob_bytes(i)).sum();
            assert_eq!(sum, spec.total_bytes, "{}", id.short_name());
        }
    }

    #[test]
    fn scaling_preserves_image_count() {
        let spec = DatasetId::CocoFood512.spec(0.125);
        assert_eq!(spec.images, 512);
        assert_eq!(spec.total_bytes, 11_787_500);
    }

    #[test]
    fn short_names_round_trip() {
        for id in DatasetId::all() {
            assert_eq!(DatasetId::from_short_name(id.short_name()), Some(id));
        }
        assert_eq!(DatasetId::from_short_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        DatasetId::INetVal.spec(0.0);
    }
}
