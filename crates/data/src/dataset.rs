//! Materialized datasets: deterministic blobs, pixels, and labels.

use mmlib_tensor::hash::{Digest, Sha256};
use mmlib_tensor::{Pcg32, Tensor};

use crate::catalog::{DatasetId, DatasetSpec};

/// A synthetic dataset: a [`DatasetSpec`] plus deterministic content.
///
/// The dataset is *virtual* — blobs are generated on demand from the
/// dataset seed, so a 6.3 GB dataset costs nothing until a use case actually
/// stores it. Content is a pure function of `(dataset seed, image index)`:
/// two machines agree bit-for-bit, which is what makes the provenance
/// approach's dataset reference verifiable.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    spec: DatasetSpec,
}

/// Number of label classes (ImageNet-1k, as in the paper's models).
pub const NUM_CLASSES: u32 = 1000;

impl Dataset {
    /// Materializes a Table 1 dataset at the given byte-size scale.
    pub fn new(id: DatasetId, scale: f64) -> Dataset {
        Dataset { spec: id.spec(scale) }
    }

    /// The dataset's spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The dataset id.
    pub fn id(&self) -> DatasetId {
        self.spec.id
    }

    /// Number of images.
    pub fn len(&self) -> u64 {
        self.spec.images
    }

    /// True if the dataset holds no images (never for Table 1 datasets).
    pub fn is_empty(&self) -> bool {
        self.spec.images == 0
    }

    /// Total blob bytes.
    pub fn total_bytes(&self) -> u64 {
        self.spec.total_bytes
    }

    /// Per-image PRNG, stream-separated by purpose.
    fn image_rng(&self, index: u64, stream: u64) -> Pcg32 {
        Pcg32::new(self.spec.id.seed() ^ index.wrapping_mul(0x9e3779b97f4a7c15), stream)
    }

    /// The raw "compressed image" blob for image `index`.
    ///
    /// JPEG-like: high-entropy bytes whose size matches the spec. Generated,
    /// not stored, so it is cheap to own huge datasets.
    pub fn blob(&self, index: u64) -> Vec<u8> {
        let n = self.spec.blob_bytes(index) as usize;
        let mut rng = self.image_rng(index, 1);
        let mut out = Vec::with_capacity(n);
        while out.len() + 4 <= n {
            out.extend_from_slice(&rng.next_u32().to_le_bytes());
        }
        while out.len() < n {
            out.push((rng.next_u32() & 0xff) as u8);
        }
        out
    }

    /// The decoded pixel tensor `[3, res, res]` for image `index`.
    ///
    /// Stands in for JPEG decode + resize: pixels are a deterministic
    /// function of the image identity, channel-wise normalized roughly like
    /// ImageNet preprocessing output.
    pub fn image_tensor(&self, index: u64, resolution: usize) -> Tensor {
        let mut rng = self.image_rng(index, 2);
        let n = 3 * resolution * resolution;
        let data: Vec<f32> = (0..n).map(|_| rng.normal(0.0, 1.0)).collect();
        Tensor::from_vec([3, resolution, resolution], data).expect("length by construction")
    }

    /// The class label for image `index` (0..1000).
    pub fn label(&self, index: u64) -> u32 {
        self.image_rng(index, 3).below(NUM_CLASSES)
    }

    /// SHA-256 over the dataset identity and all blob contents — the
    /// checksum the provenance approach records for its dataset reference.
    pub fn content_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(self.spec.id.short_name().as_bytes());
        h.update(&self.spec.images.to_le_bytes());
        h.update(&self.spec.total_bytes.to_le_bytes());
        for i in 0..self.spec.images {
            h.update(&self.blob(i));
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::new(DatasetId::CocoOutdoor512, 0.0005)
    }

    #[test]
    fn blobs_are_deterministic_and_sized() {
        let d = small();
        let b1 = d.blob(0);
        let b2 = d.blob(0);
        assert_eq!(b1, b2);
        assert_eq!(b1.len() as u64, d.spec().blob_bytes(0));
        assert_ne!(d.blob(0), d.blob(1));
    }

    #[test]
    fn total_blob_bytes_match_spec() {
        let d = small();
        let total: u64 = (0..d.len()).map(|i| d.blob(i).len() as u64).sum();
        assert_eq!(total, d.total_bytes());
    }

    #[test]
    fn pixels_are_deterministic_and_distinct_per_image() {
        let d = small();
        assert!(d.image_tensor(3, 8).bit_eq(&d.image_tensor(3, 8)));
        assert!(!d.image_tensor(3, 8).bit_eq(&d.image_tensor(4, 8)));
        assert_eq!(d.image_tensor(0, 16).shape().dims(), &[3, 16, 16]);
    }

    #[test]
    fn labels_are_deterministic_and_in_range() {
        let d = small();
        for i in 0..32 {
            let l = d.label(i);
            assert!(l < NUM_CLASSES);
            assert_eq!(l, d.label(i));
        }
    }

    #[test]
    fn different_datasets_have_different_content() {
        let a = Dataset::new(DatasetId::CocoFood512, 0.0005);
        let b = Dataset::new(DatasetId::CocoOutdoor512, 0.0005);
        assert_ne!(a.blob(0), b.blob(0));
        assert_ne!(a.label(0), b.label(0) | 0x8000_0000); // labels may collide; digests must not
        assert_ne!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn content_digest_is_stable() {
        let d = small();
        assert_eq!(d.content_digest(), d.content_digest());
    }
}
